"""Section V-C: KV-cache transfer overhead under high arrival rates.

Paper: P99 transfer latency is 0.14 s (AlpacaEval2.0) / 0.25 s (Arena-Hard)
— negligible against TTFTs that range from seconds to hundreds of seconds,
even with NIC contention from concurrent migrations.
"""

from repro.harness.experiments import sec5c_transfer_overhead


def test_sec5c_transfer_overhead(benchmark, record_figure):
    result = benchmark.pedantic(
        sec5c_transfer_overhead, rounds=1, iterations=1
    )
    record_figure(result)
    for row in result.rows:
        dataset, n_transfers, paper_p99, p99, ttft_p99, pct = row
        assert n_transfers > 0, f"no migrations observed for {dataset}"
        # Same order of magnitude as the paper's 0.14-0.25 s.
        assert 0.001 < p99 < 2.0
        # Negligible against the tail TTFT (well under 5%).
        assert pct < 5.0


def test_sec5c_arena_transfers_are_larger(record_figure):
    """Arena-Hard KV caches are bigger, so transfers take longer."""
    result = sec5c_transfer_overhead()
    by_name = result.row_map()
    alpaca = by_name["alpaca-eval-2.0"][3]
    arena = by_name["arena-hard"][3]
    assert arena >= alpaca * 0.5
