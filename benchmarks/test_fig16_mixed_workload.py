"""Figure 16: 50% Arena-Hard + 50% reasoning-heavy mixed workload.

Paper shape: with short answering phases there is little phase contention,
so PASCAL's edge shrinks — still up to 70% tail-TTFT reduction vs FCFS on
shorter bins, small bounded degradations on long-reasoning bins (+6.8%
worst), modest wins vs RR (up to 13.9%, worst-case degradation < 7.7%),
and SLO violations at or below both baselines.
"""

from repro.harness.experiments import fig16_mixed_workload


def test_fig16_mixed_workload(benchmark, record_figure):
    result = benchmark.pedantic(fig16_mixed_workload, rounds=1, iterations=1)
    record_figure(result)
    bin_rows = [r for r in result.rows if r[0] != "slo_violation_%"]
    slo_row = next(r for r in result.rows if r[0] == "slo_violation_%")

    vs_fcfs = [r[5] for r in bin_rows]
    vs_rr = [r[6] for r in bin_rows]
    # Meaningful best-case reduction vs FCFS on some bin.
    assert max(vs_fcfs) > 10.0
    # Wins vs RR are modest here (paper: <= 13.9%), losses bounded.
    assert max(vs_rr) > 0.0
    assert min(vs_rr) > -15.0
    assert min(vs_fcfs) > -15.0

    # SLO: PASCAL at or below both baselines (paper: ~= RR, < FCFS).
    fcfs_slo, rr_slo, pascal_slo = slo_row[2], slo_row[3], slo_row[4]
    assert pascal_slo <= fcfs_slo + 0.3
    assert pascal_slo <= rr_slo + 0.3


def test_fig16_gains_smaller_than_chat_workload(record_figure):
    """Phase contention is minimal, so the RR gap shrinks vs Figure 10."""
    from repro.harness.experiments import fig10_tail_ttft

    mixed = fig16_mixed_workload()
    chat = fig10_tail_ttft()
    mixed_best_rr = max(
        r[6] for r in mixed.rows if r[0] != "slo_violation_%"
    )
    chat_best_rr = max(row[8] for row in chat.rows)
    assert mixed_best_rr <= chat_best_rr + 5.0
