"""Figure 11: answering-phase SLO violation rates across arrival rates.

Paper shape: violation rates are small at low/medium load for everyone and
grow with the arrival rate; PASCAL is consistently lower than or comparable
to both baselines thanks to SLO-aware placement plus the token pacer.
"""

from repro.harness.experiments import fig11_slo_violations


def pick(rows, dataset, rate):
    for row in rows:
        if row[0] == dataset and row[1] == rate:
            return {"fcfs": row[2], "rr": row[3], "pascal": row[4]}
    raise KeyError((dataset, rate))


def test_fig11_slo_violations(benchmark, record_figure):
    result = benchmark.pedantic(fig11_slo_violations, rounds=1, iterations=1)
    record_figure(result)
    for dataset in ("alpaca-eval-2.0", "arena-hard"):
        for rate in ("low", "medium"):
            rates = pick(result.rows, dataset, rate)
            # Lightly loaded: nobody violates much.
            assert rates["pascal"] <= 2.0
            assert rates["pascal"] <= max(rates["fcfs"], rates["rr"]) + 1.0
        high = pick(result.rows, dataset, "high")
        # Under pressure PASCAL stays at or below both baselines.
        assert high["pascal"] <= high["fcfs"] + 0.5
        assert high["pascal"] <= high["rr"] + 0.5


def test_fig11_high_rate_strictly_favors_pascal(record_figure):
    result = fig11_slo_violations()
    # On at least one dataset the high-rate gap is strict and visible.
    strict = 0
    for dataset in ("alpaca-eval-2.0", "arena-hard"):
        high = pick(result.rows, dataset, "high")
        if high["pascal"] < min(high["fcfs"], high["rr"]):
            strict += 1
    assert strict >= 1
