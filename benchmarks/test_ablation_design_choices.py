"""Design-choice ablations the paper asserts in prose (no dedicated figure).

* Section IV-B: Algorithm 2's ``r_i + a_i`` fallback "achieves better load
  balancing and SLO attainment than using r_i alone" when every instance is
  violating its SLO.
* Section VII: a DistServe-style explicit partition of instances into
  reasoning and answering pools "offers little benefit" because both phases
  are decode steps with similar per-step latency — while it halves each
  phase's memory pool and forces a transfer at every boundary.
"""

from repro.harness.experiments import (
    ablation_alg2_fallback,
    ablation_phase_partitioning,
)


def test_ablation_alg2_fallback(benchmark, record_figure):
    result = benchmark.pedantic(
        ablation_alg2_fallback, rounds=1, iterations=1
    )
    record_figure(result)
    rows = {(r[0], r[1]): r for r in result.rows}
    stress_full = rows[("pascal", "stress")]
    stress_ri = rows[("pascal-ri-only", "stress")]
    # Under stress (all instances violating), the full heuristic balances
    # load visibly better: higher throughput and lower mean/tail TTFT.
    assert stress_full[5] >= stress_ri[5]
    assert stress_full[3] <= stress_ri[3]
    assert stress_full[4] <= stress_ri[4] * 1.02
    # SLO violation rates land within a few points of each other (the
    # paper's "better SLO attainment" is not reproducible at this scale).
    assert abs(stress_full[2] - stress_ri[2]) < 5.0
    # At the standard high tier the two rarely diverge (the fallback
    # branch seldom triggers).
    high_full = rows[("pascal", "high")]
    high_ri = rows[("pascal-ri-only", "high")]
    assert abs(high_full[3] - high_ri[3]) / high_full[3] < 0.10


def test_ablation_phase_partitioning(benchmark, record_figure):
    result = benchmark.pedantic(
        ablation_phase_partitioning, rounds=1, iterations=1
    )
    record_figure(result)
    rows = result.row_map()
    pascal = rows["pascal"]
    partitioned = rows["phase-partitioned"]
    # Partitioning cannot beat PASCAL on mean TTFT: the reasoning pool is
    # half the cluster, so reasoning decodes with half the memory.
    assert pascal[1] <= partitioned[1] * 1.05
    # Nor on throughput.
    assert pascal[4] >= partitioned[4] * 0.95
    # Partitioning migrates every single request.
    assert partitioned[5] >= pascal[5]
