"""Figure 14: problem-solving dataset distributions.

MATH-500 / GPQA / LiveCodeBench reason long and answer short; GPQA's
reasoning:answering ratio is the paper's quoted 8.48x extreme.
"""

from repro.harness.experiments import fig14_reasoning_heavy_distributions


def test_fig14_distributions(benchmark, record_figure):
    result = benchmark.pedantic(
        fig14_reasoning_heavy_distributions, rounds=1, iterations=1
    )
    record_figure(result)
    for row in result.rows:
        (
            name,
            paper_reason,
            measured_reason,
            paper_answer,
            measured_answer,
            ratio,
            _frac,
        ) = row
        assert abs(measured_reason - paper_reason) / paper_reason < 0.12
        assert abs(measured_answer - paper_answer) / paper_answer < 0.12
        # Reasoning-heavy: reasoning dominates answering for all three.
        assert ratio > 2.0


def test_fig14_gpqa_is_the_extreme(record_figure):
    result = fig14_reasoning_heavy_distributions()
    by_name = result.row_map()
    ratios = {name: row[5] for name, row in by_name.items()}
    assert max(ratios, key=ratios.get) == "gpqa"
    assert ratios["gpqa"] > 6.0  # paper: up to 8.48x
