"""Figure 9: absolute TTFT across arrival rates.

Paper shape: TTFT grows with the arrival rate for every policy; the high
rate punishes FCFS (blocking) and RR (tail preemption) much harder than
PASCAL; PASCAL's mean TTFT is the lowest at high load on both datasets.
"""

from repro.harness.experiments import fig9_ttft


def pick(rows, dataset, rate, policy):
    for row in rows:
        if row[0] == dataset and row[1] == rate and row[2] == policy:
            return row
    raise KeyError((dataset, rate, policy))


def test_fig9_ttft(benchmark, record_figure):
    result = benchmark.pedantic(fig9_ttft, rounds=1, iterations=1)
    record_figure(result)
    rows = result.rows
    for dataset in ("alpaca-eval-2.0", "arena-hard"):
        # Load monotonicity for the blocking baseline.
        fcfs_means = [
            pick(rows, dataset, rate, "fcfs")[3]
            for rate in ("low", "medium", "high")
        ]
        assert fcfs_means[0] <= fcfs_means[1] <= fcfs_means[2]

        # At the high rate PASCAL holds the lowest mean TTFT.
        high = {
            policy: pick(rows, dataset, "high", policy)[3]
            for policy in ("fcfs", "rr", "pascal")
        }
        assert high["pascal"] <= high["fcfs"]
        assert high["pascal"] <= high["rr"] * 1.02

        # RR mitigates FCFS's head-of-line blocking on mean TTFT.
        assert high["rr"] <= high["fcfs"] * 1.02


def test_fig9_reasoning_dominates_ttft(record_figure):
    result = fig9_ttft()
    # Arena-Hard reasons ~2x longer than AlpacaEval; its TTFTs scale along.
    alpaca = pick(result.rows, "alpaca-eval-2.0", "low", "fcfs")[3]
    arena = pick(result.rows, "arena-hard", "low", "fcfs")[3]
    assert arena > alpaca
