"""Figure 4: reasoning-phase latency breakdown under a 50% memory cap.

Paper shape: FCFS inflates *short* reasoning requests most (head-of-line
blocking; up to 5.14x oracle at 128 tokens, shrinking with length), while
RR stays near-oracle for short requests but pays a preemption penalty on
*long* ones (up to 1.75x at 2048 tokens).
"""

from repro.harness.experiments import fig4_reasoning_phase


def ratio(rows, length, policy):
    for row in rows:
        if row[0] == length and row[1] == policy:
            return row[6]
    raise KeyError((length, policy))


def test_fig4_reasoning_phase(benchmark, record_figure):
    result = benchmark.pedantic(fig4_reasoning_phase, rounds=1, iterations=1)
    record_figure(result)
    rows = result.rows

    # FCFS: blocking-dominated inflation, worst for the shortest requests.
    assert ratio(rows, 128, "fcfs") > 2.0
    assert ratio(rows, 128, "fcfs") > ratio(rows, 2048, "fcfs")

    # RR: short requests near-oracle (the whole point of time-sharing).
    assert ratio(rows, 128, "rr") < 1.2
    assert ratio(rows, 256, "rr") < 1.2

    # RR: long requests pay the preemption penalty; FCFS vs RR cross over.
    assert ratio(rows, 2048, "rr") > 1.2
    assert ratio(rows, 2048, "rr") > ratio(rows, 2048, "fcfs") * 0.9
    assert ratio(rows, 128, "rr") < ratio(rows, 128, "fcfs")

    # Oracle rows are the normalization baseline.
    for length in (128, 256, 512, 1024, 2048):
        assert ratio(rows, length, "oracle") == 1.0


def test_fig4_fcfs_inflation_is_blocking(record_figure):
    result = fig4_reasoning_phase()
    for row in result.rows:
        length, policy, executed, blocked, preempted = row[:5]
        if policy == "fcfs" and length == 128:
            # Waiting (blocked + preempted), not execution, dominates the
            # FCFS slowdown for short requests.
            assert blocked + preempted > executed
