"""Figure 8: chat-dataset token-count distributions.

The synthetic trace generators must hit the per-dataset means the paper
prints (AlpacaEval 557.75/566.85, Arena-Hard 968.35/824.02) and the skew
the Figure 10 caption quotes (>70% of requests reason under 1000 tokens).
"""

from repro.harness.experiments import fig8_chat_distributions


def test_fig8_distributions(benchmark, record_figure):
    result = benchmark.pedantic(
        fig8_chat_distributions, rounds=1, iterations=1
    )
    record_figure(result)
    for row in result.rows:
        (
            name,
            paper_reason,
            measured_reason,
            paper_answer,
            measured_answer,
            ratio,
            frac_short,
        ) = row
        assert abs(measured_reason - paper_reason) / paper_reason < 0.12
        assert abs(measured_answer - paper_answer) / paper_answer < 0.12
        # Chat datasets answer at length: reasoning:answering near 1.
        assert 0.6 < ratio < 1.6
        # Figure 10 caption: the reasoning-length distribution is skewed.
        assert frac_short > 0.70


def test_fig8_arena_longer_than_alpaca(record_figure):
    result = fig8_chat_distributions()
    by_name = result.row_map()
    alpaca = by_name["alpaca-eval-2.0"]
    arena = by_name["arena-hard"]
    assert arena[2] > alpaca[2]
    assert arena[4] > alpaca[4]
