"""Figure 2: oracle / FCFS / RR scheduling timelines (abstract time units).

Three requests (arrivals t=0,1,2), GPU memory for two, RR quantum 4.  The
paper reads off: under FCFS request C waits behind A and B (head-of-line
blocking); under RR, C is admitted as soon as A exhausts its first quantum.
"""

from repro.harness.experiments import fig2_timeline


def test_fig2_timeline(benchmark, record_figure):
    result = benchmark.pedantic(fig2_timeline, rounds=1, iterations=1)
    record_figure(result)
    rows = result.row_map()
    oracle_wait = rows["oracle"][1]
    fcfs_wait = rows["fcfs"][1]
    rr_wait = rows["rr"][1]
    # Oracle admits immediately; RR admits C after one quantum; FCFS makes
    # C wait for a completion.
    assert oracle_wait == 0.0
    assert rr_wait < fcfs_wait
    assert fcfs_wait >= 4.0
    # RR improves C's TTFT over FCFS, as in Figure 2(c) vs 2(b).
    assert rows["rr"][2] < rows["fcfs"][2]
    # Everyone still finishes; the makespans stay within 2x of oracle.
    assert rows["fcfs"][3] <= 2 * rows["oracle"][3]
