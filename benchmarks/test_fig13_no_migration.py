"""Figure 13: the value of migrating requests at phase boundaries.

Paper shape: with migration disabled, reasoning-phase latency is nearly
unchanged, but transitioned requests stall waiting for memory on their home
instance — P99 blocking latency jumps (27.39 s in the paper vs near zero
for PASCAL) and answering-phase SLO violations rise.
"""

from repro.harness.experiments import fig13_no_migration


def test_fig13_no_migration(benchmark, record_figure):
    result = benchmark.pedantic(fig13_no_migration, rounds=1, iterations=1)
    record_figure(result)
    rows = result.row_map()
    pascal = rows["pascal"]
    nomig = rows["pascal-nomigration"]

    # PASCAL keeps transition blocking near zero.
    assert pascal[4] < 0.5
    # Disabling migration inflates it by an order of magnitude.
    assert nomig[4] > 5 * pascal[4]
    # SLO violations worsen without migration.
    assert nomig[5] > pascal[5]
    # Reasoning-phase latency is nearly unchanged (within 5%).
    assert abs(nomig[3] - pascal[3]) / pascal[3] < 0.05


def test_fig13_ttft_not_better_without_migration(record_figure):
    result = fig13_no_migration()
    rows = result.row_map()
    # Mean TTFT does not improve when migration is disabled.
    assert rows["pascal-nomigration"][1] >= rows["pascal"][1] * 0.98
