"""Figure 15: the value of the adaptive migration override.

Paper shape: TTFT distributions look similar, but blindly migrating at
every transition (NonAdaptive) sends requests to memory-starved targets:
SLO violations climb with arrival rate (7.45% vs 0.69% at high in the
paper) and end-to-end latency degrades (median +20.1%, tail +9.7%).
"""

from repro.harness.experiments import fig15_non_adaptive


def pick(rows, policy, rate):
    for row in rows:
        if row[0] == policy and row[1] == rate:
            return row
    raise KeyError((policy, rate))


def test_fig15_non_adaptive(benchmark, record_figure):
    result = benchmark.pedantic(fig15_non_adaptive, rounds=1, iterations=1)
    record_figure(result)
    rows = result.rows

    high_pascal = pick(rows, "pascal", "high")
    high_nonadaptive = pick(rows, "pascal-nonadaptive", "high")

    # SLO violations blow up without the adaptive veto (paper: ~10x).
    assert high_nonadaptive[2] > 2 * max(high_pascal[2], 0.2)

    # Violations rise with the arrival rate for NonAdaptive.
    series = [
        pick(rows, "pascal-nonadaptive", rate)[2]
        for rate in ("low", "medium", "high")
    ]
    assert series[0] <= series[1] <= series[2]

    # Median and tail end-to-end latency degrade (paper: +20.1% / +9.7%).
    assert high_nonadaptive[6] > high_pascal[6] * 1.05
    assert high_nonadaptive[7] > high_pascal[7] * 1.02

    # TTFT distributions remain similar (within ~15%).
    assert abs(high_nonadaptive[3] - high_pascal[3]) / high_pascal[3] < 0.15


def test_fig15_pascal_keeps_high_rate_violations_low(record_figure):
    result = fig15_non_adaptive()
    assert pick(result.rows, "pascal", "high")[2] < 5.0
