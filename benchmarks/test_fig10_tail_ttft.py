"""Figure 10: tail TTFT per 256-token reasoning-length bin, high rate.

Paper headline: PASCAL cuts tail TTFT by up to 61% (AlpacaEval2.0) and 72%
(Arena-Hard) vs FCFS, and by up to 33% / 29% vs RR, with only rare, small
degradations (worst observed +6.12% vs FCFS / +9.23% vs RR).
"""

from repro.harness.experiments import fig10_tail_ttft


def reductions(rows, dataset):
    vs_fcfs = [r[7] for r in rows if r[0] == dataset]
    vs_rr = [r[8] for r in rows if r[0] == dataset]
    return vs_fcfs, vs_rr


def test_fig10_tail_ttft(benchmark, record_figure):
    result = benchmark.pedantic(fig10_tail_ttft, rounds=1, iterations=1)
    record_figure(result)
    for dataset in ("alpaca-eval-2.0", "arena-hard"):
        vs_fcfs, vs_rr = reductions(result.rows, dataset)
        assert vs_fcfs, f"no shared bins for {dataset}"
        # Large best-case reductions vs FCFS (paper: 61% / 72%).
        assert max(vs_fcfs) > 30.0
        # A clear best-case win vs RR as well (paper: 33% / 29%).
        assert max(vs_rr) > 8.0
        # Degradations exist but stay bounded (paper: ~6-9% worst case).
        assert min(vs_fcfs) > -25.0
        assert min(vs_rr) > -25.0
        # PASCAL wins more bins than it loses against FCFS.
        wins = sum(1 for v in vs_fcfs if v > 0)
        losses = sum(1 for v in vs_fcfs if v < 0)
        assert wins > losses


def test_fig10_short_bins_benefit_most_vs_fcfs(record_figure):
    result = fig10_tail_ttft()
    # Head-of-line blocking hits short reasoning hardest, so PASCAL's
    # biggest per-bin win vs FCFS lands in the shorter half of the bins.
    for dataset in ("alpaca-eval-2.0", "arena-hard"):
        rows = [r for r in result.rows if r[0] == dataset]
        best = max(rows, key=lambda r: r[7])
        lows = [int(r[1].strip("[]").split("-")[0]) for r in rows]
        best_lo = int(best[1].strip("[]").split("-")[0])
        assert best_lo <= sorted(lows)[len(lows) // 2]
