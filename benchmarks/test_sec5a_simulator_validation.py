"""Section V-A: simulator validation (MAPE table).

The paper validates its profile-based simulator against a real H100 node
(MAPE 1.62% end-to-end, 12.6% mean TTFT, 6.49% TPOT).  Our analogue runs
the same trace under the analytical reference model and under the profile
table sampled from it, quantifying the interpolation error the profile
methodology introduces into scheduling outcomes.
"""

from repro.harness.experiments import sec5a_validation


def test_sec5a_validation(benchmark, record_figure):
    result = benchmark.pedantic(sec5a_validation, rounds=1, iterations=1)
    record_figure(result)
    by_metric = result.row_map()
    # Our profile-vs-source MAPE must come in at or below the paper's
    # hardware-vs-simulator numbers for every metric.
    for metric, (name, paper, measured) in by_metric.items():
        assert measured <= paper, f"{metric}: {measured} > paper {paper}"
        assert measured >= 0.0


def test_sec5a_error_is_nonzero(record_figure):
    """The nonlinear roofline terms make interpolation genuinely lossy."""
    result = sec5a_validation()
    total_error = sum(row[2] for row in result.rows)
    assert total_error > 0.0
