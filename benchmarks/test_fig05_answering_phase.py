"""Figure 5: answering-phase latency breakdown and SLO attainment.

Paper shape: FCFS attainment is poor across answering lengths (blocking
blows the TTFAT target), while RR matches the oracle's attainment at every
length — even at 2048 tokens where RR's *total* latency exceeds FCFS's,
because the SLO is threshold-based and the token pacer hides preemption.
"""

from repro.harness.experiments import fig5_answering_phase


def cell(rows, length, policy):
    for row in rows:
        if row[0] == length and row[1] == policy:
            return row
    raise KeyError((length, policy))


def test_fig5_answering_phase(benchmark, record_figure):
    result = benchmark.pedantic(fig5_answering_phase, rounds=1, iterations=1)
    record_figure(result)
    rows = result.rows

    for length in (128, 256, 512, 1024, 2048):
        oracle_att = cell(rows, length, "oracle")[6]
        fcfs_att = cell(rows, length, "fcfs")[6]
        rr_att = cell(rows, length, "rr")[6]
        assert oracle_att == 1.0
        # RR attainment matches the oracle within noise at every length.
        assert rr_att >= 0.95
        # FCFS is strictly worse than RR.
        assert fcfs_att < rr_att

    # The headline crossover: at 2048 tokens RR's total answering latency
    # exceeds FCFS's, yet RR's attainment is still oracle-grade.
    rr_2048 = cell(rows, 2048, "rr")
    fcfs_2048 = cell(rows, 2048, "fcfs")
    assert rr_2048[5] > fcfs_2048[5]
    assert rr_2048[6] > fcfs_2048[6]


def test_fig5_rr_tolerates_preemption(record_figure):
    result = fig5_answering_phase()
    rr_long = cell(result.rows, 2048, "rr")
    # RR's long requests *are* preempted substantially...
    assert rr_long[4] > 1.0
    # ...yet still meet the SLO.
    assert rr_long[6] >= 0.95
