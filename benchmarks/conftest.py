"""Benchmark-suite helpers.

Each benchmark reproduces one table/figure of the paper: it runs (or reuses,
via the runner-level memoization) the simulations behind the figure, prints
the reproduction table next to the paper's quoted numbers, asserts the
qualitative shape (who wins, rough factors, crossovers), and saves the
rendered table under ``benchmarks/results/`` for the experiment log.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_figure(capsys):
    """Print a FigureResult and persist it to benchmarks/results/."""

    def _record(result):
        text = result.render()
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{result.figure_id}.txt").write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)
        return result

    return _record
