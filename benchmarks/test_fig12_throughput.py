"""Figure 12: serving throughput across arrival rates.

Paper claim: PASCAL's phase-aware scheduling costs essentially no
throughput — within 3% of both baselines at every rate and dataset.
"""

from repro.harness.experiments import fig12_throughput


def test_fig12_throughput(benchmark, record_figure):
    result = benchmark.pedantic(fig12_throughput, rounds=1, iterations=1)
    record_figure(result)
    for row in result.rows:
        dataset, rate, fcfs, rr, pascal, deficit_pct = row
        # PASCAL within a few percent of the best baseline (paper: 3%).
        assert deficit_pct < 6.0
        # Throughput is monotone in offered load for every policy.
    for dataset in ("alpaca-eval-2.0", "arena-hard"):
        series = [r for r in result.rows if r[0] == dataset]
        by_rate = {r[1]: r for r in series}
        for policy_idx in (2, 3, 4):
            assert (
                by_rate["low"][policy_idx]
                <= by_rate["medium"][policy_idx]
                <= by_rate["high"][policy_idx] * 1.02
            )


def test_fig12_pascal_never_collapses(record_figure):
    result = fig12_throughput()
    for row in result.rows:
        fcfs, rr, pascal = row[2], row[3], row[4]
        assert pascal > 0.8 * max(fcfs, rr)
