"""Intra-instance scheduling policy tests.

All scenarios use the unit-cost model (Figure 2 semantics): one decode
step = one time unit, prefill and swap are free, requests occupy one
16-token block each unless stated otherwise.
"""

import pytest

from repro.core.pascal import (
    ANSWERING_BAND,
    REASONING_BAND,
    PascalScheduler,
    band_of,
)
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.oracle import OracleScheduler, oracle_capacity_tokens
from repro.schedulers.round_robin import RoundRobinScheduler
from repro.workload.request import Phase, ReqState, Request
from tests.conftest import build_instance


def make_requests(n, reasoning=4, answer=4, spacing=1.0, prompt=1):
    return [
        Request(
            rid=i,
            prompt_len=prompt,
            reasoning_len=reasoning,
            answer_len=answer,
            arrival_t=i * spacing,
        )
        for i in range(n)
    ]


def submit_all(engine, inst, requests):
    from repro.sim.events import EventKind

    engine.register(
        EventKind.ARRIVAL, lambda now, req: inst.admit(req, now)
    )
    for req in requests:
        engine.schedule(req.arrival_t, EventKind.ARRIVAL, req)


class TestFigure2Scenario:
    """The paper's three-request illustration (capacity = 2 requests)."""

    def fig2_requests(self):
        reqs = make_requests(3, reasoning=4, answer=4)
        reqs[2].answer_len = 3
        return reqs

    def test_oracle_runs_everything_immediately(self):
        engine, inst = build_instance(OracleScheduler(), capacity_tokens=48)
        reqs = self.fig2_requests()
        submit_all(engine, inst, reqs)
        engine.run()
        # Request C never waits: first scheduled at its arrival time.
        assert reqs[2].first_sched_t == pytest.approx(2.0)
        assert all(r.finished for r in reqs)
        assert all(r.n_preemptions == 0 for r in reqs)

    def test_fcfs_blocks_request_c_until_a_finishes(self):
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=32)
        reqs = self.fig2_requests()
        submit_all(engine, inst, reqs)
        engine.run()
        # A finishes its 8 tokens before C is admitted.
        assert reqs[2].first_sched_t >= reqs[0].done_t
        assert reqs[2].phase_time(Phase.REASONING, "blocked") >= 4.0

    def test_rr_admits_c_after_a_quantum(self):
        engine, inst = build_instance(
            RoundRobinScheduler(quantum_tokens=4), capacity_tokens=32
        )
        reqs = self.fig2_requests()
        submit_all(engine, inst, reqs)
        engine.run()
        # C joins once A exhausts its 4-token quantum: far earlier than
        # A's completion.
        assert reqs[2].first_sched_t < reqs[0].done_t
        assert reqs[0].n_preemptions >= 1

    def test_rr_finishes_everything(self):
        engine, inst = build_instance(
            RoundRobinScheduler(quantum_tokens=4), capacity_tokens=32
        )
        reqs = self.fig2_requests()
        submit_all(engine, inst, reqs)
        engine.run()
        assert all(r.finished for r in reqs)


class TestFCFS:
    def test_priority_is_arrival_order(self):
        sched = FCFSScheduler()
        a = Request(rid=2, prompt_len=1, reasoning_len=1, answer_len=1, arrival_t=0.0)
        b = Request(rid=1, prompt_len=1, reasoning_len=1, answer_len=1, arrival_t=1.0)
        assert sched.priority_key(a) < sched.priority_key(b)

    def test_no_quantum(self):
        assert FCFSScheduler().quantum_tokens is None

    def test_preempts_latest_arrival_under_growth_pressure(self):
        # Two requests fit initially; growth forces the later one out.
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=48)
        reqs = make_requests(2, reasoning=16, answer=16, prompt=1)
        submit_all(engine, inst, reqs)
        engine.run()
        assert reqs[0].n_preemptions == 0
        assert reqs[1].n_preemptions >= 1
        assert all(r.finished for r in reqs)


class TestRoundRobin:
    def test_fresh_requests_outrank_veterans(self):
        sched = RoundRobinScheduler(quantum_tokens=4)
        veteran = Request(rid=1, prompt_len=1, reasoning_len=9, answer_len=1)
        sched.on_admit(veteran, 0.0)
        sched.on_quantum_expired(veteran, 1.0)
        fresh = Request(rid=2, prompt_len=1, reasoning_len=1, answer_len=1)
        sched.on_admit(fresh, 2.0)
        assert sched.priority_key(fresh) < sched.priority_key(veteran)

    def test_veterans_cycle_in_requeue_order(self):
        sched = RoundRobinScheduler(quantum_tokens=4)
        first = Request(rid=1, prompt_len=1, reasoning_len=9, answer_len=1)
        second = Request(rid=2, prompt_len=1, reasoning_len=9, answer_len=1)
        sched.on_admit(first, 0.0)
        sched.on_admit(second, 0.0)
        sched.on_quantum_expired(second, 1.0)
        sched.on_quantum_expired(first, 2.0)
        # second requeued before first, so it now leads the ring.
        assert sched.priority_key(second) < sched.priority_key(first)

    def test_quantum_expiry_resets_counter_and_levels_up(self):
        sched = RoundRobinScheduler(quantum_tokens=4)
        req = Request(rid=1, prompt_len=1, reasoning_len=9, answer_len=1)
        sched.on_admit(req, 0.0)
        req.quantum_used = 4
        sched.on_quantum_expired(req, 1.0)
        assert req.level == 1
        assert req.quantum_used == 0

    def test_invalid_quantum_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinScheduler(quantum_tokens=0)

    def test_quantum_enforced_in_execution(self):
        engine, inst = build_instance(
            RoundRobinScheduler(quantum_tokens=4), capacity_tokens=32
        )
        reqs = make_requests(2, reasoning=8, answer=8, spacing=0.0)
        submit_all(engine, inst, reqs)
        engine.run()
        # Both consumed 16 tokens = at least 3 quantum expiries each.
        assert all(r.level >= 3 for r in reqs)


class TestOracle:
    def test_capacity_covers_whole_workload(self):
        reqs = make_requests(5, reasoning=100, answer=50, prompt=10)
        cap = oracle_capacity_tokens(reqs)
        assert cap >= sum(10 + 150 for _ in reqs)

    def test_oracle_never_preempts_with_ample_memory(self):
        engine, inst = build_instance(OracleScheduler(), capacity_tokens=100_000)
        reqs = make_requests(10, reasoning=20, answer=20, spacing=0.5)
        submit_all(engine, inst, reqs)
        engine.run()
        assert all(r.n_preemptions == 0 for r in reqs)
        assert all(
            r.phase_time(Phase.REASONING, "blocked") < 1.5 for r in reqs
        )


class TestPascalBands:
    def test_reasoning_band_outranks_answering(self):
        sched = PascalScheduler()
        answering = Request(rid=1, prompt_len=1, reasoning_len=0, answer_len=5)
        reasoning = Request(rid=2, prompt_len=1, reasoning_len=5, answer_len=5)
        sched.on_admit(answering, 0.0)
        sched.on_admit(reasoning, 1.0)
        assert sched.priority_key(reasoning) < sched.priority_key(answering)

    def test_band_of(self):
        reasoning = Request(rid=1, prompt_len=1, reasoning_len=5, answer_len=5)
        assert band_of(reasoning) == REASONING_BAND
        reasoning.demoted = True
        assert band_of(reasoning) == ANSWERING_BAND
        answering = Request(rid=2, prompt_len=1, reasoning_len=0, answer_len=5)
        assert band_of(answering) == ANSWERING_BAND

    def test_phase_transition_requeues_fresh(self):
        sched = PascalScheduler()
        req = Request(rid=1, prompt_len=1, reasoning_len=1, answer_len=5)
        sched.on_admit(req, 0.0)
        req.level = 3
        req.quantum_used = 250
        sched.on_phase_transition_local(req, 5.0)
        assert req.level == 0
        assert req.quantum_used == 0

    def test_demotion_threshold(self):
        sched = PascalScheduler(demotion_threshold_tokens=100)
        req = Request(rid=1, prompt_len=1, reasoning_len=500, answer_len=5)
        sched.on_admit(req, 0.0)
        req.generated_tokens = 101
        sched.refresh([req], 1.0)
        assert req.demoted
        assert band_of(req) == ANSWERING_BAND
        assert req.level == 0

    def test_no_demotion_below_threshold(self):
        sched = PascalScheduler(demotion_threshold_tokens=100)
        req = Request(rid=1, prompt_len=1, reasoning_len=500, answer_len=5)
        sched.on_admit(req, 0.0)
        req.generated_tokens = 100
        sched.refresh([req], 1.0)
        assert not req.demoted

    def test_census_counts(self):
        sched = PascalScheduler()
        reasoning = Request(rid=1, prompt_len=1, reasoning_len=5, answer_len=5)
        fresh_answer = Request(rid=2, prompt_len=1, reasoning_len=0, answer_len=5)
        stale_answer = Request(rid=3, prompt_len=1, reasoning_len=0, answer_len=5)
        stale_answer.level = 2
        requests = [reasoning, fresh_answer, stale_answer]
        assert sched.reasoning_count(requests) == 1
        assert sched.fresh_answering_count(requests) == 1

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PascalScheduler(quantum_tokens=0)
        with pytest.raises(ValueError):
            PascalScheduler(demotion_threshold_tokens=0)

    def test_reasoning_preempts_answering_in_execution(self):
        # An answering-phase request holds the GPU; a reasoning request
        # arrives and must take priority (and memory) away from it.
        engine, inst = build_instance(
            PascalScheduler(quantum_tokens=4), capacity_tokens=32
        )
        answering = Request(
            rid=0, prompt_len=17, reasoning_len=0, answer_len=12,
            arrival_t=0.0, skip_prefill=True,
        )
        answering.mark_reasoning_precomputed(0.0)
        reasoning = Request(
            rid=1, prompt_len=17, reasoning_len=10, answer_len=1,
            arrival_t=3.0,
        )
        submit_all(engine, inst, [answering, reasoning])
        engine.run()
        assert answering.n_preemptions >= 1
        # The reasoning request ran without interruption once admitted.
        assert reasoning.phase_time(Phase.REASONING, "preempted") == 0.0
        assert all(r.finished for r in (answering, reasoning))


class TestBatchFormation:
    def test_resident_requests_keep_running_when_memory_allows(self):
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=64)
        reqs = make_requests(3, reasoning=4, answer=4, spacing=0.0)
        submit_all(engine, inst, reqs)
        engine.run()
        assert all(r.n_preemptions == 0 for r in reqs)

    def test_head_of_line_no_leapfrog(self):
        # A huge request at the queue head must block smaller later ones
        # under FCFS (no skip-ahead).
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=64)
        big = Request(rid=0, prompt_len=33, reasoning_len=20, answer_len=1,
                      arrival_t=0.0)
        running = Request(rid=1, prompt_len=17, reasoning_len=30, answer_len=1,
                          arrival_t=0.0)
        small = Request(rid=2, prompt_len=1, reasoning_len=2, answer_len=1,
                        arrival_t=1.0)
        # Order: running(0), big(0.5), small(1). big needs 3 blocks; with
        # running holding 2, big cannot be admitted; small must NOT jump in.
        big.arrival_t = 0.5
        submit_all(engine, inst, [running, big, small])
        engine.run()
        assert big.first_sched_t is not None
        assert small.first_sched_t >= big.first_sched_t

    def test_batch_respects_max_batch_size(self):
        from repro.config import InstanceConfig, SchedulerConfig

        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=10_000)
        inst.config = InstanceConfig(
            kv_capacity_tokens=10_000,
            scheduler=SchedulerConfig(max_batch_size=2),
        )
        reqs = make_requests(4, reasoning=4, answer=4, spacing=0.0)
        submit_all(engine, inst, reqs)
        engine.run()
        assert all(r.finished for r in reqs)
        # 32 tokens total, 4 emitted by prefill steps, batch cap 2:
        # at least 14 decode steps.
        assert inst.decode_steps >= 14
