"""Harness tests: report rendering, calibration, timeline, cheap figures."""

import pytest

from repro.config import ClusterConfig
from repro.harness import calibrate
from repro.harness.report import FigureResult, format_cell, render_table
from repro.harness.timeline import ascii_timeline
from repro.perfmodel.analytical import AnalyticalPerfModel
from repro.workload.datasets import ALPACA_EVAL, reasoning_heavy_mix
from repro.workload.request import Request


class TestFormatCell:
    def test_none(self):
        assert format_cell(None) == "-"

    def test_zero(self):
        assert format_cell(0.0) == "0"

    def test_large_floats_have_commas(self):
        assert format_cell(12345.6) == "12,346"

    def test_mid_floats_one_decimal(self):
        assert format_cell(42.25) == "42.2"

    def test_small_floats_three_decimals(self):
        assert format_cell(0.12345) == "0.123"

    def test_strings_and_ints_pass_through(self):
        assert format_cell("abc") == "abc"
        assert format_cell(7) == "7"


class TestRenderTable:
    def test_header_and_rows_aligned(self):
        text = render_table(["a", "bb"], [[1, 2], [33, 44]], title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            render_table([], [])


class TestFigureResult:
    def fig(self):
        return FigureResult(
            figure_id="figX",
            title="demo",
            headers=["k", "v"],
            rows=[["a", 1], ["b", 2]],
            notes=["note one"],
        )

    def test_render_contains_notes(self):
        text = self.fig().render()
        assert "[figX] demo" in text
        assert "note: note one" in text

    def test_column(self):
        assert self.fig().column("v") == [1, 2]

    def test_column_unknown_rejected(self):
        with pytest.raises(KeyError):
            self.fig().column("zzz")

    def test_row_map(self):
        assert self.fig().row_map()["a"] == ["a", 1]
        assert self.fig().row_map("v")[2] == ["b", 2]


class TestCalibrate:
    def test_mixture_means(self):
        single = calibrate.mixture_mean_request_tokens(ALPACA_EVAL)
        assert single == pytest.approx(60.0 + 557.75 + 566.85)
        mix = reasoning_heavy_mix()
        mixed = calibrate.mixture_mean_request_tokens(mix)
        components = [
            calibrate.mixture_mean_request_tokens(spec)
            for spec, _ in mix.components
        ]
        assert min(components) < mixed < max(components)

    def test_decode_means(self):
        decode = calibrate.mixture_mean_decode_tokens(ALPACA_EVAL)
        assert decode == pytest.approx(557.75 + 566.85)

    def test_instance_throughput_estimate(self):
        config = ClusterConfig()
        perf = AnalyticalPerfModel(config.instance.model, config.instance.gpu)
        rate = calibrate.estimate_instance_tokens_per_s(perf, 60_000, 600.0)
        # One H100 with a 32B model: hundreds to a couple thousand tok/s.
        assert 200 < rate < 4000

    def test_instance_throughput_validation(self):
        config = ClusterConfig()
        perf = AnalyticalPerfModel(config.instance.model, config.instance.gpu)
        with pytest.raises(ValueError):
            calibrate.estimate_instance_tokens_per_s(perf, 0, 600.0)
        with pytest.raises(ValueError):
            calibrate.estimate_instance_tokens_per_s(perf, 1000, 0.0)

    def test_arrival_rates_ordering(self):
        config = ClusterConfig()
        perf = AnalyticalPerfModel(config.instance.model, config.instance.gpu)
        rates = calibrate.arrival_rates(config, ALPACA_EVAL, perf)
        assert rates["low"] < rates["medium"] < rates["high"]


class TestTimeline:
    def test_ascii_timeline_marks_tokens(self):
        req = Request(rid=0, prompt_len=1, reasoning_len=2, answer_len=2)
        req.done_t = 4.0
        text = ascii_timeline([req], {0: [0.5, 1.5, 2.5, 3.5]})
        row = text.splitlines()[1]
        assert row.startswith("req 0")
        assert row.count("#") == 4

    def test_waiting_cells_dotted(self):
        req = Request(
            rid=0, prompt_len=1, reasoning_len=2, answer_len=2, arrival_t=0.0
        )
        req.done_t = 5.0
        text = ascii_timeline([req], {0: [4.5]}, horizon_slots=6)
        row = text.splitlines()[1]
        assert "." in row

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_timeline([], {})


class TestCheapExperiments:
    def test_fig2_runs(self):
        from repro.harness.experiments import fig2_timeline

        result = fig2_timeline()
        assert result.figure_id == "fig2"
        assert len(result.rows) == 3

    def test_fig8_runs(self):
        from repro.harness.experiments import fig8_chat_distributions

        result = fig8_chat_distributions(n_samples=500)
        assert {row[0] for row in result.rows} == {
            "alpaca-eval-2.0",
            "arena-hard",
        }

    def test_sec5a_runs(self):
        from repro.harness.experiments import sec5a_validation

        result = sec5a_validation(n_requests=20)
        assert [row[0] for row in result.rows] == [
            "end-to-end latency",
            "mean TTFT",
            "TPOT",
        ]
        assert all(row[2] >= 0 for row in result.rows)
