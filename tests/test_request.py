"""Request state machine and time-accounting tests."""

import pytest

from repro.workload.request import (
    BUCKET_BLOCKED,
    BUCKET_EXECUTED,
    BUCKET_PREEMPTED,
    Phase,
    ReqState,
    Request,
)


def make_request(reasoning=3, answer=2, arrival=0.0, **kwargs):
    return Request(
        rid=1,
        prompt_len=8,
        reasoning_len=reasoning,
        answer_len=answer,
        arrival_t=arrival,
        **kwargs,
    )


class TestConstruction:
    def test_starts_in_reasoning_when_reasoning_tokens_exist(self):
        assert make_request().phase == Phase.REASONING

    def test_starts_in_answering_when_no_reasoning(self):
        assert make_request(reasoning=0).phase == Phase.ANSWERING

    def test_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            Request(1, 0, 3, 2)
        with pytest.raises(ValueError):
            Request(1, 8, -1, 2)
        with pytest.raises(ValueError):
            Request(1, 8, 3, 0)

    def test_total_and_remaining_tokens(self):
        req = make_request(reasoning=3, answer=2)
        assert req.total_decode_tokens == 5
        assert req.remaining_tokens == 5


class TestTokenAccounting:
    def run_tokens(self, req, times):
        req.set_state(ReqState.RUNNING, req.arrival_t)
        for t in times:
            req.record_token(t)

    def test_phase_flips_at_end_of_reasoning(self):
        req = make_request(reasoning=2, answer=2)
        self.run_tokens(req, [1.0, 2.0])
        assert req.phase == Phase.ANSWERING
        assert req.reasoning_end_t == 2.0
        assert req.first_answer_t is None

    def test_first_answer_token_sets_ttft(self):
        req = make_request(reasoning=2, answer=2, arrival=0.5)
        self.run_tokens(req, [1.0, 2.0, 3.0])
        assert req.first_answer_t == 3.0
        assert req.ttft() == pytest.approx(2.5)
        assert req.ttfat() == pytest.approx(1.0)

    def test_completion(self):
        req = make_request(reasoning=1, answer=2)
        self.run_tokens(req, [1.0, 2.0, 3.0])
        assert req.finished
        assert req.phase == Phase.DONE
        assert req.done_t == 3.0
        assert req.e2e_latency() == pytest.approx(3.0)

    def test_answer_token_times_recorded(self):
        req = make_request(reasoning=1, answer=3)
        self.run_tokens(req, [1.0, 2.0, 3.5, 4.0])
        assert req.answer_token_times == [2.0, 3.5, 4.0]

    def test_token_while_not_running_raises(self):
        req = make_request()
        with pytest.raises(RuntimeError):
            req.record_token(1.0)

    def test_zero_reasoning_counts_first_token_as_answer(self):
        req = make_request(reasoning=0, answer=2)
        req.set_state(ReqState.RUNNING, 0.0)
        req.record_token(1.0)
        assert req.first_answer_t == 1.0

    def test_metrics_none_before_milestones(self):
        req = make_request()
        assert req.ttft() is None
        assert req.ttfat() is None
        assert req.e2e_latency() is None
        assert req.blocking_latency() is None
        assert req.reasoning_latency() is None


class TestIntervalBreakdown:
    def test_blocked_time_accumulates_in_queue(self):
        req = make_request(arrival=0.0)
        req.set_state(ReqState.RUNNING, 4.0)
        assert req.phase_time(Phase.REASONING, BUCKET_BLOCKED) == 4.0

    def test_preempted_time(self):
        req = make_request(arrival=0.0)
        req.set_state(ReqState.RUNNING, 1.0)
        req.set_state(ReqState.PREEMPTED, 3.0)
        req.set_state(ReqState.RUNNING, 7.0)
        assert req.phase_time(Phase.REASONING, BUCKET_EXECUTED) == 2.0
        assert req.phase_time(Phase.REASONING, BUCKET_PREEMPTED) == 4.0
        assert req.n_preemptions == 1

    def test_phase_boundary_splits_intervals(self):
        req = make_request(reasoning=2, answer=1, arrival=0.0)
        req.set_state(ReqState.RUNNING, 0.0)
        req.record_token(1.0)
        req.record_token(2.0)  # reasoning ends here
        req.record_token(5.0)  # answering token, finishes
        assert req.phase_time(Phase.REASONING, BUCKET_EXECUTED) == 2.0
        assert req.phase_time(Phase.ANSWERING, BUCKET_EXECUTED) == 3.0

    def test_breakdown_sums_to_sojourn(self):
        req = make_request(reasoning=2, answer=2, arrival=0.0)
        req.set_state(ReqState.RUNNING, 1.5)
        req.record_token(2.0)
        req.set_state(ReqState.PREEMPTED, 2.5)
        req.set_state(ReqState.RUNNING, 4.0)
        req.record_token(5.0)
        req.record_token(6.0)
        req.record_token(7.0)
        total = sum(req.breakdown.values())
        assert total == pytest.approx(req.e2e_latency())

    def test_clock_regression_rejected(self):
        req = make_request(arrival=5.0)
        with pytest.raises(ValueError):
            req.set_state(ReqState.RUNNING, 4.0)

    def test_migrating_counts_as_preempted_bucket(self):
        req = make_request(arrival=0.0)
        req.set_state(ReqState.MIGRATING, 2.0)
        req.set_state(ReqState.QUEUED, 5.0)
        assert req.phase_time(Phase.REASONING, BUCKET_PREEMPTED) == 3.0


class TestMilestones:
    def test_first_sched_recorded_once(self):
        req = make_request()
        req.set_state(ReqState.RUNNING, 2.0)
        req.set_state(ReqState.PREEMPTED, 3.0)
        req.set_state(ReqState.RUNNING, 9.0)
        assert req.first_sched_t == 2.0

    def test_answer_sched_not_set_at_phase_flip(self):
        # The transition re-enqueues the request; blocking latency counts
        # from the flip until the scheduler next grants a slot.
        req = make_request(reasoning=1, answer=2, arrival=0.0)
        req.set_state(ReqState.RUNNING, 0.0)
        req.record_token(1.0)  # ends reasoning while running
        assert req.answer_sched_t is None
        assert req.blocking_latency() is None

    def test_answer_sched_after_requeue(self):
        req = make_request(reasoning=1, answer=2, arrival=0.0)
        req.set_state(ReqState.RUNNING, 0.0)
        req.record_token(1.0)
        req.set_state(ReqState.MIGRATING, 1.0)
        req.set_state(ReqState.QUEUED, 4.0)
        req.set_state(ReqState.RUNNING, 6.0)
        assert req.answer_sched_t == 6.0
        assert req.blocking_latency() == pytest.approx(5.0)

    def test_mark_reasoning_precomputed(self):
        req = make_request(reasoning=0, answer=2, arrival=3.0)
        req.mark_reasoning_precomputed(3.0)
        assert req.reasoning_end_t == 3.0

    def test_mark_reasoning_precomputed_requires_zero_reasoning(self):
        req = make_request(reasoning=2)
        with pytest.raises(ValueError):
            req.mark_reasoning_precomputed(0.0)
