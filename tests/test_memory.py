"""KV pool unit and property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.blocks import KVPool, OutOfMemoryError
from repro.workload.request import Request


def req(rid):
    return Request(rid=rid, prompt_len=8, reasoning_len=4, answer_len=4)


class TestBlocksFor:
    def test_rounds_up(self):
        pool = KVPool(1600, 1600, block_size=16)
        assert pool.blocks_for(0) == 0
        assert pool.blocks_for(1) == 1
        assert pool.blocks_for(16) == 1
        assert pool.blocks_for(17) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            KVPool(160, 160).blocks_for(-1)

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            KVPool(-1, 0)
        with pytest.raises(ValueError):
            KVPool(16, 16, block_size=0)


class TestAllocation:
    def test_allocate_and_release(self):
        pool = KVPool(320, 320)
        r = req(1)
        pool.allocate(r, 100)
        assert pool.gpu_used_blocks == 7
        assert r.kv_tokens == 100 and r.on_gpu
        assert pool.release(r) == 100
        assert pool.gpu_used_blocks == 0
        assert r.kv_tokens == 0

    def test_double_allocate_rejected(self):
        pool = KVPool(320, 320)
        r = req(1)
        pool.allocate(r, 10)
        with pytest.raises(OutOfMemoryError):
            pool.allocate(r, 10)

    def test_allocate_beyond_capacity_rejected(self):
        pool = KVPool(160, 160)
        with pytest.raises(OutOfMemoryError):
            pool.allocate(req(1), 161)

    def test_cpu_allocation(self):
        pool = KVPool(160, 320)
        r = req(1)
        pool.allocate(r, 200, on_gpu=False)
        assert pool.cpu_used_blocks == 13
        assert not r.on_gpu

    def test_release_unknown_rejected(self):
        pool = KVPool(160, 160)
        with pytest.raises(OutOfMemoryError):
            pool.release(req(9))


class TestGrowth:
    def test_grow_within_block_is_free(self):
        pool = KVPool(320, 320)
        r = req(1)
        pool.allocate(r, 10)
        used = pool.gpu_used_blocks
        pool.grow(r, 1)
        assert pool.gpu_used_blocks == used
        assert r.kv_tokens == 11

    def test_grow_across_block_boundary(self):
        pool = KVPool(320, 320)
        r = req(1)
        pool.allocate(r, 16)
        pool.grow(r, 1)
        assert pool.gpu_used_blocks == 2

    def test_grow_when_full_raises(self):
        pool = KVPool(32, 320)
        r = req(1)
        pool.allocate(r, 32)
        with pytest.raises(OutOfMemoryError):
            pool.grow(r, 1)

    def test_grow_swapped_out_raises(self):
        pool = KVPool(320, 320)
        r = req(1)
        pool.allocate(r, 10)
        pool.swap_out(r)
        with pytest.raises(OutOfMemoryError):
            pool.grow(r, 1)

    def test_can_grow(self):
        pool = KVPool(32, 320)
        r = req(1)
        pool.allocate(r, 16)
        assert pool.can_grow(r, 16)
        assert not pool.can_grow(r, 17)


class TestSwap:
    def test_swap_roundtrip(self):
        pool = KVPool(320, 320)
        r = req(1)
        pool.allocate(r, 50)
        moved = pool.swap_out(r)
        assert moved == 50
        assert pool.gpu_used_blocks == 0
        assert pool.cpu_used_blocks == 4
        assert not r.on_gpu
        pool.swap_in(r)
        assert r.on_gpu
        assert pool.cpu_used_blocks == 0

    def test_double_swap_out_rejected(self):
        pool = KVPool(320, 320)
        r = req(1)
        pool.allocate(r, 10)
        pool.swap_out(r)
        with pytest.raises(OutOfMemoryError):
            pool.swap_out(r)

    def test_swap_in_needs_gpu_room(self):
        pool = KVPool(32, 320)
        a, b = req(1), req(2)
        pool.allocate(a, 20)
        pool.swap_out(a)
        pool.allocate(b, 32)
        with pytest.raises(OutOfMemoryError):
            pool.swap_in(a)

    def test_swap_out_needs_cpu_room(self):
        pool = KVPool(320, 16)
        r = req(1)
        pool.allocate(r, 100)
        with pytest.raises(OutOfMemoryError):
            pool.swap_out(r)


class TestQueries:
    def test_total_and_free_tokens(self):
        pool = KVPool(320, 320)
        a, b = req(1), req(2)
        pool.allocate(a, 100)
        pool.allocate(b, 50)
        pool.swap_out(b)
        assert pool.total_kv_tokens() == 150
        assert pool.gpu_used_tokens() == 100
        assert pool.cpu_used_tokens() == 50
        assert pool.gpu_free_tokens() == 320 - 7 * 16

    def test_peak_tracks_high_water_mark(self):
        pool = KVPool(320, 320)
        a = req(1)
        pool.allocate(a, 160)
        pool.release(a)
        b = req(2)
        pool.allocate(b, 32)
        assert pool.peak_gpu_tokens() == 160

    def test_holds_and_on_gpu(self):
        pool = KVPool(320, 320)
        r = req(1)
        assert not pool.holds(r)
        pool.allocate(r, 10)
        assert pool.holds(r) and pool.on_gpu(r)
        pool.swap_out(r)
        assert pool.holds(r) and not pool.on_gpu(r)


class TestGrowAll:
    """Batch one-token growth — the decode-epoch fast path's pool call."""

    def test_matches_per_request_grow(self):
        batch, single = KVPool(640, 640), KVPool(640, 640)
        reqs_a = [req(i) for i in range(3)]
        reqs_b = [req(i) for i in range(3)]
        for pool, reqs in ((batch, reqs_a), (single, reqs_b)):
            for i, r in enumerate(reqs):
                pool.allocate(r, 15 + i)  # one request sits on a boundary
        crossing = sum(1 for r in reqs_a if r.kv_tokens % 16 == 0)
        batch.grow_all(reqs_a, crossing)
        for r in reqs_b:
            single.grow(r, 1)
        assert batch.gpu_used_blocks == single.gpu_used_blocks
        assert batch.gpu_used_tokens() == single.gpu_used_tokens()
        assert [r.kv_tokens for r in reqs_a] == [r.kv_tokens for r in reqs_b]
        batch.check_invariants()

    def test_oom_when_crossings_exceed_free_blocks(self):
        pool = KVPool(32, 0)
        a, b = req(1), req(2)
        pool.allocate(a, 16)
        pool.allocate(b, 16)
        with pytest.raises(OutOfMemoryError):
            pool.grow_all([a, b], crossing_blocks=2)
        # The failed call must not have mutated anything.
        pool.check_invariants()
        assert a.kv_tokens == 16 and b.kv_tokens == 16

    def test_counters_stay_o1_consistent(self):
        pool = KVPool(3200, 3200)
        reqs = [req(i) for i in range(4)]
        for r in reqs:
            pool.allocate(r, 10)
        for step in range(40):
            crossing = sum(1 for r in reqs if r.kv_tokens % 16 == 0)
            pool.grow_all(reqs, crossing)
            pool.check_invariants()
        assert pool.gpu_used_tokens() == 4 * 50


@st.composite
def pool_operations(draw):
    """A random sequence of (op, rid) pairs."""
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(
                    ["allocate", "grow", "swap_out", "swap_in", "release"]
                ),
                st.integers(min_value=0, max_value=5),
            ),
            max_size=60,
        )
    )
    return ops


class TestPoolProperties:
    @given(pool_operations())
    @settings(max_examples=200, deadline=None)
    def test_invariants_hold_under_any_op_sequence(self, ops):
        pool = KVPool(640, 640)
        requests = {rid: req(rid) for rid in range(6)}
        for op, rid in ops:
            r = requests[rid]
            try:
                if op == "allocate":
                    pool.allocate(r, (rid + 1) * 10)
                elif op == "grow":
                    pool.grow(r, 3)
                elif op == "swap_out":
                    pool.swap_out(r)
                elif op == "swap_in":
                    pool.swap_in(r)
                elif op == "release":
                    pool.release(r)
            except OutOfMemoryError:
                pass
            pool.check_invariants()
        assert pool.gpu_used_blocks >= 0
        assert pool.cpu_used_blocks >= 0

    @given(
        st.lists(
            st.integers(min_value=1, max_value=200), min_size=1, max_size=20
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_allocate_release_conserves(self, sizes):
        pool = KVPool(100_000, 100_000)
        live = []
        for i, size in enumerate(sizes):
            r = req(i)
            pool.allocate(r, size)
            live.append(r)
        for r in live:
            pool.release(r)
        assert pool.gpu_used_blocks == 0
        assert pool.total_kv_tokens() == 0
