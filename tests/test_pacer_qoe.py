"""Token pacer and QoE metric tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.qoe import qoe_score
from repro.serving.pacer import TokenPacer, release_schedule


class TestTokenPacer:
    def test_first_token_released_immediately(self):
        pacer = TokenPacer(0.1)
        assert pacer.on_token(5.0) == 5.0
        assert pacer.first_token_t == 5.0

    def test_burst_is_smoothed(self):
        pacer = TokenPacer(0.1)
        releases = [pacer.on_token(1.0) for _ in range(4)]
        assert releases == pytest.approx([1.0, 1.1, 1.2, 1.3])

    def test_slow_generation_released_on_arrival(self):
        pacer = TokenPacer(0.1)
        pacer.on_token(1.0)
        assert pacer.on_token(2.0) == 2.0

    def test_expected_by_counts_user_pace(self):
        pacer = TokenPacer(0.1)
        pacer.on_token(1.0)
        assert pacer.expected_by(0.9) == 0
        assert pacer.expected_by(1.0) == 1
        assert pacer.expected_by(1.25) == 3
        assert pacer.expected_by(1.95) == 10

    def test_released_capped_by_generated(self):
        pacer = TokenPacer(0.1)
        pacer.on_token(1.0)
        pacer.on_token(1.0)
        assert pacer.released_by(10.0) == 2

    def test_buffered_and_starving(self):
        pacer = TokenPacer(0.1)
        for _ in range(5):
            pacer.on_token(1.0)
        # 5 tokens buffered; user digests one per 100 ms from t=1.0.
        assert pacer.buffered(1.0) == 4
        assert not pacer.starving(1.3)
        # After 0.5s the user expects 6 tokens but only 5 exist.
        assert pacer.starving(1.5)

    def test_invalid_tpot_rejected(self):
        with pytest.raises(ValueError):
            TokenPacer(0.0)


class TestReleaseSchedule:
    def test_matches_online_pacer(self):
        times = [1.0, 1.0, 1.0, 2.0, 5.0]
        offline = release_schedule(times, 0.1)
        pacer = TokenPacer(0.1)
        online = [pacer.on_token(t) for t in times]
        assert offline == online

    def test_rejects_decreasing_times(self):
        with pytest.raises(ValueError):
            release_schedule([2.0, 1.0], 0.1)

    def test_rejects_bad_tpot(self):
        with pytest.raises(ValueError):
            release_schedule([1.0], 0.0)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_releases_monotone_and_paced(self, raw_times):
        times = sorted(raw_times)
        releases = release_schedule(times, 0.1)
        for i in range(1, len(releases)):
            assert releases[i] >= releases[i - 1] + 0.1 - 1e-12
        for g, r in zip(times, releases):
            assert r >= g


class TestQoE:
    def test_perfect_pacing_scores_one(self):
        times = [1.0 + 0.1 * k for k in range(20)]
        assert qoe_score(times, 0.1) == pytest.approx(1.0)

    def test_single_token_scores_one(self):
        assert qoe_score([3.0], 0.1) == pytest.approx(1.0)

    def test_fast_generation_scores_one(self):
        # Generation faster than the user's pace: pacer smooths, QoE = 1.
        times = [1.0 + 0.01 * k for k in range(30)]
        assert qoe_score(times, 0.1) == pytest.approx(1.0)

    def test_mid_stream_stall_lowers_score(self):
        times = [1.0 + 0.1 * k for k in range(10)]
        times += [times[-1] + 30.0 + 0.1 * k for k in range(10)]
        score = qoe_score(times, 0.1)
        assert score < 0.95

    def test_short_stall_covered_by_buffer(self):
        # Burst of 20 tokens at t=1 buys 2 s of buffer; a 1 s gap is hidden.
        times = [1.0] * 20 + [2.0 + 0.1 * k for k in range(5)]
        assert qoe_score(times, 0.1) == pytest.approx(1.0)

    def test_anchor_penalizes_late_start(self):
        # Tokens keep perfect pace but start 5 s after the anchor.
        times = [5.0 + 0.1 * k for k in range(10)]
        anchored = qoe_score(times, 0.1, anchor_t=0.0)
        free = qoe_score(times, 0.1)
        assert free == pytest.approx(1.0)
        assert anchored < 0.5

    def test_anchor_after_start_does_not_exceed_one(self):
        times = [1.0 + 0.1 * k for k in range(10)]
        assert qoe_score(times, 0.1, anchor_t=50.0) == 1.0

    def test_empty_times_rejected(self):
        with pytest.raises(ValueError):
            qoe_score([], 0.1)

    def test_bad_tpot_rejected(self):
        with pytest.raises(ValueError):
            qoe_score([1.0], -0.1)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=50.0),
            min_size=1,
            max_size=40,
        ),
        st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_score_always_in_unit_interval(self, raw_times, tpot):
        score = qoe_score(sorted(raw_times), tpot)
        assert 0.0 <= score <= 1.0

    @given(st.floats(min_value=0.5, max_value=30.0))
    @settings(max_examples=50, deadline=None)
    def test_longer_stall_never_improves_qoe(self, stall):
        base = [1.0 + 0.1 * k for k in range(10)]
        tail = [base[-1] + stall + 0.1 * k for k in range(10)]
        longer_tail = [base[-1] + stall + 5 + 0.1 * k for k in range(10)]
        assert qoe_score(base + longer_tail, 0.1) <= qoe_score(
            base + tail, 0.1
        ) + 1e-9
