"""Negative-path invariant tests: corrupted counters must be *caught*.

The property suite (``test_invariants.py``) proves correct runs keep the
O(1) running counters consistent with the authoritative registries.
This file proves the converse: ``check_invariants()`` actually detects
each class of drift it claims to — every counter/registry pair, both
capacity ceilings, and the per-instance pending-KV ledger — with the
specific message an operator would need to localize the bug.  Without
these, a silently-vacuous checker would pass every property test.
"""

from __future__ import annotations

import pytest

from repro.memory.blocks import KVPool
from repro.schedulers.fcfs import FCFSScheduler
from repro.workload.request import Request
from tests.conftest import build_instance


def make_pool(**kw) -> KVPool:
    defaults = dict(
        gpu_capacity_tokens=256, cpu_capacity_tokens=256, block_size=16
    )
    defaults.update(kw)
    return KVPool(**defaults)


def make_request(rid=0, arrival=0.0):
    return Request(
        rid=rid, prompt_len=8, reasoning_len=4, answer_len=4,
        arrival_t=arrival,
    )


class TestKVPoolCorruption:
    def test_clean_pool_passes(self):
        pool = make_pool()
        pool.allocate(make_request(), 32)
        pool.check_invariants()

    def test_gpu_token_counter_drift(self):
        pool = make_pool()
        pool.allocate(make_request(), 32)
        pool._gpu_tokens += 1
        with pytest.raises(
            AssertionError,
            match=r"GPU token-counter drift: registry=32 counter=33",
        ):
            pool.check_invariants()

    def test_cpu_token_counter_drift(self):
        pool = make_pool()
        req = make_request()
        pool.allocate(req, 32)
        pool.swap_out(req)
        pool._cpu_tokens -= 2
        with pytest.raises(
            AssertionError,
            match=r"CPU token-counter drift: registry=32 counter=30",
        ):
            pool.check_invariants()

    def test_gpu_block_leak(self):
        pool = make_pool()
        pool.allocate(make_request(), 32)
        pool.gpu_used_blocks += 1
        with pytest.raises(
            AssertionError, match=r"GPU block leak: registry=2 counter=3"
        ):
            pool.check_invariants()

    def test_cpu_block_leak(self):
        pool = make_pool()
        req = make_request()
        pool.allocate(req, 32)
        pool.swap_out(req)
        pool.cpu_used_blocks -= 1
        with pytest.raises(
            AssertionError, match=r"CPU block leak: registry=2 counter=1"
        ):
            pool.check_invariants()

    def test_gpu_over_capacity(self):
        pool = make_pool(gpu_capacity_tokens=64)
        pool.allocate(make_request(), 64)
        # A consistent-but-impossible state: shrink the declared
        # capacity under a registry-backed allocation, so the counter
        # cross-checks pass and only the ceiling check can fire.
        pool.gpu_capacity_blocks = pool.gpu_used_blocks - 1
        with pytest.raises(AssertionError, match=r"GPU pool over capacity"):
            pool.check_invariants()

    def test_cpu_over_capacity(self):
        pool = make_pool(cpu_capacity_tokens=64)
        req = make_request()
        pool.allocate(req, 64)
        pool.swap_out(req)
        pool.cpu_capacity_blocks = pool.cpu_used_blocks - 1
        with pytest.raises(AssertionError, match=r"CPU pool over capacity"):
            pool.check_invariants()


class TestInstancePendingKVCorruption:
    def test_pending_kv_drift_names_the_instance(self):
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=256)
        inst.check_invariants()
        inst._pending_kv += 7
        with pytest.raises(
            AssertionError,
            match=r"instance 0 pending-KV drift: registry=0 counter=7",
        ):
            inst.check_invariants()

    def test_admitted_request_is_pending_until_prefilled(self):
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=256)
        req = make_request()
        inst.admit(req, 0.0)
        # Admitted but not yet allocated in the pool: counted as pending.
        inst.check_invariants()
        inst._pending_kv -= req.full_kv_tokens
        with pytest.raises(AssertionError, match=r"pending-KV drift"):
            inst.check_invariants()
