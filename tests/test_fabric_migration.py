"""Fabric bandwidth model and migration lifecycle tests."""

import pytest

from repro.cluster.fabric import Fabric
from repro.config import FabricConfig


class TestFabricConfig:
    def test_transfer_seconds(self):
        cfg = FabricConfig(link_bandwidth=12.5e9, base_latency_s=0.002)
        # 2048 tokens * 256 KiB = 512 MiB over 12.5 GB/s ~ 43 ms + base.
        n_bytes = 2048 * 262_144
        assert cfg.transfer_seconds(n_bytes) == pytest.approx(
            0.002 + n_bytes / 12.5e9
        )

    def test_paper_scale_transfer_is_tens_of_ms(self):
        # The paper cites ~40 ms for a 2048-token KV cache.
        cfg = FabricConfig()
        assert 0.02 < cfg.transfer_seconds(2048 * 262_144) < 0.08


class TestFabric:
    def test_idle_transfer_starts_immediately(self):
        fabric = Fabric(FabricConfig(), n_instances=4)
        start, end = fabric.reserve_transfer(0, 1, 1e9, now=5.0)
        assert start == 5.0
        assert end > start

    def test_same_nic_transfers_queue_fifo(self):
        fabric = Fabric(FabricConfig(), n_instances=4)
        _, end1 = fabric.reserve_transfer(0, 1, 1e9, now=0.0)
        start2, end2 = fabric.reserve_transfer(0, 2, 1e9, now=0.0)
        assert start2 == pytest.approx(end1)
        assert end2 > end1

    def test_disjoint_pairs_run_concurrently(self):
        fabric = Fabric(FabricConfig(), n_instances=4)
        _, end1 = fabric.reserve_transfer(0, 1, 1e9, now=0.0)
        start2, _ = fabric.reserve_transfer(2, 3, 1e9, now=0.0)
        assert start2 == 0.0

    def test_destination_contention(self):
        fabric = Fabric(FabricConfig(), n_instances=4)
        _, end1 = fabric.reserve_transfer(0, 2, 1e9, now=0.0)
        start2, _ = fabric.reserve_transfer(1, 2, 1e9, now=0.0)
        assert start2 == pytest.approx(end1)

    def test_stats(self):
        fabric = Fabric(FabricConfig(), n_instances=2)
        fabric.reserve_transfer(0, 1, 5e8, now=0.0)
        fabric.reserve_transfer(1, 0, 5e8, now=10.0)
        assert fabric.transfers == 2
        assert fabric.bytes_moved == 1e9

    def test_self_transfer_rejected(self):
        fabric = Fabric(FabricConfig(), n_instances=2)
        with pytest.raises(ValueError):
            fabric.reserve_transfer(1, 1, 1e6, now=0.0)

    def test_negative_bytes_rejected(self):
        fabric = Fabric(FabricConfig(), n_instances=2)
        with pytest.raises(ValueError):
            fabric.reserve_transfer(0, 1, -1.0, now=0.0)

    def test_needs_at_least_one_instance(self):
        with pytest.raises(ValueError):
            Fabric(FabricConfig(), n_instances=0)


class TestMigrationLifecycle:
    def build_cluster(self):
        from repro.cluster.cluster import Cluster
        from repro.config import ClusterConfig, InstanceConfig
        from repro.perfmodel.unit import UnitPerfModel

        config = ClusterConfig(
            n_instances=2,
            instance=InstanceConfig(kv_capacity_tokens=1600),
        )
        return Cluster(config, policy="pascal", perf=UnitPerfModel(0.01))

    def test_migration_moves_kv_between_pools(self):
        from repro.workload.request import Request

        cluster = self.build_cluster()
        src, dst = cluster.instances
        req = Request(rid=1, prompt_len=64, reasoning_len=2, answer_len=4)
        src.admit(req, 0.0)
        # Run a couple of steps so the request is allocated and decoding.
        for _ in range(40):
            if not cluster.engine.step():
                break
        assert req.finished
        assert src.pool.gpu_used_blocks == 0
        assert dst.pool.gpu_used_blocks == 0

    def test_transfer_latencies_recorded(self):
        from repro.workload.request import Request

        cluster = self.build_cluster()
        src = cluster.instances[0]
        # Load the destination choice: both empty, Algorithm 2 picks the
        # other instance (fewest reasoning requests, tie -> lowest id).
        req = Request(rid=1, prompt_len=64, reasoning_len=3, answer_len=3)
        src.admit(req, 0.0)
        cluster.engine.run()
        assert req.finished
        assert req.n_migrations in (0, 1)
        if req.n_migrations:
            lat = cluster.migrations.transfer_latencies()
            assert len(lat) == 1
            assert lat[0] > 0
            assert req.transfer_wait_s == pytest.approx(lat[0])

    def test_migration_manager_rejects_self_migration(self):
        cluster = self.build_cluster()
        from repro.workload.request import Request

        req = Request(rid=1, prompt_len=16, reasoning_len=2, answer_len=2)
        inst = cluster.instances[0]
        inst.admit(req, 0.0)
        with pytest.raises(ValueError):
            cluster.migrations.start(req, inst, inst, 0.0)
