"""The determinism & contract linter: rules, engine, baseline, CLI.

Covers the acceptance contract of the analysis package:

* every PAS001-PAS008 rule fires on its deliberately-bad fixture in
  ``tests/fixtures/lint/`` and stays silent on the good twin;
* PAS005 catches the stale-cache-hit bug class — a settings field that
  skips the canonical serialization is reported, both on a synthetic
  dataclass and end-to-end against the real serializer;
* inline suppressions, the baseline file (absorb + staleness), scoped
  allowances, and the three output formats behave as documented;
* the repository self-hosts: ``lint src tests`` is clean against the
  committed baseline.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.analysis import Baseline, BaselineEntry, lint_paths
from repro.analysis.baseline import BaselineError, baseline_from_diagnostics
from repro.analysis.cli import run_lint
from repro.analysis.contracts import cache_key_diagnostics
from repro.analysis.engine import (
    PARSE_ERROR_CODE,
    iter_python_files,
    load_context,
)
from repro.analysis.rules import RULES

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "fixtures" / "lint"

ALL_CODES = tuple(f"PAS00{i}" for i in range(1, 9))


def lint_fixture(*names: str, **kwargs):
    return lint_paths([FIXTURES / name for name in names], root=REPO, **kwargs)


def codes(report) -> set[str]:
    return {diag.code for diag in report.new}


# ---------------------------------------------------------------------------
# rule registry
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_all_rules_registered(self):
        assert set(RULES) == set(ALL_CODES)

    def test_every_rule_documents_itself(self):
        for code, rule in RULES.items():
            summary = rule.summary()
            assert summary.startswith(code), (code, summary)


# ---------------------------------------------------------------------------
# the fixture corpus: every rule fires on bad, stays silent on good
# ---------------------------------------------------------------------------
BAD_FIXTURES = {
    "PAS001": "pas001_bad.py",
    "PAS002": "pas002_bad.py",
    "PAS003": "sim/pas003_bad.py",
    "PAS004": "sim/pas004_bad.py",
    "PAS006": "pas006_bad.py",
    "PAS007": "pas007_bad.py",
    "PAS008": "pas008_bad.py",
}

GOOD_FIXTURES = {
    "PAS001": "pas001_good.py",
    "PAS002": "pas002_good.py",
    "PAS003": "sim/pas003_good.py",
    "PAS004": "sim/pas004_good.py",
    "PAS006": "pas006_good.py",
    "PAS007": "pas007_good.py",
    "PAS008": "pas008_good.py",
}


class TestFixtureCorpus:
    @pytest.mark.parametrize("code,name", sorted(BAD_FIXTURES.items()))
    def test_bad_fixture_triggers_rule(self, code, name):
        report = lint_fixture(name)
        assert code in codes(report), report.new

    @pytest.mark.parametrize("code,name", sorted(GOOD_FIXTURES.items()))
    def test_good_fixture_is_clean(self, code, name):
        report = lint_fixture(name)
        assert report.new == [], report.new

    def test_every_rule_covered_by_corpus(self):
        # PAS005 is project-level and exercised by its own tests below.
        assert set(BAD_FIXTURES) | {"PAS005"} == set(ALL_CODES)

    def test_pas001_flags_all_wall_clock_variants(self):
        report = lint_fixture("pas001_bad.py")
        messages = " ".join(d.message for d in report.new)
        assert "time.time()" in messages
        assert "datetime.datetime.now()" in messages
        assert "time.perf_counter()" in messages

    def test_pas001_allowed_in_bench_scope(self):
        report = lint_fixture("bench/pas001_allowed.py")
        assert report.new == []

    def test_pas003_needs_placement_scope(self, tmp_path):
        # The same set iteration outside sim/core/cluster/serving/
        # schedulers paths is not placement code: silent.
        source = FIXTURES / "sim" / "pas003_bad.py"
        copy = tmp_path / "pas003_elsewhere.py"
        copy.write_text(source.read_text())
        report = lint_paths([copy], root=tmp_path)
        assert "PAS003" not in codes(report)

    def test_diagnostics_carry_location_and_snippet(self):
        report = lint_fixture("pas007_bad.py")
        diag = report.new[0]
        assert diag.path == "tests/fixtures/lint/pas007_bad.py"
        assert diag.line > 0 and diag.col > 0
        assert "batch=[]" in diag.snippet


# ---------------------------------------------------------------------------
# PAS005: cache-key completeness
# ---------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class SyntheticSettings:
    """A settings fixture with a field the serializer 'forgets'."""

    n_requests: int = 10
    secret_knob: float = 1.0


class TestCacheKeyCompleteness:
    def _this_file_contexts(self):
        ctx = load_context(Path(__file__), root=REPO)
        return {ctx.relpath: ctx}

    def test_unserialized_field_is_reported(self):
        # The acceptance scenario: a synthetic field exists on the
        # dataclass but never reaches the canonical serialization.
        files = self._this_file_contexts()
        manifest = {"SyntheticSettings": frozenset({"n_requests"})}
        diags = list(
            cache_key_diagnostics(
                files, classes=[SyntheticSettings], manifest=manifest
            )
        )
        assert len(diags) == 1
        (diag,) = diags
        assert diag.code == "PAS005"
        assert "SyntheticSettings.secret_knob" in diag.message
        assert "secret_knob" in diag.snippet  # anchored at the field line

    def test_fully_serialized_class_is_clean(self):
        files = self._this_file_contexts()
        manifest = {
            "SyntheticSettings": frozenset({"n_requests", "secret_knob"})
        }
        diags = list(
            cache_key_diagnostics(
                files, classes=[SyntheticSettings], manifest=manifest
            )
        )
        assert diags == []

    def test_never_serialized_class_is_reported(self):
        files = self._this_file_contexts()
        diags = list(
            cache_key_diagnostics(
                files, classes=[SyntheticSettings], manifest={}
            )
        )
        assert len(diags) == 1
        assert "never reaches" in diags[0].message

    def test_class_outside_linted_set_is_skipped(self):
        # Nothing to anchor to: no crash, no diagnostic.
        diags = list(
            cache_key_diagnostics(
                {}, classes=[SyntheticSettings], manifest={}
            )
        )
        assert diags == []

    def test_end_to_end_catches_dropped_field(self, monkeypatch):
        # Sabotage the real serializer the way the PR-4 bug happened:
        # the `extensions` knob silently missing from the cell spec.
        from repro.harness import spec

        real = spec.settings_spec

        def dropping(settings):
            doc = real(settings)
            doc.pop("extensions", None)
            return doc

        monkeypatch.setattr(spec, "settings_spec", dropping)
        report = lint_paths(
            [REPO / "src" / "repro" / "harness" / "runner.py"], root=REPO
        )
        messages = [d.message for d in report.new if d.code == "PAS005"]
        assert any("EvalSettings.extensions" in m for m in messages)
        assert any("ReplaySettings.extensions" in m for m in messages)

    def test_real_manifest_covers_every_settings_field(self):
        from repro.harness import spec

        manifest = spec.canonical_field_manifest()
        from repro.config import ExtensionPolicyConfig, PoolSpec
        from repro.harness.runner import (
            CharacterizationSettings,
            EvalSettings,
            ReplaySettings,
        )

        for cls in (
            EvalSettings,
            ReplaySettings,
            CharacterizationSettings,
            ExtensionPolicyConfig,
            PoolSpec,
        ):
            declared = {f.name for f in dataclasses.fields(cls)}
            assert declared <= manifest[cls.__name__], cls.__name__


# ---------------------------------------------------------------------------
# inline suppressions
# ---------------------------------------------------------------------------
class TestSuppressions:
    def test_trailing_ignore_suppresses_own_line(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "import time\n"
            "t = time.time()  # lint-ignore: PAS001 (fixture)\n"
        )
        report = lint_paths([path], root=tmp_path)
        assert report.new == []

    def test_comment_line_suppresses_next_line(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "import time\n"
            "# lint-ignore: PAS001\n"
            "t = time.time()\n"
        )
        report = lint_paths([path], root=tmp_path)
        assert report.new == []

    def test_bare_ignore_suppresses_all_codes(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "import time, random\n"
            "t = time.time() + random.random()  # lint-ignore\n"
        )
        report = lint_paths([path], root=tmp_path)
        assert report.new == []

    def test_other_code_does_not_suppress(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "import time\n"
            "t = time.time()  # lint-ignore: PAS007\n"
        )
        report = lint_paths([path], root=tmp_path)
        assert codes(report) == {"PAS001"}


# ---------------------------------------------------------------------------
# engine: discovery, excludes, parse errors
# ---------------------------------------------------------------------------
class TestEngine:
    def test_fixture_corpus_excluded_from_directory_walk(self):
        files = iter_python_files([REPO / "tests"], root=REPO)
        assert all("fixtures/lint" not in f.as_posix() for f in files)

    def test_explicit_file_bypasses_excludes(self):
        target = FIXTURES / "pas001_bad.py"
        files = iter_python_files([target], root=REPO)
        assert [f.resolve() for f in files] == [target.resolve()]

    def test_explicitly_named_excluded_dir_is_linted(self):
        files = iter_python_files([FIXTURES], root=REPO)
        assert files, "explicit dir must override its own exclusion"

    def test_walk_is_sorted_and_deduplicated(self):
        twice = iter_python_files(
            [REPO / "src" / "repro" / "analysis",
             REPO / "src" / "repro" / "analysis"],
            root=REPO,
        )
        resolved = [f.resolve() for f in twice]
        assert resolved == sorted(set(resolved))

    def test_syntax_error_becomes_pas000(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        report = lint_paths([path], root=tmp_path)
        assert [d.code for d in report.new] == [PARSE_ERROR_CODE]

    def test_report_is_sorted_by_location(self):
        report = lint_fixture(*sorted(set(BAD_FIXTURES.values())))
        assert report.new == sorted(report.new)


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------
class TestBaseline:
    def test_baseline_absorbs_matching_findings(self):
        baseline = Baseline(
            [
                BaselineEntry(
                    file="tests/fixtures/lint/pas007_bad.py",
                    code="PAS007",
                    justification="fixture",
                )
            ]
        )
        report = lint_fixture("pas007_bad.py", baseline=baseline)
        assert report.new == []
        assert len(report.baselined) == 3
        assert report.stale == []

    def test_snippet_match_narrows_entries(self):
        baseline = Baseline(
            [
                BaselineEntry(
                    file="tests/fixtures/lint/pas007_bad.py",
                    code="PAS007",
                    match="batch=[]",
                )
            ]
        )
        report = lint_fixture("pas007_bad.py", baseline=baseline)
        assert len(report.baselined) == 1
        assert len(report.new) == 2

    def test_unmatched_entry_is_stale(self):
        baseline = Baseline(
            [BaselineEntry(file="no/such/file.py", code="PAS001")]
        )
        report = lint_fixture("pas007_bad.py", baseline=baseline)
        assert len(report.stale) == 1
        assert len(report.new) == 3

    def test_roundtrip_through_disk(self, tmp_path):
        report = lint_fixture("pas007_bad.py")
        target = tmp_path / "bl.json"
        baseline_from_diagnostics(report.new).save(target)
        reloaded = Baseline.load(target)
        again = lint_fixture("pas007_bad.py", baseline=reloaded)
        assert again.new == []
        assert len(again.baselined) == 3

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "bl.json"
        bad.write_text("{}")
        with pytest.raises(BaselineError):
            Baseline.load(bad)
        bad.write_text("not json")
        with pytest.raises(BaselineError):
            Baseline.load(bad)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestCli:
    @pytest.fixture(autouse=True)
    def _in_repo(self, monkeypatch):
        monkeypatch.chdir(REPO)

    def test_findings_exit_1(self, capsys):
        status = run_lint(["tests/fixtures/lint/pas001_bad.py"])
        assert status == 1
        out = capsys.readouterr().out
        assert "PAS001" in out

    def test_clean_exit_0(self, capsys):
        status = run_lint(["tests/fixtures/lint/pas001_good.py"])
        assert status == 0

    def test_json_format_is_machine_readable(self, capsys):
        status = run_lint(
            ["--format", "json", "tests/fixtures/lint/pas001_bad.py"]
        )
        assert status == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["format"] == "pascal-lint"
        assert doc["version"] == 1
        assert {d["code"] for d in doc["diagnostics"]} == {"PAS001"}

    def test_github_format_emits_annotations(self, capsys):
        status = run_lint(
            ["--format", "github", "tests/fixtures/lint/pas001_bad.py"]
        )
        assert status == 1
        out = capsys.readouterr().out
        assert "::error file=tests/fixtures/lint/pas001_bad.py" in out
        assert "title=PAS001" in out

    def test_missing_path_exit_2(self, capsys):
        assert run_lint(["no/such/path"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_missing_baseline_exit_2(self, capsys):
        status = run_lint(
            ["--baseline", "no_such_baseline.json",
             "tests/fixtures/lint/pas001_bad.py"]
        )
        assert status == 2

    def test_update_baseline_then_clean(self, tmp_path, capsys):
        target = tmp_path / "bl.json"
        status = run_lint(
            ["--update-baseline", "--baseline", str(target),
             "tests/fixtures/lint/pas001_bad.py"]
        )
        assert status == 0
        doc = json.loads(target.read_text())
        assert doc["format"] == "pascal-lint-baseline"
        assert all(
            e["justification"].startswith("TODO") for e in doc["entries"]
        )
        status = run_lint(
            ["--baseline", str(target),
             "tests/fixtures/lint/pas001_bad.py"]
        )
        assert status == 0

    def test_harness_dispatch(self, capsys):
        from repro.harness.__main__ import main

        assert main(["lint", "tests/fixtures/lint/pas001_bad.py"]) == 1
        assert main(["lint", "tests/fixtures/lint/pas001_good.py"]) == 0


# ---------------------------------------------------------------------------
# self-hosting
# ---------------------------------------------------------------------------
class TestSelfHost:
    def test_src_and_tests_are_clean_against_baseline(self):
        baseline = Baseline.load(REPO / "lint_baseline.json")
        report = lint_paths(
            [REPO / "src", REPO / "tests"], baseline=baseline, root=REPO
        )
        assert report.new == [], [d.text() for d in report.new]
        assert report.stale == [], "baseline entries must stay live"
        assert len(report.baselined) == 1  # the Event.__lt__ tie check
