"""On-disk result store: correctness before reuse.

The satellite checklist of ISSUE 3, pinned as tests:

* a disk hit is byte-identical to a fresh run;
* a corrupt / truncated / version-mismatched entry is recomputed — never
  a crash, never stale data;
* a simulator-code fingerprint change invalidates every entry;
* ``ro`` mode never writes;
* a parallel sweep sharing one disk cache equals a serial run.
"""

from __future__ import annotations

import gzip
import json

import pytest

from repro.harness import cache
from repro.harness.runner import (
    CharacterizationSettings,
    CharCell,
    ReplayCell,
    ReplaySettings,
    clear_caches,
    reset_simulation_count,
    restore_caches,
    run_characterization,
    run_replay,
    simulation_count,
    snapshot_caches,
    sweep,
)
from repro.harness.spec import cell_key, cell_spec
from repro.workload.datasets import ALPACA_EVAL
from repro.workload.trace import ReplayTraceConfig, TraceConfig, build_trace, export_trace

SMALL_CHAR = CharacterizationSettings(
    n_requests=12, reasoning_rate_per_s=0.5, answering_rate_per_s=0.5
)
SMALL_REPLAY = ReplaySettings(n_instances=2, kv_capacity_tokens=8000)


@pytest.fixture(autouse=True)
def isolated(monkeypatch):
    """Fresh memoization, no ambient cache dir, cache off afterwards.

    The suite-wide memoization is snapshotted and restored so these
    isolation clears don't force later tests (golden tables) to
    resimulate figures the benchmarks already produced.
    """
    monkeypatch.delenv("PASCAL_CACHE_DIR", raising=False)
    saved = snapshot_caches()
    clear_caches()
    reset_simulation_count()
    yield
    cache.configure("off")
    restore_caches(saved)
    reset_simulation_count()


@pytest.fixture
def store(tmp_path):
    return cache.configure("rw", tmp_path / "store")


@pytest.fixture
def small_trace(tmp_path):
    path = tmp_path / "trace.jsonl"
    export_trace(
        build_trace(
            TraceConfig(
                dataset=ALPACA_EVAL, n_requests=12, arrival_rate_per_s=3.0, seed=9
            )
        ),
        path,
    )
    return ReplayTraceConfig(path=str(path))


def char_payload(run) -> str:
    return cache.canonical_json(cache.char_run_to_payload(run))


def metrics_payload(metrics) -> str:
    return cache.canonical_json(cache.metrics_to_payload(metrics))


def entry_files(store):
    return sorted(store.root.glob("??/*.json.gz"))


class TestCellKeys:
    def test_key_is_stable(self):
        cell = CharCell("reasoning", "fcfs", SMALL_CHAR)
        assert cell_key(cell) == cell_key(cell)

    def test_key_distinguishes_policy_and_settings(self):
        base = CharCell("reasoning", "fcfs", SMALL_CHAR)
        other_policy = CharCell("reasoning", "rr", SMALL_CHAR)
        other_settings = CharCell(
            "reasoning",
            "fcfs",
            CharacterizationSettings(
                n_requests=13, reasoning_rate_per_s=0.5, answering_rate_per_s=0.5
            ),
        )
        keys = {cell_key(base), cell_key(other_policy), cell_key(other_settings)}
        assert len(keys) == 3

    def test_replay_key_addresses_content_not_path(self, small_trace, tmp_path):
        copy = tmp_path / "renamed.jsonl"
        copy.write_bytes((tmp_path / "trace.jsonl").read_bytes())
        original = ReplayCell(small_trace, "fcfs", SMALL_REPLAY)
        renamed = ReplayCell(
            ReplayTraceConfig(path=str(copy)), "fcfs", SMALL_REPLAY
        )
        assert cell_key(original) == cell_key(renamed)

    def test_replay_key_tracks_content_change(self, small_trace, tmp_path):
        before = cell_key(ReplayCell(small_trace, "fcfs", SMALL_REPLAY))
        path = tmp_path / "trace.jsonl"
        export_trace(
            build_trace(
                TraceConfig(
                    dataset=ALPACA_EVAL,
                    n_requests=12,
                    arrival_rate_per_s=3.0,
                    seed=10,
                )
            ),
            path,
        )
        after = cell_key(ReplayCell(small_trace, "fcfs", SMALL_REPLAY))
        assert before != after

    def test_inplace_same_size_rewrite_recomputes(self, small_trace, tmp_path):
        """Regression: the replay memo must key on *content*, not stat.

        An in-place rewrite that preserves the byte count and lands within
        the filesystem's mtime granularity (simulated exactly here by
        restoring mtime_ns) used to satisfy the old (mtime_ns, size)
        identity and serve the previous trace's metrics.
        """
        import os

        path = tmp_path / "trace.jsonl"
        first = run_replay(small_trace, "fcfs", SMALL_REPLAY)
        assert simulation_count() == 1
        stat = path.stat()
        lines = path.read_text().splitlines(keepends=True)
        record = json.loads(lines[1])
        old = record["reasoning_len"]
        delta = 100 if old >= 200 else 1
        new = old + delta if len(str(old + delta)) == len(str(old)) else old - delta
        lines[1] = lines[1].replace(
            f'"reasoning_len": {old}', f'"reasoning_len": {new}', 1
        )
        path.write_text("".join(lines))
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        assert path.stat().st_size == stat.st_size
        assert path.stat().st_mtime_ns == stat.st_mtime_ns
        second = run_replay(small_trace, "fcfs", SMALL_REPLAY)
        assert simulation_count() == 2  # recomputed, not served stale
        assert metrics_payload(first) != metrics_payload(second)

    def test_file_sha256_sees_same_size_rewrite_with_restored_mtime(
        self, tmp_path
    ):
        """The memoized hasher itself must not trust a coarse identity."""
        import os

        path = tmp_path / "blob.bin"
        path.write_bytes(b"a" * 512)
        stat = path.stat()
        before = cache.file_sha256(path)
        path.write_bytes(b"b" * 512)
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        assert cache.file_sha256(path) != before

    def test_fingerprint_mixed_into_key(self, monkeypatch):
        cell = CharCell("reasoning", "fcfs", SMALL_CHAR)
        before = cell_key(cell)
        monkeypatch.setattr(cache, "_fingerprint", "f" * 16)
        assert cell_key(cell) != before

    def test_non_cells_rejected(self):
        with pytest.raises(TypeError):
            cell_spec("fig12")


class TestDiskHits:
    def test_char_hit_byte_identical_and_runs_nothing(self, store):
        fresh = run_characterization("reasoning", "fcfs", SMALL_CHAR)
        assert simulation_count() > 0
        clear_caches()
        reset_simulation_count()
        hit = run_characterization("reasoning", "fcfs", SMALL_CHAR)
        assert simulation_count() == 0
        assert char_payload(hit) == char_payload(fresh)
        assert store.stats.hits >= 1

    def test_char_hit_seeds_oracle_peak(self, store):
        run_characterization("reasoning", "fcfs", SMALL_CHAR)
        clear_caches()
        # A disk hit must re-derive the oracle peak so a follow-up oracle
        # query is answered consistently (uncapped, same peak).
        hit = run_characterization("reasoning", "fcfs", SMALL_CHAR)
        oracle = run_characterization("reasoning", "oracle", SMALL_CHAR)
        assert oracle.oracle_peak_tokens == hit.oracle_peak_tokens
        assert oracle.capacity_tokens > hit.capacity_tokens

    def test_replay_hit_byte_identical(self, store, small_trace):
        fresh = run_replay(small_trace, "fcfs", SMALL_REPLAY)
        clear_caches()
        reset_simulation_count()
        hit = run_replay(small_trace, "fcfs", SMALL_REPLAY)
        assert simulation_count() == 0
        assert metrics_payload(hit) == metrics_payload(fresh)

    def test_mid_run_rewrite_cannot_poison_the_new_content(
        self, store, small_trace, tmp_path, monkeypatch
    ):
        # If the trace file is rewritten while the simulation runs, the
        # result must be filed under the address snapshotted before the
        # run — never under the new content's address, which would serve
        # the old trace's metrics to every future reader of the new file.
        import repro.harness.runner as runner_mod

        other = build_trace(
            TraceConfig(
                dataset=ALPACA_EVAL, n_requests=12, arrival_rate_per_s=3.0, seed=77
            )
        )
        real_source = runner_mod.TraceFileSource

        class RewritingSource(real_source):
            # The replay streams its records incrementally; rewrite the
            # file the moment the stream ends, while the simulation of
            # the old content is still in flight.
            def __iter__(self):
                yield from super().__iter__()
                export_trace(other, self.config.path)

        monkeypatch.setattr(runner_mod, "TraceFileSource", RewritingSource)
        run_replay(small_trace, "fcfs", SMALL_REPLAY)
        monkeypatch.setattr(runner_mod, "TraceFileSource", real_source)

        new_key = cell_key(ReplayCell(small_trace, "fcfs", SMALL_REPLAY))
        assert store.load(new_key, "replay") is None

    def test_rewritten_trace_not_served_stale(self, store, small_trace, tmp_path):
        run_replay(small_trace, "fcfs", SMALL_REPLAY)
        path = tmp_path / "trace.jsonl"
        export_trace(
            build_trace(
                TraceConfig(
                    dataset=ALPACA_EVAL,
                    n_requests=12,
                    arrival_rate_per_s=3.0,
                    seed=77,
                )
            ),
            path,
        )
        clear_caches()
        reset_simulation_count()
        run_replay(small_trace, "fcfs", SMALL_REPLAY)
        assert simulation_count() > 0  # recomputed, not stale


class TestEntryValidation:
    def corrupt(self, store, data: bytes):
        (path,) = entry_files(store)
        path.write_bytes(data)

    def test_garbage_entry_recomputed(self, store):
        fresh = run_characterization("reasoning", "oracle", SMALL_CHAR)
        self.corrupt(store, b"not gzip at all")
        clear_caches()
        reset_simulation_count()
        again = run_characterization("reasoning", "oracle", SMALL_CHAR)
        assert simulation_count() > 0
        assert char_payload(again) == char_payload(fresh)
        assert store.stats.invalid >= 1

    def test_truncated_entry_recomputed(self, store):
        run_characterization("reasoning", "oracle", SMALL_CHAR)
        (path,) = entry_files(store)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        clear_caches()
        reset_simulation_count()
        run_characterization("reasoning", "oracle", SMALL_CHAR)
        assert simulation_count() > 0
        assert store.stats.invalid >= 1

    def test_version_mismatch_recomputed(self, store):
        run_characterization("reasoning", "oracle", SMALL_CHAR)
        (path,) = entry_files(store)
        with gzip.open(path, "rt", encoding="utf-8") as fh:
            entry = json.load(fh)
        entry["version"] = cache.CACHE_VERSION + 1
        with gzip.open(path, "wt", encoding="utf-8") as fh:
            json.dump(entry, fh)
        clear_caches()
        reset_simulation_count()
        run_characterization("reasoning", "oracle", SMALL_CHAR)
        assert simulation_count() > 0
        assert store.stats.invalid >= 1

    def test_tampered_payload_recomputed(self, store):
        run_characterization("reasoning", "oracle", SMALL_CHAR)
        (path,) = entry_files(store)
        with gzip.open(path, "rt", encoding="utf-8") as fh:
            entry = json.load(fh)
        entry["payload"] = {"wrong": "shape"}
        with gzip.open(path, "wt", encoding="utf-8") as fh:
            json.dump(entry, fh)
        clear_caches()
        reset_simulation_count()
        run_characterization("reasoning", "oracle", SMALL_CHAR)
        assert simulation_count() > 0

    def test_fingerprint_change_invalidates(self, store, monkeypatch):
        run_characterization("reasoning", "oracle", SMALL_CHAR)
        clear_caches()
        reset_simulation_count()
        monkeypatch.setattr(cache, "_fingerprint", "f" * 16)
        run_characterization("reasoning", "oracle", SMALL_CHAR)
        assert simulation_count() > 0  # old entry unreachable under new code


class TestReadOnlyMode:
    def test_ro_never_writes(self, tmp_path):
        store = cache.configure("ro", tmp_path / "store")
        run_characterization("reasoning", "oracle", SMALL_CHAR)
        assert entry_files(store) == []
        assert store.stats.writes == 0

    def test_ro_reads_a_seeded_store(self, tmp_path):
        cache.configure("rw", tmp_path / "store")
        fresh = run_characterization("reasoning", "oracle", SMALL_CHAR)
        clear_caches()
        reset_simulation_count()
        cache.configure("ro", tmp_path / "store")
        hit = run_characterization("reasoning", "oracle", SMALL_CHAR)
        assert simulation_count() == 0
        assert char_payload(hit) == char_payload(fresh)

    def test_bad_modes_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            cache.configure("sideways", tmp_path)
        with pytest.raises(ValueError):
            cache.DiskCache("off", tmp_path)


class TestWriteFailures:
    def test_unwritable_dir_loses_the_entry_not_the_run(self, tmp_path):
        # A failed write must never crash a completed simulation.
        blocked = tmp_path / "not-a-dir"
        blocked.write_text("a file where the cache dir should be")
        store = cache.configure("rw", blocked)
        run = run_characterization("reasoning", "oracle", SMALL_CHAR)
        assert run.oracle_peak_tokens > 0  # result survived
        assert store.stats.writes == 0
        assert store.stats.write_errors > 0


class TestMaintenance:
    def test_ls_prune_clear(self, store, monkeypatch):
        run_characterization("reasoning", "fcfs", SMALL_CHAR)
        entries = store.entries()
        assert {e.kind for e in entries} == {"char"}
        assert all(e.fingerprint == cache.code_fingerprint() for e in entries)

        # Same-fingerprint, young entries survive a prune...
        assert store.prune(max_age_days=1.0) == 0
        # ... stale-fingerprint entries do not.
        monkeypatch.setattr(cache, "_fingerprint", "f" * 16)
        assert store.prune() == len(entries)
        assert entry_files(store) == []

    def test_clear_removes_everything(self, store):
        run_characterization("reasoning", "fcfs", SMALL_CHAR)
        n = len(entry_files(store))
        assert n > 0
        assert store.clear() == n
        assert entry_files(store) == []

    def test_corrupt_entries_listed_and_pruned(self, store):
        run_characterization("reasoning", "oracle", SMALL_CHAR)
        (path,) = entry_files(store)
        path.write_bytes(b"junk")
        (info,) = store.entries()
        assert info.kind == "corrupt"
        assert store.prune() == 1

    def test_valid_json_non_object_entry_listed_as_corrupt(self, store):
        # Valid gzip, valid JSON, wrong shape: ls/prune must survive it.
        run_characterization("reasoning", "oracle", SMALL_CHAR)
        (path,) = entry_files(store)
        with gzip.open(path, "wt", encoding="utf-8") as fh:
            fh.write('"tampered"')
        (info,) = store.entries()
        assert info.kind == "corrupt"
        assert store.prune() == 1
        assert entry_files(store) == []


class TestSweepParity:
    def cells(self):
        return [
            CharCell("reasoning", policy, SMALL_CHAR)
            for policy in ("oracle", "fcfs", "rr")
        ]

    def test_parallel_sweep_with_shared_disk_cache_equals_serial(self, tmp_path):
        serial = {
            cell: char_payload(result)
            for cell, result in sweep(self.cells(), jobs=1).items()
        }
        clear_caches()
        cache.configure("rw", tmp_path / "store")
        parallel = {
            cell: char_payload(result)
            for cell, result in sweep(self.cells(), jobs=2).items()
        }
        assert parallel == serial

        # Second parallel sweep: everything served from disk, zero sims.
        clear_caches()
        reset_simulation_count()
        cached = {
            cell: char_payload(result)
            for cell, result in sweep(self.cells(), jobs=2).items()
        }
        assert cached == serial
        assert simulation_count() == 0


class TestSizePrune:
    """``cache prune --max-bytes``: least-recently-used size eviction.

    Recency is the entry mtime, bumped by every ``load`` hit — *not*
    atime, which on ``noatime``/``relatime`` mounts never advances on
    reads and silently degrades eviction to creation order.
    """

    def seed_entries(self, store, n=4):
        import os

        keys = []
        for i in range(n):
            key = f"{i:02d}" + "a" * 38
            assert store.store(
                key, "eval", {"kind": "eval", "i": i}, {"payload": "x" * 400}
            )
            keys.append(key)
        # Distinct, increasing last-use times: key 00 least recently used.
        for i, key in enumerate(keys):
            path = store.entry_path(key)
            os.utime(path, (1_000_000 + i * 1000, 1_000_000 + i * 1000))
        return keys

    def test_prunes_least_recently_used_first_down_to_budget(self, store):
        keys = self.seed_entries(store)
        sizes = {k: store.entry_path(k).stat().st_size for k in keys}
        total = sum(sizes.values())
        # Budget for exactly the three most recently used entries.
        budget = total - sizes[keys[0]]
        removed = store.prune(max_bytes=budget)
        assert removed == 1
        assert not store.entry_path(keys[0]).exists()
        assert all(store.entry_path(k).exists() for k in keys[1:])
        remaining = sum(p.stat().st_size for p in entry_files(store))
        assert remaining <= budget

    def test_read_hot_entry_survives_eviction_on_noatime_mounts(self, store):
        """Regression: a read keeps an entry alive even where atime lies.

        Key 00 is the oldest *written* entry but the only one ever read.
        Its atime is then forced back to the epoch — exactly what a
        ``noatime`` mount reports — so the old atime-ordered eviction
        would have picked the one hot entry as its victim.  Last-use is
        now recorded in the store itself (mtime bump on load), which no
        mount option suppresses.
        """
        import os

        keys = self.seed_entries(store)
        assert store.load(keys[0], "eval") is not None  # bumps mtime
        hot = store.entry_path(keys[0])
        os.utime(hot, ns=(0, hot.stat().st_mtime_ns))  # atime frozen at 0
        sizes = {k: store.entry_path(k).stat().st_size for k in keys}
        budget = sum(sizes.values()) - sizes[keys[1]]
        removed = store.prune(max_bytes=budget)
        assert removed == 1
        assert store.entry_path(keys[0]).exists()
        assert not store.entry_path(keys[1]).exists()

    def test_zero_budget_empties_the_store(self, store):
        self.seed_entries(store)
        assert store.prune(max_bytes=0) == 4
        assert entry_files(store) == []

    def test_budget_above_total_removes_nothing(self, store):
        keys = self.seed_entries(store)
        total = sum(store.entry_path(k).stat().st_size for k in keys)
        assert store.prune(max_bytes=total) == 0
        assert len(entry_files(store)) == 4

    def test_never_deletes_non_cache_files(self, store):
        keys = self.seed_entries(store)
        # Foreign files in the store root and inside a shard directory.
        stray_root = store.root / "NOTES.txt"
        stray_root.write_text("hands off")
        shard = store.entry_path(keys[0]).parent
        stray_shard = shard / "README"
        stray_shard.write_text("also not an entry")
        assert store.prune(max_bytes=0) == len(keys)
        assert stray_root.read_text() == "hands off"
        assert stray_shard.read_text() == "also not an entry"
        # The shard holding a stray file survives _drop_empty_shards.
        assert shard.is_dir()

    def test_negative_budget_rejected_before_any_deletion(self, store, monkeypatch):
        self.seed_entries(store)
        # Even with every entry stale (prunable), a rejected call must
        # leave the store untouched — validation precedes the first unlink.
        monkeypatch.setattr(cache, "_fingerprint", "f" * 16)
        with pytest.raises(ValueError, match="max_bytes"):
            store.prune(max_bytes=-1)
        assert len(entry_files(store)) == 4

    def test_stale_entries_removed_before_size_accounting(self, store, monkeypatch):
        self.seed_entries(store)
        total = sum(p.stat().st_size for p in entry_files(store))
        monkeypatch.setattr(cache, "_fingerprint", "f" * 16)
        # All four are stale; the budget would have kept them all.
        assert store.prune(max_bytes=total) == 4
        assert entry_files(store) == []
