"""The per-bucket EWMA predictor (`ExtensionPolicyConfig.predictor`)."""

from __future__ import annotations

import random

import pytest

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, ExtensionPolicyConfig, InstanceConfig
from repro.core.extensions import (
    BucketedEWMAPredictor,
    PREDICTORS,
    ReasoningLengthPredictor,
    make_predictor,
)
from repro.workload.datasets import GPQA, MATH_500
from repro.workload.request import Request


def observe_stream(predictor, spec, n=1500, seed=1):
    rng = random.Random(seed)
    for i in range(n):
        length = spec.reasoning.sample(rng)
        req = Request(
            rid=i, prompt_len=10, reasoning_len=length, answer_len=5,
            dataset=spec.name,
        )
        predictor.observe(req, length)


class TestFactory:
    def test_default_is_flat_ewma(self):
        predictor = make_predictor(ExtensionPolicyConfig())
        assert type(predictor) is ReasoningLengthPredictor

    def test_bucketed_selects_subclass_with_knobs(self):
        knobs = ExtensionPolicyConfig(
            predictor="bucketed-ewma",
            predictor_alpha=0.5,
            predictor_prior_tokens=123,
        )
        predictor = make_predictor(knobs)
        assert isinstance(predictor, BucketedEWMAPredictor)
        assert predictor.alpha == 0.5
        assert predictor.prior_tokens == 123
        assert predictor.hist_alpha == pytest.approx(0.05)

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ValueError, match="bucketed-ewma, ewma, pairwise-ltr"):
            make_predictor(ExtensionPolicyConfig(predictor="quantile"))

    def test_registry_names(self):
        assert sorted(PREDICTORS) == ["bucketed-ewma", "ewma", "pairwise-ltr"]


class TestBucketedEstimator:
    def test_unseen_dataset_falls_back_like_flat_ewma(self):
        predictor = BucketedEWMAPredictor(prior_tokens=700)
        req = Request(rid=0, prompt_len=5, reasoning_len=5, answer_len=5,
                      dataset="new")
        assert predictor.predict_total(req) == 700.0

    def test_cross_dataset_fallback_uses_global_mean(self):
        predictor = BucketedEWMAPredictor()
        seen = Request(rid=0, prompt_len=5, reasoning_len=100, answer_len=5,
                       dataset="a")
        predictor.observe(seen, 100)
        other = Request(rid=1, prompt_len=5, reasoning_len=5, answer_len=5,
                        dataset="b")
        # Dataset "b" has no buckets: global EWMA (one observation) wins.
        assert predictor.predict_total(other) == 100.0

    def test_tracks_median_not_mean_on_skewed_stream(self):
        """Nine short requests and one huge one: the flat EWMA is dragged
        toward the tail, the bucketed estimator stays at the body."""
        flat = ReasoningLengthPredictor()
        bucketed = BucketedEWMAPredictor()
        values = [100] * 9 + [10000]
        for i, value in enumerate(values):
            req = Request(rid=i, prompt_len=5, reasoning_len=value,
                          answer_len=5, dataset="d")
            flat.observe(req, value)
            bucketed.observe(req, value)
        probe = Request(rid=99, prompt_len=5, reasoning_len=5, answer_len=5,
                        dataset="d")
        assert flat.predict_total(probe) > 2000  # tail-dragged
        assert bucketed.predict_total(probe) == pytest.approx(100.0)

    @pytest.mark.parametrize("spec", [GPQA, MATH_500], ids=lambda s: s.name)
    def test_beats_flat_ewma_on_lognormal_abs_error(self, spec):
        """The satellite's target: lower mean |predicted - actual| than the
        flat EWMA on the paper's lognormal length models."""
        flat = ReasoningLengthPredictor()
        bucketed = BucketedEWMAPredictor()
        observe_stream(flat, spec)
        observe_stream(bucketed, spec)
        flat_errors = flat.abs_errors[spec.name]
        bucketed_errors = bucketed.abs_errors[spec.name]
        flat_mean = sum(flat_errors) / len(flat_errors)
        bucketed_mean = sum(bucketed_errors) / len(bucketed_errors)
        assert bucketed_mean < flat_mean

    def test_prequential_scoring_uses_bucketed_estimate(self):
        """The error ledger must score *this* estimator, not the base's."""
        predictor = BucketedEWMAPredictor(prior_tokens=600)
        first = Request(rid=0, prompt_len=5, reasoning_len=50, answer_len=5,
                        dataset="d")
        predictor.observe(first, 50)   # scored against the prior (600)
        second = Request(rid=1, prompt_len=5, reasoning_len=60, answer_len=5,
                         dataset="d")
        predictor.observe(second, 60)  # scored against bucket value (50)
        assert predictor.abs_errors["d"] == [550.0, 10.0]


class TestEndToEnd:
    def run(self, predictor_name):
        config = ClusterConfig(
            n_instances=2,
            instance=InstanceConfig(kv_capacity_tokens=40000),
            extensions=ExtensionPolicyConfig(predictor=predictor_name),
        )
        cluster = Cluster(config, policy="length-predictive")
        rng = random.Random(7)
        t, requests = 0.0, []
        for rid in range(30):
            t += rng.expovariate(2.0)
            requests.append(GPQA.sample_request(rid, t, rng))
        cluster.run_trace(requests)
        return cluster

    def test_length_predictive_runs_with_bucketed_predictor(self):
        cluster = self.run("bucketed-ewma")
        assert isinstance(cluster.policy.predictor, BucketedEWMAPredictor)
        assert len(cluster.completed) == 30
        errors = cluster.policy.predictor_errors()
        assert GPQA.name in errors and errors[GPQA.name]

    def test_bad_predictor_name_surfaces_at_bind(self):
        config = ClusterConfig(
            extensions=ExtensionPolicyConfig(predictor="nope")
        )
        with pytest.raises(ValueError, match="unknown predictor"):
            Cluster(config, policy="length-predictive")

    def test_tiered_express_honours_predictor_knob(self):
        config = ClusterConfig(
            n_instances=4,
            instance=InstanceConfig(kv_capacity_tokens=40000),
            extensions=ExtensionPolicyConfig(predictor="bucketed-ewma"),
        )
        cluster = Cluster(config, policy="tiered-express")
        assert isinstance(cluster.policy.predictor, BucketedEWMAPredictor)


def req(dataset: str, rid: int = 0) -> Request:
    return Request(
        rid=rid, prompt_len=10, reasoning_len=10, answer_len=5,
        dataset=dataset,
    )


class TestColdStartDegenerateHistogram:
    """Regression: observations present but every bucket weight ~zero.

    With an adversarially tiny ``alpha``, ``hist_alpha = alpha / 10``
    underflows to exactly 0.0, so every observation leaves its bucket
    weight at zero.  The old weighted-median walk then compared a zero
    cumulative against a zero half-mass and returned the *lowest*
    bucket's stale value — a degenerate estimate bearing no relation to
    the observed stream.  The fix detects the zero-mass histogram and
    falls back to the flat-EWMA chain, which is well defined whenever
    the dataset has observations at all.
    """

    def test_zero_mass_histogram_falls_back_to_flat_ewma(self):
        predictor = BucketedEWMAPredictor(alpha=5e-324)
        assert predictor.hist_alpha == 0.0  # the underflow premise
        # A large observation first, then a tiny one: the old code
        # returned the tiny one (lowest bucket wins a zero-mass walk).
        predictor.observe(req("cold", rid=0), 6000)
        predictor.observe(req("cold", rid=1), 10)
        estimate = predictor.predict_total(req("cold", rid=2))
        flat = ReasoningLengthPredictor(alpha=5e-324)
        flat.observe(req("cold", rid=0), 6000)
        flat.observe(req("cold", rid=1), 10)
        assert estimate == pytest.approx(flat.predict_total(req("cold")))
        assert estimate > 1000  # nowhere near the degenerate 10

    def test_unseen_dataset_still_uses_fallback_chain(self):
        # The guard must not shadow the existing no-observations path.
        predictor = BucketedEWMAPredictor(alpha=5e-324, prior_tokens=700)
        assert predictor.predict_total(req("never-seen")) == 700.0

    def test_healthy_alpha_unaffected_by_the_guard(self):
        predictor = BucketedEWMAPredictor(alpha=0.25)
        for i, value in enumerate((100, 110, 90, 105, 95)):
            predictor.observe(req("warm", rid=i), value)
        estimate = predictor.predict_total(req("warm"))
        assert 80 <= estimate <= 120  # weighted median of the body
