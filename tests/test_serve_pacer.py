"""Wall-clock pacer and length oracles, driven by a fake clock.

The pacer's contract is that wall time decides *when* the engine is
cranked, never what the simulation computes — so every test here runs on
an injected fake clock and fake sleep: no test in this file ever sleeps
for real, and the simulated outcomes (arrival times, cancellation
timestamps) are asserted exactly.
"""

from __future__ import annotations

import pytest

from repro.api.session import RequestHandle, ServingSession
from repro.config import ClusterConfig, InstanceConfig, SchedulerConfig
from repro.perfmodel.unit import UnitPerfModel
from repro.serve.oracle import (
    HEADER_ANSWER,
    HEADER_DATASET,
    HEADER_PROMPT,
    HEADER_REASONING,
    HeaderOracle,
    OracleChain,
    OracleError,
    SampledOracle,
    TraceOracle,
    default_oracle,
    estimate_prompt_tokens,
)
from repro.serve.pacer import WallClockPacer, fast_forward_drain
from repro.workload.request import Request
from repro.workload.trace import dump_trace


class FakeClock:
    """A monotonic clock the test advances by hand.

    Doubles as the pacer's ``sleep``: sleeping advances the clock by the
    requested amount, so ``pacer.run(sleep=clock.sleep)`` paces an entire
    workload without a single real wait.
    """

    def __init__(self, t: float = 100.0):
        self.t = t
        self.sleeps: list[float] = []

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt

    def sleep(self, dt: float) -> None:
        assert dt >= 0.0
        self.sleeps.append(dt)
        # A real monotonic clock advances on its own between calls; this
        # one only moves when slept.  Guarantee a minimum tick so a delay
        # that rounds below the clock's float resolution still makes
        # progress (the pacer's delays are exact differences of sim
        # times, which can underflow against t ~= 100).
        self.t += max(dt, 1e-9)


def make_session(policy: str = "pascal") -> ServingSession:
    config = ClusterConfig(
        n_instances=2,
        instance=InstanceConfig(
            kv_capacity_tokens=1024,
            scheduler=SchedulerConfig(token_quantum=8),
        ),
    )
    return ServingSession(policy=policy, config=config, perf=UnitPerfModel(0.01))


def make_request(rid: int, arrival_t: float = 0.0, **lengths) -> Request:
    lengths.setdefault("prompt_len", 8)
    lengths.setdefault("reasoning_len", 50)
    lengths.setdefault("answer_len", 10)
    return Request(rid=rid, arrival_t=arrival_t, **lengths)


class TestPacerClock:
    def test_rejects_bad_time_scale(self):
        session = make_session()
        for bad in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(ValueError, match="time_scale"):
                WallClockPacer(session, time_scale=bad)

    def test_rejects_bad_max_poll(self):
        session = make_session()
        with pytest.raises(ValueError, match="max_poll_s"):
            WallClockPacer(session, max_poll_s=0.0)

    def test_sim_now_requires_start(self):
        pacer = WallClockPacer(make_session(), clock=FakeClock())
        assert not pacer.started
        with pytest.raises(RuntimeError, match="not started"):
            pacer.sim_now

    def test_start_is_idempotent(self):
        clock = FakeClock()
        pacer = WallClockPacer(make_session(), clock=clock)
        pacer.start()
        clock.advance(5.0)
        pacer.start()  # keeps the original anchor
        assert pacer.sim_now == pytest.approx(5.0)

    def test_sim_now_scales_wall_time(self):
        clock = FakeClock()
        pacer = WallClockPacer(make_session(), time_scale=10.0, clock=clock)
        pacer.start()
        clock.advance(1.5)
        assert pacer.sim_now == pytest.approx(15.0)


class TestPacerPoll:
    def test_poll_reports_wall_delay_to_next_event(self):
        clock = FakeClock()
        session = make_session()
        session.submit(make_request(0, arrival_t=5.0))
        pacer = WallClockPacer(session, time_scale=2.0, clock=clock)
        pacer.start()
        # Next event (the arrival) is 5 simulated seconds away; at double
        # speed that is 2.5 wall seconds.
        assert pacer.poll() == pytest.approx(2.5)
        assert session.now == 0.0  # nothing was due yet
        clock.advance(2.5)
        delay = pacer.poll()
        assert session.n_submitted == 1
        assert delay is not None  # decode events now pending

    def test_poll_runs_only_events_that_are_due(self):
        clock = FakeClock()
        session = make_session()
        session.submit(make_request(0, arrival_t=0.0))
        pacer = WallClockPacer(session, clock=clock)
        pacer.start()
        clock.advance(0.2)
        pacer.poll()
        frozen = session.now
        assert frozen <= 0.2  # the engine never outruns the wall clock
        # Without wall progress another poll is a no-op.
        pacer.poll()
        assert session.now == frozen

    def test_poll_returns_none_when_idle(self):
        pacer = WallClockPacer(make_session(), clock=FakeClock())
        pacer.start()
        assert pacer.poll() is None
        assert pacer.idle()
        assert pacer.finished()


class TestPacerRun:
    def test_run_drains_workload_without_real_sleeps(self):
        clock = FakeClock()
        session = make_session()
        for i in range(4):
            session.submit(make_request(i, arrival_t=0.25 * i))
        pacer = WallClockPacer(session, max_poll_s=0.25, clock=clock)
        polls = pacer.run(sleep=clock.sleep)
        assert polls > 0
        assert session.cluster.all_finished()
        assert session.n_completed == 4
        # The wall clock advanced at least to the last simulated event.
        final = max(r.done_t for r in session.cluster.completed)
        assert clock.t - 100.0 >= final
        # Every sleep respected the poll cap.
        assert all(dt <= 0.25 for dt in clock.sleeps)

    def test_run_honours_should_stop(self):
        clock = FakeClock()
        session = make_session()
        session.submit(make_request(0, arrival_t=10.0))
        pacer = WallClockPacer(session, clock=clock)
        polls = pacer.run(sleep=clock.sleep, should_stop=lambda: True)
        assert polls == 0
        assert not session.cluster.all_finished()

    def test_time_scale_compresses_wall_time(self):
        clock = FakeClock()
        session = make_session()
        session.submit(make_request(0, arrival_t=0.0))
        pacer = WallClockPacer(session, time_scale=100.0, clock=clock)
        pacer.run(sleep=clock.sleep)
        assert session.cluster.all_finished()
        done_t = session.cluster.completed[0].done_t
        wall = clock.t - 100.0
        # 100x speed: the wall run is about a hundredth of simulated time
        # (plus at most one poll-cap sleep of slack).
        assert wall < done_t / 100.0 + 0.3


class TestPacerLiveInjection:
    def test_live_submit_and_cancel_timestamps(self):
        clock = FakeClock()
        session = make_session()
        pacer = WallClockPacer(session, clock=clock)
        pacer.start()
        clock.advance(0.5)
        handle = pacer.submit(
            make_request(1, arrival_t=pacer.sim_now, reasoning_len=200)
        )
        pacer.poll()
        clock.advance(0.5)
        pacer.poll()
        assert pacer.cancel(handle) is True
        pacer.run(sleep=clock.sleep)
        assert handle.status == RequestHandle.CANCELLED
        # The cancel was stamped at the wall instant it was requested.
        assert handle.request.cancelled_t == pytest.approx(1.0)
        assert handle.request.arrival_t == pytest.approx(0.5)
        assert session.n_cancelled == 1

    def test_cancel_after_completion_returns_false(self):
        clock = FakeClock()
        session = make_session()
        pacer = WallClockPacer(session, clock=clock)
        pacer.start()
        handle = pacer.submit(
            make_request(1, arrival_t=0.0, reasoning_len=5, answer_len=5)
        )
        pacer.run(sleep=clock.sleep)
        assert handle.status == RequestHandle.COMPLETED
        assert pacer.cancel(handle) is False


class TestFastForwardDrain:
    def test_drains_and_cuts_intake(self):
        clock = FakeClock()
        session = make_session()
        session.attach(
            make_request(i, arrival_t=float(i)) for i in range(1000)
        )
        session.step(until=2.5)
        assert fast_forward_drain(session, 30.0, clock=clock) is True
        assert session.cluster.all_finished()
        # The source tail was never ingested after the cut.
        assert session.n_submitted < 10

    def test_deadline_bounds_the_drain(self):
        # Each clock() call is one chunk boundary; advancing the fake
        # clock past the deadline after the first chunk must stop the
        # drain with work still in flight.
        class TickingClock(FakeClock):
            def __call__(self) -> float:
                self.t += 1.0
                return self.t

        session = make_session()
        session.submit(make_request(0, reasoning_len=500, answer_len=100))
        settled = fast_forward_drain(
            session, 0.5, clock=TickingClock(), chunk_events=1
        )
        assert settled is False
        assert not session.cluster.all_finished()


class TestHeaderOracle:
    def test_declines_without_length_headers(self):
        assert HeaderOracle().resolve(1, 0.0, {}, {}) is None

    def test_resolves_with_defaults(self):
        headers = {HEADER_REASONING: "128"}
        payload = {"messages": [{"role": "user", "content": "x" * 40}]}
        req = HeaderOracle().resolve(7, 1.5, headers, payload)
        assert req is not None
        assert req.rid == 7
        assert req.arrival_t == 1.5
        assert req.reasoning_len == 128
        assert req.answer_len == HeaderOracle.DEFAULT_ANSWER_TOKENS
        assert req.prompt_len == 10  # 40 chars / 4
        assert req.dataset == "http"

    def test_explicit_headers_win(self):
        headers = {
            HEADER_PROMPT: "32",
            HEADER_REASONING: "0",
            HEADER_ANSWER: "16",
            HEADER_DATASET: "load-test",
        }
        req = HeaderOracle().resolve(1, 0.0, headers, {})
        assert (req.prompt_len, req.reasoning_len, req.answer_len) == (
            32, 0, 16,
        )
        assert req.dataset == "load-test"

    def test_junk_header_raises(self):
        with pytest.raises(OracleError, match="integer"):
            HeaderOracle().resolve(1, 0.0, {HEADER_ANSWER: "many"}, {})

    def test_below_minimum_raises(self):
        with pytest.raises(OracleError, match=">= 1"):
            HeaderOracle().resolve(1, 0.0, {HEADER_ANSWER: "0"}, {})

    def test_estimate_prompt_tokens_floor(self):
        assert estimate_prompt_tokens({}) == 1
        assert estimate_prompt_tokens(
            {"messages": [{"content": "abcd" * 25}]}
        ) == 25


class TestTraceOracle:
    def test_cycles_trace_shapes(self, tmp_path):
        shapes = [
            Request(rid=0, prompt_len=11, reasoning_len=7, answer_len=3,
                    arrival_t=0.0, dataset="a"),
            Request(rid=1, prompt_len=22, reasoning_len=14, answer_len=6,
                    arrival_t=1.0, dataset="b"),
        ]
        shapes[1].cancel_at = 2.0  # scripted cancels in the file are ignored
        path = tmp_path / "shapes.jsonl"
        path.write_text(dump_trace(shapes))
        oracle = TraceOracle(str(path))
        got = [oracle.resolve(100 + i, 0.5 * i, {}, {}) for i in range(3)]
        assert [r.prompt_len for r in got] == [11, 22, 11]  # wraps around
        assert [r.rid for r in got] == [100, 101, 102]  # live ids, not file ids
        assert [r.arrival_t for r in got] == [0.0, 0.5, 1.0]  # live clock
        assert all(r.cancel_at is None for r in got)

    def test_empty_trace_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text('{"format": "pascal-trace", "version": 1}\n')
        with pytest.raises(ValueError, match="no requests"):
            TraceOracle(str(path))


class TestSampledOracle:
    def test_same_seed_same_sequence(self):
        a = SampledOracle("alpaca-eval-2.0", seed=3)
        b = SampledOracle("alpaca-eval-2.0", seed=3)
        for i in range(5):
            ra = a.resolve(i, 0.1 * i, {}, {})
            rb = b.resolve(i, 0.1 * i, {}, {})
            assert (ra.prompt_len, ra.reasoning_len, ra.answer_len) == (
                rb.prompt_len, rb.reasoning_len, rb.answer_len,
            )

    def test_reasoning_heavy_mix_alias(self):
        req = SampledOracle("reasoning-heavy-mix", seed=0).resolve(
            0, 0.0, {}, {}
        )
        assert req is not None
        assert req.prompt_len >= 1


class TestOracleChain:
    def test_first_claim_wins(self):
        oracle = default_oracle(seed=0)
        headed = oracle.resolve(0, 0.0, {HEADER_ANSWER: "9"}, {})
        assert headed.answer_len == 9
        sampled = oracle.resolve(1, 0.0, {}, {})
        assert sampled is not None  # fell through to the sampler

    def test_exhaustion_raises(self):
        with pytest.raises(OracleError, match="no oracle claimed"):
            OracleChain((HeaderOracle(),)).resolve(0, 0.0, {}, {})

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            OracleChain(())
