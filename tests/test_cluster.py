"""Cluster-level integration tests: every policy, end to end."""

import pytest

from repro.cluster.cluster import POLICIES, Cluster, make_intra_scheduler
from repro.config import ClusterConfig, InstanceConfig, SchedulerConfig
from repro.metrics.collector import collect
from repro.perfmodel.unit import UnitPerfModel
from repro.workload.request import Phase, Request
from repro.workload.trace import TraceConfig, build_trace
from repro.workload.datasets import ALPACA_EVAL


def small_cluster(policy, n_instances=2, capacity=4000, decode_s=0.01):
    config = ClusterConfig(
        n_instances=n_instances,
        instance=InstanceConfig(
            kv_capacity_tokens=capacity,
            scheduler=SchedulerConfig(token_quantum=50),
        ),
    )
    return Cluster(config, policy=policy, perf=UnitPerfModel(decode_s))


def small_trace(n=20, seed=5, rate=4.0):
    return build_trace(
        TraceConfig(ALPACA_EVAL, n_requests=n, arrival_rate_per_s=rate, seed=seed)
    )


def tiny_requests(n, reasoning=10, answer=10, spacing=0.2):
    return [
        Request(
            rid=i,
            prompt_len=16,
            reasoning_len=reasoning,
            answer_len=answer,
            arrival_t=i * spacing,
        )
        for i in range(n)
    ]


class TestPolicyMatrix:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_every_policy_drains(self, policy):
        cluster = small_cluster(policy)
        requests = tiny_requests(30)
        cluster.run_trace(requests)
        assert cluster.all_finished()
        assert len(cluster.completed) == 30

    @pytest.mark.parametrize("policy", POLICIES)
    def test_every_request_generates_all_tokens(self, policy):
        cluster = small_cluster(policy)
        requests = tiny_requests(20)
        cluster.run_trace(requests)
        for req in cluster.completed:
            assert req.generated_tokens == req.total_decode_tokens
            assert req.done_t is not None
            assert len(req.answer_token_times) == req.answer_len

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            small_cluster("lifo")
        with pytest.raises(ValueError):
            make_intra_scheduler("lifo", ClusterConfig())

    def test_make_intra_scheduler_names(self):
        config = ClusterConfig()
        assert make_intra_scheduler("fcfs", config).name == "fcfs"
        assert make_intra_scheduler("rr", config).name == "rr"
        assert make_intra_scheduler("oracle", config).name == "oracle"
        assert make_intra_scheduler("pascal", config).name == "pascal"
        assert (
            make_intra_scheduler("pascal-nomigration", config).name == "pascal"
        )


class TestDeterminism:
    @pytest.mark.parametrize("policy", ["fcfs", "rr", "pascal"])
    def test_same_seed_same_outcome(self, policy):
        outcomes = []
        for _ in range(2):
            cluster = small_cluster(policy)
            cluster.run_trace(small_trace())
            outcomes.append(
                sorted((r.rid, r.done_t, r.n_migrations) for r in cluster.completed)
            )
        assert outcomes[0] == outcomes[1]


class TestMigrationBehaviour:
    def test_pascal_migrates_at_phase_boundaries(self):
        cluster = small_cluster("pascal", n_instances=4)
        cluster.run_trace(tiny_requests(40, spacing=0.05))
        assert cluster.migrations.in_flight == 0
        assert len(cluster.migrations.completed) > 0
        assert all(r.finished for r in cluster.completed)

    def test_nomigration_never_migrates(self):
        cluster = small_cluster("pascal-nomigration", n_instances=4)
        cluster.run_trace(tiny_requests(40, spacing=0.05))
        assert len(cluster.migrations.completed) == 0

    def test_baselines_never_migrate(self):
        for policy in ("fcfs", "rr", "oracle"):
            cluster = small_cluster(policy, n_instances=4)
            cluster.run_trace(tiny_requests(20, spacing=0.05))
            assert len(cluster.migrations.completed) == 0

    def test_nonadaptive_migrates_at_least_as_much(self):
        adaptive = small_cluster("pascal", n_instances=2, capacity=1600)
        adaptive.run_trace(tiny_requests(40, reasoning=30, answer=30, spacing=0.02))
        always = small_cluster("pascal-nonadaptive", n_instances=2, capacity=1600)
        always.run_trace(tiny_requests(40, reasoning=30, answer=30, spacing=0.02))
        assert len(always.migrations.completed) >= len(
            adaptive.migrations.completed
        )

    def test_migrated_request_finishes_elsewhere(self):
        cluster = small_cluster("pascal-nonadaptive", n_instances=2)
        requests = tiny_requests(10, spacing=0.01)
        cluster.run_trace(requests)
        migrated = [r for r in requests if r.n_migrations > 0]
        assert migrated, "expected at least one migration"
        for req in migrated:
            assert req.finished
            assert req.transfer_wait_s > 0


class TestPlacementSpreading:
    def test_simultaneous_arrivals_spread_across_instances(self):
        cluster = small_cluster("fcfs", n_instances=4)
        requests = tiny_requests(8, spacing=0.0)
        cluster.run_trace(requests)
        used = {r.instance_id for r in requests}
        assert len(used) == 4


class TestThroughputAccounting:
    def test_throughput_counts_all_decode_tokens(self):
        cluster = small_cluster("fcfs")
        requests = tiny_requests(10)
        cluster.run_trace(requests)
        thr = cluster.throughput_tokens_per_s()
        total = sum(r.total_decode_tokens for r in requests)
        start = min(r.arrival_t for r in requests)
        end = max(r.done_t for r in requests)
        assert thr == pytest.approx(total / (end - start))

    def test_empty_cluster_throughput_zero(self):
        cluster = small_cluster("fcfs")
        assert cluster.throughput_tokens_per_s() == 0.0


class TestCollector:
    def test_collect_snapshot(self):
        cluster = small_cluster("pascal", n_instances=2)
        cluster.run_trace(tiny_requests(20, spacing=0.05))
        metrics = collect(cluster)
        assert metrics.policy == "pascal"
        assert len(metrics.requests) == 20
        assert len(metrics.ttfts()) == 20
        assert metrics.throughput_tokens_per_s > 0
        assert all(t >= 0 for t in metrics.ttfats())

    def test_phase_breakdown_covers_sojourn(self):
        cluster = small_cluster("rr", capacity=1600)
        requests = tiny_requests(15, reasoning=40, answer=40, spacing=0.05)
        cluster.run_trace(requests)
        metrics = collect(cluster)
        for req in metrics.requests:
            total = sum(req.breakdown.values())
            assert total == pytest.approx(req.e2e_latency(), rel=1e-6)

    def test_blocking_latencies_nonnegative(self):
        cluster = small_cluster("pascal", n_instances=2, capacity=1600)
        cluster.run_trace(tiny_requests(30, reasoning=30, answer=30, spacing=0.02))
        metrics = collect(cluster)
        assert all(b >= 0 for b in metrics.blocking_latencies())


class TestTokenConservation:
    @pytest.mark.parametrize("policy", ["fcfs", "rr", "pascal"])
    def test_instance_counters_match_request_totals(self, policy):
        cluster = small_cluster(policy, n_instances=2)
        requests = tiny_requests(25, spacing=0.05)
        cluster.run_trace(requests)
        generated = sum(inst.tokens_generated for inst in cluster.instances)
        expected = sum(r.total_decode_tokens for r in requests)
        assert generated == expected

    @pytest.mark.parametrize("policy", ["fcfs", "rr", "pascal"])
    def test_all_pools_empty_after_drain(self, policy):
        cluster = small_cluster(policy, n_instances=2)
        cluster.run_trace(tiny_requests(25, spacing=0.05))
        for inst in cluster.instances:
            assert inst.pool.gpu_used_blocks == 0
            assert inst.pool.cpu_used_blocks == 0
            inst.pool.check_invariants()
