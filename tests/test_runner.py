"""Harness runner tests (settings plumbing, caching, sweep; no heavy sims)."""

import pytest

from repro.harness.runner import (
    CharacterizationSettings,
    CharacterizationRun,
    CharCell,
    EvalCell,
    EvalSettings,
    clear_caches,
    run_cell,
    run_characterization,
    sweep,
)
from repro.workload.datasets import ALPACA_EVAL, ARENA_HARD, reasoning_heavy_mix


class TestEvalSettings:
    def test_defaults(self):
        settings = EvalSettings()
        assert settings.n_instances == 8
        assert dict(settings.load_factors)["high"] > 1.0

    def test_cluster_config_wires_capacity(self):
        settings = EvalSettings(kv_capacity_tokens=12345)
        assert settings.cluster_config().instance.gpu_kv_tokens() == 12345

    def test_resident_capacity_scales_inversely_with_request_size(self):
        settings = EvalSettings()
        alpaca = settings.resident_request_capacity(ALPACA_EVAL)
        arena = settings.resident_request_capacity(ARENA_HARD)
        assert alpaca > arena  # alpaca requests are smaller

    def test_resident_capacity_handles_mixtures(self):
        settings = EvalSettings()
        assert settings.resident_request_capacity(reasoning_heavy_mix()) > 0

    def test_n_requests_floor(self):
        settings = EvalSettings(n_requests=10, trace_residency_multiple=0.001)
        assert settings.n_requests_for(ALPACA_EVAL) == 10

    def test_n_requests_scales_with_residency(self):
        small = EvalSettings(trace_residency_multiple=1.0)
        big = EvalSettings(trace_residency_multiple=5.0)
        assert big.n_requests_for(ALPACA_EVAL) >= small.n_requests_for(
            ALPACA_EVAL
        )

    def test_for_scale_paper_is_larger(self):
        quick = EvalSettings.for_scale("quick")
        paper = EvalSettings.for_scale("paper")
        assert paper.trace_residency_multiple > quick.trace_residency_multiple

    def test_settings_hashable_for_memoization(self):
        assert hash(EvalSettings()) == hash(EvalSettings())


class TestCharacterizationSettings:
    def test_rate_for_phases(self):
        settings = CharacterizationSettings()
        assert settings.rate_for("reasoning") == settings.reasoning_rate_per_s
        assert settings.rate_for("answering") == settings.answering_rate_per_s
        with pytest.raises(ValueError):
            settings.rate_for("prefill")

    def test_for_scale(self):
        assert CharacterizationSettings.for_scale("quick").n_requests == 150
        assert CharacterizationSettings.for_scale("paper").n_requests == 300


class TestCharacterizationRunner:
    @pytest.fixture(autouse=True)
    def fresh_caches(self):
        clear_caches()
        yield
        clear_caches()

    def small(self):
        return CharacterizationSettings(
            n_requests=20,
            reasoning_rate_per_s=0.5,
            answering_rate_per_s=0.5,
        )

    def test_oracle_run_and_cap_derivation(self):
        run = run_characterization("reasoning", "oracle", self.small())
        assert isinstance(run, CharacterizationRun)
        assert run.oracle_peak_tokens > 0
        assert len(run.metrics.requests) == 20

    def test_constrained_capacity_is_half_of_peak(self):
        settings = self.small()
        oracle = run_characterization("reasoning", "oracle", settings)
        fcfs = run_characterization("reasoning", "fcfs", settings)
        assert fcfs.capacity_tokens == max(
            1024, int(oracle.oracle_peak_tokens * 0.5)
        )

    def test_memoization_returns_same_object(self):
        settings = self.small()
        first = run_characterization("reasoning", "fcfs", settings)
        second = run_characterization("reasoning", "fcfs", settings)
        assert first is second

    def test_answering_phase_workload_precomputed(self):
        run = run_characterization("answering", "oracle", self.small())
        assert all(r.reasoning_len == 0 for r in run.metrics.requests)

    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError):
            run_characterization("prefill", "fcfs", self.small())

    def test_oracle_uncapped_when_only_peak_cache_is_warm(self):
        # After a parallel sweep of non-oracle cells, _store_cell seeds the
        # oracle *peak* cache but not the oracle's own characterization
        # entry.  A subsequent oracle query must still run at full
        # capacity, not fall through to the 50%-of-peak cap.
        from repro.harness.runner import _store_cell

        settings = self.small()
        oracle_full = run_characterization("reasoning", "oracle", settings)
        fcfs = run_characterization("reasoning", "fcfs", settings)
        clear_caches()
        _store_cell(CharCell("reasoning", "fcfs", settings), fcfs)

        oracle = run_characterization("reasoning", "oracle", settings)
        assert oracle.capacity_tokens == oracle_full.capacity_tokens
        assert oracle.capacity_tokens > fcfs.capacity_tokens
        assert oracle.oracle_peak_tokens == oracle_full.oracle_peak_tokens


class TestSweep:
    @pytest.fixture(autouse=True)
    def fresh_caches(self):
        clear_caches()
        yield
        clear_caches()

    def settings(self):
        return CharacterizationSettings(
            n_requests=20,
            reasoning_rate_per_s=0.5,
            answering_rate_per_s=0.5,
        )

    def cells(self):
        s = self.settings()
        return [
            CharCell("reasoning", policy, s)
            for policy in ("oracle", "fcfs", "rr")
        ]

    def test_run_cell_matches_direct_runner(self):
        cell = self.cells()[1]
        via_cell = run_cell(cell)
        direct = run_characterization("reasoning", "fcfs", self.settings())
        assert via_cell is direct  # same memoized object

    def test_run_cell_rejects_non_cells(self):
        with pytest.raises(TypeError):
            run_cell("fig12")

    def test_serial_sweep_covers_all_cells(self):
        results = sweep(self.cells(), jobs=1)
        assert set(results) == set(self.cells())
        for run in results.values():
            assert len(run.metrics.requests) == 20

    def test_sweep_deduplicates_cells(self):
        cells = self.cells() + self.cells()
        results = sweep(cells, jobs=1)
        assert len(results) == 3

    def test_parallel_sweep_matches_serial(self):
        serial = {
            cell: run_cell(cell).metrics for cell in self.cells()
        }
        serial_view = {
            cell: sorted(
                (r.rid, r.done_t, r.n_preemptions) for r in metrics.requests
            )
            for cell, metrics in serial.items()
        }
        clear_caches()
        parallel = sweep(self.cells(), jobs=2)
        parallel_view = {
            cell: sorted(
                (r.rid, r.done_t, r.n_preemptions)
                for r in run.metrics.requests
            )
            for cell, run in parallel.items()
        }
        assert serial_view == parallel_view

    def test_parallel_sweep_seeds_the_cache(self):
        sweep(self.cells(), jobs=2)
        # A follow-up serial call must hit the memoized result, not rerun.
        first = run_characterization("reasoning", "rr", self.settings())
        second = run_characterization("reasoning", "rr", self.settings())
        assert first is second

    def test_parallel_sweep_with_only_prewarmed_cells(self):
        # Oracle runs are executed in-parent during prewarming, so these
        # two cells leave nothing for the pool; it must cope with an
        # empty remainder.
        s = self.settings()
        cells = [
            CharCell("reasoning", "oracle", s),
            CharCell("answering", "oracle", s),
        ]
        results = sweep(cells, jobs=2)
        assert set(results) == set(cells)
        for run in results.values():
            assert len(run.metrics.requests) == 20

    def test_cells_are_hashable_and_comparable(self):
        s = self.settings()
        assert CharCell("reasoning", "fcfs", s) == CharCell(
            "reasoning", "fcfs", s
        )
        eval_cell = EvalCell(ALPACA_EVAL, "high", "pascal", EvalSettings())
        assert hash(eval_cell) == hash(
            EvalCell(ALPACA_EVAL, "high", "pascal", EvalSettings())
        )


class TestExperimentRegistry:
    def test_all_experiments_registered(self):
        from repro.harness.experiments import ALL_EXPERIMENTS

        expected = {
            "fig2", "fig4", "fig5", "fig8", "fig9", "fig10", "fig11",
            "fig12", "fig13", "fig14", "fig15", "fig16", "fig16x",
            "deferral-stress", "sec5a", "sec5c", "ablation-alg2",
            "ablation-partition",
        }
        assert set(ALL_EXPERIMENTS) == expected
        assert all(callable(fn) for fn in ALL_EXPERIMENTS.values())

    def test_spec_ids_match_keys(self):
        from repro.harness.experiments import ALL_EXPERIMENTS

        for name, spec in ALL_EXPERIMENTS.items():
            assert spec.figure_id == name
            assert spec.title

    def test_eval_specs_declare_cells(self):
        from repro.harness.experiments import ALL_EXPERIMENTS

        settings = EvalSettings()
        cells = ALL_EXPERIMENTS["fig12"].required_cells(settings)
        assert len(cells) == 18  # 2 datasets x 3 tiers x 3 policies
        assert all(isinstance(cell, EvalCell) for cell in cells)
        assert all(cell.settings == settings for cell in cells)

    def test_char_specs_declare_cells(self):
        from repro.harness.experiments import ALL_EXPERIMENTS

        cells = ALL_EXPERIMENTS["fig4"].required_cells(_tiny_char_settings())
        assert {cell.policy for cell in cells} == {"oracle", "fcfs", "rr"}
        assert all(cell.phase == "reasoning" for cell in cells)

    def test_cheap_specs_declare_no_cells(self):
        from repro.harness.experiments import ALL_EXPERIMENTS

        for name in ("fig2", "fig8", "fig14", "sec5a"):
            assert ALL_EXPERIMENTS[name].required_cells() == ()

    def test_spec_runs_and_builds(self):
        from repro.harness.experiments import ALL_EXPERIMENTS

        result = ALL_EXPERIMENTS["fig2"]()
        assert result.figure_id == "fig2"


def _tiny_char_settings():
    return CharacterizationSettings(
        n_requests=20, reasoning_rate_per_s=0.5, answering_rate_per_s=0.5
    )
