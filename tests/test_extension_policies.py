"""Tests for the extension policies: pascal-ri-only and phase-partitioned."""

import pytest

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, InstanceConfig, SchedulerConfig, SLOConfig
from repro.core.placement import AnsweringPlacement
from repro.perfmodel.unit import UnitPerfModel
from repro.serving.monitor import InstanceMonitor
from repro.workload.request import Request
from tests.test_placement import answering_request, instance_with_kv, reasoning_request


def cluster_of(policy, n_instances=2, capacity=2000):
    config = ClusterConfig(
        n_instances=n_instances,
        instance=InstanceConfig(
            kv_capacity_tokens=capacity,
            scheduler=SchedulerConfig(token_quantum=50),
        ),
    )
    return Cluster(config, policy=policy, perf=UnitPerfModel(0.02))


def workload(n=12):
    return [
        Request(rid=i, prompt_len=16, reasoning_len=40, answer_len=30,
                arrival_t=0.05 * i)
        for i in range(n)
    ]


class TestRiOnlyFallback:
    def test_fallback_flag_changes_selection(self):
        monitor = InstanceMonitor(SLOConfig())
        # Both instances violate their SLO; a hosts one reasoning request,
        # b hosts none but two fresh answering requests.
        a = instance_with_kv(0, 0)
        b = instance_with_kv(1, 0)
        for inst in (a, b):
            bad = answering_request(90 + inst.iid, first_answer_t=0.0, tokens=1)
            bad.level = 3
            inst.requests.add(bad)
        a.requests.add(reasoning_request(201))
        for i in range(2):
            fresh = answering_request(400 + i, first_answer_t=4.9, tokens=60)
            inst_b_req = fresh
            inst_b_req.level = 0
            b.requests.add(inst_b_req)

        full = AnsweringPlacement(monitor, use_fresh_fallback=True)
        ri_only = AnsweringPlacement(monitor, use_fresh_fallback=False)
        req = answering_request(1)
        # Full heuristic penalizes b's fresh answering crowd; r_i-only
        # sees only reasoning counts and picks b.
        assert full.select([a, b], req, 5.0).iid == 0
        assert ri_only.select([a, b], req, 5.0).iid == 1

    def test_ri_only_policy_runs_end_to_end(self):
        cluster = cluster_of("pascal-ri-only")
        requests = workload()
        cluster.run_trace(requests)
        assert cluster.all_finished()
        assert cluster.policy.answering_placement.use_fresh_fallback is False

    def test_full_pascal_keeps_fallback_enabled(self):
        cluster = cluster_of("pascal")
        assert cluster.policy.answering_placement.use_fresh_fallback is True


class TestPhasePartitioned:
    def test_pools_split_the_cluster(self):
        cluster = cluster_of("phase-partitioned", n_instances=4)
        assert [i.iid for i in cluster.policy.reasoning_pool] == [0, 1]
        assert [i.iid for i in cluster.policy.answering_pool] == [2, 3]

    def test_single_instance_degenerates_gracefully(self):
        cluster = cluster_of("phase-partitioned", n_instances=1)
        requests = workload(6)
        cluster.run_trace(requests)
        assert cluster.all_finished()
        # With one instance there is nowhere to migrate to.
        assert len(cluster.migrations.completed) == 0

    def test_every_request_migrates_once(self):
        cluster = cluster_of("phase-partitioned", n_instances=2)
        requests = workload()
        cluster.run_trace(requests)
        assert cluster.all_finished()
        assert all(r.n_migrations == 1 for r in requests)

    def test_reasoning_runs_only_on_reasoning_pool(self):
        cluster = cluster_of("phase-partitioned", n_instances=4)
        requests = workload()
        cluster.run_trace(requests)
        answering_ids = {i.iid for i in cluster.policy.answering_pool}
        for req in requests:
            # Final placement is an answering instance.
            assert req.instance_id in answering_ids

    def test_partitioned_uses_rr_intra_scheduler(self):
        cluster = cluster_of("phase-partitioned")
        assert cluster.instances[0].scheduler.name == "rr"

    def test_zero_reasoning_requests_complete_in_reasoning_pool(self):
        cluster = cluster_of("phase-partitioned", n_instances=2)
        req = Request(rid=0, prompt_len=16, reasoning_len=0, answer_len=10)
        cluster.run_trace([req])
        assert req.finished
        assert req.n_migrations == 0
