"""Tests for the extension policies: pascal-ri-only, phase-partitioned,
tiered-express (heterogeneous pools) and the weighted slo-least-load."""

import pytest

from repro.cluster.cluster import Cluster
from repro.config import (
    ClusterConfig,
    ExtensionPolicyConfig,
    InstanceConfig,
    PoolSpec,
    SchedulerConfig,
    SLOConfig,
)
from repro.core.placement import AnsweringPlacement
from repro.perfmodel.unit import UnitPerfModel
from repro.serving.monitor import InstanceMonitor
from repro.workload.request import Request
from tests.test_placement import answering_request, instance_with_kv, reasoning_request


def cluster_of(policy, n_instances=2, capacity=2000, extensions=None):
    config = ClusterConfig(
        n_instances=n_instances,
        instance=InstanceConfig(
            kv_capacity_tokens=capacity,
            scheduler=SchedulerConfig(token_quantum=50),
        ),
        extensions=extensions or ExtensionPolicyConfig(),
    )
    return Cluster(config, policy=policy, perf=UnitPerfModel(0.02))


def workload(n=12):
    return [
        Request(rid=i, prompt_len=16, reasoning_len=40, answer_len=30,
                arrival_t=0.05 * i)
        for i in range(n)
    ]


class TestRiOnlyFallback:
    def test_fallback_flag_changes_selection(self):
        monitor = InstanceMonitor(SLOConfig())
        # Both instances violate their SLO; a hosts one reasoning request,
        # b hosts none but two fresh answering requests.
        a = instance_with_kv(0, 0)
        b = instance_with_kv(1, 0)
        for inst in (a, b):
            bad = answering_request(90 + inst.iid, first_answer_t=0.0, tokens=1)
            bad.level = 3
            inst.requests.add(bad)
        a.requests.add(reasoning_request(201))
        for i in range(2):
            fresh = answering_request(400 + i, first_answer_t=4.9, tokens=60)
            inst_b_req = fresh
            inst_b_req.level = 0
            b.requests.add(inst_b_req)

        full = AnsweringPlacement(monitor, use_fresh_fallback=True)
        ri_only = AnsweringPlacement(monitor, use_fresh_fallback=False)
        req = answering_request(1)
        # Full heuristic penalizes b's fresh answering crowd; r_i-only
        # sees only reasoning counts and picks b.
        assert full.select([a, b], req, 5.0).iid == 0
        assert ri_only.select([a, b], req, 5.0).iid == 1

    def test_ri_only_policy_runs_end_to_end(self):
        cluster = cluster_of("pascal-ri-only")
        requests = workload()
        cluster.run_trace(requests)
        assert cluster.all_finished()
        assert cluster.policy.answering_placement.use_fresh_fallback is False

    def test_full_pascal_keeps_fallback_enabled(self):
        cluster = cluster_of("pascal")
        assert cluster.policy.answering_placement.use_fresh_fallback is True


class TestPhasePartitioned:
    def test_pools_split_the_cluster(self):
        cluster = cluster_of("phase-partitioned", n_instances=4)
        assert [i.iid for i in cluster.policy.reasoning_pool] == [0, 1]
        assert [i.iid for i in cluster.policy.answering_pool] == [2, 3]

    def test_single_instance_degenerates_gracefully(self):
        cluster = cluster_of("phase-partitioned", n_instances=1)
        requests = workload(6)
        cluster.run_trace(requests)
        assert cluster.all_finished()
        # With one instance there is nowhere to migrate to.
        assert len(cluster.migrations.completed) == 0

    def test_every_request_migrates_once(self):
        cluster = cluster_of("phase-partitioned", n_instances=2)
        requests = workload()
        cluster.run_trace(requests)
        assert cluster.all_finished()
        assert all(r.n_migrations == 1 for r in requests)

    def test_reasoning_runs_only_on_reasoning_pool(self):
        cluster = cluster_of("phase-partitioned", n_instances=4)
        requests = workload()
        cluster.run_trace(requests)
        answering_ids = {i.iid for i in cluster.policy.answering_pool}
        for req in requests:
            # Final placement is an answering instance.
            assert req.instance_id in answering_ids

    def test_partitioned_uses_rr_intra_scheduler(self):
        cluster = cluster_of("phase-partitioned")
        assert cluster.instances[0].scheduler.name == "rr"

    def test_zero_reasoning_requests_complete_in_reasoning_pool(self):
        cluster = cluster_of("phase-partitioned", n_instances=2)
        req = Request(rid=0, prompt_len=16, reasoning_len=0, answer_len=10)
        cluster.run_trace([req])
        assert req.finished
        assert req.n_migrations == 0


class TestPoolSpec:
    def test_express_count_clamps_to_keep_standard_tier(self):
        spec = PoolSpec(express_instances=5)
        assert spec.express_count(8) == 5
        assert spec.express_count(4) == 3  # standard tier keeps >= 1
        assert spec.express_count(1) == 0
        assert spec.express_count(0) == 0

    def test_zero_express_disables_tiering(self):
        assert PoolSpec(express_instances=0).express_count(8) == 0


class TestTieredExpress:
    def pool(self, express=2, threshold=50):
        return ExtensionPolicyConfig(
            pool=PoolSpec(
                express_instances=express, express_threshold_tokens=threshold
            )
        )

    def short_and_long(self, n=20):
        # Even rids: long reasoning ("heavy"); odd rids: short ("light").
        return [
            Request(
                rid=i,
                prompt_len=8,
                reasoning_len=(20 if i % 2 else 200),
                answer_len=10,
                arrival_t=0.3 * i,
                dataset=("light" if i % 2 else "heavy"),
            )
            for i in range(n)
        ]

    def test_pool_split_and_schedulers(self):
        cluster = cluster_of(
            "tiered-express", n_instances=4, extensions=self.pool(express=2)
        )
        assert [i.iid for i in cluster.policy.express_pool] == [0, 1]
        assert [i.iid for i in cluster.policy.standard_pool] == [2, 3]
        names = [inst.scheduler.name for inst in cluster.instances]
        assert names[:2] == ["fcfs", "fcfs"]
        assert all(name != "fcfs" for name in names[2:])

    def test_single_instance_runs_homogeneous(self):
        cluster = cluster_of(
            "tiered-express", n_instances=1, capacity=4000,
            extensions=self.pool(),
        )
        assert cluster.policy.express_pool == []
        cluster.run_trace(self.short_and_long(6))
        assert cluster.all_finished()

    def test_short_requests_learn_their_way_to_express(self):
        # Fast decode keeps the standard tier SLO-clean, so placement is
        # driven purely by the learned tiering (no saturation spill).
        config = ClusterConfig(
            n_instances=4,
            instance=InstanceConfig(
                kv_capacity_tokens=4000,
                scheduler=SchedulerConfig(token_quantum=50),
            ),
            extensions=self.pool(express=2, threshold=50),
        )
        cluster = Cluster(
            config, policy="tiered-express", perf=UnitPerfModel(0.002)
        )
        placements: dict[int, int] = {}
        inner_place = cluster.policy.place_arrival

        def spying_place(req, now):
            inst = inner_place(req, now)
            placements[req.rid] = inst.iid
            return inst

        cluster.policy.place_arrival = spying_place
        requests = self.short_and_long(24)
        cluster.run_trace(requests)
        assert cluster.all_finished()
        express_ids = {0, 1}
        # Once the per-dataset EWMA converges under the threshold, light
        # requests ride the express tier; heavy ones never do.
        light_late = [r for r in requests if r.dataset == "light" and r.rid >= 8]
        heavy = [r for r in requests if r.dataset == "heavy"]
        assert all(placements[r.rid] in express_ids for r in light_late)
        assert all(placements[r.rid] not in express_ids for r in heavy)

    def test_prior_above_threshold_routes_standard_first(self):
        cluster = cluster_of(
            "tiered-express", n_instances=4, capacity=4000,
            extensions=self.pool(express=2, threshold=50),
        )
        first = self.short_and_long(2)  # no observations yet: prior = 600
        cluster.run_trace(first)
        assert all(r.instance_id in {2, 3} for r in first)

    def test_predictor_errors_surface_per_dataset(self):
        cluster = cluster_of(
            "tiered-express", n_instances=4, capacity=4000,
            extensions=self.pool(),
        )
        cluster.run_trace(self.short_and_long(10))
        errors = cluster.policy.predictor_errors()
        assert set(errors) == {"heavy", "light"}
        assert all(
            isinstance(errs, tuple) and errs for errs in errors.values()
        )


class TestWeightedLeastLoad:
    def test_weighted_key_prefers_fewer_pending_tokens(self):
        weighted = cluster_of(
            "slo-least-load",
            n_instances=2,
            capacity=8000,
            extensions=ExtensionPolicyConfig(least_load_weighted=True),
        )
        # Instance 0: one giant request; instance 1: three tiny ones.
        # Depth says 0 is emptier; pending tokens say 1 is.
        giant = Request(rid=90, prompt_len=8, reasoning_len=4000, answer_len=100)
        weighted.instances[0].requests.add(giant)
        for i in range(3):
            weighted.instances[1].requests.add(
                Request(rid=91 + i, prompt_len=8, reasoning_len=5, answer_len=5)
            )
        probe = Request(rid=1, prompt_len=8, reasoning_len=10, answer_len=10)
        assert weighted.policy.place_arrival(probe, 0.0).iid == 1

        unweighted = cluster_of(
            "slo-least-load", n_instances=2, capacity=8000
        )
        giant2 = Request(rid=90, prompt_len=8, reasoning_len=4000, answer_len=100)
        unweighted.instances[0].requests.add(giant2)
        for i in range(3):
            unweighted.instances[1].requests.add(
                Request(rid=91 + i, prompt_len=8, reasoning_len=5, answer_len=5)
            )
        assert unweighted.policy.place_arrival(probe, 0.0).iid == 0

    def test_weighted_policy_drains(self):
        cluster = cluster_of(
            "slo-least-load",
            n_instances=2,
            capacity=4000,
            extensions=ExtensionPolicyConfig(least_load_weighted=True),
        )
        requests = workload()
        cluster.run_trace(requests)
        assert cluster.all_finished()

    def test_monitor_pending_decode_tokens(self):
        monitor = InstanceMonitor(SLOConfig())
        inst = instance_with_kv(0, 0)
        assert monitor.pending_decode_tokens(inst) == 0
        req = Request(rid=5, prompt_len=8, reasoning_len=30, answer_len=20)
        req.generated_tokens = 10
        inst.requests.add(req)
        assert monitor.pending_decode_tokens(inst) == 40
