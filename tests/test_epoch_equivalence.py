"""Decode-epoch coalescing is an *optimization*, not a semantic change.

`ServingInstance` advances many decode tokens per ``STEP_COMPLETE`` event
(the decode-epoch fast path) instead of one event per token.  The contract
is bit-identical observable behavior: every per-request timestamp, every
answer-token time, every lifecycle-hook firing — in the same order, with
the same floats — as single-stepping.  Hypothesis drives random workloads
through every policy, over homogeneous and heterogeneous (tiered) pools,
and compares the two modes; deterministic regressions then pin the
off-by-one-prone epoch boundaries (quantum expiry, phase flip).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ServingSession, SessionSubscriber
from repro.cluster.cluster import Cluster
from repro.config import (
    ClusterConfig,
    ExtensionPolicyConfig,
    InstanceConfig,
    PoolSpec,
    SchedulerConfig,
)
from repro.workload.request import Request

POLICIES = (
    "fcfs",
    "rr",
    "pascal",
    "pascal-nomigration",
    "pascal-nonadaptive",
    "phase-partitioned",
    "tiered-express",
    "slo-least-load",
)

#: (name, extensions) — the pool shapes each policy is exercised over.
POOLS = (
    ("homogeneous", ExtensionPolicyConfig()),
    (
        "tiered",
        ExtensionPolicyConfig(
            least_load_weighted=True,
            pool=PoolSpec(express_instances=1, express_threshold_tokens=60),
        ),
    ),
)


@st.composite
def workload_spec(draw):
    """Specs, not Request objects: runs mutate requests, so each run
    rebuilds its own copies."""
    n = draw(st.integers(min_value=1, max_value=10))
    specs = []
    t = 0.0
    for rid in range(n):
        t += draw(st.floats(min_value=0.0, max_value=0.4, allow_nan=False))
        specs.append(
            (
                rid,
                draw(st.integers(min_value=1, max_value=40)),
                draw(st.integers(min_value=0, max_value=80)),
                draw(st.integers(min_value=1, max_value=60)),
                t,
            )
        )
    return specs


def build_requests(specs):
    return [
        Request(
            rid=rid,
            prompt_len=prompt,
            reasoning_len=reasoning,
            answer_len=answer,
            arrival_t=arrival,
        )
        for rid, prompt, reasoning, answer, arrival in specs
    ]


def cluster_config(extensions, epoch, quantum=16):
    return ClusterConfig(
        n_instances=2,
        instance=InstanceConfig(
            kv_capacity_tokens=2400,
            scheduler=SchedulerConfig(token_quantum=quantum),
            epoch_coalescing=epoch,
        ),
        extensions=extensions,
    )


def fingerprint(requests):
    """Every externally observable per-request float and count."""
    return [
        (
            req.rid,
            req.first_sched_t,
            req.prefill_end_t,
            req.reasoning_end_t,
            req.first_answer_t,
            req.answer_sched_t,
            req.done_t,
            req.n_migrations,
            req.generated_tokens,
            tuple(req.answer_token_times),
        )
        for req in requests
    ]


def run_batch(policy, specs, extensions, epoch, quantum=16):
    requests = build_requests(specs)
    cluster = Cluster(cluster_config(extensions, epoch, quantum), policy=policy)
    cluster.run_trace(requests)
    assert cluster.all_finished()
    for inst in cluster.instances:
        inst.check_invariants()
    return fingerprint(requests), [
        (inst.tokens_generated, inst.decode_steps, inst.busy_time_s)
        for inst in cluster.instances
    ]


class _HookRecorder(SessionSubscriber):
    """Captures the lifecycle stream verbatim, in dispatch order."""

    def __init__(self):
        self.events = []

    def on_admit(self, handle, now, instance_id):
        self.events.append(("admit", handle.rid, now, instance_id))

    def on_phase_change(self, handle, now):
        self.events.append(("phase", handle.rid, now))

    def on_first_token(self, handle, now):
        self.events.append(("first-token", handle.rid, now))

    def on_complete(self, handle, now):
        self.events.append(("complete", handle.rid, now))


def run_session(policy, specs, extensions, epoch):
    session = ServingSession(
        policy=policy, config=cluster_config(extensions, epoch)
    )
    recorder = session.subscribe(_HookRecorder())
    for req in build_requests(specs):
        session.submit(req)
    metrics = session.drain()
    return recorder.events, fingerprint(
        sorted(metrics.requests, key=lambda r: r.rid)
    )


class TestEpochEquivalence:
    @given(workload_spec(), st.sampled_from(POLICIES), st.sampled_from(POOLS))
    @settings(max_examples=40, deadline=None)
    def test_batch_run_bit_identical(self, specs, policy, pool):
        _, extensions = pool
        fast = run_batch(policy, specs, extensions, epoch=True)
        slow = run_batch(policy, specs, extensions, epoch=False)
        assert fast == slow

    @given(workload_spec(), st.sampled_from(POLICIES))
    @settings(max_examples=15, deadline=None)
    def test_lifecycle_hooks_fire_identically(self, specs, policy):
        extensions = POOLS[0][1]
        fast_events, fast_fp = run_session(policy, specs, extensions, True)
        slow_events, slow_fp = run_session(policy, specs, extensions, False)
        assert fast_events == slow_events
        assert fast_fp == slow_fp


class TestEpochBoundaries:
    """Deterministic off-by-one regressions at the epoch-horizon edges."""

    def _ab(self, specs, policy="pascal", quantum=16):
        extensions = POOLS[0][1]
        fast = run_batch(policy, specs, extensions, True, quantum)
        slow = run_batch(policy, specs, extensions, False, quantum)
        assert fast == slow

    def test_quantum_expiry_exact_boundary(self):
        # Decode lengths that are exact multiples of the quantum: the
        # epoch must end *on* the expiry step, not one past it.
        quantum = 8
        specs = [
            (0, 10, 2 * quantum, quantum, 0.0),
            (1, 10, quantum, 2 * quantum, 0.0),
            (2, 10, 0, 3 * quantum, 0.1),
        ]
        self._ab(specs, quantum=quantum)

    def test_phase_flip_exact_boundary(self):
        # reasoning_len == 1 flips phase on the very first decode token;
        # the flip must land on an epoch-final step so migration and
        # re-banding see it at the true event time.
        specs = [
            (0, 10, 1, 5, 0.0),
            (1, 10, 2, 5, 0.0),
            (2, 10, 1, 1, 0.05),
        ]
        self._ab(specs)

    def test_single_token_requests(self):
        # Horizon floor: a one-token answer is a one-step epoch.
        specs = [(0, 4, 0, 1, 0.0), (1, 4, 0, 1, 0.0), (2, 4, 1, 1, 0.0)]
        self._ab(specs)

    def test_block_crossing_pressure(self):
        # A tight pool forces the block-boundary cap to bound horizons.
        extensions = POOLS[0][1]
        specs = [(rid, 30, 40, 40, 0.01 * rid) for rid in range(8)]
        for policy in ("fcfs", "pascal"):
            fast_requests = build_requests(specs)
            config = ClusterConfig(
                n_instances=1,
                instance=InstanceConfig(
                    kv_capacity_tokens=700, epoch_coalescing=True
                ),
                extensions=extensions,
            )
            cluster = Cluster(config, policy=policy)
            cluster.run_trace(fast_requests)
            slow_requests = build_requests(specs)
            config_slow = ClusterConfig(
                n_instances=1,
                instance=InstanceConfig(
                    kv_capacity_tokens=700, epoch_coalescing=False
                ),
                extensions=extensions,
            )
            cluster_slow = Cluster(config_slow, policy=policy)
            cluster_slow.run_trace(slow_requests)
            assert fingerprint(fast_requests) == fingerprint(slow_requests)
