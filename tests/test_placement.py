"""Algorithm 1 / Algorithm 2 / adaptive migration tests."""

import pytest

from repro.config import SLOConfig
from repro.core.adaptive import AdaptiveMigrationPolicy
from repro.core.placement import (
    AnsweringPlacement,
    ReasoningPlacement,
    least_kv_placement,
)
from repro.schedulers.fcfs import FCFSScheduler
from repro.serving.monitor import InstanceMonitor, answering_starving
from repro.workload.request import Request
from tests.conftest import build_instance


def instance_with_kv(iid, kv_tokens, capacity=100_000):
    _, inst = build_instance(FCFSScheduler(), capacity_tokens=capacity)
    inst.iid = iid
    if kv_tokens:
        filler = Request(
            rid=1000 + iid, prompt_len=kv_tokens, reasoning_len=1, answer_len=1
        )
        inst.pool.allocate(filler, kv_tokens)
        inst.requests.add(filler)
    return inst


def answering_request(rid, first_answer_t=None, reasoning_end_t=0.0, tokens=0):
    req = Request(rid=rid, prompt_len=8, reasoning_len=0, answer_len=50)
    req.reasoning_end_t = reasoning_end_t
    if first_answer_t is not None:
        req.first_answer_t = first_answer_t
        req.answer_token_times = [
            first_answer_t + 0.01 * k for k in range(tokens)
        ]
    return req


def reasoning_request(rid):
    return Request(rid=rid, prompt_len=8, reasoning_len=50, answer_len=10)


@pytest.fixture
def monitor():
    return InstanceMonitor(SLOConfig())


class TestLeastKV:
    def test_picks_smallest_footprint(self):
        instances = [
            instance_with_kv(0, 500),
            instance_with_kv(1, 100),
            instance_with_kv(2, 300),
        ]
        req = reasoning_request(1)
        assert least_kv_placement(instances, req, 0.0).iid == 1

    def test_tie_breaks_by_id(self):
        instances = [instance_with_kv(0, 96), instance_with_kv(1, 96)]
        assert least_kv_placement(instances, reasoning_request(1), 0.0).iid == 0

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            least_kv_placement([], reasoning_request(1), 0.0)


class TestStarvation:
    def test_keeping_pace_not_starving(self, monitor):
        req = answering_request(1, first_answer_t=0.0, tokens=30)
        # At t=1.0 the user expects 11 tokens; 30 were generated.
        assert not answering_starving(req, 1.0, monitor.slo)

    def test_lagging_generation_starves(self, monitor):
        req = answering_request(1, first_answer_t=0.0, tokens=5)
        # At t=2.0 the user expects 21 tokens; only 5 exist.
        assert answering_starving(req, 2.0, monitor.slo)

    def test_pending_first_token_judged_by_ttfat(self, monitor):
        req = answering_request(1, reasoning_end_t=0.0)
        assert not answering_starving(req, 0.1, monitor.slo)
        assert answering_starving(req, 0.3, monitor.slo)

    def test_no_reasoning_end_means_fine(self, monitor):
        req = Request(rid=1, prompt_len=8, reasoning_len=5, answer_len=5)
        assert not answering_starving(req, 100.0, monitor.slo)


class TestAlgorithm1:
    def test_prefers_slo_ok_instance_with_least_kv(self, monitor):
        ok_small = instance_with_kv(0, 100)
        ok_big = instance_with_kv(1, 500)
        violating = instance_with_kv(2, 10)
        starving = answering_request(9, first_answer_t=0.0, tokens=1)
        violating.requests.add(starving)
        placement = ReasoningPlacement(monitor)
        # At t=5 the starving request lags badly: instance 2 is excluded
        # even though it has the least KV.
        chosen = placement.select(
            [ok_small, ok_big, violating], reasoning_request(1), 5.0
        )
        assert chosen.iid == 0

    def test_falls_back_to_all_when_every_instance_violates(self, monitor):
        insts = [instance_with_kv(0, 500), instance_with_kv(1, 100)]
        for inst in insts:
            bad = answering_request(90 + inst.iid, first_answer_t=0.0, tokens=1)
            inst.requests.add(bad)
        placement = ReasoningPlacement(monitor)
        chosen = placement.select(insts, reasoning_request(1), 5.0)
        assert chosen.iid == 1  # min m_i among all

    def test_empty_pool_rejected(self, monitor):
        with pytest.raises(ValueError):
            ReasoningPlacement(monitor).select([], reasoning_request(1), 0.0)


class TestAlgorithm2:
    def test_prefers_fewest_reasoning_requests(self, monitor):
        light = instance_with_kv(0, 0)
        heavy = instance_with_kv(1, 0)
        for i in range(3):
            heavy.requests.add(reasoning_request(200 + i))
        light.requests.add(reasoning_request(300))
        placement = AnsweringPlacement(monitor)
        chosen = placement.select([heavy, light], answering_request(1), 0.0)
        assert chosen.iid == 0  # light has r_i = 1 vs heavy's 3

    def test_fallback_uses_r_plus_a(self, monitor):
        # Both instances violate; the one with fewer reasoning + fresh
        # answering requests wins.
        a = instance_with_kv(0, 0)
        b = instance_with_kv(1, 0)
        for inst in (a, b):
            bad = answering_request(90 + inst.iid, first_answer_t=0.0, tokens=1)
            bad.level = 3  # not fresh: does not count toward a_i
            inst.requests.add(bad)
        a.requests.add(reasoning_request(201))
        # b hosts no reasoning but two fresh answering requests.
        for i in range(2):
            fresh = answering_request(400 + i, first_answer_t=4.9, tokens=60)
            fresh.level = 0
            b.requests.add(fresh)
        placement = AnsweringPlacement(monitor)
        chosen = placement.select([a, b], answering_request(1), 5.0)
        assert chosen.iid == 0  # r+a: a = 1+0... b = 0+2

    def test_empty_pool_rejected(self, monitor):
        with pytest.raises(ValueError):
            AnsweringPlacement(monitor).select([], answering_request(1), 0.0)


class TestMonitorCensus:
    def test_counts(self, monitor):
        inst = instance_with_kv(0, 0)
        inst.requests.add(reasoning_request(1))
        fresh = answering_request(2, first_answer_t=0.0, tokens=100)
        inst.requests.add(fresh)
        stale = answering_request(3, first_answer_t=0.0, tokens=100)
        stale.level = 2
        inst.requests.add(stale)
        assert monitor.reasoning_count(inst) == 1
        assert monitor.fresh_answering_count(inst) == 1

    def test_slo_ok_ignores_reasoning_requests(self, monitor):
        inst = instance_with_kv(0, 0)
        inst.requests.add(reasoning_request(1))
        assert monitor.answering_slo_ok(inst, 100.0)

    def test_slo_not_ok_with_starving_answer(self, monitor):
        inst = instance_with_kv(0, 0)
        inst.requests.add(answering_request(1, first_answer_t=0.0, tokens=1))
        assert not monitor.answering_slo_ok(inst, 5.0)

    def test_kv_footprint_reads_pool(self, monitor):
        inst = instance_with_kv(0, 256)
        assert monitor.kv_footprint(inst) == 256


class TestAdaptiveMigration:
    def migrating_request(self, kv=1000, remaining=400):
        req = Request(
            rid=1, prompt_len=100, reasoning_len=900, answer_len=remaining
        )
        req.generated_tokens = 900
        req.kv_tokens = kv
        req.phase = __import__(
            "repro.workload.request", fromlist=["Phase"]
        ).Phase.ANSWERING
        return req

    def test_same_instance_never_migrates(self):
        policy = AdaptiveMigrationPolicy()
        inst = instance_with_kv(0, 0)
        req = self.migrating_request()
        assert not policy.should_migrate(req, inst, inst)

    def test_migrates_when_target_has_room(self):
        policy = AdaptiveMigrationPolicy(growth_headroom_tokens=500)
        src = instance_with_kv(0, 0, capacity=2048)
        dst = instance_with_kv(1, 0, capacity=100_000)
        req = self.migrating_request(kv=1000, remaining=400)
        assert policy.should_migrate(req, src, dst)

    def test_stays_home_when_target_full_and_source_roomy(self):
        policy = AdaptiveMigrationPolicy(growth_headroom_tokens=500)
        src = instance_with_kv(0, 0, capacity=100_000)
        dst = instance_with_kv(1, 99_984, capacity=100_000)
        req = self.migrating_request(kv=1000, remaining=400)
        assert not policy.should_migrate(req, src, dst)

    def test_migrates_anyway_when_source_also_full(self):
        policy = AdaptiveMigrationPolicy(growth_headroom_tokens=500)
        src = instance_with_kv(0, 99_984, capacity=100_000)
        dst = instance_with_kv(1, 99_984, capacity=100_000)
        req = self.migrating_request(kv=1000, remaining=400)
        assert policy.should_migrate(req, src, dst)

    def test_disabled_policy_always_migrates(self):
        policy = AdaptiveMigrationPolicy(enabled=False)
        src = instance_with_kv(0, 0, capacity=100_000)
        dst = instance_with_kv(1, 99_984, capacity=100_000)
        req = self.migrating_request()
        assert policy.should_migrate(req, src, dst)

    def test_growth_need_capped_by_remaining(self):
        policy = AdaptiveMigrationPolicy(growth_headroom_tokens=500)
        req = self.migrating_request(kv=1000, remaining=10)
        # target must hold kv + min(500, remaining) = 1010 tokens
        dst = instance_with_kv(1, 0, capacity=1024)
        assert policy.target_has_room(dst, req)
