"""Shared fixtures: standalone instances driven by a unit-cost model."""

from __future__ import annotations

import pytest

from repro.config import InstanceConfig, SchedulerConfig
from repro.perfmodel.unit import UnitPerfModel
from repro.schedulers.base import IntraScheduler
from repro.serving.instance import ServingInstance
from repro.sim.engine import SimulationEngine
from repro.sim.events import EventKind


def build_instance(
    scheduler: IntraScheduler,
    capacity_tokens: int = 64,
    cpu_tokens: int = 10_000,
    decode_step_s: float = 1.0,
    quantum: int = 4,
    swap_s_per_token: float = 0.0,
) -> tuple[SimulationEngine, ServingInstance]:
    """A single instance wired to its own engine, unit-cost latencies."""
    engine = SimulationEngine()
    config = InstanceConfig(
        kv_capacity_tokens=capacity_tokens,
        cpu_kv_bytes=cpu_tokens * InstanceConfig().model.kv_bytes_per_token,
        scheduler=SchedulerConfig(token_quantum=quantum),
    )
    perf = UnitPerfModel(
        decode_step_s=decode_step_s, swap_s_per_token=swap_s_per_token
    )
    inst = ServingInstance(
        iid=0, config=config, perf=perf, engine=engine, scheduler=scheduler
    )
    engine.register(
        EventKind.STEP_COMPLETE, lambda now, payload: payload.on_step_complete(now)
    )
    return engine, inst


@pytest.fixture
def run_to_completion():
    """Drive an instance's engine until it drains."""

    def _run(engine: SimulationEngine):
        engine.run()

    return _run
