"""Small-scale integration tests of the paper's key phenomena.

These distill the headline behaviours into fast, deterministic scenarios:
head-of-line blocking under FCFS, quantum preemption under RR, PASCAL's
reasoning-first memory priority, demotion, and phase-boundary migration.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, InstanceConfig, SchedulerConfig
from repro.metrics.summary import percentile
from repro.perfmodel.unit import UnitPerfModel
from repro.workload.request import Phase, Request


def cluster_of(policy, n_instances=1, capacity=400, quantum=50,
               demotion=10_000, decode_s=0.05):
    config = ClusterConfig(
        n_instances=n_instances,
        instance=InstanceConfig(
            kv_capacity_tokens=capacity,
            scheduler=SchedulerConfig(
                token_quantum=quantum,
                demotion_threshold_tokens=demotion,
            ),
        ),
    )
    return Cluster(config, policy=policy, perf=UnitPerfModel(decode_s))


def mixed_requests(n_long=4, n_short=8):
    """Long reasoning requests grow large before short ones arrive.

    The shorts land at t=5, by which time the long requests' KV caches
    have grown enough to saturate a 400-token pool — the memory-pressure
    precondition for head-of-line blocking.
    """
    requests = []
    rid = 0
    for i in range(n_long):
        requests.append(
            Request(rid=rid, prompt_len=16, reasoning_len=150, answer_len=20,
                    arrival_t=0.1 * i)
        )
        rid += 1
    for i in range(n_short):
        requests.append(
            Request(rid=rid, prompt_len=16, reasoning_len=20, answer_len=20,
                    arrival_t=5.0 + 0.1 * i)
        )
        rid += 1
    return requests


def short_ttfts(requests):
    return [r.ttft() for r in requests if r.reasoning_len == 20]


class TestHeadOfLineBlocking:
    def test_fcfs_short_requests_wait_behind_long(self):
        fcfs = cluster_of("fcfs")
        fcfs_reqs = mixed_requests()
        fcfs.run_trace(fcfs_reqs)

        rr = cluster_of("rr")
        rr_reqs = mixed_requests()
        rr.run_trace(rr_reqs)

        # RR frees the short requests from waiting behind the long ones
        # (by a wide margin: one quantum vs full completions).
        assert percentile(short_ttfts(rr_reqs), 50) < 0.5 * percentile(
            short_ttfts(fcfs_reqs), 50
        )

    def test_pascal_beats_fcfs_for_short_reasoning(self):
        pascal = cluster_of("pascal")
        pascal_reqs = mixed_requests()
        pascal.run_trace(pascal_reqs)

        fcfs = cluster_of("fcfs")
        fcfs_reqs = mixed_requests()
        fcfs.run_trace(fcfs_reqs)

        assert percentile(short_ttfts(pascal_reqs), 50) < percentile(
            short_ttfts(fcfs_reqs), 50
        )

    def test_single_instance_pascal_delays_answering_behind_reasoning(self):
        # Without a migration escape hatch, PASCAL's strict band priority
        # makes transitioned shorts wait for reasoning work — the paper's
        # motivation for inter-instance migration (Figure 13).
        pascal = cluster_of("pascal")
        pascal_reqs = mixed_requests()
        pascal.run_trace(pascal_reqs)

        rr = cluster_of("rr")
        rr_reqs = mixed_requests()
        rr.run_trace(rr_reqs)

        pascal_ttfat = [
            r.ttfat() for r in pascal_reqs if r.reasoning_len == 20
        ]
        rr_ttfat = [r.ttfat() for r in rr_reqs if r.reasoning_len == 20]
        assert percentile(pascal_ttfat, 50) >= percentile(rr_ttfat, 50)


class TestReasoningFirstMemory:
    def test_reasoning_phase_uninterrupted_under_pascal(self):
        # One answering-heavy resident plus a stream of reasoning requests:
        # PASCAL must never preempt reasoning for answering.
        cluster = cluster_of("pascal", capacity=600)
        requests = mixed_requests(n_long=3, n_short=6)
        cluster.run_trace(requests)
        for req in requests:
            # Preemption may delay ANSWERING, never active REASONING after
            # admission beyond what memory forces for peers.
            assert req.finished
        reasoning_preempted = sum(
            r.phase_time(Phase.REASONING, "preempted") for r in requests
        )
        answering_preempted = sum(
            r.phase_time(Phase.ANSWERING, "preempted") for r in requests
        )
        assert answering_preempted >= reasoning_preempted


class TestDemotion:
    def test_giant_reasoning_request_demoted(self):
        cluster = cluster_of(
            "pascal", capacity=1000, quantum=50, demotion=100
        )
        giant = Request(rid=0, prompt_len=16, reasoning_len=400, answer_len=10)
        small = Request(
            rid=1, prompt_len=16, reasoning_len=30, answer_len=10,
            arrival_t=0.5,
        )
        cluster.run_trace([giant, small])
        assert giant.demoted
        assert not small.demoted
        assert giant.finished and small.finished


class TestMigrationAtBoundary:
    def test_answering_moves_to_least_reasoning_instance(self):
        cluster = cluster_of("pascal-nonadaptive", n_instances=2,
                             capacity=2000)
        # Saturate instance 0 with reasoning work; a transitioning request
        # should flee to instance 1.
        requests = [
            Request(rid=i, prompt_len=16, reasoning_len=60, answer_len=40,
                    arrival_t=0.01 * i)
            for i in range(6)
        ]
        cluster.run_trace(requests)
        migrated = [r for r in requests if r.n_migrations > 0]
        assert migrated
        for req in migrated:
            assert req.finished
            assert len(req.answer_token_times) == req.answer_len

    def test_phase_transition_intervals_accounted(self):
        cluster = cluster_of("pascal-nonadaptive", n_instances=2,
                             capacity=2000)
        requests = [
            Request(rid=i, prompt_len=16, reasoning_len=60, answer_len=40,
                    arrival_t=0.01 * i)
            for i in range(6)
        ]
        cluster.run_trace(requests)
        for req in requests:
            total = sum(req.breakdown.values())
            assert total == pytest.approx(req.e2e_latency(), rel=1e-6)


class TestQuantumBehaviour:
    def test_smaller_quantum_preempts_more(self):
        coarse = cluster_of("rr", capacity=600, quantum=100)
        coarse_reqs = mixed_requests(n_long=4, n_short=4)
        coarse.run_trace(coarse_reqs)

        fine = cluster_of("rr", capacity=600, quantum=25)
        fine_reqs = mixed_requests(n_long=4, n_short=4)
        fine.run_trace(fine_reqs)

        assert sum(r.n_preemptions for r in fine_reqs) >= sum(
            r.n_preemptions for r in coarse_reqs
        )


class TestOracleReference:
    def test_oracle_is_lower_bound_on_reasoning_latency(self):
        oracle = cluster_of("oracle", capacity=1_000_000)
        oracle_reqs = mixed_requests()
        oracle.run_trace(oracle_reqs)

        fcfs = cluster_of("fcfs", capacity=800)
        fcfs_reqs = mixed_requests()
        fcfs.run_trace(fcfs_reqs)

        for o_req, f_req in zip(oracle_reqs, fcfs_reqs):
            assert o_req.reasoning_latency() <= f_req.reasoning_latency() + 1e-9
