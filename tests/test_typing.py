"""The CI type gate, runnable locally when mypy is installed.

``repro.analysis`` and ``repro.api`` are the strictly-typed packages
(see ``[tool.mypy]`` in pyproject.toml); everything else is exempt until
it is brought up to the same bar.  mypy is deliberately not a runtime or
test dependency — the simulator stays pure-stdlib — so this test skips
cleanly where mypy is absent and CI installs it explicitly.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

pytest.importorskip("mypy")

REPO = Path(__file__).resolve().parent.parent


def test_strict_packages_typecheck():
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "-p", "repro.analysis",
         "-p", "repro.api"],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
