"""The pairwise learning-to-rank predictor (``predictor="pairwise-ltr"``).

Unit tests for the RankNet-style online ranker: it must learn orderings
from pairwise completions, score prequentially (pre-update), inherit the
flat-EWMA value chain unchanged, and skip ties.
"""

from __future__ import annotations

import random

import pytest

from repro.config import ExtensionPolicyConfig
from repro.core.extensions import (
    PairwiseLTRPredictor,
    ReasoningLengthPredictor,
    make_predictor,
)
from repro.workload.request import Request


def req(dataset: str, rid: int = 0, prompt_len: int = 10) -> Request:
    return Request(
        rid=rid, prompt_len=prompt_len, reasoning_len=10, answer_len=5,
        dataset=dataset,
    )


def train(predictor, stream, seed=0):
    """Feed (dataset, value) observations in interleaved order."""
    rng = random.Random(seed)
    shuffled = list(stream)
    rng.shuffle(shuffled)
    for i, (dataset, value) in enumerate(shuffled):
        predictor.observe(req(dataset, rid=i), value)


class TestRanking:
    def test_learns_dataset_ordering(self):
        predictor = PairwiseLTRPredictor()
        stream = [("short", 50 + i % 7) for i in range(60)]
        stream += [("long", 4000 + 13 * (i % 5)) for i in range(60)]
        train(predictor, stream)
        assert predictor.rank_of(req("long")) > predictor.rank_of(req("short"))

    def test_untrained_score_is_zero(self):
        predictor = PairwiseLTRPredictor()
        assert predictor.rank_of(req("anything")) == 0.0

    def test_first_rank_pair_scored_pre_update(self):
        # Prequential contract: the recorded score is what the model said
        # *before* seeing the observation — the untrained model says 0.
        predictor = PairwiseLTRPredictor()
        predictor.observe(req("d", rid=0), 500)
        ((score, value),) = predictor.rank_pairs["d"]
        assert score == 0.0
        assert value == 500.0

    def test_later_rank_pairs_reflect_training(self):
        predictor = PairwiseLTRPredictor()
        stream = [("short", 50), ("long", 4000)] * 40
        train(predictor, stream)
        probe = req("long", rid=999)
        before = predictor.rank_of(probe)
        predictor.observe(probe, 4000)
        assert predictor.rank_pairs["long"][-1][0] == pytest.approx(before)

    def test_single_observation_trains_nothing(self):
        # No buffered partner yet: weights stay empty after the first obs.
        predictor = PairwiseLTRPredictor()
        predictor.observe(req("d", rid=0), 500)
        assert predictor._weights == {}

    def test_ties_are_skipped(self):
        # Equal observed lengths carry no ordering signal; pairing them
        # must not move the weights.
        predictor = PairwiseLTRPredictor()
        for i in range(10):
            predictor.observe(req("d", rid=i), 100)
        assert predictor._weights == {}

    def test_ring_buffer_stays_bounded(self):
        predictor = PairwiseLTRPredictor()
        for i in range(3 * PairwiseLTRPredictor.BUFFER_SIZE):
            predictor.observe(req("d", rid=i), 10 + i)
        assert len(predictor._examples) == PairwiseLTRPredictor.BUFFER_SIZE

    def test_scores_are_deterministic(self):
        stream = [("a", 100 + i % 11) for i in range(40)]
        stream += [("b", 900 + i % 17) for i in range(40)]
        first = PairwiseLTRPredictor()
        second = PairwiseLTRPredictor()
        train(first, stream, seed=3)
        train(second, stream, seed=3)
        assert first.rank_of(req("a")) == second.rank_of(req("a"))
        assert first._weights == second._weights


class TestValueFallback:
    def test_predict_total_matches_flat_ewma(self):
        # Value queries are inherited verbatim: same stream, same alpha,
        # same estimates as the plain EWMA — ranking rides on top.
        ltr = PairwiseLTRPredictor(alpha=0.5, prior_tokens=300)
        flat = ReasoningLengthPredictor(alpha=0.5, prior_tokens=300)
        for i, value in enumerate((100, 140, 90, 210, 160)):
            ltr.observe(req("d", rid=i), value)
            flat.observe(req("d", rid=i), value)
        probe = req("d", rid=99)
        assert ltr.predict_total(probe) == flat.predict_total(probe)
        assert ltr.abs_errors["d"] == flat.abs_errors["d"]


class TestFactory:
    def test_make_predictor_threads_knobs(self):
        knobs = ExtensionPolicyConfig(
            predictor="pairwise-ltr",
            predictor_alpha=0.125,
            predictor_prior_tokens=321,
        )
        predictor = make_predictor(knobs)
        assert isinstance(predictor, PairwiseLTRPredictor)
        assert predictor.alpha == 0.125
        assert predictor.prior_tokens == 321
