"""Trace replay: JSONL round-trip, loader validation, sweep parity."""

import json

import pytest

from repro.harness.replay import replay_cells, trace_compare
from repro.harness.runner import (
    ReplayCell,
    ReplaySettings,
    clear_caches,
    run_cell,
    run_replay,
    sweep,
)
from repro.workload.datasets import ALPACA_EVAL, reasoning_heavy_mix
from repro.workload.synthetic import answering_phase_workload
from repro.workload.trace import (
    ReplayTraceConfig,
    TraceConfig,
    TraceFormatError,
    build_replay_trace,
    build_trace,
    dump_trace,
    export_trace,
    load_trace,
    scale_arrival_rate,
)

HEADER = '{"format": "pascal-trace", "version": 1}'
RECORD = (
    '{"answer_len": 4, "arrival_t": %s, "id": %d, '
    '"prompt_len": 8, "reasoning_len": 2}'
)


def request_view(requests):
    """The static identity of a request list (what replay must preserve)."""
    return [
        (
            r.rid,
            r.arrival_t,
            r.prompt_len,
            r.reasoning_len,
            r.answer_len,
            r.dataset,
            r.skip_prefill,
        )
        for r in requests
    ]


def write_lines(path, lines):
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return str(path)


def synthesized(n=12, rate=2.0, seed=3):
    return build_trace(
        TraceConfig(
            dataset=ALPACA_EVAL,
            n_requests=n,
            arrival_rate_per_s=rate,
            seed=seed,
        )
    )


class TestRoundTrip:
    def test_export_load_identical_requests(self, tmp_path):
        trace = synthesized()
        path = tmp_path / "trace.jsonl"
        export_trace(trace, path)
        assert request_view(load_trace(path)) == request_view(trace)

    def test_export_load_export_byte_identical(self, tmp_path):
        trace = synthesized()
        first = tmp_path / "first.jsonl"
        second = tmp_path / "second.jsonl"
        export_trace(trace, first)
        export_trace(load_trace(first), second)
        assert first.read_bytes() == second.read_bytes()

    def test_mixture_round_trip_keeps_dataset_tags(self, tmp_path):
        trace = build_trace(
            TraceConfig(reasoning_heavy_mix(), 20, 2.0, seed=5)
        )
        path = tmp_path / "mix.jsonl"
        export_trace(trace, path)
        loaded = load_trace(path)
        assert {r.dataset for r in loaded} == {r.dataset for r in trace}
        assert request_view(loaded) == request_view(trace)

    def test_export_sorts_simulated_completion_order(self, tmp_path):
        # Record mode accepts requests in any order (e.g. completion order
        # straight off cluster.completed) and writes arrival order.
        trace = synthesized()
        shuffled = list(reversed(trace))
        path = tmp_path / "sorted.jsonl"
        export_trace(shuffled, path)
        assert request_view(load_trace(path)) == request_view(trace)

    def test_skip_prefill_round_trip(self, tmp_path):
        import random

        trace = answering_phase_workload(
            5, [0.0, 0.5, 1.0, 1.5, 2.0], random.Random(1)
        )
        path = tmp_path / "answering.jsonl"
        export_trace(trace, path)
        loaded = load_trace(path)
        assert request_view(loaded) == request_view(trace)
        # The precomputed-reasoning marker must be re-applied on load.
        assert all(r.reasoning_end_t == r.arrival_t for r in loaded)

    def test_load_returns_fresh_objects_each_call(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        export_trace(synthesized(), path)
        first = load_trace(path)
        second = load_trace(path)
        assert all(a is not b for a, b in zip(first, second))

    def test_dump_trace_ends_with_newline(self):
        assert dump_trace(synthesized()).endswith("\n")


class TestLoaderValidation:
    def test_malformed_json_names_file_and_line(self, tmp_path):
        path = write_lines(
            tmp_path / "bad.jsonl", [HEADER, RECORD % ("0.0", 0), "{oops"]
        )
        with pytest.raises(TraceFormatError, match=r"bad\.jsonl:3: invalid JSON"):
            load_trace(path)

    def test_missing_header_rejected(self, tmp_path):
        path = write_lines(tmp_path / "t.jsonl", [RECORD % ("0.0", 0)])
        with pytest.raises(TraceFormatError, match="header"):
            load_trace(path)

    def test_unsupported_version_rejected(self, tmp_path):
        path = write_lines(
            tmp_path / "t.jsonl",
            ['{"format": "pascal-trace", "version": 99}'],
        )
        with pytest.raises(TraceFormatError, match="version 99"):
            load_trace(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        with pytest.raises(TraceFormatError, match="empty trace"):
            load_trace(path)

    def test_missing_field_rejected(self, tmp_path):
        path = write_lines(
            tmp_path / "t.jsonl",
            [HEADER, '{"arrival_t": 0.0, "prompt_len": 8, "reasoning_len": 2}'],
        )
        with pytest.raises(TraceFormatError, match="missing required.*answer_len"):
            load_trace(path)

    def test_unknown_field_rejected(self, tmp_path):
        record = json.dumps(
            {
                "arrival_t": 0.0,
                "prompt_len": 8,
                "reasoning_len": 2,
                "answer_len": 4,
                "tempersture": 0.7,
            }
        )
        path = write_lines(tmp_path / "t.jsonl", [HEADER, record])
        with pytest.raises(TraceFormatError, match="unknown field.*tempersture"):
            load_trace(path)

    @pytest.mark.parametrize(
        "field,value,match",
        [
            ("prompt_len", 0, "prompt_len must be >= 1"),
            ("prompt_len", -3, "prompt_len must be >= 1"),
            ("reasoning_len", -1, "reasoning_len must be >= 0"),
            ("answer_len", 0, "answer_len must be >= 1"),
            ("arrival_t", -0.5, "arrival_t must be finite and >= 0"),
            ("prompt_len", 7.5, "prompt_len must be an integer"),
            ("arrival_t", "soon", "arrival_t must be a number"),
        ],
    )
    def test_bad_values_rejected_with_line_number(
        self, tmp_path, field, value, match
    ):
        record = {
            "arrival_t": 0.0,
            "prompt_len": 8,
            "reasoning_len": 2,
            "answer_len": 4,
        }
        record[field] = value
        path = write_lines(
            tmp_path / "t.jsonl",
            [HEADER, RECORD % ("0.0", 0), json.dumps(record)],
        )
        with pytest.raises(TraceFormatError, match=match) as exc:
            load_trace(path)
        assert exc.value.line_no == 3

    @pytest.mark.parametrize("literal", ["NaN", "Infinity", "-Infinity"])
    def test_nonfinite_arrival_rejected(self, tmp_path, literal):
        # json.loads accepts these literals; NaN in particular slips past
        # every `<` comparison and would poison the simulation clock.
        record = (
            '{"answer_len": 4, "arrival_t": %s, "prompt_len": 8, '
            '"reasoning_len": 2}' % literal
        )
        path = write_lines(tmp_path / "t.jsonl", [HEADER, record])
        with pytest.raises(TraceFormatError, match="arrival_t must be finite"):
            load_trace(path)

    def test_out_of_order_arrivals_rejected(self, tmp_path):
        path = write_lines(
            tmp_path / "t.jsonl",
            [HEADER, RECORD % ("2.0", 0), RECORD % ("1.0", 1)],
        )
        with pytest.raises(TraceFormatError, match="out of order") as exc:
            load_trace(path)
        assert exc.value.line_no == 3

    def test_duplicate_ids_rejected(self, tmp_path):
        path = write_lines(
            tmp_path / "t.jsonl",
            [HEADER, RECORD % ("0.0", 7), RECORD % ("1.0", 7)],
        )
        with pytest.raises(TraceFormatError, match="duplicate request id 7"):
            load_trace(path)

    def test_skip_prefill_with_reasoning_rejected(self, tmp_path):
        record = json.dumps(
            {
                "arrival_t": 0.0,
                "prompt_len": 8,
                "reasoning_len": 2,
                "answer_len": 4,
                "skip_prefill": True,
            }
        )
        path = write_lines(tmp_path / "t.jsonl", [HEADER, record])
        with pytest.raises(TraceFormatError, match="skip_prefill"):
            load_trace(path)

    def test_format_error_pickles_round_trip(self):
        # Workers raise TraceFormatError across process boundaries; a
        # non-picklable exception deadlocks the multiprocessing pool.
        import pickle

        err = TraceFormatError("/tmp/t.jsonl", 3, "bad value")
        clone = pickle.loads(pickle.dumps(err))
        assert str(clone) == str(err)
        assert (clone.path, clone.line_no, clone.message) == (
            "/tmp/t.jsonl",
            3,
            "bad value",
        )

    def test_record_line_not_an_object_rejected(self, tmp_path):
        path = write_lines(tmp_path / "t.jsonl", [HEADER, "[1, 2, 3]"])
        with pytest.raises(TraceFormatError, match="expected a JSON object"):
            load_trace(path)

    def test_blank_lines_tolerated(self, tmp_path):
        path = write_lines(
            tmp_path / "t.jsonl", [HEADER, "", RECORD % ("0.0", 0), ""]
        )
        assert len(load_trace(path)) == 1

    def test_ids_default_to_position(self, tmp_path):
        record = (
            '{"answer_len": 4, "arrival_t": 0.0, "prompt_len": 8, '
            '"reasoning_len": 2}'
        )
        path = write_lines(tmp_path / "t.jsonl", [HEADER, record, record])
        assert [r.rid for r in load_trace(path)] == [0, 1]


class TestRateScaling:
    def test_scale_compresses_arrivals(self):
        trace = synthesized()
        scaled = scale_arrival_rate(trace, 2.0)
        for original, clone in zip(trace, scaled):
            assert clone.arrival_t == pytest.approx(original.arrival_t / 2.0)
            assert clone.rid == original.rid

    def test_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scale_arrival_rate(synthesized(2), 0.0)
        with pytest.raises(ValueError):
            ReplayTraceConfig(path="x.jsonl", rate_scale=-1.0)

    def test_scale_rejects_nonfinite(self):
        for bad in (float("nan"), float("inf")):
            with pytest.raises(ValueError, match="finite"):
                scale_arrival_rate(synthesized(2), bad)
            with pytest.raises(ValueError, match="finite"):
                ReplayTraceConfig(path="x.jsonl", rate_scale=bad)

    def test_build_replay_trace_applies_scale(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace = synthesized()
        export_trace(trace, path)
        slow = build_replay_trace(ReplayTraceConfig(str(path), rate_scale=0.5))
        assert slow[-1].arrival_t == pytest.approx(trace[-1].arrival_t * 2.0)

    def test_config_name_encodes_scale(self):
        assert ReplayTraceConfig("/tmp/prod.jsonl").name == "prod"
        assert (
            ReplayTraceConfig("/tmp/prod.jsonl", rate_scale=2.0).name
            == "prod@x2"
        )


@pytest.fixture
def small_trace(tmp_path):
    path = tmp_path / "replay.jsonl"
    export_trace(synthesized(n=16, rate=3.0, seed=9), path)
    return ReplayTraceConfig(path=str(path))


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


SMALL_SETTINGS = ReplaySettings(n_instances=2, kv_capacity_tokens=8000)


class TestReplayRunner:
    def test_run_replay_drains_and_collects(self, small_trace):
        metrics = run_replay(small_trace, "fcfs", SMALL_SETTINGS)
        assert metrics.policy == "fcfs"
        assert len(metrics.requests) == 16
        assert all(r.finished for r in metrics.requests)

    def test_run_replay_memoized(self, small_trace):
        first = run_replay(small_trace, "fcfs", SMALL_SETTINGS)
        second = run_replay(small_trace, "fcfs", SMALL_SETTINGS)
        assert first is second

    def test_rewritten_trace_file_not_served_stale(self, tmp_path):
        # The cache key includes the file's identity, not just its path.
        path = tmp_path / "rewrite.jsonl"
        export_trace(synthesized(n=8, seed=1), path)
        trace = ReplayTraceConfig(path=str(path))
        before = run_replay(trace, "fcfs", SMALL_SETTINGS)
        export_trace(synthesized(n=12, seed=2), path)
        after = run_replay(trace, "fcfs", SMALL_SETTINGS)
        assert len(before.requests) == 8
        assert len(after.requests) == 12

    def test_policies_see_identical_workloads(self, small_trace):
        fcfs = run_replay(small_trace, "fcfs", SMALL_SETTINGS)
        rr = run_replay(small_trace, "rr", SMALL_SETTINGS)
        assert request_view(
            sorted(fcfs.requests, key=lambda r: r.rid)
        ) == request_view(sorted(rr.requests, key=lambda r: r.rid))

    def test_rate_scale_changes_the_run(self, small_trace):
        base = run_replay(small_trace, "fcfs", SMALL_SETTINGS)
        hot = run_replay(
            ReplayTraceConfig(small_trace.path, rate_scale=4.0),
            "fcfs",
            SMALL_SETTINGS,
        )
        base_last = max(r.arrival_t for r in base.requests)
        hot_last = max(r.arrival_t for r in hot.requests)
        assert hot_last == pytest.approx(base_last / 4.0)

    def test_run_cell_dispatches_replay(self, small_trace):
        cell = ReplayCell(small_trace, "fcfs", SMALL_SETTINGS)
        assert run_cell(cell) is run_replay(
            small_trace, "fcfs", SMALL_SETTINGS
        )


class TestReplaySweep:
    def cells(self, trace):
        return [
            ReplayCell(trace, policy, SMALL_SETTINGS)
            for policy in ("fcfs", "rr", "pascal")
        ]

    def run_view(self, metrics):
        return sorted(
            (r.rid, r.done_t, r.n_preemptions) for r in metrics.requests
        )

    def test_serial_sweep_covers_all_cells(self, small_trace):
        results = sweep(self.cells(small_trace), jobs=1)
        assert set(results) == set(self.cells(small_trace))
        for metrics in results.values():
            assert len(metrics.requests) == 16

    def test_parallel_sweep_matches_serial(self, small_trace):
        serial = {
            cell: self.run_view(run_cell(cell))
            for cell in self.cells(small_trace)
        }
        clear_caches()
        parallel = {
            cell: self.run_view(metrics)
            for cell, metrics in sweep(self.cells(small_trace), jobs=2).items()
        }
        assert serial == parallel

    def test_parallel_sweep_seeds_the_cache(self, small_trace):
        sweep(self.cells(small_trace), jobs=2)
        first = run_replay(small_trace, "pascal", SMALL_SETTINGS)
        second = run_replay(small_trace, "pascal", SMALL_SETTINGS)
        assert first is second

    def test_mixed_cell_kinds_sweep_together(self, small_trace):
        from repro.harness.runner import CharCell, CharacterizationSettings

        char_settings = CharacterizationSettings(
            n_requests=10, reasoning_rate_per_s=0.5, answering_rate_per_s=0.5
        )
        cells = [
            ReplayCell(small_trace, "fcfs", SMALL_SETTINGS),
            CharCell("reasoning", "fcfs", char_settings),
        ]
        results = sweep(cells, jobs=2)
        assert set(results) == set(cells)


class TestTraceCompare:
    def test_table_has_one_row_per_policy(self, small_trace):
        result = trace_compare(
            small_trace,
            policies=("fcfs", "rr", "pascal"),
            settings=SMALL_SETTINGS,
            jobs=1,
        )
        assert result.column("policy") == ["fcfs", "rr", "pascal"]
        assert all(n == 16 for n in result.column("n"))
        assert result.render()

    def test_defaults_to_registered_policies_minus_oracle(self, small_trace):
        # The oracle is only an upper bound with capacity sized to peak
        # demand; under a replay cluster's fixed capacity it would be a
        # mislabeled second FCFS row, so the default set excludes it.
        from repro.core.registry import policy_names

        cells = replay_cells(small_trace, settings=SMALL_SETTINGS)
        assert tuple(c.policy for c in cells) == tuple(
            n for n in policy_names() if n != "oracle"
        )
        explicit = replay_cells(
            small_trace, policies=("oracle",), settings=SMALL_SETTINGS
        )
        assert [c.policy for c in explicit] == ["oracle"]

    def test_unknown_policy_fails_fast(self, small_trace):
        with pytest.raises(ValueError, match="unknown policy"):
            replay_cells(
                small_trace, policies=("nope",), settings=SMALL_SETTINGS
            )
