"""Property-based, end-to-end cluster invariants.

Hypothesis drives random small workloads through every scheduling policy
and checks the conservation laws that must hold regardless of scheduling
decisions: every token generated exactly once, all memory returned, all
time accounted, QoE within bounds, and TTFT ordering against the oracle.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, InstanceConfig, SchedulerConfig
from repro.metrics.qoe import qoe_for_request
from repro.perfmodel.unit import UnitPerfModel
from repro.workload.request import Request

POLICIES = (
    "fcfs",
    "rr",
    "pascal",
    "pascal-nomigration",
    "pascal-nonadaptive",
    "phase-partitioned",
)


@st.composite
def small_workload(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    requests = []
    t = 0.0
    for rid in range(n):
        t += draw(
            st.floats(min_value=0.0, max_value=0.5, allow_nan=False)
        )
        requests.append(
            Request(
                rid=rid,
                prompt_len=draw(st.integers(min_value=1, max_value=40)),
                reasoning_len=draw(st.integers(min_value=0, max_value=60)),
                answer_len=draw(st.integers(min_value=1, max_value=60)),
                arrival_t=t,
            )
        )
    return requests


def run_policy(policy, requests):
    config = ClusterConfig(
        n_instances=2,
        instance=InstanceConfig(
            kv_capacity_tokens=2400,
            scheduler=SchedulerConfig(token_quantum=16),
        ),
    )
    cluster = Cluster(config, policy=policy, perf=UnitPerfModel(0.01))
    cluster.run_trace(requests)
    return cluster


class TestConservationLaws:
    @given(small_workload(), st.sampled_from(POLICIES))
    @settings(max_examples=60, deadline=None)
    def test_invariants_for_any_workload_and_policy(self, requests, policy):
        cluster = run_policy(policy, requests)

        # Everything drains.
        assert cluster.all_finished()

        for req in requests:
            # Token conservation: exactly the requested number generated.
            assert req.generated_tokens == req.total_decode_tokens
            assert len(req.answer_token_times) == req.answer_len
            # Timestamps are ordered.
            assert req.done_t >= req.arrival_t
            if req.reasoning_len > 0:
                assert req.reasoning_end_t is not None
                assert req.arrival_t <= req.reasoning_end_t <= req.done_t
            # Time accounting closes: buckets tile the sojourn.
            assert abs(sum(req.breakdown.values()) - req.e2e_latency()) < 1e-6
            # QoE is a valid score.
            score = qoe_for_request(req, 0.1)
            assert score is None or 0.0 <= score <= 1.0

        # Memory fully returned on every instance.
        for inst in cluster.instances:
            inst.pool.check_invariants()
            assert inst.pool.gpu_used_blocks == 0
            assert inst.pool.cpu_used_blocks == 0

        # Cluster token counters agree with per-request totals.
        generated = sum(i.tokens_generated for i in cluster.instances)
        assert generated == sum(r.total_decode_tokens for r in requests)

        # No migration left in flight.
        assert cluster.migrations.in_flight == 0

    @given(small_workload())
    @settings(max_examples=30, deadline=None)
    def test_oracle_ttft_lower_bounds_fcfs(self, requests):
        def clone(reqs):
            return [
                Request(
                    rid=r.rid,
                    prompt_len=r.prompt_len,
                    reasoning_len=r.reasoning_len,
                    answer_len=r.answer_len,
                    arrival_t=r.arrival_t,
                )
                for r in reqs
            ]

        oracle_config = ClusterConfig(
            n_instances=2,
            instance=InstanceConfig(kv_capacity_tokens=1_000_000),
        )
        oracle = Cluster(oracle_config, policy="oracle", perf=UnitPerfModel(0.01))
        oracle_reqs = clone(requests)
        oracle.run_trace(oracle_reqs)

        fcfs = run_policy("fcfs", clone(requests))
        fcfs_reqs = fcfs.completed

        oracle_by_rid = {r.rid: r for r in oracle_reqs}
        for req in fcfs_reqs:
            # Memory constraints can only delay, never accelerate, the
            # first answering token (both run identical per-step costs).
            assert oracle_by_rid[req.rid].ttft() <= req.ttft() + 1e-9
