"""Predictor-accuracy metrics: EWMA error tracking pinned, codecs lossless.

The ``length-predictive`` / ``tiered-express`` predictors report their
per-dataset absolute prediction error through
:attr:`RunMetrics.predictor_abs_errors`.  These tests pin the arithmetic
on a deterministic synthetic stream with a known distribution shift, and
verify the field survives every codec a result passes through — the
in-process dataclass, the disk-cache payload, and a store round-trip — so
no layer can silently drop predictor quality from a sweep.
"""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, InstanceConfig, SchedulerConfig
from repro.core.extensions import ReasoningLengthPredictor
from repro.harness import cache as result_cache
from repro.metrics.collector import RunMetrics
from repro.perfmodel.unit import UnitPerfModel
from repro.workload.request import Request


def req_for(dataset: str, rid: int = 0) -> Request:
    return Request(
        rid=rid, prompt_len=8, reasoning_len=10, answer_len=10, dataset=dataset
    )


def reference_ewma_errors(stream, alpha, prior):
    """Independent re-implementation of the predictor's error accounting."""
    estimate = None
    errors = []
    for value in stream:
        predicted = prior if estimate is None else estimate
        errors.append(abs(predicted - float(value)))
        estimate = (
            float(value)
            if estimate is None
            else estimate + alpha * (float(value) - estimate)
        )
    return errors


class TestErrorTracking:
    #: 60-token regime, then an abrupt shift to 300 tokens.
    STREAM = (60, 60, 60, 60, 300, 300, 300, 300)

    def predictor_after_stream(self):
        predictor = ReasoningLengthPredictor(alpha=0.5, prior_tokens=100)
        for i, value in enumerate(self.STREAM):
            predictor.observe(req_for("shifty", rid=i), value)
        return predictor

    def test_errors_match_reference_ewma(self):
        predictor = self.predictor_after_stream()
        expected = reference_ewma_errors(self.STREAM, alpha=0.5, prior=100)
        assert predictor.abs_errors["shifty"] == pytest.approx(expected)

    def test_pinned_error_values(self):
        # Hand-computed: prior 100 -> first error 40; EWMA snaps to 60;
        # the shift to 300 costs 240, then halves each observation.
        predictor = self.predictor_after_stream()
        assert predictor.abs_errors["shifty"] == pytest.approx(
            [40.0, 0.0, 0.0, 0.0, 240.0, 120.0, 60.0, 30.0]
        )

    def test_run_metrics_summaries_pinned(self):
        metrics = RunMetrics(
            policy="length-predictive",
            requests=[],
            predictor_abs_errors={
                "shifty": tuple(self.predictor_after_stream().abs_errors["shifty"])
            },
        )
        assert metrics.predictor_error_mean() == pytest.approx(61.25)
        assert metrics.predictor_error_mean("shifty") == pytest.approx(61.25)
        assert metrics.predictor_error_percentile(50) == pytest.approx(35.0)
        assert metrics.predictor_error_mean("unknown") is None
        ((dataset, n, err_mean, err_p90),) = metrics.predictor_error_rows()
        assert (dataset, n) == ("shifty", 8)
        assert err_mean == pytest.approx(61.25)
        assert err_p90 > err_mean

    def test_error_report_is_sorted_and_frozen(self):
        predictor = ReasoningLengthPredictor(alpha=0.5, prior_tokens=100)
        predictor.observe(req_for("zebra"), 10)
        predictor.observe(req_for("aardvark"), 20)
        report = predictor.error_report()
        assert list(report) == ["aardvark", "zebra"]
        assert all(isinstance(v, tuple) for v in report.values())

    def test_no_observations_reports_nothing(self):
        metrics = RunMetrics(policy="fcfs", requests=[])
        assert metrics.predictor_abs_errors == {}
        assert metrics.predictor_error_mean() is None
        assert metrics.predictor_error_percentile(90) is None
        assert metrics.predictor_error_rows() == []


class TestCodecsPreservePredictorErrors:
    def metrics(self) -> RunMetrics:
        return RunMetrics(
            policy="length-predictive",
            requests=[],
            throughput_tokens_per_s=12.5,
            predictor_abs_errors={"a": (40.0, 0.5), "b": (7.25,)},
        )

    def test_payload_codec_round_trips(self):
        metrics = self.metrics()
        payload = result_cache.metrics_to_payload(metrics)
        assert "predictor_abs_errors" in payload  # codec must carry it
        decoded = result_cache.metrics_from_payload(payload)
        assert decoded.predictor_abs_errors == metrics.predictor_abs_errors

    def test_decoder_rejects_payloads_missing_the_field(self):
        # A codec (or tampered entry) that drops the field must fail the
        # decode — the runner then treats it as a cache miss and recomputes
        # rather than serving silently-empty predictor columns.
        payload = result_cache.metrics_to_payload(self.metrics())
        del payload["predictor_abs_errors"]
        with pytest.raises(KeyError):
            result_cache.metrics_from_payload(payload)

    def test_disk_store_round_trips(self, tmp_path):
        store = result_cache.DiskCache("rw", tmp_path)
        metrics = self.metrics()
        payload = result_cache.metrics_to_payload(metrics)
        assert store.store("k" * 40, "eval", {"kind": "eval"}, payload)
        loaded = store.load("k" * 40, "eval")
        decoded = result_cache.metrics_from_payload(loaded)
        assert decoded.predictor_abs_errors == metrics.predictor_abs_errors

    def test_collect_populates_errors_from_a_real_run(self):
        config = ClusterConfig(
            n_instances=2,
            instance=InstanceConfig(
                kv_capacity_tokens=4000,
                scheduler=SchedulerConfig(token_quantum=50),
            ),
        )
        cluster = Cluster(
            config, policy="length-predictive", perf=UnitPerfModel(0.01)
        )
        requests = [
            Request(
                rid=i,
                prompt_len=8,
                reasoning_len=20,
                answer_len=10,
                arrival_t=0.2 * i,
                dataset="tiny",
            )
            for i in range(6)
        ]
        cluster.run_trace(requests)
        from repro.metrics.collector import collect

        metrics = collect(cluster)
        assert set(metrics.predictor_abs_errors) == {"tiny"}
        assert len(metrics.predictor_abs_errors["tiny"]) == 6
        # First prediction uses the 600-token prior against a 20-token
        # truth; every later one has converged (EWMA snaps on first obs).
        assert metrics.predictor_abs_errors["tiny"][0] == pytest.approx(580.0)
        assert metrics.predictor_error_mean() == pytest.approx(580.0 / 6)
        # ... and the full payload codec round-trips the real run.
        decoded = result_cache.metrics_from_payload(
            result_cache.metrics_to_payload(metrics)
        )
        assert decoded.predictor_abs_errors == metrics.predictor_abs_errors


class TestCodecsPreserveRankPairsAndDeferrals:
    """PR 9 payload fields: prequential rank pairs and deferral counts.

    Same strictness contract as ``predictor_abs_errors``: a payload that
    lacks either field is a decode failure (cache miss), never a silently
    empty column — that is what CACHE_VERSION 2 guarantees.
    """

    def metrics(self) -> RunMetrics:
        return RunMetrics(
            policy="speculative-replace",
            requests=[],
            predictor_rank_pairs={
                "a": ((100.0, 120.0), (300.0, 250.0)),
                "b": ((50.0, 55.0),),
            },
            n_deferrals=7,
        )

    def test_payload_codec_round_trips(self):
        metrics = self.metrics()
        payload = result_cache.metrics_to_payload(metrics)
        assert "predictor_rank_pairs" in payload
        assert payload["n_deferrals"] == 7
        decoded = result_cache.metrics_from_payload(payload)
        assert decoded.predictor_rank_pairs == metrics.predictor_rank_pairs
        assert decoded.n_deferrals == 7

    def test_decoder_rejects_payloads_missing_rank_pairs(self):
        payload = result_cache.metrics_to_payload(self.metrics())
        del payload["predictor_rank_pairs"]
        with pytest.raises(KeyError):
            result_cache.metrics_from_payload(payload)

    def test_decoder_rejects_payloads_missing_deferrals(self):
        payload = result_cache.metrics_to_payload(self.metrics())
        del payload["n_deferrals"]
        with pytest.raises(KeyError):
            result_cache.metrics_from_payload(payload)

    def test_json_round_trip_restores_tuple_shape(self):
        # Disk entries go through JSON, which turns the pair tuples into
        # lists; the decoder must restore hashable tuple-of-tuples.
        import json

        payload = json.loads(
            json.dumps(result_cache.metrics_to_payload(self.metrics()))
        )
        decoded = result_cache.metrics_from_payload(payload)
        assert decoded.predictor_rank_pairs == self.metrics().predictor_rank_pairs
        assert isinstance(decoded.predictor_rank_pairs["a"], tuple)
        assert isinstance(decoded.predictor_rank_pairs["a"][0], tuple)

    def test_collect_populates_rank_pairs_from_a_real_run(self):
        config = ClusterConfig(
            n_instances=2,
            instance=InstanceConfig(
                kv_capacity_tokens=4000,
                scheduler=SchedulerConfig(token_quantum=50),
            ),
        )
        cluster = Cluster(
            config, policy="length-predictive", perf=UnitPerfModel(0.01)
        )
        requests = [
            Request(
                rid=i,
                prompt_len=8,
                reasoning_len=20,
                answer_len=10,
                arrival_t=0.2 * i,
                dataset="tiny",
            )
            for i in range(6)
        ]
        cluster.run_trace(requests)
        from repro.metrics.collector import collect

        metrics = collect(cluster)
        assert set(metrics.predictor_rank_pairs) == {"tiny"}
        pairs = metrics.predictor_rank_pairs["tiny"]
        assert len(pairs) == 6
        # Prequential: the first pair is scored by the untrained predictor
        # (600-token prior) against the observed 20 reasoning tokens.
        assert pairs[0] == (600.0, 20.0)
        assert metrics.n_deferrals == 0  # no admission gate in this run
