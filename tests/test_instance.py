"""Serving-instance engine-loop tests."""

import pytest

from repro.memory.blocks import OutOfMemoryError
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.round_robin import RoundRobinScheduler
from repro.sim.events import EventKind
from repro.workload.request import Phase, ReqState, Request
from tests.conftest import build_instance


def wire_arrivals(engine, inst, requests):
    engine.register(EventKind.ARRIVAL, lambda now, req: inst.admit(req, now))
    for req in requests:
        engine.schedule(req.arrival_t, EventKind.ARRIVAL, req)


def simple_request(rid=0, prompt=4, reasoning=3, answer=2, arrival=0.0, **kw):
    return Request(
        rid=rid,
        prompt_len=prompt,
        reasoning_len=reasoning,
        answer_len=answer,
        arrival_t=arrival,
        **kw,
    )


class TestStepLoop:
    def test_prefill_then_decode(self):
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=64)
        req = simple_request()
        wire_arrivals(engine, inst, [req])
        engine.run()
        assert req.finished
        assert inst.prefill_steps == 1
        # Prefill emits token 1; remaining 4 tokens decode at 1 s each.
        assert inst.decode_steps == 4
        assert req.done_t == pytest.approx(4.0)

    def test_prefill_emits_first_token(self):
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=64)
        req = simple_request(reasoning=1, answer=1)
        wire_arrivals(engine, inst, [req])
        engine.run()
        # Token 1 (the whole reasoning phase) came from the prefill step.
        assert req.reasoning_end_t == pytest.approx(0.0)
        assert req.prefill_end_t == pytest.approx(0.0)

    def test_skip_prefill_requests_never_prefill(self):
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=64)
        req = simple_request(reasoning=0, answer=3, skip_prefill=True)
        req.mark_reasoning_precomputed(0.0)
        wire_arrivals(engine, inst, [req])
        engine.run()
        assert req.finished
        assert inst.prefill_steps == 0
        assert req.prefill_done

    def test_continuous_batching_joins_mid_flight(self):
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=640)
        first = simple_request(rid=0, reasoning=10, answer=5, arrival=0.0)
        second = simple_request(rid=1, reasoning=3, answer=2, arrival=3.5)
        wire_arrivals(engine, inst, [first, second])
        engine.run()
        # The late request is admitted while the first is still decoding.
        assert second.first_sched_t < first.done_t
        assert second.finished and first.finished

    def test_completion_frees_memory(self):
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=64)
        req = simple_request()
        wire_arrivals(engine, inst, [req])
        engine.run()
        assert inst.pool.gpu_used_blocks == 0
        assert req not in inst.requests

    def test_tokens_generated_counter(self):
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=64)
        req = simple_request(reasoning=3, answer=2)
        wire_arrivals(engine, inst, [req])
        engine.run()
        assert inst.tokens_generated == 5

    def test_busy_time_accumulates(self):
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=64)
        req = simple_request()
        wire_arrivals(engine, inst, [req])
        engine.run()
        # 4 decode steps at 1 s (prefill free in the unit model).
        assert inst.busy_time_s == pytest.approx(4.0)


class TestSwapCosts:
    def test_swap_cost_charged_to_next_step(self):
        engine, inst = build_instance(
            RoundRobinScheduler(quantum_tokens=4),
            capacity_tokens=32,
            swap_s_per_token=0.1,
        )
        reqs = [
            simple_request(rid=0, prompt=17, reasoning=8, answer=4, arrival=0.0),
            simple_request(rid=1, prompt=17, reasoning=4, answer=2, arrival=0.5),
        ]
        wire_arrivals(engine, inst, reqs)
        engine.run()
        assert all(r.finished for r in reqs)
        assert inst.swap_out_tokens > 0
        assert inst.swap_in_tokens > 0
        # Swap cost stretched the makespan beyond pure decode time.
        total_tokens = sum(r.total_decode_tokens for r in reqs)
        pure_decode = total_tokens - 2  # two tokens come from prefills
        assert max(r.done_t for r in reqs) > pure_decode * 0.9

    def test_preempted_request_state(self):
        engine, inst = build_instance(
            RoundRobinScheduler(quantum_tokens=4), capacity_tokens=32
        )
        reqs = [
            simple_request(rid=0, prompt=17, reasoning=11, answer=4, arrival=0.0),
            simple_request(rid=1, prompt=17, reasoning=4, answer=2, arrival=0.5),
        ]
        wire_arrivals(engine, inst, reqs)
        engine.run()
        assert reqs[0].n_preemptions >= 1
        assert reqs[0].phase_time(Phase.REASONING, "preempted") > 0


class TestMigrationIntake:
    def test_accept_migrated_allocates_and_queues(self):
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=640)
        req = simple_request(reasoning=0, answer=3)
        req.prefill_done = True
        req.generated_tokens = 0
        req.prompt_len = 20
        inst.accept_migrated(req, 1.0)
        assert inst.pool.holds(req)
        assert req.on_gpu
        assert req.instance_id == 0
        engine.run()
        assert req.finished

    def test_accept_migrated_lands_on_cpu_when_gpu_full(self):
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=32)
        resident = simple_request(rid=0, prompt=30, reasoning=1, answer=1)
        inst.admit(resident, 0.0)
        migrant = simple_request(rid=1, reasoning=0, answer=2)
        migrant.prefill_done = True
        migrant.prompt_len = 20
        inst.accept_migrated(migrant, 0.0)
        assert inst.pool.holds(migrant)
        assert not migrant.on_gpu
        assert migrant.state == ReqState.PREEMPTED

    def test_depart_removes_request(self):
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=64)
        req = simple_request()
        inst.admit(req, 0.0)
        inst.depart(req, 0.5)
        assert req not in inst.requests
        assert req.state == ReqState.MIGRATING


class TestCensus:
    def test_pending_kv_counts_unallocated(self):
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=64)
        req = simple_request(prompt=10)
        inst.busy = True  # mid-step: admitted but not planned yet
        inst.admit(req, 0.0)
        assert inst.pending_kv_tokens() == 10
        assert inst.total_kv_tokens() == 10
        inst.check_invariants()

    def test_total_kv_includes_pool_and_pending(self):
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=64)
        allocated = simple_request(rid=0, prompt=10)
        inst.pool.allocate(allocated, 10)
        inst.requests.add(allocated)
        inst.busy = True
        queued = simple_request(rid=1, prompt=5)
        inst.admit(queued, 0.0)
        assert inst.total_kv_tokens() == 15
        inst.check_invariants()

    def test_pending_kv_drops_on_allocation_and_departure(self):
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=64)
        a = simple_request(rid=0, prompt=10)
        b = simple_request(rid=1, prompt=5)
        inst.busy = True
        inst.admit(a, 0.0)
        inst.admit(b, 0.0)
        assert inst.pending_kv_tokens() == 15
        inst.do_allocate(a, 0.0)  # planner placed `a` in GPU memory
        assert inst.pending_kv_tokens() == 5
        inst.depart(b, 0.5)  # `b` migrates away before ever allocating
        assert inst.pending_kv_tokens() == 0
        inst.check_invariants()


class TestLivelockGuard:
    def test_oversized_request_raises(self):
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=32)
        huge = simple_request(prompt=40)
        wire_arrivals(engine, inst, [huge])
        with pytest.raises(OutOfMemoryError, match="exceeds single-request"):
            engine.run()

    def test_exact_fit_request_completes(self):
        # prompt + all decode tokens exactly equal the pool capacity.
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=32)
        req = simple_request(prompt=24, reasoning=4, answer=4)
        wire_arrivals(engine, inst, [req])
        engine.run()
        assert req.finished


class TestTokenLog:
    def test_token_log_records_all_tokens(self):
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=64)
        log = {}
        inst.token_log = log
        req = simple_request(reasoning=3, answer=2)
        wire_arrivals(engine, inst, [req])
        engine.run()
        assert len(log[req.rid]) == 5
        assert log[req.rid] == sorted(log[req.rid])


class TestRequestSet:
    """The resident-request registry iterates in admission order.

    Regression for the PAS003 self-host finding: ``self.requests`` was a
    plain ``set``, so census iteration ran in hash order — stable within
    one process but not across machines or Python builds.
    """

    def test_iteration_is_admission_order(self):
        from repro.serving.instance import RequestSet

        reqs = RequestSet()
        order = [simple_request(rid=r) for r in (5, 1, 9, 3)]
        for req in order:
            reqs.add(req)
        assert [r.rid for r in reqs] == [5, 1, 9, 3]
        assert len(reqs) == 4

    def test_discard_and_readd_moves_to_tail(self):
        from repro.serving.instance import RequestSet

        reqs = RequestSet()
        a, b, c = (simple_request(rid=r) for r in (1, 2, 3))
        for req in (a, b, c):
            reqs.add(req)
        reqs.discard(b)
        assert b not in reqs and a in reqs
        reqs.add(b)
        assert [r.rid for r in reqs] == [1, 3, 2]
        reqs.discard(simple_request(rid=99))  # absent: no-op, no raise

    def test_instance_census_uses_admission_order(self):
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=256)
        order = [simple_request(rid=r, arrival=0.0) for r in (7, 2, 5)]
        for req in order:
            inst.admit(req, 0.0)
        assert [r.rid for r in inst.requests] == [7, 2, 5]
        assert [r.rid for r in inst.live_requests()] == [7, 2, 5]
