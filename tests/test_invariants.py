"""Simulation-invariant property tests: random workloads x every policy.

Hypothesis drives small random traces through every registered cluster
policy — homogeneous and heterogeneous pools alike — and checks the
conservation laws any correct discrete-event serving simulator must obey:

* the clock never runs backwards (event timestamps non-decreasing);
* request conservation: every arrival is, at all times, on exactly one
  instance, in flight between instances, parked in the deferral waiting
  room, rejected, or completed
  (``submitted = completed + rejected + in-flight + deferred``);
* per-instance census never goes negative (queue depths, monitor counts,
  KV pool headroom);
* every admitted request terminates, and SLO accounting covers the whole
  trace (``scored + n_unscored == n_requests``).

The workloads are deliberately tiny (the value is the cross product of
policies x pool shapes x random traces, not trace length) and the
Hypothesis profile is derandomized so CI failures reproduce.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import Cluster
from repro.config import (
    ClusterConfig,
    ExtensionPolicyConfig,
    InstanceConfig,
    PoolSpec,
    SchedulerConfig,
)
from repro.core.registry import policy_names
from repro.metrics.slo import evaluate_slo
from repro.perfmodel.unit import UnitPerfModel
from repro.sim.events import EventKind
from repro.workload.request import Request

#: Heterogeneous variant: an express tier plus token-weighted load, so the
#: pool-aware policies actually exercise their tiered paths.
POOL_SHAPES = {
    "homogeneous": ExtensionPolicyConfig(),
    # Aggressive speculative knobs (tiny thresholds, short defers) so
    # ``speculative-replace`` actually defers and demotes on these small
    # workloads; every other policy ignores them.
    "heterogeneous": ExtensionPolicyConfig(
        least_load_weighted=True,
        pool=PoolSpec(express_instances=2, express_threshold_tokens=30),
        speculative_defer_s=0.05,
        speculative_min_observations=5,
        speculative_pressure_tokens=50,
        speculative_long_tokens=20,
    ),
}

#: One request: (prompt_len, reasoning_len, answer_len, inter-arrival gap).
#: Footprints stay far below the per-instance capacity so no workload can
#: exceed single-request capacity (which is a configured hard error).
request_tuples = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=1, max_value=40),
        st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
    ),
    min_size=1,
    max_size=10,
)


def build_cluster(policy: str, extensions: ExtensionPolicyConfig) -> Cluster:
    config = ClusterConfig(
        n_instances=3,
        instance=InstanceConfig(
            # Small enough that several concurrent requests contend for
            # residency (exercising preemption), large enough for any
            # single generated request.
            kv_capacity_tokens=256,
            scheduler=SchedulerConfig(token_quantum=8),
        ),
        extensions=extensions,
    )
    return Cluster(config, policy=policy, perf=UnitPerfModel(0.01))


def trace_from(tuples) -> list[Request]:
    requests = []
    t = 0.0
    for rid, (prompt, reasoning, answer, gap) in enumerate(tuples):
        t += gap
        requests.append(
            Request(
                rid=rid,
                prompt_len=prompt,
                reasoning_len=reasoning,
                answer_len=answer,
                arrival_t=t,
                dataset="short" if reasoning <= 20 else "long",
            )
        )
    return requests


@pytest.mark.parametrize("shape", sorted(POOL_SHAPES))
@pytest.mark.parametrize("policy", policy_names())
@settings(max_examples=6, deadline=None, derandomize=True)
@given(tuples=request_tuples)
def test_policy_preserves_simulation_invariants(policy, shape, tuples):
    cluster = build_cluster(policy, POOL_SHAPES[shape])
    requests = trace_from(tuples)

    # A deferral re-schedules the same request's ARRIVAL event, so
    # conservation is over *unique* submitted requests, not dispatches.
    submitted_rids: set[int] = set()
    inner_on_arrival = cluster._on_arrival

    def counting_arrival(now, req):
        submitted_rids.add(req.rid)
        inner_on_arrival(now, req)

    cluster.engine.register(EventKind.ARRIVAL, counting_arrival)
    cluster.submit(requests)

    last_now = cluster.engine.now
    while cluster.engine.step():
        now = cluster.engine.now
        assert now >= last_now, "clock ran backwards"
        last_now = now

        # Request conservation: between events, every submitted request
        # is on exactly one instance, crossing the fabric, parked in the
        # deferral waiting room, rejected, or done.
        on_instances = sum(len(inst.requests) for inst in cluster.instances)
        assert cluster.migrations.in_flight >= 0
        assert len(cluster.deferred()) >= 0
        assert (
            len(submitted_rids)
            == len(cluster.completed)
            + len(cluster.rejected)
            + len(cluster.cancelled)
            + cluster.migrations.in_flight
            + on_instances
            + len(cluster.deferred())
        ), f"request leak at t={now}"

        for inst in cluster.instances:
            monitor = cluster.monitor
            assert inst.pool.gpu_free_tokens() >= 0
            assert inst.pool.gpu_used_blocks >= 0
            assert inst.pool.total_kv_tokens() >= 0
            assert monitor.reasoning_count(inst) >= 0
            assert monitor.fresh_answering_count(inst) >= 0
            assert monitor.pending_decode_tokens(inst) >= 0
            assert len(inst.live_requests()) <= len(inst.requests)

    # Termination: the queue drained, the waiting room emptied, nothing
    # was turned away (no gate here rejects), and every request finished.
    assert len(submitted_rids) == len(requests)
    assert cluster.deferred() == []
    assert cluster.rejected == []
    assert cluster.cancelled == []  # nothing here scripts a cancel
    assert cluster.all_finished()
    assert all(r.finished for r in requests)
    assert all(r.done_t is not None for r in requests)

    # SLO accounting covers the whole trace: scored + unscored == admitted,
    # and an unscored (never-answered) request always counts as violating.
    report = evaluate_slo(requests, cluster.config.slo)
    assert report.n_requests == len(requests)
    assert len(report.qoe_scores) + report.n_unscored == report.n_requests
    assert report.n_violations >= report.n_unscored

    # Monotone per-request timelines.
    for req in requests:
        assert req.arrival_t <= req.done_t
        if req.reasoning_end_t is not None and req.first_answer_t is not None:
            assert req.reasoning_end_t <= req.first_answer_t
