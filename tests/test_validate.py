"""Validation-harness tests (paired request metrics, run comparison)."""

import pytest

from repro.perfmodel.validate import (
    ValidationReport,
    paired_request_metrics,
    validate_runs,
)
from repro.workload.request import Request


def finished(rid, arrival=0.0, ttft=2.0, n_answer=5, tpot=0.1):
    req = Request(
        rid=rid, prompt_len=8, reasoning_len=3, answer_len=n_answer,
        arrival_t=arrival,
    )
    first = arrival + ttft
    req.first_answer_t = first
    req.answer_token_times = [first + k * tpot for k in range(n_answer)]
    req.done_t = req.answer_token_times[-1]
    return req


class TestPairedMetrics:
    def test_extracts_three_series(self):
        reqs = [finished(i) for i in range(4)]
        e2e, ttft, tpot = paired_request_metrics(reqs)
        assert len(e2e) == len(ttft) == len(tpot) == 4
        assert ttft[0] == pytest.approx(2.0)
        assert tpot[0] == pytest.approx(0.1)

    def test_skips_unfinished(self):
        pending = Request(rid=9, prompt_len=8, reasoning_len=3, answer_len=2)
        e2e, _, _ = paired_request_metrics([finished(1), pending])
        assert len(e2e) == 1

    def test_single_token_tpot_zero(self):
        req = finished(1, n_answer=1)
        _, _, tpot = paired_request_metrics([req])
        assert tpot == [0.0]


class TestValidateRuns:
    def test_identical_runs_have_zero_mape(self):
        ref = [finished(i) for i in range(5)]
        cand = [finished(i) for i in range(5)]
        report = validate_runs(ref, cand)
        assert report.mape_e2e_pct == 0.0
        assert report.mape_ttft_pct == 0.0
        assert report.n_requests == 5

    def test_shifted_candidate_measured(self):
        ref = [finished(i, ttft=2.0) for i in range(5)]
        cand = [finished(i, ttft=2.2) for i in range(5)]
        report = validate_runs(ref, cand)
        assert report.mape_ttft_pct == pytest.approx(10.0)

    def test_only_shared_rids_compared(self):
        ref = [finished(i) for i in range(5)]
        cand = [finished(i) for i in range(3)]
        report = validate_runs(ref, cand)
        assert report.n_requests == 3

    def test_report_rows_carry_paper_values(self):
        report = ValidationReport(1.0, 2.0, 3.0, n_requests=10)
        rows = report.rows()
        assert [r[0] for r in rows] == [
            "end-to-end latency",
            "mean TTFT",
            "TPOT",
        ]
        assert [r[1] for r in rows] == [1.62, 12.6, 6.49]
        assert [r[2] for r in rows] == [1.0, 2.0, 3.0]
