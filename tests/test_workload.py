"""Dataset, arrival-process and trace tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import RandomStreams
from repro.workload import arrival, synthetic
from repro.workload.datasets import (
    ALL_DATASETS,
    ALPACA_EVAL,
    ARENA_HARD,
    GPQA,
    MixedDataset,
    get_dataset,
    mean_request_tokens,
    reasoning_heavy_mix,
)
from repro.workload.trace import TraceConfig, build_trace, trace_token_stats


class TestArrivals:
    def test_poisson_is_sorted_and_positive(self):
        rng = RandomStreams(0).stream("arr")
        times = arrival.poisson_arrivals(2.0, 100, rng)
        assert times == sorted(times)
        assert all(t > 0 for t in times)

    def test_poisson_rate_matches(self):
        rng = RandomStreams(1).stream("arr")
        times = arrival.poisson_arrivals(5.0, 5000, rng)
        measured_rate = len(times) / times[-1]
        assert 4.5 < measured_rate < 5.5

    def test_poisson_seed_reproducible(self):
        a = arrival.poisson_arrivals(1.0, 50, RandomStreams(3).stream("x"))
        b = arrival.poisson_arrivals(1.0, 50, RandomStreams(3).stream("x"))
        assert a == b

    def test_poisson_invalid_inputs(self):
        rng = RandomStreams(0).stream("arr")
        with pytest.raises(ValueError):
            arrival.poisson_arrivals(0.0, 10, rng)
        with pytest.raises(ValueError):
            arrival.poisson_arrivals(1.0, -1, rng)

    def test_uniform_arrivals(self):
        assert arrival.uniform_arrivals(2.0, 3, start_t=1.0) == [1.0, 3.0, 5.0]

    def test_burst_arrivals(self):
        assert arrival.burst_arrivals(3, at_t=5.0) == [5.0, 5.0, 5.0]


class TestDatasets:
    def test_all_five_paper_datasets_exist(self):
        assert set(ALL_DATASETS) == {
            "alpaca-eval-2.0",
            "arena-hard",
            "math-500",
            "gpqa",
            "livecodebench",
        }

    def test_get_dataset_unknown_raises(self):
        with pytest.raises(KeyError):
            get_dataset("imagenet")

    @pytest.mark.parametrize("spec", list(ALL_DATASETS.values()))
    def test_sampled_means_match_paper(self, spec):
        rng = RandomStreams(99).stream(f"means:{spec.name}")
        n = 3000
        reasoning = [spec.reasoning.sample(rng) for _ in range(n)]
        answering = [spec.answering.sample(rng) for _ in range(n)]
        r_mean = sum(reasoning) / n
        a_mean = sum(answering) / n
        # Clipping pulls heavy-tailed means down slightly; 12% tolerance.
        assert abs(r_mean - spec.reasoning.mean) / spec.reasoning.mean < 0.12
        assert abs(a_mean - spec.answering.mean) / spec.answering.mean < 0.12

    def test_chat_skew_majority_under_1000(self):
        rng = RandomStreams(5).stream("skew")
        n = 3000
        for spec in (ALPACA_EVAL, ARENA_HARD):
            reasoning = [spec.reasoning.sample(rng) for _ in range(n)]
            frac = sum(1 for x in reasoning if x < 1000) / n
            assert frac > 0.70  # Figure 10 caption

    def test_gpqa_reasoning_heavy_ratio(self):
        rng = RandomStreams(6).stream("gpqa")
        n = 3000
        reasoning = [GPQA.reasoning.sample(rng) for _ in range(n)]
        answering = [GPQA.answering.sample(rng) for _ in range(n)]
        ratio = (sum(reasoning) / n) / (sum(answering) / n)
        assert ratio > 6.0  # paper quotes up to 8.48x

    def test_sample_request_fields(self):
        rng = RandomStreams(0).stream("req")
        req = ALPACA_EVAL.sample_request(7, 3.0, rng)
        assert req.rid == 7
        assert req.arrival_t == 3.0
        assert req.dataset == "alpaca-eval-2.0"
        assert req.prompt_len >= 1 and req.answer_len >= 1

    def test_mean_request_tokens(self):
        total = mean_request_tokens(ALPACA_EVAL)
        assert total == pytest.approx(60.0 + 557.75 + 566.85)


class TestMixedDataset:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            MixedDataset("bad", ((ALPACA_EVAL, 0.7), (ARENA_HARD, 0.7)))

    def test_mix_contains_all_components(self):
        mix = reasoning_heavy_mix()
        rng = RandomStreams(8).stream("mix")
        seen = {
            mix.sample_request(i, 0.0, rng).dataset for i in range(600)
        }
        assert seen == {
            "arena-hard",
            "math-500",
            "gpqa",
            "livecodebench",
        }

    def test_mix_is_half_arena(self):
        mix = reasoning_heavy_mix()
        rng = RandomStreams(9).stream("mix2")
        n = 4000
        arena = sum(
            1
            for i in range(n)
            if mix.sample_request(i, 0.0, rng).dataset == "arena-hard"
        )
        assert 0.45 < arena / n < 0.55


class TestTraceBuilding:
    def test_build_trace_deterministic(self):
        cfg = TraceConfig(ALPACA_EVAL, 50, 2.0, seed=21)
        a = build_trace(cfg)
        b = build_trace(cfg)
        assert [(r.prompt_len, r.reasoning_len, r.answer_len, r.arrival_t)
                for r in a] == [
            (r.prompt_len, r.reasoning_len, r.answer_len, r.arrival_t)
            for r in b
        ]

    def test_build_trace_seed_changes_trace(self):
        a = build_trace(TraceConfig(ALPACA_EVAL, 50, 2.0, seed=1))
        b = build_trace(TraceConfig(ALPACA_EVAL, 50, 2.0, seed=2))
        assert [r.reasoning_len for r in a] != [r.reasoning_len for r in b]

    def test_trace_stats(self):
        trace = build_trace(TraceConfig(ALPACA_EVAL, 200, 2.0, seed=3))
        stats = trace_token_stats(trace)
        assert stats["n_requests"] == 200
        assert stats["reasoning_mean"] > 0
        assert stats["total_tokens"] > 200 * 100

    def test_trace_stats_empty_rejected(self):
        with pytest.raises(ValueError):
            trace_token_stats([])


class TestSyntheticWorkloads:
    def test_reasoning_workload_shape(self):
        rng = RandomStreams(0).stream("fig4")
        reqs = synthetic.reasoning_phase_workload(
            100, arrival.uniform_arrivals(1.0, 100), rng
        )
        assert len(reqs) == 100
        assert all(r.prompt_len == 128 for r in reqs)
        assert all(r.answer_len == 1 for r in reqs)
        assert {r.reasoning_len for r in reqs} <= set(
            synthetic.CHARACTERIZATION_LENGTHS
        )

    def test_answering_workload_shape(self):
        rng = RandomStreams(0).stream("fig5")
        reqs = synthetic.answering_phase_workload(
            100, arrival.uniform_arrivals(1.0, 100), rng
        )
        assert all(r.reasoning_len == 0 for r in reqs)
        assert all(r.skip_prefill for r in reqs)
        assert all(r.reasoning_end_t == r.arrival_t for r in reqs)
        assert {r.answer_len for r in reqs} <= set(
            synthetic.CHARACTERIZATION_LENGTHS
        )

    def test_workloads_validate_arrivals(self):
        rng = RandomStreams(0).stream("short")
        with pytest.raises(ValueError):
            synthetic.reasoning_phase_workload(10, [0.0], rng)
        with pytest.raises(ValueError):
            synthetic.answering_phase_workload(10, [0.0], rng)

    def test_fixed_length_requests(self):
        reqs = synthetic.fixed_length_requests(
            3, 1, 4, 4, [0.0, 1.0, 2.0]
        )
        assert [r.arrival_t for r in reqs] == [0.0, 1.0, 2.0]
        assert all(r.total_decode_tokens == 8 for r in reqs)

    @given(st.integers(min_value=1, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_reasoning_workload_any_size(self, n):
        rng = RandomStreams(4).stream(f"n{n}")
        reqs = synthetic.reasoning_phase_workload(
            n, arrival.uniform_arrivals(0.5, n), rng
        )
        assert len(reqs) == n
        assert all(r.rid == i for i, r in enumerate(reqs))


class TestOnOffArrivals:
    """The on-off modulated Poisson process behind ``deferral-stress``."""

    def test_full_duty_matches_poisson_draw_for_draw(self):
        # duty >= 1.0 must delegate: identical RNG consumption, identical
        # times, so existing experiments are byte-stable.
        plain = list(
            arrival.iter_poisson_arrivals(
                2.0, 200, RandomStreams(9).stream("arr")
            )
        )
        onoff = list(
            arrival.iter_onoff_arrivals(
                2.0, 200, RandomStreams(9).stream("arr"), duty=1.0
            )
        )
        assert onoff == plain

    def test_bursty_arrivals_land_inside_on_windows(self):
        duty, cycle = 0.25, 40.0
        times = list(
            arrival.iter_onoff_arrivals(
                3.0, 500, RandomStreams(4).stream("arr"),
                duty=duty, cycle_s=cycle,
            )
        )
        assert times == sorted(times)
        on_s = duty * cycle
        for t in times:
            # Allow a hair of float slack at the window edge.
            assert (t % cycle) <= on_s + 1e-9

    def test_bursty_preserves_long_run_rate(self):
        times = list(
            arrival.iter_onoff_arrivals(
                5.0, 5000, RandomStreams(1).stream("arr"),
                duty=0.5, cycle_s=20.0,
            )
        )
        measured = len(times) / times[-1]
        assert 4.5 < measured < 5.5

    def test_burst_rate_is_rate_over_duty(self):
        # Within the on-window the process runs hot at rate/duty.
        duty, cycle = 0.2, 50.0
        times = list(
            arrival.iter_onoff_arrivals(
                2.0, 4000, RandomStreams(2).stream("arr"),
                duty=duty, cycle_s=cycle,
            )
        )
        on_time = (times[-1] // cycle + 1) * duty * cycle
        within_rate = len(times) / on_time
        assert 8.0 < within_rate < 12.0  # ~= 2.0 / 0.2

    def test_invalid_knobs_rejected(self):
        rng = RandomStreams(0).stream("arr")
        with pytest.raises(ValueError):
            list(arrival.iter_onoff_arrivals(2.0, 10, rng, duty=0.0))
        with pytest.raises(ValueError):
            list(arrival.iter_onoff_arrivals(2.0, 10, rng, duty=-0.5))
        with pytest.raises(ValueError):
            list(arrival.iter_onoff_arrivals(2.0, 10, rng, cycle_s=0.0))
        with pytest.raises(ValueError):
            list(arrival.iter_onoff_arrivals(0.0, 10, rng))
        with pytest.raises(ValueError):
            list(arrival.iter_onoff_arrivals(2.0, -1, rng))

    def test_trace_config_threads_burst_knobs(self):
        base = TraceConfig(ALPACA_EVAL, 80, 2.0, seed=11)
        bursty = TraceConfig(
            ALPACA_EVAL, 80, 2.0, seed=11, burst_duty=0.25, burst_cycle_s=40.0
        )
        plain_trace = build_trace(base)
        bursty_trace = build_trace(bursty)
        # Same lengths (same sampling stream), different arrival pattern.
        assert [r.reasoning_len for r in plain_trace] == [
            r.reasoning_len for r in bursty_trace
        ]
        assert [r.arrival_t for r in plain_trace] != [
            r.arrival_t for r in bursty_trace
        ]
        for r in bursty_trace:
            assert (r.arrival_t % 40.0) <= 10.0 + 1e-9

    def test_default_trace_config_is_byte_stable(self):
        # The new knobs default to pass-through: pre-existing traces are
        # unchanged (golden-table safety for every other experiment).
        base = TraceConfig(ALPACA_EVAL, 60, 2.0, seed=5)
        explicit = TraceConfig(
            ALPACA_EVAL, 60, 2.0, seed=5, burst_duty=1.0, burst_cycle_s=60.0
        )
        assert [r.arrival_t for r in build_trace(base)] == [
            r.arrival_t for r in build_trace(explicit)
        ]
