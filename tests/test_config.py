"""Configuration dataclass tests."""

import pytest

from repro.config import (
    ClusterConfig,
    FabricConfig,
    GPUConfig,
    InstanceConfig,
    ModelConfig,
    SchedulerConfig,
    SLOConfig,
)


class TestModelConfig:
    def test_defaults_are_deepseek_r1_distill_qwen_32b(self):
        cfg = ModelConfig()
        assert cfg.n_layers == 64
        assert cfg.n_kv_heads == 8
        assert cfg.head_dim == 128
        assert cfg.end_of_think_token == "</think>"

    def test_frozen(self):
        with pytest.raises(Exception):
            ModelConfig().n_layers = 10


class TestGPUConfig:
    def test_h100_defaults(self):
        gpu = GPUConfig()
        assert gpu.hbm_bytes == 96e9
        assert gpu.pcie_bandwidth == 5.0e10

    def test_kv_capacity_scales_with_hbm(self):
        small = GPUConfig(hbm_bytes=80e9)
        big = GPUConfig(hbm_bytes=96e9)
        model = ModelConfig()
        assert small.kv_capacity_tokens(model) < big.kv_capacity_tokens(model)


class TestSLOConfig:
    def test_paper_targets(self):
        slo = SLOConfig()
        assert slo.tpot_target_s == 0.100
        assert slo.ttfat_target_s == 0.25
        assert slo.qoe_threshold == 0.95

    def test_expected_rate(self):
        assert SLOConfig().expected_tokens_per_s == pytest.approx(10.0)


class TestSchedulerConfig:
    def test_paper_knobs(self):
        cfg = SchedulerConfig()
        assert cfg.token_quantum == 500
        assert cfg.demotion_threshold_tokens == 5000


class TestInstanceConfig:
    def test_gpu_kv_tokens_derived_by_default(self):
        cfg = InstanceConfig()
        assert cfg.gpu_kv_tokens() == cfg.gpu.kv_capacity_tokens(cfg.model)

    def test_explicit_override(self):
        cfg = InstanceConfig(kv_capacity_tokens=1234)
        assert cfg.gpu_kv_tokens() == 1234

    def test_with_kv_capacity(self):
        base = InstanceConfig()
        capped = base.with_kv_capacity(500)
        assert capped.gpu_kv_tokens() == 500
        assert base.gpu_kv_tokens() != 500

    def test_cpu_kv_tokens(self):
        cfg = InstanceConfig(cpu_kv_bytes=262_144 * 100)
        assert cfg.cpu_kv_tokens() == 100


class TestFabricConfig:
    def test_hundred_gbps_default(self):
        cfg = FabricConfig()
        assert cfg.link_bandwidth == pytest.approx(12.5e9)

    def test_transfer_seconds_affine(self):
        cfg = FabricConfig(link_bandwidth=1e9, base_latency_s=0.01)
        assert cfg.transfer_seconds(0) == pytest.approx(0.01)
        assert cfg.transfer_seconds(1e9) == pytest.approx(1.01)


class TestClusterConfig:
    def test_paper_deployment(self):
        cfg = ClusterConfig()
        assert cfg.n_instances == 8

    def test_with_instance(self):
        base = ClusterConfig()
        updated = base.with_instance(InstanceConfig(kv_capacity_tokens=99))
        assert updated.instance.gpu_kv_tokens() == 99
        assert updated.n_instances == base.n_instances
