"""Performance model tests: roofline, profile table, unit model, MAPE."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GPUConfig, ModelConfig
from repro.perfmodel.analytical import AnalyticalPerfModel
from repro.perfmodel.profile import ProfileTable, _interp_weight
from repro.perfmodel.unit import UnitPerfModel
from repro.perfmodel.validate import mape


@pytest.fixture(scope="module")
def model():
    return AnalyticalPerfModel(ModelConfig(), GPUConfig())


class TestModelConfig:
    def test_kv_bytes_per_token_matches_geometry(self):
        cfg = ModelConfig()
        # 2 (K+V) * 64 layers * 8 KV heads * 128 head dim * 2 bytes
        assert cfg.kv_bytes_per_token == 262_144

    def test_weight_bytes(self):
        cfg = ModelConfig()
        assert cfg.weight_bytes == pytest.approx(65.6e9)

    def test_kv_capacity_positive_on_h100(self):
        cfg = ModelConfig()
        gpu = GPUConfig()
        assert gpu.kv_capacity_tokens(cfg) > 50_000

    def test_kv_capacity_zero_when_weights_exceed_hbm(self):
        tiny_gpu = GPUConfig(hbm_bytes=1e9)
        assert tiny_gpu.kv_capacity_tokens(ModelConfig()) == 0


class TestAnalyticalDecode:
    def test_monotone_in_kv(self, model):
        assert model.decode_step_seconds(8, 10_000) < model.decode_step_seconds(
            8, 100_000
        )

    def test_monotone_in_batch(self, model):
        assert model.decode_step_seconds(1, 1000) < model.decode_step_seconds(
            64, 1000
        )

    def test_realistic_single_request_latency(self, model):
        # 32B on one H100: a decode step should land in 20-60 ms.
        step = model.decode_step_seconds(1, 1000)
        assert 0.02 < step < 0.06

    def test_small_batch_penalty_fades(self, model):
        # Per-token cost must improve with batch size (batching amortizes
        # the weight read).
        t1 = model.decode_step_seconds(1, 0)
        t32 = model.decode_step_seconds(32, 0)
        assert t32 / 32 < t1

    def test_invalid_inputs(self, model):
        with pytest.raises(ValueError):
            model.decode_step_seconds(0, 100)
        with pytest.raises(ValueError):
            model.decode_step_seconds(1, -1)


class TestAnalyticalPrefill:
    def test_zero_prompt_is_free(self, model):
        assert model.prefill_seconds(0) == 0.0

    def test_superlinear_in_prompt(self, model):
        # Quadratic attention term: 2x tokens -> more than 2x latency
        # minus the fixed overhead.
        t1 = model.prefill_seconds(2048) - model.step_overhead_s
        t2 = model.prefill_seconds(4096) - model.step_overhead_s
        assert t2 > 2.0 * t1

    def test_realistic_128_token_prompt(self, model):
        assert 0.005 < model.prefill_seconds(128) < 0.1

    def test_negative_rejected(self, model):
        with pytest.raises(ValueError):
            model.prefill_seconds(-1)


class TestSwap:
    def test_swap_linear_in_tokens(self, model):
        assert model.swap_seconds(2000) == pytest.approx(
            2 * model.swap_seconds(1000)
        )

    def test_swap_uses_pcie(self, model):
        # 1000 tokens * 256 KiB over ~50 GB/s: around 5 ms.
        assert 0.002 < model.swap_seconds(1000) < 0.02

    def test_negative_rejected(self, model):
        with pytest.raises(ValueError):
            model.swap_seconds(-5)


class TestProfileTable:
    def test_exact_on_grid_points(self, model):
        table = ProfileTable.from_model(model)
        for b in (1, 8, 64):
            for k in (0, 16_384, 131_072):
                assert table.decode_step_seconds(b, k) == pytest.approx(
                    model.decode_step_seconds(b, k)
                )

    def test_interpolation_error_is_small(self, model):
        table = ProfileTable.from_model(model)
        errors = []
        for b in (3, 7, 13, 29, 55, 111):
            for k in (500, 3000, 20_000, 90_000, 200_000):
                truth = model.decode_step_seconds(b, k)
                approx = table.decode_step_seconds(b, k)
                errors.append(abs(approx - truth) / truth)
        assert max(errors) < 0.08

    def test_clamps_beyond_grid(self, model):
        table = ProfileTable.from_model(model)
        assert table.decode_step_seconds(1024, 0) == pytest.approx(
            model.decode_step_seconds(256, 0)
        )

    def test_prefill_interpolates(self, model):
        table = ProfileTable.from_model(model)
        truth = model.prefill_seconds(300)
        approx = table.prefill_seconds(300)
        assert abs(approx - truth) / truth < 0.15

    def test_prefill_zero(self, model):
        table = ProfileTable.from_model(model)
        assert table.prefill_seconds(0) == 0.0

    def test_invalid_inputs(self, model):
        table = ProfileTable.from_model(model)
        with pytest.raises(ValueError):
            table.decode_step_seconds(0, 10)
        with pytest.raises(ValueError):
            table.decode_step_seconds(1, -1)
        with pytest.raises(ValueError):
            table.prefill_seconds(-1)

    @given(
        b=st.integers(min_value=1, max_value=300),
        k=st.integers(min_value=0, max_value=600_000),
    )
    @settings(max_examples=200, deadline=None)
    def test_interpolation_within_envelope(self, model, b, k):
        table = ProfileTable.from_model(model)
        value = table.decode_step_seconds(b, k)
        assert value > 0
        # Piecewise-linear interpolation of a monotone convex-ish surface
        # stays within the surface's global range on the grid box.
        low = model.decode_step_seconds(1, 0)
        high = model.decode_step_seconds(256, 524_288) * 1.05
        assert low * 0.5 <= value <= high


class TestInterpWeight:
    def test_below_grid(self):
        assert _interp_weight((10, 20, 30), 5) == (0, 0, 0.0)

    def test_above_grid(self):
        assert _interp_weight((10, 20, 30), 99) == (2, 2, 0.0)

    def test_interior(self):
        lo, hi, w = _interp_weight((10, 20, 30), 25)
        assert (lo, hi) == (1, 2)
        assert w == pytest.approx(0.5)

    def test_exact_grid_point(self):
        lo, hi, w = _interp_weight((10, 20, 30), 20)
        assert lo <= 1 <= hi
        value = 20 * (1 - w) + (30 if hi == 2 else 20) * w
        assert value == pytest.approx(20)


class TestUnitModel:
    def test_constant_decode(self):
        unit = UnitPerfModel(decode_step_s=2.0)
        assert unit.decode_step_seconds(1, 0) == 2.0
        assert unit.decode_step_seconds(64, 1_000_000) == 2.0

    def test_free_prefill_and_swap_by_default(self):
        unit = UnitPerfModel()
        assert unit.prefill_seconds(100) == 0.0
        assert unit.swap_seconds(100) == 0.0

    def test_configurable_costs(self):
        unit = UnitPerfModel(prefill_s=0.5, swap_s_per_token=0.01)
        assert unit.prefill_seconds(10) == 0.5
        assert unit.swap_seconds(10) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            UnitPerfModel(decode_step_s=0)
        with pytest.raises(ValueError):
            UnitPerfModel(prefill_s=-1)


class TestMape:
    def test_zero_for_identical(self):
        assert mape([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_percentage_semantics(self):
        assert mape([100.0], [110.0]) == pytest.approx(10.0)

    def test_skips_zero_reference(self):
        assert mape([0.0, 100.0], [5.0, 150.0]) == pytest.approx(50.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mape([1.0], [1.0, 2.0])

    def test_all_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            mape([0.0], [1.0])
