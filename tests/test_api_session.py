"""The `repro.api` façade: equivalence, lifecycle, admission, feeds.

The load-bearing guarantee of the serving-session redesign is that the
online path is a *refactor*, not a behavior change: running any workload
through a ``ServingSession`` (pull-based arrival sources, incremental
engine feeding) must produce results byte-identical to the legacy batch
preload.  The hypothesis property below pins that for every registered
policy; the rest of the file covers the new online semantics — lifecycle
event streams, admission accounting (rejected ≠ SLO-violated ≠
completed), mid-run submission, and the engine-feed regressions the
incremental path uncovered.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    AdmissionDecision,
    AdmissionPolicy,
    AdmitAll,
    EventPrinter,
    ListSource,
    MaxInFlightAdmission,
    MergedSource,
    ServingSession,
    SessionSubscriber,
    SyntheticSource,
    TraceFileSource,
    as_source,
    defer,
    reject,
)
from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, InstanceConfig, SchedulerConfig
from repro.core.registry import policy_names
from repro.harness.cache import metrics_to_payload
from repro.metrics.collector import collect
from repro.perfmodel.unit import UnitPerfModel
from repro.sim.engine import SimulationEngine
from repro.sim.events import EventKind
from repro.workload.datasets import ALPACA_EVAL
from repro.workload.request import Request
from repro.workload.trace import (
    ReplayTraceConfig,
    TraceConfig,
    build_replay_trace,
    build_trace,
    export_trace,
)


def small_config(n_instances: int = 2) -> ClusterConfig:
    return ClusterConfig(
        n_instances=n_instances,
        instance=InstanceConfig(
            kv_capacity_tokens=2400,
            scheduler=SchedulerConfig(token_quantum=16),
        ),
    )


def dataset_config(n_instances: int = 2) -> ClusterConfig:
    """Capacity sized for real dataset length models (multi-k requests)."""
    return ClusterConfig(
        n_instances=n_instances,
        instance=InstanceConfig(kv_capacity_tokens=40000),
    )


def make_requests(specs) -> list[Request]:
    """``specs`` = [(arrival_t, prompt, reasoning, answer), ...]."""
    return [
        Request(
            rid=rid,
            prompt_len=p,
            reasoning_len=r,
            answer_len=a,
            arrival_t=t,
        )
        for rid, (t, p, r, a) in enumerate(specs)
    ]


@st.composite
def small_workload(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    specs = []
    t = 0.0
    for _ in range(n):
        t += draw(st.floats(min_value=0.0, max_value=0.5, allow_nan=False))
        specs.append(
            (
                t,
                draw(st.integers(min_value=1, max_value=40)),
                draw(st.integers(min_value=0, max_value=60)),
                draw(st.integers(min_value=1, max_value=60)),
            )
        )
    return specs


# ---------------------------------------------------------------------------
# batch/session equivalence (the redesign's proof obligation)
# ---------------------------------------------------------------------------
@settings(max_examples=8, deadline=None)
@given(specs=small_workload(), policy=st.sampled_from(policy_names()))
def test_session_source_equals_batch_for_every_policy(specs, policy):
    """Streaming any workload through a session == the legacy batch path,
    compared byte-for-byte via the canonical metrics payload."""
    cluster = Cluster(
        small_config(), policy=policy, perf=UnitPerfModel(0.01)
    )
    cluster.run_trace(make_requests(specs))
    batch = metrics_to_payload(collect(cluster))

    session = ServingSession(
        policy=policy, config=small_config(), perf=UnitPerfModel(0.01)
    )
    session.attach(ListSource(make_requests(specs)))
    online = metrics_to_payload(session.drain())

    assert online == batch


def test_synthetic_source_matches_build_trace():
    """The lazy synthetic source draws the exact requests build_trace does."""
    config = TraceConfig(
        ALPACA_EVAL, n_requests=50, arrival_rate_per_s=2.0, seed=13
    )
    batch = build_trace(config)
    streamed = list(SyntheticSource(config))
    assert len(batch) == len(streamed)
    for a, b in zip(batch, streamed):
        assert (
            a.rid,
            a.arrival_t,
            a.prompt_len,
            a.reasoning_len,
            a.answer_len,
            a.dataset,
        ) == (b.rid, b.arrival_t, b.prompt_len, b.reasoning_len,
              b.answer_len, b.dataset)


def test_trace_file_source_matches_build_replay_trace(tmp_path):
    trace_path = tmp_path / "t.jsonl"
    export_trace(
        build_trace(
            TraceConfig(ALPACA_EVAL, n_requests=20, arrival_rate_per_s=3.0,
                        seed=5)
        ),
        trace_path,
    )
    config = ReplayTraceConfig(path=str(trace_path), rate_scale=2.0)
    batch = build_replay_trace(config)
    streamed = list(TraceFileSource(config))
    assert [(r.rid, r.arrival_t, r.prompt_len) for r in batch] == [
        (r.rid, r.arrival_t, r.prompt_len) for r in streamed
    ]


def test_session_run_evaluation_equivalent_via_sources():
    """An evaluation-shaped run through session == Cluster, full payload."""
    trace_config = TraceConfig(
        ALPACA_EVAL, n_requests=40, arrival_rate_per_s=2.0, seed=3
    )
    cluster = Cluster(dataset_config(4), policy="pascal")
    cluster.run_trace(build_trace(trace_config))
    session = ServingSession(policy="pascal", config=dataset_config(4))
    session.attach(SyntheticSource(trace_config))
    assert metrics_to_payload(session.drain()) == metrics_to_payload(
        collect(cluster)
    )


# ---------------------------------------------------------------------------
# sources
# ---------------------------------------------------------------------------
def test_list_source_rejects_unordered():
    reqs = make_requests([(1.0, 5, 5, 5), (0.5, 5, 5, 5)])
    with pytest.raises(ValueError, match="arrival-ordered"):
        list(ListSource(reqs))


def test_merged_source_orders_and_breaks_ties_by_source_index():
    first = make_requests([(0.5, 5, 5, 5), (2.0, 5, 5, 5)])
    second = make_requests([(0.5, 6, 5, 5), (1.0, 6, 5, 5)])
    merged = list(MergedSource([ListSource(first), ListSource(second)]))
    assert [r.arrival_t for r in merged] == [0.5, 0.5, 1.0, 2.0]
    # Tie at 0.5 resolved in source order.
    assert merged[0].prompt_len == 5 and merged[1].prompt_len == 6


def test_merged_source_requires_sources():
    with pytest.raises(ValueError):
        MergedSource([])


def test_merged_with_composes():
    first = ListSource(make_requests([(0.0, 5, 5, 5)]))
    second = ListSource(make_requests([(1.0, 5, 5, 5)]))
    merged = first.merged_with(second)
    assert isinstance(merged, MergedSource)
    assert len(list(merged)) == 2


def test_admit_constructor_returns_the_shared_decision():
    from repro.api import ADMIT, admit

    assert admit() is ADMIT
    assert ADMIT.action == "admit"


def test_as_source_coercions():
    assert isinstance(as_source([]), ListSource)
    trace_config = TraceConfig(ALPACA_EVAL, 1, 1.0)
    assert isinstance(as_source(trace_config), SyntheticSource)
    assert isinstance(
        as_source(ReplayTraceConfig(path="x.jsonl")), TraceFileSource
    )
    source = ListSource([])
    assert as_source(source) is source
    with pytest.raises(TypeError):
        as_source(object())


# ---------------------------------------------------------------------------
# lifecycle events
# ---------------------------------------------------------------------------
class Recorder(SessionSubscriber):
    def __init__(self):
        self.events: list[tuple] = []

    def on_admit(self, handle, now, instance_id):
        self.events.append(("admit", handle.rid, instance_id))

    def on_reject(self, handle, now, reason):
        self.events.append(("reject", handle.rid, reason))

    def on_defer(self, handle, now, delay_s):
        self.events.append(("defer", handle.rid, delay_s))

    def on_phase_change(self, handle, now):
        self.events.append(("phase", handle.rid))

    def on_first_token(self, handle, now):
        self.events.append(("first", handle.rid))

    def on_complete(self, handle, now):
        self.events.append(("complete", handle.rid))


def one_request_session(reasoning_len=8, answer_len=4, admission=None):
    session = ServingSession(
        policy="fcfs",
        config=small_config(1),
        admission=admission,
        perf=UnitPerfModel(0.01),
    )
    recorder = session.subscribe(Recorder())
    handle = session.submit(
        Request(rid=0, prompt_len=4, reasoning_len=reasoning_len,
                answer_len=answer_len, arrival_t=0.0)
    )
    return session, recorder, handle


def test_lifecycle_event_order_for_reasoning_request():
    session, recorder, handle = one_request_session()
    session.drain()
    kinds = [e[0] for e in recorder.events]
    assert kinds == ["admit", "phase", "first", "complete"]
    assert handle.status == "completed" and handle.done


def test_no_phase_event_for_pure_answering_request():
    session, recorder, handle = one_request_session(reasoning_len=0)
    session.drain()
    kinds = [e[0] for e in recorder.events]
    assert kinds == ["admit", "first", "complete"]


def test_first_token_fires_before_complete_for_one_token_answer():
    session, recorder, handle = one_request_session(answer_len=1)
    session.drain()
    kinds = [e[0] for e in recorder.events]
    assert kinds.index("first") < kinds.index("complete")


def test_unsubscribe_stops_delivery_and_unknown_raises():
    session, recorder, _ = one_request_session()
    session.unsubscribe(recorder)
    session.drain()
    assert recorder.events == []
    with pytest.raises(KeyError):
        session.unsubscribe(recorder)


def test_event_printer_renders_stream():
    lines: list[str] = []
    session, _, _ = one_request_session()
    session.subscribe(EventPrinter(write=lines.append))
    session.drain()
    text = "".join(lines)
    assert "admit" in text and "complete" in text and "req 0" in text


def test_event_printer_renders_reject_and_defer():
    class DeferThenReject(AdmissionPolicy):
        def __init__(self):
            self.calls = 0

        def decide(self, cluster, req, now):
            self.calls += 1
            if self.calls == 1:
                return defer(1.0, "warming")
            return reject("full")

    lines: list[str] = []
    session = ServingSession(
        policy="fcfs", config=small_config(1), admission=DeferThenReject(),
        perf=UnitPerfModel(0.01),
    )
    session.subscribe(EventPrinter(write=lines.append))
    session.submit(Request(rid=0, prompt_len=4, reasoning_len=4,
                           answer_len=4, arrival_t=0.0))
    session.drain()
    text = "".join(lines)
    assert "defer" in text and "retry in 1s" in text
    assert "reject" in text and "full" in text


# ---------------------------------------------------------------------------
# admission accounting: rejected != SLO-violated != completed
# ---------------------------------------------------------------------------
def test_reject_all_accounting():
    class RejectAll(AdmissionPolicy):
        def decide(self, cluster, req, now):
            return reject("full")

    session = ServingSession(
        policy="fcfs", config=small_config(1), admission=RejectAll(),
        perf=UnitPerfModel(0.01),
    )
    recorder = session.subscribe(Recorder())
    session.attach(ListSource(make_requests([(0.0, 4, 4, 4), (0.1, 4, 4, 4)])))
    metrics = session.drain()

    # Conservation: submitted == completed + rejected, no in-flight.
    assert session.n_submitted == 2
    assert session.n_completed == 0
    assert session.n_rejected == 2
    assert session.n_in_flight == 0
    assert [e[0] for e in recorder.events] == ["reject", "reject"]

    # Rejected requests are an explicit outcome, not completions and not
    # SLO violations: the SLO report never sees them.
    assert metrics.n_rejected == 2
    assert len(metrics.requests) == 0
    report = metrics.slo_report(session.config.slo)
    assert report.n_requests == 0
    assert report.n_violations == 0
    assert all(r.done_t is None for r in metrics.rejected)


def test_max_in_flight_admission_rejects_overflow():
    session = ServingSession(
        policy="fcfs",
        config=small_config(1),
        admission=MaxInFlightAdmission(1),
        perf=UnitPerfModel(1.0),
    )
    # Both arrive before the first finishes: the *second* must be the one
    # rejected.  (Regression: the engine's one-ahead source pull used to
    # count the not-yet-arrived successor as load, rejecting the first
    # request of an otherwise idle cluster.)
    session.attach(ListSource(make_requests([(0.0, 4, 4, 4), (0.1, 4, 4, 4)])))
    session.drain()
    assert session.n_completed == 1
    assert session.n_rejected == 1
    assert [r.rid for r in session.cluster.rejected] == [1]
    assert [r.rid for r in session.cluster.completed] == [0]


def test_deferred_request_eventually_admits():
    class DeferOnce(AdmissionPolicy):
        def __init__(self):
            self.seen = set()

        def decide(self, cluster, req, now):
            if req.rid in self.seen:
                return AdmissionDecision("admit")
            self.seen.add(req.rid)
            return defer(5.0, "warming up")

    session, recorder, handle = (None, None, None)
    session = ServingSession(
        policy="fcfs", config=small_config(1), admission=DeferOnce(),
        perf=UnitPerfModel(0.01),
    )
    recorder = session.subscribe(Recorder())
    handle = session.submit(
        Request(rid=0, prompt_len=4, reasoning_len=4, answer_len=4,
                arrival_t=0.0)
    )
    session.drain()
    kinds = [e[0] for e in recorder.events]
    assert kinds[0] == "defer" and "admit" in kinds and "complete" in kinds
    assert handle.status == "completed"
    # The 5s deferral shows up as queued (blocked) time before first run.
    assert handle.request.first_sched_t >= 5.0


def test_deferred_view_tracks_waiting_room():
    class DeferOnce(AdmissionPolicy):
        def __init__(self):
            self.seen = set()

        def decide(self, cluster, req, now):
            if req.rid in self.seen:
                return AdmissionDecision("admit")
            self.seen.add(req.rid)
            return defer(5.0, "warming up")

    session = ServingSession(
        policy="fcfs", config=small_config(1), admission=DeferOnce(),
        perf=UnitPerfModel(0.01),
    )
    assert session.cluster.deferred() == []
    session.submit(
        Request(rid=7, prompt_len=4, reasoning_len=4, answer_len=4,
                arrival_t=0.0)
    )
    session.submit(
        Request(rid=3, prompt_len=4, reasoning_len=4, answer_len=4,
                arrival_t=0.5)
    )
    session.step(until=2.0)
    # Both arrivals fired and were deferred: the waiting-room snapshot
    # lists them in defer order (not rid order) while the delay runs.
    waiting = session.cluster.deferred()
    assert [r.rid for r in waiting] == [7, 3]
    assert session.cluster.pending_arrivals >= len(waiting)
    session.drain()
    assert session.cluster.deferred() == []
    assert session.n_completed == 2


def test_admit_all_is_identity():
    config = TraceConfig(ALPACA_EVAL, n_requests=15, arrival_rate_per_s=2.0,
                         seed=2)
    plain = ServingSession(policy="fcfs", config=dataset_config())
    plain.attach(SyntheticSource(config))
    gated = ServingSession(
        policy="fcfs", config=dataset_config(), admission=AdmitAll()
    )
    gated.attach(SyntheticSource(config))
    assert metrics_to_payload(plain.drain()) == metrics_to_payload(
        gated.drain()
    )


def test_kv_budget_admission_defers_then_admits():
    from repro.api import KVBudgetAdmission

    session = ServingSession(
        policy="fcfs",
        config=small_config(1),
        admission=KVBudgetAdmission(4, defer_s=2.0),
        perf=UnitPerfModel(0.5),
    )
    recorder = session.subscribe(Recorder())
    # The first request's prompt KV (4 tokens) fills the 4-token budget;
    # the second arrival defers until the first finishes and frees it.
    session.attach(ListSource(make_requests([(0.0, 4, 4, 4), (0.1, 4, 4, 4)])))
    session.drain()
    kinds = [e[0] for e in recorder.events]
    assert "defer" in kinds
    assert session.n_completed == 2 and session.n_rejected == 0


def test_kv_budget_admission_rejects_without_defer():
    from repro.api import KVBudgetAdmission

    session = ServingSession(
        policy="fcfs",
        config=small_config(1),
        admission=KVBudgetAdmission(4),
        perf=UnitPerfModel(0.5),
    )
    session.attach(ListSource(make_requests([(0.0, 4, 4, 4), (0.1, 4, 4, 4)])))
    session.drain()
    assert session.n_completed == 1 and session.n_rejected == 1


def test_invalid_admission_decisions_rejected():
    from repro.api import KVBudgetAdmission

    with pytest.raises(ValueError):
        defer(0.0)
    with pytest.raises(ValueError):
        MaxInFlightAdmission(0)
    with pytest.raises(ValueError):
        MaxInFlightAdmission(1, defer_s=-1.0)
    with pytest.raises(ValueError):
        KVBudgetAdmission(0)
    with pytest.raises(ValueError):
        KVBudgetAdmission(1, defer_s=0.0)


# ---------------------------------------------------------------------------
# online behaviors: step(until), mid-run submit, late submissions
# ---------------------------------------------------------------------------
def test_step_until_bounds_simulated_time():
    session = ServingSession(
        policy="fcfs", config=small_config(1), perf=UnitPerfModel(1.0)
    )
    session.attach(
        ListSource(make_requests([(0.0, 4, 4, 4), (100.0, 4, 4, 4)]))
    )
    session.step(until=50.0)
    assert session.now <= 50.0
    assert session.n_completed == 1
    assert session.n_submitted == 2  # second pulled, event pending
    session.drain()
    assert session.n_completed == 2


def test_step_max_events_bounds_work():
    session = ServingSession(
        policy="fcfs", config=small_config(1), perf=UnitPerfModel(0.01)
    )
    session.attach(ListSource(make_requests([(0.0, 4, 4, 4)])))
    assert session.step(max_events=1) == 1
    assert session.n_completed == 0


def test_late_submission_admits_at_current_clock():
    """Regression (pre-session bug): submitting a request whose arrival_t
    is already in the past crashed the engine with "cannot schedule into
    the past".  The session/cluster path must clamp to the current clock
    and account the gap as queued time."""
    session = ServingSession(
        policy="fcfs", config=small_config(1), perf=UnitPerfModel(0.01)
    )
    session.attach(ListSource(make_requests([(1.0, 4, 4, 4)])))
    session.step()  # drain: clock is now ~1.x s
    assert session.now >= 1.0
    late = Request(rid=77, prompt_len=4, reasoning_len=4, answer_len=4,
                   arrival_t=0.0)
    handle = session.submit(late)  # pre-fix: ValueError
    session.drain()
    assert handle.status == "completed"
    # The time between nominal arrival (0.0) and admission is queued time.
    assert late.first_sched_t >= session.now - late.e2e_latency() - 1e-9
    assert late.ttft() is not None and late.ttft() >= 1.0


def test_mid_run_attached_source_interleaves():
    session = ServingSession(
        policy="fcfs", config=small_config(1), perf=UnitPerfModel(0.01)
    )
    session.attach(ListSource(make_requests([(0.0, 4, 4, 4)])))
    session.step(until=0.5)
    session.attach(ListSource([
        Request(rid=10, prompt_len=4, reasoning_len=0, answer_len=2,
                arrival_t=0.2)  # already in the past: clamps to now
    ]))
    session.drain()
    assert session.n_completed == 2


def test_drain_raises_when_horizon_strands_requests():
    session = ServingSession(
        policy="fcfs", config=small_config(1), horizon_s=0.5,
        perf=UnitPerfModel(1.0),
    )
    session.attach(ListSource(make_requests([(0.0, 4, 4, 4)])))
    with pytest.raises(RuntimeError, match="did not drain"):
        session.drain()


def test_handles_track_source_requests():
    session = ServingSession(
        policy="fcfs", config=small_config(1), perf=UnitPerfModel(0.01)
    )
    req = Request(rid=3, prompt_len=4, reasoning_len=4, answer_len=4,
                  arrival_t=0.0)
    session.attach(ListSource([req]))
    session.drain()
    handle = session.handle_for(req)
    assert handle.status == "completed"
    assert handle.instance_id == 0
    assert handle.e2e_latency() is not None


# ---------------------------------------------------------------------------
# engine feed mechanics (EventQueue preload-assumption audit)
# ---------------------------------------------------------------------------
def test_engine_feed_keeps_one_event_queued():
    engine = SimulationEngine()
    seen = []
    engine.register(EventKind.CALLBACK, lambda now, p: seen.append((now, p)))
    engine.attach_feed((float(i), EventKind.CALLBACK, i) for i in range(100))
    assert len(engine.queue) == 1  # head only, not the full preload
    engine.run()
    assert seen == [(float(i), i) for i in range(100)]
    assert engine.feeds_exhausted()


def test_arrival_wins_exact_timestamp_tie_with_handler_event():
    """Regression: a handler-scheduled event landing on the exact float
    timestamp of a feed arrival *further ahead* used to dispatch before
    it (the arrival's event was pushed later, so it carried a larger
    seq), diverging from the batch preload where every arrival outranks
    handler events at its timestamp.  The comparator's arrival-first tie
    rule now pins the batch order on both paths."""
    def run(batch: bool) -> list:
        engine = SimulationEngine()
        order = []

        def on_arrival(now, payload):
            order.append(("arr", now, payload))
            if payload == "A":
                # Handler schedules a dynamic event at exactly t=2.0 —
                # the timestamp of arrival C, two pulls ahead.
                engine.schedule(2.0, EventKind.CALLBACK, "D")

        engine.register(EventKind.ARRIVAL, on_arrival)
        engine.register(
            EventKind.CALLBACK, lambda now, p: order.append(("dyn", now, p))
        )
        items = [
            (0.5, EventKind.ARRIVAL, "A"),
            (1.0, EventKind.ARRIVAL, "B"),
            (2.0, EventKind.ARRIVAL, "C"),
        ]
        if batch:
            for time, kind, payload in items:
                engine.schedule(time, kind, payload)
        else:
            engine.attach_feed(iter(items))
        engine.run()
        return order

    assert run(batch=True) == run(batch=False)
    assert [p for _, _, p in run(batch=True)] == ["A", "B", "C", "D"]


def test_engine_feed_interleaves_with_scheduled_events():
    engine = SimulationEngine()
    order = []
    engine.register(EventKind.CALLBACK, lambda now, p: order.append(p))
    engine.schedule(1.5, EventKind.CALLBACK, "pushed")
    engine.attach_feed(
        iter([(1.0, EventKind.CALLBACK, "fed-a"),
              (2.0, EventKind.CALLBACK, "fed-b")])
    )
    engine.run()
    assert order == ["fed-a", "pushed", "fed-b"]


def test_engine_feed_rejects_time_regression():
    engine = SimulationEngine()
    engine.register(EventKind.CALLBACK, lambda now, p: None)
    engine.attach_feed(
        iter([(2.0, EventKind.CALLBACK, None),
              (1.0, EventKind.CALLBACK, None)])
    )
    with pytest.raises(ValueError, match="time-ordered"):
        engine.run()


def test_engine_feed_clamps_past_items_to_now():
    """A feed attached mid-run may head with an already-past timestamp;
    it must be dispatched at the current clock, not crash scheduling."""
    engine = SimulationEngine()
    seen = []
    engine.register(EventKind.CALLBACK, lambda now, p: seen.append(now))
    engine.schedule(5.0, EventKind.CALLBACK, None)
    engine.run()
    assert engine.now == 5.0
    engine.attach_feed(iter([(1.0, EventKind.CALLBACK, "late")]))
    engine.run()
    assert seen == [5.0, 5.0]  # clamped, not scheduled into the past


def test_engine_feed_beyond_horizon_stays_queued():
    """Horizon events from a feed behave like preloaded ones: they stay
    queued (and the feed is not over-pulled) when the horizon cuts off."""
    engine = SimulationEngine(horizon_s=1.0)
    pulled = []

    def feed():
        for i in range(5):
            pulled.append(i)
            yield (float(i), EventKind.CALLBACK, i)

    engine.register(EventKind.CALLBACK, lambda now, p: None)
    engine.attach_feed(feed())
    engine.run()
    # Items at t=0 and t=1 dispatched; t=2 pulled as the head but held.
    assert pulled == [0, 1, 2]
    assert len(engine.queue) == 1
    assert not engine.feeds_exhausted()
