"""Seeded random stream tests."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import (
    RandomStreams,
    lognormal_params,
    sample_lognormal_int,
)


class TestRandomStreams:
    def test_same_seed_same_draws(self):
        a = RandomStreams(7).stream("x")
        b = RandomStreams(7).stream("x")
        assert [a.random() for _ in range(10)] == [
            b.random() for _ in range(10)
        ]

    def test_different_names_are_independent(self):
        streams = RandomStreams(7)
        x = streams.stream("x")
        y = streams.stream("y")
        assert [x.random() for _ in range(5)] != [y.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x")
        b = RandomStreams(2).stream("x")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_stream_is_memoized(self):
        streams = RandomStreams(0)
        assert streams.stream("a") is streams.stream("a")

    def test_adding_consumer_does_not_shift_existing(self):
        lone = RandomStreams(3)
        value_alone = lone.stream("target").random()
        crowded = RandomStreams(3)
        crowded.stream("other").random()
        value_crowded = crowded.stream("target").random()
        assert value_alone == value_crowded


class TestLognormalParams:
    def test_mean_is_preserved(self):
        mu, sigma = lognormal_params(500.0, 0.9)
        assert math.exp(mu + sigma * sigma / 2) == pytest.approx(500.0)

    def test_zero_sigma_degenerates_to_constant(self):
        mu, sigma = lognormal_params(42.0, 0.0)
        assert math.exp(mu) == pytest.approx(42.0)

    def test_invalid_mean_rejected(self):
        with pytest.raises(ValueError):
            lognormal_params(0.0, 1.0)
        with pytest.raises(ValueError):
            lognormal_params(-5.0, 1.0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            lognormal_params(10.0, -0.1)


class TestSampleLognormalInt:
    def test_respects_clip_bounds(self):
        rng = RandomStreams(0).stream("clip")
        for _ in range(500):
            value = sample_lognormal_int(rng, 500.0, 1.5, 100, 900)
            assert 100 <= value <= 900

    def test_empty_clip_range_rejected(self):
        rng = RandomStreams(0).stream("bad")
        with pytest.raises(ValueError):
            sample_lognormal_int(rng, 500.0, 1.0, 10, 5)

    def test_sample_mean_tracks_requested_mean(self):
        rng = RandomStreams(11).stream("mean")
        samples = [
            sample_lognormal_int(rng, 500.0, 0.8, 1, 100_000)
            for _ in range(4000)
        ]
        mean = sum(samples) / len(samples)
        assert 440 < mean < 560

    @given(
        mean=st.floats(min_value=10.0, max_value=5000.0),
        sigma=st.floats(min_value=0.0, max_value=2.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_always_integer_in_range(self, mean, sigma):
        rng = RandomStreams(5).stream(f"h{mean}:{sigma}")
        value = sample_lognormal_int(rng, mean, sigma, 16, 8000)
        assert isinstance(value, int)
        assert 16 <= value <= 8000
