"""Trace importers: vLLM / OpenAI-style logs -> canonical JSONL traces."""

from __future__ import annotations

import json

import pytest

from repro.workload.importers import (
    IMPORT_FORMATS,
    ImportReport,
    TraceImportError,
    import_log,
    import_to_trace,
)
from repro.workload.trace import load_trace


def write_lines(path, lines):
    path.write_text(
        "\n".join(
            json.dumps(line) if not isinstance(line, str) else line
            for line in lines
        )
        + "\n",
        encoding="utf-8",
    )


VLLM_OK = [
    {
        "request_id": "cmpl-b",
        "arrival_time": 1000.5,
        "num_prompt_tokens": 80,
        "num_generated_tokens": 220,
        "num_reasoning_tokens": 150,
        "model": "r1-32b",
    },
    {
        "request_id": "cmpl-a",
        "arrival_time": 1000.0,
        "prompt_token_ids": [1, 2, 3, 4],
        "token_ids": [5, 6, 7],
    },
]

OPENAI_OK = [
    {
        "id": "chatcmpl-1",
        "created": 50,
        "model": "o4-mini",
        "usage": {
            "prompt_tokens": 30,
            "completion_tokens": 90,
            "completion_tokens_details": {"reasoning_tokens": 60},
        },
    },
    {
        "id": "chatcmpl-2",
        "created": 40,
        "model": "o4-mini",
        "usage": {"prompt_tokens": 12, "completion_tokens": 40},
    },
]


def test_vllm_import_sorts_shifts_and_splits(tmp_path):
    log = tmp_path / "vllm.jsonl"
    write_lines(log, VLLM_OK)
    report = import_log(log, "vllm")
    assert report.n_lines == 2 and report.n_imported == 2
    first, second = report.requests
    # Re-sorted by arrival, shifted to t=0, renumbered 0..n-1.
    assert (first.rid, first.arrival_t) == (0, 0.0)
    assert (second.rid, second.arrival_t) == (1, 0.5)
    # cmpl-a: token-id lists, no reasoning split -> pure answering.
    assert (first.prompt_len, first.reasoning_len, first.answer_len) == (4, 0, 3)
    # cmpl-b: explicit counts, reasoning carved out of the completion.
    assert (second.prompt_len, second.reasoning_len, second.answer_len) == (
        80, 150, 70,
    )
    assert second.dataset == "r1-32b" and first.dataset == ""


def test_openai_import_reads_usage_and_reasoning_details(tmp_path):
    log = tmp_path / "oai.jsonl"
    write_lines(log, OPENAI_OK)
    report = import_log(log, "openai")
    first, second = report.requests
    # chatcmpl-2 (created 40) arrives first.
    assert (first.prompt_len, first.reasoning_len, first.answer_len) == (
        12, 0, 40,
    )
    assert (second.prompt_len, second.reasoning_len, second.answer_len) == (
        30, 60, 30,
    )
    assert first.arrival_t == 0.0 and second.arrival_t == 10.0


def test_all_reasoning_completion_keeps_one_answer_token(tmp_path):
    log = tmp_path / "oai.jsonl"
    write_lines(
        log,
        [
            {
                "created": 1,
                "usage": {
                    "prompt_tokens": 5,
                    "completion_tokens": 10,
                    "completion_tokens_details": {"reasoning_tokens": 10},
                },
            }
        ],
    )
    (req,) = import_log(log, "openai").requests
    assert (req.reasoning_len, req.answer_len) == (9, 1)


def test_strict_mode_raises_with_line_number(tmp_path):
    log = tmp_path / "vllm.jsonl"
    write_lines(log, [VLLM_OK[0], "not json"])
    with pytest.raises(TraceImportError) as exc:
        import_log(log, "vllm")
    assert exc.value.line_no == 2
    assert str(log) in str(exc.value)


@pytest.mark.parametrize(
    "bad, message",
    [
        ({"arrival_time": "x", "num_prompt_tokens": 1,
          "num_generated_tokens": 1}, "arrival_time"),
        ({"arrival_time": 1.0, "num_generated_tokens": 1}, "prompt"),
        ({"arrival_time": 1.0, "num_prompt_tokens": 0,
          "num_generated_tokens": 1}, "num_prompt_tokens"),
        ({"arrival_time": 1.0, "num_prompt_tokens": 2,
          "num_generated_tokens": 5, "num_reasoning_tokens": 9},
         "exceeds completion"),
        ([1, 2], "JSON object"),
    ],
)
def test_lenient_mode_reports_each_malformed_line(tmp_path, bad, message):
    log = tmp_path / "vllm.jsonl"
    write_lines(log, [VLLM_OK[0], bad])
    report = import_log(log, "vllm", strict=False)
    assert report.n_imported == 1
    assert len(report.errors) == 1
    line_no, text = report.errors[0]
    assert line_no == 2 and message in text
    assert message in report.error_summary()


def test_blank_lines_ignored_not_counted(tmp_path):
    log = tmp_path / "vllm.jsonl"
    log.write_text(
        "\n" + json.dumps(VLLM_OK[0]) + "\n\n", encoding="utf-8"
    )
    report = import_log(log, "vllm")
    assert report.n_lines == 1 and report.n_imported == 1


def test_unknown_format_rejected(tmp_path):
    log = tmp_path / "x.jsonl"
    log.write_text("", encoding="utf-8")
    with pytest.raises(ValueError, match="unknown import format"):
        import_log(log, "sglang")
    assert IMPORT_FORMATS == ("openai", "vllm")


def test_import_to_trace_round_trips_through_loader(tmp_path):
    log = tmp_path / "vllm.jsonl"
    out = tmp_path / "trace.jsonl"
    write_lines(log, VLLM_OK)
    report = import_to_trace(log, out, "vllm")
    loaded = load_trace(out)
    assert [(r.rid, r.prompt_len, r.reasoning_len, r.answer_len)
            for r in loaded] == [
        (r.rid, r.prompt_len, r.reasoning_len, r.answer_len)
        for r in report.requests
    ]


def test_import_to_trace_empty_writes_nothing(tmp_path):
    log = tmp_path / "empty.jsonl"
    out = tmp_path / "trace.jsonl"
    log.write_text("", encoding="utf-8")
    report = import_to_trace(log, out, "openai")
    assert isinstance(report, ImportReport)
    assert report.n_imported == 0
    assert not out.exists()


def test_import_error_pickles_cleanly():
    import pickle

    err = TraceImportError("f.jsonl", 7, "bad")
    clone = pickle.loads(pickle.dumps(err))
    assert (clone.path, clone.line_no, clone.message) == ("f.jsonl", 7, "bad")
