"""Failure-injection and robustness tests.

Exercises the error paths a production system must fail loudly on:
impossible workloads, misuse of the engine, degenerate traces, and
boundary conditions in the scheduling machinery.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, InstanceConfig, SchedulerConfig
from repro.memory.blocks import OutOfMemoryError
from repro.perfmodel.unit import UnitPerfModel
from repro.schedulers.fcfs import FCFSScheduler
from repro.workload.request import ReqState, Request
from tests.conftest import build_instance
from tests.test_instance import simple_request, wire_arrivals


def unit_cluster(policy="pascal", n_instances=2, capacity=1600, cpu_gb=256):
    config = ClusterConfig(
        n_instances=n_instances,
        instance=InstanceConfig(
            kv_capacity_tokens=capacity,
            cpu_kv_bytes=cpu_gb * 1e9,
            scheduler=SchedulerConfig(token_quantum=50),
        ),
    )
    return Cluster(config, policy=policy, perf=UnitPerfModel(0.02))


class TestImpossibleWorkloads:
    def test_request_bigger_than_gpu_fails_loudly(self):
        cluster = unit_cluster(capacity=160)
        huge = Request(rid=0, prompt_len=100, reasoning_len=100, answer_len=10)
        with pytest.raises(OutOfMemoryError, match="single-request"):
            cluster.run_trace([huge])

    def test_cpu_pool_exhaustion_raises(self):
        # A CPU pool too small to absorb a preempted request must refuse
        # the swap instead of corrupting accounting.
        engine, inst = build_instance(
            FCFSScheduler(), capacity_tokens=64, cpu_tokens=16
        )
        # Both fit initially; the first request's growth then forces the
        # second out, and the CPU pool is too small to take its KV.
        first = simple_request(rid=0, prompt=17, reasoning=20, answer=4)
        second = simple_request(rid=1, prompt=17, reasoning=20, answer=10,
                                arrival=0.5)
        wire_arrivals(engine, inst, [first, second])
        with pytest.raises(OutOfMemoryError):
            engine.run()


class TestDegenerateTraces:
    def test_empty_trace_completes_immediately(self):
        cluster = unit_cluster()
        assert cluster.run_trace([]) == []
        assert cluster.all_finished()

    def test_single_token_answer(self):
        cluster = unit_cluster()
        req = Request(rid=0, prompt_len=4, reasoning_len=0, answer_len=1)
        cluster.run_trace([req])
        assert req.finished
        assert req.ttft() is not None

    def test_duplicate_arrival_times(self):
        cluster = unit_cluster()
        requests = [
            Request(rid=i, prompt_len=8, reasoning_len=5, answer_len=5,
                    arrival_t=1.0)
            for i in range(10)
        ]
        cluster.run_trace(requests)
        assert cluster.all_finished()

    def test_very_long_single_request(self):
        cluster = unit_cluster(capacity=4000)
        req = Request(rid=0, prompt_len=16, reasoning_len=1500, answer_len=1500)
        cluster.run_trace([req])
        assert req.finished
        assert req.generated_tokens == 3000


class TestEngineMisuse:
    def test_double_submit_runs_twice_the_requests(self):
        cluster = unit_cluster()
        batch_a = [Request(rid=0, prompt_len=8, reasoning_len=3, answer_len=3)]
        batch_b = [
            Request(rid=1, prompt_len=8, reasoning_len=3, answer_len=3)
        ]
        cluster.submit(batch_a)
        cluster.submit(batch_b)
        cluster.run()
        assert cluster.all_finished()
        assert len(cluster.completed) == 2

    def test_rerun_after_drain_is_harmless(self):
        cluster = unit_cluster()
        req = Request(rid=0, prompt_len=8, reasoning_len=3, answer_len=3)
        cluster.run_trace([req])
        cluster.run()  # queue is empty; returns immediately
        assert len(cluster.completed) == 1


class TestSchedulingBoundaries:
    def test_quantum_of_one_token(self):
        cluster = unit_cluster(policy="rr")
        config = ClusterConfig(
            n_instances=1,
            instance=InstanceConfig(
                kv_capacity_tokens=160,
                scheduler=SchedulerConfig(token_quantum=1),
            ),
        )
        cluster = Cluster(config, policy="rr", perf=UnitPerfModel(0.01))
        requests = [
            Request(rid=i, prompt_len=8, reasoning_len=10, answer_len=10,
                    arrival_t=0.0)
            for i in range(4)
        ]
        cluster.run_trace(requests)
        assert cluster.all_finished()
        # Every request burned many one-token quanta.
        assert all(r.level >= 10 for r in requests)

    def test_block_sized_requests_pack_exactly(self):
        # Requests sized exactly to blocks must tile the pool without slack.
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=64)
        requests = [
            simple_request(rid=i, prompt=10, reasoning=3, answer=2,
                           arrival=0.0)
            for i in range(4)
        ]
        wire_arrivals(engine, inst, requests)
        engine.run()
        assert all(r.finished for r in requests)

    def test_prefill_budget_splits_large_prompt_waves(self):
        config = ClusterConfig(
            n_instances=1,
            instance=InstanceConfig(
                kv_capacity_tokens=100_000,
                scheduler=SchedulerConfig(max_prefill_tokens=4096),
            ),
        )
        cluster = Cluster(config, policy="fcfs", perf=UnitPerfModel(0.01))
        requests = [
            Request(rid=i, prompt_len=3000, reasoning_len=2, answer_len=2,
                    arrival_t=0.0)
            for i in range(4)
        ]
        cluster.run_trace(requests)
        assert cluster.all_finished()
        # 3000-token prompts cannot batch more than one per 4096 budget.
        assert cluster.instances[0].prefill_steps >= 4


class TestStateMachineGuards:
    def test_token_after_finish_rejected(self):
        req = Request(rid=0, prompt_len=4, reasoning_len=1, answer_len=1)
        req.set_state(ReqState.RUNNING, 0.0)
        req.record_token(1.0)
        req.record_token(2.0)
        assert req.finished
        with pytest.raises(RuntimeError):
            req.record_token(3.0)

    def test_deterministic_under_duplicate_seeds(self):
        results = []
        for _ in range(2):
            cluster = unit_cluster(policy="pascal-nonadaptive")
            requests = [
                Request(rid=i, prompt_len=8, reasoning_len=20, answer_len=20,
                        arrival_t=0.05 * i)
                for i in range(20)
            ]
            cluster.run_trace(requests)
            results.append([r.done_t for r in requests])
        assert results[0] == results[1]
