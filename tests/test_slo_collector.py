"""SLO evaluation and RunMetrics collector tests."""

import pytest

from repro.config import SLOConfig
from repro.metrics.collector import RunMetrics
from repro.metrics.qoe import qoe_for_request, qoe_with_ttfat
from repro.metrics.slo import evaluate_slo
from repro.workload.request import Phase, ReqState, Request


def served_request(rid, ttfat=0.0, stall_after=None, n_tokens=30, tpot=0.1):
    """A finished request with a controllable answering-token timeline."""
    req = Request(rid=rid, prompt_len=8, reasoning_len=0, answer_len=n_tokens)
    req.reasoning_end_t = 1.0
    start = 1.0 + ttfat
    times = []
    t = start
    for k in range(n_tokens):
        if stall_after is not None and k == stall_after:
            t += 10.0
        times.append(t)
        t += tpot
    req.answer_token_times = times
    req.first_answer_t = times[0]
    req.done_t = times[-1]
    return req


class TestQoEVariants:
    def test_tpot_anchored_ignores_late_start(self):
        late = served_request(1, ttfat=60.0)
        assert qoe_for_request(late, 0.1) == pytest.approx(1.0)

    def test_ttfat_variant_punishes_late_start(self):
        late = served_request(1, ttfat=60.0)
        assert qoe_with_ttfat(late, 0.1, ttfat_target_s=0.25) < 0.5

    def test_ttfat_variant_ok_within_target(self):
        prompt_ok = served_request(1, ttfat=0.2)
        score = qoe_with_ttfat(prompt_ok, 0.1, ttfat_target_s=0.25)
        assert score == pytest.approx(1.0, abs=0.01)

    def test_none_for_tokenless_request(self):
        req = Request(rid=1, prompt_len=8, reasoning_len=2, answer_len=2)
        assert qoe_for_request(req, 0.1) is None
        assert qoe_with_ttfat(req, 0.1, 0.25) is None


class TestEvaluateSlo:
    def test_counts_violations(self):
        slo = SLOConfig()
        good = served_request(1)
        bad = served_request(2, stall_after=15)
        report = evaluate_slo([good, bad], slo)
        assert report.n_requests == 2
        assert report.n_violations == 1
        assert report.violation_rate == 0.5
        assert report.attainment_rate == 0.5

    def test_include_ttfat_changes_result(self):
        slo = SLOConfig()
        late = served_request(1, ttfat=5.0)
        relaxed = evaluate_slo([late], slo, include_ttfat=False)
        strict = evaluate_slo([late], slo, include_ttfat=True)
        assert relaxed.n_violations == 0
        assert strict.n_violations == 1

    def test_empty_set(self):
        report = evaluate_slo([], SLOConfig())
        assert report.violation_rate == 0.0
        assert report.attainment_rate == 1.0

    def test_unfinished_requests_not_counted(self):
        pending = Request(rid=1, prompt_len=8, reasoning_len=2, answer_len=2)
        report = evaluate_slo([pending], SLOConfig())
        assert report.n_requests == 0


class TestRunMetrics:
    def build_metrics(self):
        requests = [served_request(i, ttfat=0.1 * i) for i in range(5)]
        return RunMetrics(policy="test", requests=requests)

    def test_latency_views(self):
        metrics = self.build_metrics()
        assert len(metrics.ttfts()) == 5
        assert len(metrics.ttfats()) == 5
        assert len(metrics.e2e_latencies()) == 5
        assert metrics.mean_ttft() > 0

    def test_tail_ttft(self):
        metrics = self.build_metrics()
        assert metrics.tail_ttft(99) >= metrics.tail_ttft(50)

    def test_phase_breakdown_grouping(self):
        req_a = served_request(1)
        req_a.breakdown[(Phase.ANSWERING, "executed")] = 2.0
        req_b = served_request(2)
        req_b.breakdown[(Phase.ANSWERING, "executed")] = 4.0
        metrics = RunMetrics(policy="test", requests=[req_a, req_b])
        cells = metrics.phase_breakdown(Phase.ANSWERING, lambda r: 0)
        assert cells[0]["executed"] == pytest.approx(3.0)
        assert cells[0]["blocked"] == 0.0

    def test_slo_report_wiring(self):
        metrics = self.build_metrics()
        report = metrics.slo_report(SLOConfig())
        assert report.n_requests == 5

    def test_transfer_latency_percentile(self):
        metrics = RunMetrics(
            policy="test",
            requests=[],
            transfer_latencies_s=[0.01 * i for i in range(1, 101)],
        )
        assert metrics.p99_transfer_latency() == pytest.approx(0.9901)

    def test_transfer_latency_none_when_empty(self):
        metrics = RunMetrics(policy="test", requests=[])
        assert metrics.p99_transfer_latency() is None

    def test_blocking_latencies_only_for_transitioned(self):
        req = served_request(1)
        req.answer_sched_t = 1.5
        metrics = RunMetrics(policy="test", requests=[req])
        assert metrics.blocking_latencies() == [pytest.approx(0.5)]
