"""SLO evaluation and RunMetrics collector tests."""

import pytest

from repro.config import SLOConfig
from repro.metrics.collector import RunMetrics
from repro.metrics.qoe import qoe_for_request, qoe_with_ttfat
from repro.metrics.slo import evaluate_slo
from repro.workload.request import Phase, ReqState, Request


def served_request(rid, ttfat=0.0, stall_after=None, n_tokens=30, tpot=0.1):
    """A finished request with a controllable answering-token timeline."""
    req = Request(rid=rid, prompt_len=8, reasoning_len=0, answer_len=n_tokens)
    req.reasoning_end_t = 1.0
    start = 1.0 + ttfat
    times = []
    t = start
    for k in range(n_tokens):
        if stall_after is not None and k == stall_after:
            t += 10.0
        times.append(t)
        t += tpot
    req.answer_token_times = times
    req.first_answer_t = times[0]
    req.done_t = times[-1]
    return req


class TestQoEVariants:
    def test_tpot_anchored_ignores_late_start(self):
        late = served_request(1, ttfat=60.0)
        assert qoe_for_request(late, 0.1) == pytest.approx(1.0)

    def test_ttfat_variant_punishes_late_start(self):
        late = served_request(1, ttfat=60.0)
        assert qoe_with_ttfat(late, 0.1, ttfat_target_s=0.25) < 0.5

    def test_ttfat_variant_ok_within_target(self):
        prompt_ok = served_request(1, ttfat=0.2)
        score = qoe_with_ttfat(prompt_ok, 0.1, ttfat_target_s=0.25)
        assert score == pytest.approx(1.0, abs=0.01)

    def test_none_for_tokenless_request(self):
        req = Request(rid=1, prompt_len=8, reasoning_len=2, answer_len=2)
        assert qoe_for_request(req, 0.1) is None
        assert qoe_with_ttfat(req, 0.1, 0.25) is None


class TestEvaluateSlo:
    def test_counts_violations(self):
        slo = SLOConfig()
        good = served_request(1)
        bad = served_request(2, stall_after=15)
        report = evaluate_slo([good, bad], slo)
        assert report.n_requests == 2
        assert report.n_violations == 1
        assert report.violation_rate == 0.5
        assert report.attainment_rate == 0.5

    def test_include_ttfat_changes_result(self):
        slo = SLOConfig()
        late = served_request(1, ttfat=5.0)
        relaxed = evaluate_slo([late], slo, include_ttfat=False)
        strict = evaluate_slo([late], slo, include_ttfat=True)
        assert relaxed.n_violations == 0
        assert strict.n_violations == 1

    def test_empty_set(self):
        report = evaluate_slo([], SLOConfig())
        assert report.violation_rate == 0.0
        assert report.attainment_rate == 1.0

    def test_never_answered_request_counts_as_violation(self):
        # Regression: unscored requests used to be dropped, so a policy
        # that starved requests *improved* its attainment rate.
        pending = Request(rid=1, prompt_len=8, reasoning_len=2, answer_len=2)
        report = evaluate_slo([pending], SLOConfig())
        assert report.n_requests == 1
        assert report.n_violations == 1
        assert report.n_unscored == 1
        assert report.violation_rate == 1.0
        assert report.attainment_rate == 0.0
        assert report.qoe_scores == ()

    def test_starvation_cannot_improve_attainment(self):
        slo = SLOConfig()
        served = [served_request(i) for i in range(3)]
        starved = Request(rid=9, prompt_len=8, reasoning_len=2, answer_len=2)
        full = evaluate_slo(served + [starved], slo)
        served_only = evaluate_slo(served, slo)
        assert full.attainment_rate < served_only.attainment_rate
        assert full.n_requests == 4
        assert full.n_unscored == 1

    def test_mean_qoe(self):
        report = evaluate_slo([served_request(1)], SLOConfig())
        assert report.mean_qoe == pytest.approx(1.0, abs=0.01)
        assert evaluate_slo([], SLOConfig()).mean_qoe is None


class TestRunMetrics:
    def build_metrics(self):
        requests = [served_request(i, ttfat=0.1 * i) for i in range(5)]
        return RunMetrics(policy="test", requests=requests)

    def test_latency_views(self):
        metrics = self.build_metrics()
        assert len(metrics.ttfts()) == 5
        assert len(metrics.ttfats()) == 5
        assert len(metrics.e2e_latencies()) == 5
        assert metrics.mean_ttft() > 0

    def test_tail_ttft(self):
        metrics = self.build_metrics()
        assert metrics.tail_ttft(99) >= metrics.tail_ttft(50)

    def test_phase_breakdown_grouping(self):
        req_a = served_request(1)
        req_a.breakdown[(Phase.ANSWERING, "executed")] = 2.0
        req_b = served_request(2)
        req_b.breakdown[(Phase.ANSWERING, "executed")] = 4.0
        metrics = RunMetrics(policy="test", requests=[req_a, req_b])
        cells = metrics.phase_breakdown(Phase.ANSWERING, lambda r: 0)
        assert cells[0]["executed"] == pytest.approx(3.0)
        assert cells[0]["blocked"] == 0.0

    def test_slo_report_wiring(self):
        metrics = self.build_metrics()
        report = metrics.slo_report(SLOConfig())
        assert report.n_requests == 5

    def test_transfer_latency_percentile(self):
        metrics = RunMetrics(
            policy="test",
            requests=[],
            transfer_latencies_s=[0.01 * i for i in range(1, 101)],
        )
        assert metrics.p99_transfer_latency() == pytest.approx(0.9901)

    def test_transfer_latency_none_when_empty(self):
        metrics = RunMetrics(policy="test", requests=[])
        assert metrics.p99_transfer_latency() is None

    def test_blocking_latencies_only_for_transitioned(self):
        req = served_request(1)
        req.answer_sched_t = 1.5
        metrics = RunMetrics(policy="test", requests=[req])
        assert metrics.blocking_latencies() == [pytest.approx(0.5)]

    def test_latency_views_call_each_accessor_once(self):
        # Regression: the views used to evaluate `r.ttft()` twice per
        # request (once to filter, once to collect), doubling the work in
        # hot figure paths.
        class CountingRequest:
            def __init__(self):
                self.calls = {}

            def _count(self, name, value):
                self.calls[name] = self.calls.get(name, 0) + 1
                return value

            def ttft(self):
                return self._count("ttft", 1.0)

            def ttfat(self):
                return self._count("ttfat", None)

            def e2e_latency(self):
                return self._count("e2e", 2.0)

            def reasoning_latency(self):
                return self._count("reasoning", None)

            def blocking_latency(self):
                return self._count("blocking", 0.5)

        req = CountingRequest()
        metrics = RunMetrics(policy="test", requests=[req])
        assert metrics.ttfts() == [1.0]
        assert metrics.ttfats() == []
        assert metrics.e2e_latencies() == [2.0]
        assert metrics.reasoning_latencies() == []
        assert metrics.blocking_latencies() == [0.5]
        assert req.calls == {
            "ttft": 1,
            "ttfat": 1,
            "e2e": 1,
            "reasoning": 1,
            "blocking": 1,
        }


class TestEmptyRunMetrics:
    """Regression: accessors must be NaN/None-safe with zero completions.

    An aggressive admission gate (or the deferral-livelock backstop) can
    reject an entire trace, leaving ``requests=[]``.  ``mean_ttft`` used to
    divide by zero and ``tail_ttft`` asked ``percentile`` for a quantile of
    an empty list (ValueError), crashing every table builder downstream.
    """

    def empty(self):
        return RunMetrics(policy="test", requests=[])

    def test_mean_ttft_is_nan(self):
        import math

        assert math.isnan(self.empty().mean_ttft())

    def test_tail_ttft_is_nan(self):
        import math

        metrics = self.empty()
        assert math.isnan(metrics.tail_ttft())
        assert math.isnan(metrics.tail_ttft(50))

    def test_rank_accessors_degrade_to_none(self):
        metrics = self.empty()
        assert metrics.rank_correlation() is None
        assert metrics.rank_correlation_rows() == []

    def test_format_cell_renders_the_nan_safely(self):
        # The table layer's contract for missing values: "-" not a crash.
        from repro.harness.report import format_cell

        assert format_cell(None) == "-"

    def test_rank_correlation_needs_two_pairs_per_dataset(self):
        metrics = RunMetrics(
            policy="test",
            requests=[],
            predictor_rank_pairs={"lonely": ((1.0, 2.0),)},
        )
        # One pair cannot order anything: skipped, not a ValueError.
        assert metrics.rank_correlation("lonely") is None
        assert metrics.rank_correlation_rows() == []
