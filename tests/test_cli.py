"""CLI behaviors: usage errors exit 2 with one-line messages, cache and
bench subcommands, target aliases."""

from __future__ import annotations

import json

import pytest

from repro.harness import cache
from repro.harness.__main__ import _cacheable_experiments, main
from repro.harness.experiments import ALL_EXPERIMENTS
from repro.harness.runner import (
    clear_caches,
    reset_simulation_count,
    restore_caches,
    snapshot_caches,
)
from repro.workload.datasets import ALPACA_EVAL
from repro.workload.trace import TraceConfig, build_trace, export_trace


@pytest.fixture(autouse=True)
def isolated(monkeypatch):
    monkeypatch.delenv("PASCAL_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    saved = snapshot_caches()
    clear_caches()
    yield
    cache.configure("off")
    restore_caches(saved)
    reset_simulation_count()


@pytest.fixture
def tiny_trace(tmp_path):
    path = tmp_path / "trace.jsonl"
    export_trace(
        build_trace(
            TraceConfig(
                dataset=ALPACA_EVAL, n_requests=8, arrival_rate_per_s=3.0, seed=5
            )
        ),
        path,
    )
    return str(path)


class TestUsageErrors:
    def test_trace_compare_unknown_policy_exits_2(self, tiny_trace, capsys):
        # Regression (ISSUE 3): an unknown --policies name must be a
        # one-line usage error on stderr with exit status 2, like every
        # other target — not a bare registry traceback.
        rc = main(
            [
                "trace-compare",
                "--trace",
                tiny_trace,
                "--policies",
                "pascal,nonexistent-policy",
                "--jobs",
                "1",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 2
        err_lines = [l for l in captured.err.splitlines() if l.strip()]
        assert len(err_lines) == 1
        assert "unknown policy 'nonexistent-policy'" in err_lines[0]
        assert err_lines[0].startswith("trace-compare:")

    def test_unknown_experiment_mentions_new_targets(self, capsys):
        rc = main(["no-such-experiment"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "figures" in err and "bench" in err and "cache" in err

    def test_cache_without_action_exits_2(self, capsys, tmp_path):
        rc = main(["cache", "--cache-dir", str(tmp_path)])
        assert rc == 2
        assert "ls, prune, clear" in capsys.readouterr().err

    def test_cache_unknown_action_exits_2(self, capsys, tmp_path):
        rc = main(["cache", "evict", "--cache-dir", str(tmp_path)])
        assert rc == 2
        assert "evict" in capsys.readouterr().err

    def test_invalid_env_cache_mode_exits_2(self, capsys, monkeypatch):
        # argparse `choices` only guards command-line values; an invalid
        # $REPRO_CACHE default must still be a one-line usage error.
        monkeypatch.setenv("REPRO_CACHE", "bogus")
        rc = main(["fig2", "--jobs", "1"])
        assert rc == 2
        err_lines = [l for l in capsys.readouterr().err.splitlines() if l]
        assert len(err_lines) == 1
        assert "'bogus'" in err_lines[0]

    def test_bench_with_unknown_target_validates_first(
        self, capsys, tmp_path
    ):
        # The typo'd target must fail before the (slow) bench suite runs
        # or writes its artifact.
        out = tmp_path / "bench"
        out.mkdir()
        rc = main(["bench", "fig99", "--bench-out", str(out)])
        assert rc == 2
        assert "fig99" in capsys.readouterr().err
        assert list(out.iterdir()) == []


class TestCacheSubcommand:
    def test_ls_prune_clear_on_empty_store(self, tmp_path, capsys):
        d = str(tmp_path / "store")
        assert main(["cache", "ls", "--cache-dir", d]) == 0
        assert "0 entries" in capsys.readouterr().out
        assert main(["cache", "prune", "--cache-dir", d]) == 0
        assert "pruned 0" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", d]) == 0
        assert "cleared 0" in capsys.readouterr().out


class TestFiguresAlias:
    def test_cacheable_set_is_exactly_the_cell_backed_specs(self):
        assert _cacheable_experiments() == sorted(
            name
            for name, spec in ALL_EXPERIMENTS.items()
            if spec.cells is not None
        )
        # Build-only figures (inline sims or pure synthesis) are excluded:
        # the store cannot serve them end-to-end.
        for excluded in ("fig2", "fig8", "fig14", "sec5a"):
            assert excluded not in _cacheable_experiments()


class TestBench:
    def test_bench_writes_versioned_artifact(self, tmp_path, capsys):
        out = tmp_path / "bench"
        out.mkdir()
        rc = main(
            [
                "bench",
                "--bench-requests",
                "24",
                "--bench-repeats",
                "1",
                "--shard-requests",
                "200",
                "--bench-out",
                str(out),
            ]
        )
        assert rc == 0
        (artifact,) = sorted(out.glob("BENCH_*.json"))
        doc = json.loads(artifact.read_text())
        assert doc["format"] == "pascal-bench"
        assert doc["version"] == 3
        names = {bench["name"] for bench in doc["benchmarks"]}
        assert {"eventqueue.heapq", "eventqueue.bucket"} <= names
        assert any(name.startswith("fig9.sim.") for name in names)
        # v2: every fig9 entry has a .noepoch A/B twin and requests/s.
        for policy in ("fcfs", "pascal"):
            assert f"fig9.sim.{policy}" in names
            assert f"fig9.sim.{policy}.noepoch" in names
        for bench in doc["benchmarks"]:
            if bench["name"].startswith("fig9.sim."):
                assert bench["requests_per_s"] > 0
                assert isinstance(bench["epoch_coalescing"], bool)
        # v3: the shard scaling ladder, with honest per-core normalization.
        assert {
            "shard.sim.fcfs.k1w1",
            "shard.sim.fcfs.k4w1",
            "shard.sim.fcfs.k4w4",
        } <= names
        for bench in doc["benchmarks"]:
            if bench["name"].startswith("shard.sim."):
                assert bench["requests"] == 200
                assert bench["requests_per_s_per_core"] > 0
                assert bench["cores"] >= 1
        assert "profile" not in doc  # opt-in via --profile
        stdout = capsys.readouterr().out
        assert "eventqueue.bucket" in stdout
        assert str(artifact) in stdout

    def test_bench_profile_section(self, tmp_path, capsys):
        out = tmp_path / "bench"
        out.mkdir()
        rc = main(
            [
                "bench",
                "--bench-requests",
                "24",
                "--bench-repeats",
                "1",
                "--shard-requests",
                "0",  # skip-the-series escape hatch
                "--profile",
                "--bench-out",
                str(out),
            ]
        )
        assert rc == 0
        (artifact,) = sorted(out.glob("BENCH_*.json"))
        doc = json.loads(artifact.read_text())
        profile = doc["profile"]
        assert profile["target"] == "fig9.sim.fcfs"
        assert 0 < len(profile["top"]) <= 15
        for row in profile["top"]:
            assert set(row) == {"func", "ncalls", "tottime_s", "cumtime_s"}
        # Ranked by cumulative time, descending.
        cums = [row["cumtime_s"] for row in profile["top"]]
        assert cums == sorted(cums, reverse=True)
        assert "cProfile top-" in capsys.readouterr().out

    def test_bench_no_epoch_escape_hatch(self, tmp_path):
        out = tmp_path / "bench"
        out.mkdir()
        rc = main(
            [
                "bench",
                "--bench-requests",
                "24",
                "--bench-repeats",
                "1",
                "--shard-requests",
                "0",
                "--no-epoch",
                "--bench-out",
                str(out),
            ]
        )
        assert rc == 0
        (artifact,) = sorted(out.glob("BENCH_*.json"))
        doc = json.loads(artifact.read_text())
        assert doc["config"]["epoch_coalescing"] is False
        for bench in doc["benchmarks"]:
            if bench["name"].startswith("fig9.sim."):
                assert bench["epoch_coalescing"] is False
                assert not bench["name"].endswith(".noepoch")


class TestPoolKnob:
    def test_parse_pool_forms(self):
        from repro.config import PoolSpec
        from repro.harness.__main__ import _parse_pool

        assert _parse_pool("2") == PoolSpec(
            express_instances=2,
            express_threshold_tokens=PoolSpec().express_threshold_tokens,
        )
        assert _parse_pool("3:500") == PoolSpec(
            express_instances=3, express_threshold_tokens=500
        )
        for junk in ("", "x", "2:", "2:x", "-1", "2:-5"):
            with pytest.raises(ValueError):
                _parse_pool(junk)

    def test_trace_compare_bad_pool_exits_2(self, tiny_trace, capsys):
        rc = main(
            ["trace-compare", "--trace", tiny_trace, "--pool", "bogus"]
        )
        captured = capsys.readouterr()
        assert rc == 2
        assert "--pool" in captured.err
        assert captured.err.count("\n") == 1

    def test_trace_compare_with_pool_runs_tiered_policy(
        self, tiny_trace, capsys
    ):
        rc = main(
            [
                "trace-compare",
                "--trace",
                tiny_trace,
                "--pool",
                "2:400",
                "--policies",
                "tiered-express",
                "--jobs",
                "1",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "tiered-express" in captured.out


class TestServe:
    def test_serve_streams_events_and_summarizes(self, tiny_trace, capsys):
        rc = main(["serve", "--trace", tiny_trace, "--jobs", "1"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "admit" in captured.out
        assert "first-token" in captured.out
        assert "complete" in captured.out
        assert "served 8 requests (0 rejected, 0 cancelled)" in captured.out
        assert "under pascal" in captured.out
        assert "serve: final submitted=8 completed=8" in captured.out

    def test_serve_quiet_prints_only_summary(self, tiny_trace, capsys):
        rc = main(["serve", "--trace", tiny_trace, "--quiet"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "admit" not in captured.out
        assert "served 8 requests" in captured.out

    def test_serve_admit_max_rejects_and_accounts(self, tiny_trace, capsys):
        rc = main(
            ["serve", "--trace", tiny_trace, "--quiet", "--admit-max", "1"]
        )
        captured = capsys.readouterr()
        assert rc == 0
        # 8 submitted = completed + rejected; with a 1-deep gate on this
        # bursty trace, at least one arrival must have been turned away.
        assert "rejected," in captured.out
        assert "(0 rejected," not in captured.out
        assert "rejected=0" not in captured.out

    def test_serve_without_trace_exits_2(self, capsys):
        rc = main(["serve"])
        assert rc == 2
        assert "--trace" in capsys.readouterr().err

    def test_serve_unknown_policy_exits_2(self, tiny_trace, capsys):
        rc = main(["serve", "--trace", tiny_trace, "--policy", "nope"])
        captured = capsys.readouterr()
        assert rc == 2
        err_lines = [l for l in captured.err.splitlines() if l.strip()]
        assert len(err_lines) == 1
        assert err_lines[0].startswith("serve:")

    def test_serve_missing_file_exits_2(self, tmp_path, capsys):
        rc = main(["serve", "--trace", str(tmp_path / "none.jsonl")])
        assert rc == 2
        assert "serve:" in capsys.readouterr().err

    def test_serve_malformed_trace_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"format": "pascal-trace", "version": 1}\nnope\n')
        rc = main(["serve", "--trace", str(bad), "--quiet"])
        assert rc == 2
        assert "bad.jsonl:2" in capsys.readouterr().err


class TestImportTrace:
    def test_import_then_replay_round_trip(self, tmp_path, capsys):
        log = tmp_path / "log.jsonl"
        log.write_text(
            json.dumps(
                {
                    "arrival_time": 12.0,
                    "num_prompt_tokens": 9,
                    "num_generated_tokens": 7,
                    "num_reasoning_tokens": 3,
                }
            )
            + "\n"
        )
        out = tmp_path / "trace.jsonl"
        rc = main(
            [
                "import-trace",
                "--format",
                "vllm",
                "--input",
                str(log),
                "--output",
                str(out),
            ]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "imported 1/1 requests (vllm)" in captured.out
        rc = main(["serve", "--trace", str(out), "--quiet"])
        assert rc == 0
        assert "served 1 requests" in capsys.readouterr().out

    def test_import_missing_args_exits_2(self, capsys):
        rc = main(["import-trace", "--format", "vllm"])
        assert rc == 2
        assert "--input" in capsys.readouterr().err

    def test_import_strict_failure_exits_2(self, tmp_path, capsys):
        log = tmp_path / "log.jsonl"
        log.write_text("garbage\n")
        rc = main(
            [
                "import-trace",
                "--format",
                "openai",
                "--input",
                str(log),
                "--output",
                str(tmp_path / "out.jsonl"),
            ]
        )
        assert rc == 2
        assert "log.jsonl:1" in capsys.readouterr().err

    def test_import_skip_malformed_reports_but_succeeds(
        self, tmp_path, capsys
    ):
        log = tmp_path / "log.jsonl"
        log.write_text(
            "garbage\n"
            + json.dumps(
                {
                    "created": 5,
                    "usage": {"prompt_tokens": 4, "completion_tokens": 6},
                }
            )
            + "\n"
        )
        out = tmp_path / "out.jsonl"
        rc = main(
            [
                "import-trace",
                "--format",
                "openai",
                "--input",
                str(log),
                "--output",
                str(out),
                "--skip-malformed",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "imported 1/2" in captured.out
        assert "skipped 1 malformed" in captured.err

    def test_import_all_malformed_exits_2(self, tmp_path, capsys):
        log = tmp_path / "log.jsonl"
        log.write_text("garbage\n")
        rc = main(
            [
                "import-trace",
                "--format",
                "openai",
                "--input",
                str(log),
                "--output",
                str(tmp_path / "out.jsonl"),
                "--skip-malformed",
            ]
        )
        assert rc == 2
        assert "no importable requests" in capsys.readouterr().err


class TestMaxBytesPrune:
    def test_prune_with_budget_reports_it(self, tmp_path, capsys):
        rc = main(
            [
                "cache",
                "prune",
                "--cache-dir",
                str(tmp_path / "store"),
                "--max-bytes",
                "1000",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "budget 1,000 bytes" in captured.out

    def test_prune_negative_budget_exits_2(self, tmp_path, capsys):
        rc = main(
            [
                "cache",
                "prune",
                "--cache-dir",
                str(tmp_path / "store"),
                "--max-bytes",
                "-3",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 2
        assert "max_bytes" in captured.err
