"""PAS007 fixture: mutable default arguments (flagged)."""


def collect(batch=[]):  # finding: shared list default
    batch.append(1)
    return batch


def route(table={}, *, tags=set()):  # findings: dict and set defaults
    return table, tags
