"""PAS001 fixture: simulated-clock reads only (clean)."""


def stamp_event(event, engine, now):
    event.created_at = engine.now
    event.dispatched_at = now
    return event
