"""PAS007 fixture: None defaults constructed in the body (clean)."""


def collect(batch=None):
    batch = [] if batch is None else batch
    batch.append(1)
    return batch


def route(table=None, *, tags=()):
    return table or {}, set(tags)
