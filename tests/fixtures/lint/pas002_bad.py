"""PAS002 fixture: global random state (all flagged)."""

import random

import numpy as np


def jittered_delay(base):
    random.seed(0)  # finding: reseeds the process-global stream
    noise = random.uniform(0.0, 0.1)  # finding: global stream
    spike = np.random.rand()  # finding: numpy global state
    return base + noise + spike
