"""PAS004 fixture: tolerance / sequence comparison on time (clean)."""

EPS = 1e-9


def is_simultaneous(event, other):
    if abs(event.time - other.time) < EPS:
        return True
    return event.seq < other.seq
