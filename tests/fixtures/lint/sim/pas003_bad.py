"""PAS003 fixture: hash-ordered iteration in placement code (flagged)."""


class Placer:
    def __init__(self):
        self.pending: set = set()
        self.by_instance = {}

    def place_all(self, emit):
        for req in self.pending:  # finding: set iteration
            emit(req)
        for iid in self.by_instance.keys():  # finding: .keys() iteration
            emit(iid)
        return [v for v in self.by_instance.values()]  # finding: .values()


def census(instances):
    seen = {i.iid for i in instances}
    return [iid for iid in seen]  # finding: set comprehension result
