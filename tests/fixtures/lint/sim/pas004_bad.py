"""PAS004 fixture: exact float equality on simulated time (flagged)."""


def is_simultaneous(event, other, deadline_s):
    if event.time == other.time:  # finding: == on time
        return True
    return event.done_t != deadline_s  # finding: != on *_t / *_s names
