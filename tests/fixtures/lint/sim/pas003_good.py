"""PAS003 fixture: explicitly ordered iteration (clean)."""


class Placer:
    def __init__(self):
        self.pending: set = set()
        self.by_instance = {}

    def place_all(self, emit):
        for req in sorted(self.pending, key=lambda r: r.rid):
            emit(req)
        for iid in sorted(self.by_instance):
            emit(iid)
        return [self.by_instance[iid] for iid in sorted(self.by_instance)]
