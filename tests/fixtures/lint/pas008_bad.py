"""PAS008 fixture: subscriber hooks drifting from the protocol (flagged)."""

from repro.api import SessionSubscriber


class DriftingSubscriber(SessionSubscriber):
    def on_admit(self, handle, now):  # finding: dropped instance_id
        pass

    def on_compelte(self, handle, now):  # finding: typo'd hook never fires
        pass

    def on_defer(self, handle, now, delay_s, retries):  # finding: extra param
        pass
