"""PAS006 fixture: registered policies with the current signature (clean)."""

from repro.core.policy import ClusterPolicy
from repro.core.registry import register_policy


@register_policy
class DecoratedPolicy(ClusterPolicy):
    """Registered via the decorator."""

    name = "fixture-decorated"

    def make_intra_scheduler(self, iid):
        return None

    def place_arrival(self, req, now):
        return self.instances[0]


class CallRegisteredPolicy(ClusterPolicy):
    """Registered via a module-level call."""

    name = "fixture-call-registered"

    def make_intra_scheduler(self, iid):
        return None

    def place_arrival(self, req, now):
        return self.instances[0]


register_policy(CallRegisteredPolicy)
