"""PAS006 fixture: unregistered / legacy-signature policies (flagged)."""

from repro.core.policy import ClusterPolicy


class GhostPolicy(ClusterPolicy):  # finding: never registered
    """A policy the registry (and every harness sweep) will never see."""

    name = "ghost"

    def make_intra_scheduler(self):  # finding: deprecated zero-arg form
        return None

    def place_arrival(self, req, now):
        return self.instances[0]
