"""PAS008 fixture: protocol-conformant subscriber (clean)."""

from repro.api import SessionSubscriber


class ConformantSubscriber(SessionSubscriber):
    def on_admit(self, handle, now, instance_id):
        pass

    def on_complete(self, handle, now):
        pass

    def record_everything(self, *args):  # not a hook name: ignored
        pass


class PassThroughSubscriber(SessionSubscriber):
    def on_admit(self, *args, **kwargs):  # escape hatch: accepted
        pass
