"""PAS001 fixture: wall clock inside the sanctioned bench/ scope (clean).

Benchmarks *measure* wall time; the scoped config allows it here.
"""

import time


def time_run(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
