"""PAS001 fixture: wall-clock reads in deterministic code (all flagged)."""

import time
from datetime import datetime
from time import perf_counter as pc


def stamp_event(event):
    event.created_at = time.time()  # finding: wall clock
    event.day = datetime.now()  # finding: wall clock via from-import
    event.elapsed = pc()  # finding: aliased perf_counter
    return event
