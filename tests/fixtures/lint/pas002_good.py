"""PAS002 fixture: named seeded streams (clean)."""

import random


def jittered_delay(base, streams):
    # A named stream from repro.sim.rng.RandomStreams ...
    noise = streams.stream("arrival-jitter").uniform(0.0, 0.1)
    # ... or an explicit instance-local generator.
    local = random.Random(42)
    return base + noise + local.uniform(0.0, 0.1)
