"""Percentile, binning and adaptive-tail tests (Figure 10 machinery)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.summary import (
    adaptive_tail,
    bucket_means,
    mean,
    percentile,
    tail_ttft_bins,
)
from repro.workload.request import Request


class TestPercentile:
    def test_median_of_odd_list(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_interpolates(self):
        assert percentile([0.0, 10.0], 50) == pytest.approx(5.0)

    def test_extremes(self):
        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_pct_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    @given(
        st.lists(st.floats(min_value=0, max_value=1e6), min_size=1),
        st.floats(min_value=0, max_value=100),
    )
    @settings(max_examples=100, deadline=None)
    def test_percentile_within_range(self, values, pct):
        p = percentile(values, pct)
        span = max(values) - min(values)
        tol = 1e-9 * (1.0 + span + abs(max(values)))
        assert min(values) - tol <= p <= max(values) + tol

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=2))
    @settings(max_examples=100, deadline=None)
    def test_percentile_monotone_in_pct(self, values):
        assert percentile(values, 25) <= percentile(values, 75)

    def test_matches_numpy_linear(self):
        numpy = pytest.importorskip("numpy")
        values = [1.0, 5.0, 2.0, 8.0, 3.0, 9.0, 4.0]
        for pct in (10, 25, 50, 75, 90, 99):
            assert percentile(values, pct) == pytest.approx(
                float(numpy.percentile(values, pct, method="linear"))
            )


class TestMean:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])


class TestAdaptiveTail:
    """The paper's sample-size-dependent tail rule (Figure 10 caption)."""

    def test_under_five_omitted(self):
        assert adaptive_tail([1.0] * 4) is None

    def test_five_to_nine_uses_max(self):
        name, value = adaptive_tail(list(map(float, range(7))))
        assert name == "max" and value == 6.0

    def test_ten_to_nineteen_uses_p90(self):
        name, _ = adaptive_tail(list(map(float, range(15))))
        assert name == "p90"

    def test_twenty_to_ninetynine_uses_p95(self):
        name, _ = adaptive_tail(list(map(float, range(50))))
        assert name == "p95"

    def test_hundred_plus_uses_p99(self):
        name, _ = adaptive_tail(list(map(float, range(150))))
        assert name == "p99"


def finished_request(rid, reasoning_len, ttft):
    req = Request(
        rid=rid, prompt_len=8, reasoning_len=reasoning_len, answer_len=2
    )
    req.first_answer_t = req.arrival_t + ttft
    return req


class TestTailBins:
    def test_bins_by_reasoning_length(self):
        requests = [
            finished_request(i, 100 + (i % 2) * 300, float(i))
            for i in range(40)
        ]
        bins = tail_ttft_bins(requests, bin_width=256)
        assert [b.lo for b in bins] == [0, 256]
        assert all(b.n_samples == 20 for b in bins)
        assert all(b.metric_name == "p95" for b in bins)

    def test_sparse_bins_omitted(self):
        requests = [finished_request(i, 100, 1.0) for i in range(4)]
        assert tail_ttft_bins(requests) == []

    def test_unfinished_requests_skipped(self):
        done = [finished_request(i, 100, 1.0) for i in range(6)]
        pending = Request(rid=99, prompt_len=8, reasoning_len=100, answer_len=2)
        bins = tail_ttft_bins(done + [pending])
        assert bins[0].n_samples == 6

    def test_bin_labels(self):
        requests = [finished_request(i, 300, 1.0) for i in range(6)]
        assert tail_ttft_bins(requests)[0].label == "[256-511]"

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            tail_ttft_bins([], bin_width=0)


class TestBucketMeans:
    def test_means_per_bucket(self):
        pairs = [(128, 2.0), (128, 4.0), (256, 10.0)]
        out = bucket_means(pairs, (128, 256, 512))
        assert out[128] == 3.0
        assert out[256] == 10.0
        assert out[512] == 0.0

    def test_unknown_keys_ignored(self):
        out = bucket_means([(999, 5.0)], (128,))
        assert out == {128: 0.0}


class TestKendallTau:
    def test_perfect_order_is_one(self):
        pairs = [(1.0, 10.0), (2.0, 20.0), (3.0, 30.0)]
        from repro.metrics.summary import kendall_tau

        assert kendall_tau(pairs) == pytest.approx(1.0)

    def test_reversed_order_is_minus_one(self):
        from repro.metrics.summary import kendall_tau

        pairs = [(3.0, 10.0), (2.0, 20.0), (1.0, 30.0)]
        assert kendall_tau(pairs) == pytest.approx(-1.0)

    def test_tau_b_handles_ties_on_one_side(self):
        from repro.metrics.summary import kendall_tau

        # x ties on the first two pairs: tau-b normalizes them away
        # rather than diluting toward zero like tau-a would.
        pairs = [(1.0, 1.0), (1.0, 2.0), (2.0, 3.0)]
        assert kendall_tau(pairs) == pytest.approx(0.8164965809, rel=1e-6)

    def test_constant_side_is_nan(self):
        import math

        from repro.metrics.summary import kendall_tau

        assert math.isnan(kendall_tau([(5.0, 1.0), (5.0, 2.0), (5.0, 3.0)]))

    def test_monotone_transform_invariance(self):
        # The property that makes EWMA token estimates and unitless LTR
        # scores comparable in one column: tau sees only the order.
        from repro.metrics.summary import kendall_tau

        pairs = [(1.0, 5.0), (4.0, 2.0), (2.0, 9.0), (8.0, 4.0)]
        squashed = [(x**3, y) for x, y in pairs]
        assert kendall_tau(pairs) == pytest.approx(kendall_tau(squashed))

    def test_fewer_than_two_pairs_rejected(self):
        from repro.metrics.summary import kendall_tau

        with pytest.raises(ValueError):
            kendall_tau([])
        with pytest.raises(ValueError):
            kendall_tau([(1.0, 2.0)])

    def test_pairs_tied_in_both_are_neutral(self):
        from repro.metrics.summary import kendall_tau

        base = [(1.0, 10.0), (2.0, 20.0)]
        padded = base + [(1.0, 10.0)]  # duplicate point
        assert kendall_tau(base) == pytest.approx(1.0)
        assert kendall_tau(padded) == pytest.approx(1.0)
