"""First-class cancellation: every lifecycle point, every policy.

A client may abandon a request at any instant — before its arrival
dispatches, while queued, mid-prefill, mid-reasoning, mid-answering,
parked in the deferral waiting room, or with its KV in flight between
instances.  These tests pin the contract:

* cancelling never corrupts the simulation: the conservation law
  ``submitted = completed + rejected + cancelled + in-flight`` holds
  between events, and every instance's ``check_invariants()`` stays
  green (Hypothesis, all policies x pool shapes);
* a cancelled request is terminal, carries ``cancelled_t``, frees its KV
  footprint, and enters no latency or SLO view;
* cancellations survive the disk codec, the shard merge, and the trace
  format (version-2 ``cancel_t``), and replay deterministically.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import MaxInFlightAdmission, ServingSession
from repro.api.session import EventPrinter, RequestHandle, SessionSubscriber
from repro.cluster.cluster import Cluster
from repro.config import (
    ClusterConfig,
    ExtensionPolicyConfig,
    InstanceConfig,
    PoolSpec,
    SchedulerConfig,
)
from repro.core.registry import policy_names
from repro.harness.cache import metrics_from_payload, metrics_to_payload
from repro.metrics.collector import collect
from repro.perfmodel.unit import UnitPerfModel
from repro.serve.record import stamp_live_cancels
from repro.shard.merge import merge_metrics
from repro.workload.request import Phase, Request, ReqState
from repro.workload.trace import (
    ReplayTraceConfig,
    TraceFormatError,
    build_replay_trace,
    dump_trace,
    load_trace,
)

POOL_SHAPES = {
    "homogeneous": ExtensionPolicyConfig(),
    # Aggressive speculative knobs so ``speculative-replace`` actually
    # defers on these tiny workloads (mirrors tests/test_invariants.py).
    "heterogeneous": ExtensionPolicyConfig(
        least_load_weighted=True,
        pool=PoolSpec(express_instances=2, express_threshold_tokens=30),
        speculative_defer_s=0.05,
        speculative_min_observations=5,
        speculative_pressure_tokens=50,
        speculative_long_tokens=20,
    ),
}


def build_cluster(
    policy: str = "pascal",
    extensions: ExtensionPolicyConfig | None = None,
    n_instances: int = 3,
    kv_capacity: int = 256,
) -> Cluster:
    config = ClusterConfig(
        n_instances=n_instances,
        instance=InstanceConfig(
            kv_capacity_tokens=kv_capacity,
            scheduler=SchedulerConfig(token_quantum=8),
        ),
        extensions=extensions or ExtensionPolicyConfig(),
    )
    return Cluster(config, policy=policy, perf=UnitPerfModel(0.01))


def make_session(policy: str = "pascal") -> ServingSession:
    config = ClusterConfig(
        n_instances=2,
        instance=InstanceConfig(
            kv_capacity_tokens=1024,
            scheduler=SchedulerConfig(token_quantum=8),
        ),
    )
    return ServingSession(policy=policy, config=config, perf=UnitPerfModel(0.01))


def drain_cluster(cluster: Cluster) -> None:
    cluster.engine.run()
    cluster.sync_instances()


#: One request: lengths, inter-arrival gap, and an optional cancel delay
#: after arrival (None = the client stays).  Small delays catch requests
#: queued or in prefill, large ones mid-decode or already finished.
cancellable_tuples = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=1, max_value=40),
        st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
        st.one_of(
            st.none(),
            st.floats(min_value=0.001, max_value=3.0, allow_nan=False),
        ),
    ),
    min_size=1,
    max_size=8,
)


def trace_from(tuples) -> list[Request]:
    requests = []
    t = 0.0
    for rid, (prompt, reasoning, answer, gap, cancel_delay) in enumerate(
        tuples
    ):
        t += gap
        req = Request(
            rid=rid,
            prompt_len=prompt,
            reasoning_len=reasoning,
            answer_len=answer,
            arrival_t=t,
            dataset="short" if reasoning <= 20 else "long",
        )
        if cancel_delay is not None:
            req.cancel_at = t + cancel_delay
        requests.append(req)
    return requests


@pytest.mark.parametrize("shape", sorted(POOL_SHAPES))
@pytest.mark.parametrize("policy", policy_names())
@settings(max_examples=4, deadline=None, derandomize=True)
@given(tuples=cancellable_tuples)
def test_cancel_anywhere_preserves_invariants(policy, shape, tuples):
    """Scripted cancels at arbitrary lifecycle points never corrupt state."""
    cluster = build_cluster(policy, POOL_SHAPES[shape])
    requests = trace_from(tuples)
    cluster.submit(requests)

    while cluster.engine.step():
        # Conservation between events: every submitted request is on
        # exactly one instance, crossing the fabric, awaiting its
        # (re-)arrival dispatch, or terminal.  A pre-arrival cancel moves
        # a request straight from pending to cancelled; nothing may leak.
        on_instances = sum(len(inst.requests) for inst in cluster.instances)
        assert (
            len(cluster.submitted)
            == len(cluster.completed)
            + len(cluster.rejected)
            + len(cluster.cancelled)
            + cluster.migrations.in_flight
            + on_instances
            + cluster.pending_arrivals
        ), f"request leak at t={cluster.engine.now}"
        for inst in cluster.instances:
            inst.check_invariants()

    cluster.sync_instances()
    assert cluster.all_finished()
    assert cluster.deferred() == []
    rejected_rids = {r.rid for r in cluster.rejected}
    for req in requests:
        if req.rid in rejected_rids:
            continue  # turned away before any cancel could land
        assert req.state in (ReqState.FINISHED, ReqState.CANCELLED)
        if req.cancelled:
            assert req.cancelled_t is not None
            assert req.cancel_at is not None
            # Scripted cancels land exactly at their scripted instant.
            assert req.cancelled_t == pytest.approx(req.cancel_at)
            assert req.done_t is None
        else:
            # A request that outran its scripted cancel just finishes.
            assert req.done_t is not None

    # Cancelled requests never enter the latency / SLO views.
    metrics = collect(cluster)
    assert metrics.n_cancelled == len(cluster.cancelled)
    assert all(r.finished for r in metrics.requests)
    assert not any(r.cancelled for r in metrics.requests)


class TestLifecyclePoints:
    """Deterministic cancels at each specific lifecycle point."""

    def test_cancel_before_arrival_dispatch(self):
        cluster = build_cluster()
        req = Request(
            rid=0, prompt_len=8, reasoning_len=10, answer_len=5,
            arrival_t=1.0,
        )
        cluster.submit_one(req)
        assert cluster.request_cancel(req, at=0.5)
        drain_cluster(cluster)
        assert req.cancelled
        assert req.cancelled_t == pytest.approx(0.5)
        assert cluster.pending_arrivals == 0
        assert cluster.all_finished()
        assert req.first_sched_t is None  # never placed

    def test_cancel_mid_decode_frees_kv(self):
        cluster = build_cluster()
        req = Request(rid=0, prompt_len=8, reasoning_len=150, answer_len=50)
        req.cancel_at = 0.8
        cluster.submit_one(req)
        drain_cluster(cluster)
        assert req.cancelled
        assert req.cancelled_t == pytest.approx(0.8)
        assert req.generated_tokens > 0  # it was decoding
        assert not req.finished
        for inst in cluster.instances:
            inst.check_invariants()
            assert inst.pool.gpu_used_blocks == 0
            assert req not in inst.requests

    def test_cancel_during_answering_phase(self):
        cluster = build_cluster()
        req = Request(rid=0, prompt_len=8, reasoning_len=10, answer_len=200)
        cluster.submit_one(req)
        while cluster.engine.step():
            if req.phase is Phase.ANSWERING and req.generated_tokens > 20:
                assert cluster.cancel(req.rid)
                break
        assert req.cancelled
        assert req.first_answer_t is not None  # tokens already streamed
        drain_cluster(cluster)
        assert cluster.all_finished()
        for inst in cluster.instances:
            inst.check_invariants()

    def test_cancel_while_migrating(self):
        cluster = build_cluster(n_instances=2, kv_capacity=1600)
        src = cluster.instances[0]
        req = Request(rid=1, prompt_len=64, reasoning_len=3, answer_len=3)
        filler = Request(rid=2, prompt_len=32, reasoning_len=200, answer_len=5)
        # Direct-admit both on the source: the filler's reasoning load
        # makes the other instance the better answering home, so the
        # phase boundary triggers a migration.
        cluster.submitted.extend([req, filler])
        cluster._by_rid[req.rid] = req
        cluster._by_rid[filler.rid] = filler
        src.admit(req, 0.0)
        src.admit(filler, 0.0)
        migrated = False
        while cluster.engine.step():
            if req.state is ReqState.MIGRATING:
                migrated = True
                assert cluster.migrations.in_flight == 1
                assert cluster.cancel(req.rid)
                assert cluster.migrations.in_flight == 0
                break
        assert migrated, "scenario no longer triggers a migration"
        assert req.cancelled
        drain_cluster(cluster)
        assert filler.finished
        for inst in cluster.instances:
            inst.check_invariants()
            assert inst.pool.gpu_used_blocks == 0

    def test_cancel_while_deferred(self):
        cluster = build_cluster(
            "speculative-replace", POOL_SHAPES["heterogeneous"]
        )
        requests = [
            Request(
                rid=rid,
                prompt_len=10,
                reasoning_len=40,
                answer_len=10,
                arrival_t=0.01 * rid,
                dataset="long",
            )
            for rid in range(12)
        ]
        cluster.submit(requests)
        cancelled_rid = None
        while cluster.engine.step():
            deferred = cluster.deferred()
            if deferred and cancelled_rid is None:
                cancelled_rid = deferred[0].rid
                assert cluster.cancel(cancelled_rid)
                assert cancelled_rid not in [
                    r.rid for r in cluster.deferred()
                ]
        assert cancelled_rid is not None, "policy no longer defers here"
        drain_cluster(cluster)
        assert cluster.all_finished()
        target = next(r for r in requests if r.rid == cancelled_rid)
        assert target.cancelled


class TestTerminalEdges:
    def test_scripted_cancel_after_completion_is_noop(self):
        cluster = build_cluster()
        req = Request(rid=0, prompt_len=8, reasoning_len=5, answer_len=5)
        req.cancel_at = 1e9
        cluster.submit_one(req)
        drain_cluster(cluster)
        assert req.finished
        assert cluster.cancelled == []

    def test_double_cancel_is_noop(self):
        cluster = build_cluster()
        req = Request(rid=0, prompt_len=8, reasoning_len=150, answer_len=5)
        cluster.submit_one(req)
        while cluster.engine.step():
            if cluster.engine.now > 0.3:  # mid-decode (done ~1.55s)
                break
        assert not req.finished
        assert cluster.cancel(req.rid) is True
        assert cluster.cancel(req.rid) is False
        assert cluster.request_cancel(req) is False
        assert len(cluster.cancelled) == 1

    def test_cancel_unknown_rid_raises(self):
        cluster = build_cluster()
        with pytest.raises(KeyError):
            cluster.cancel(999)

    def test_cancel_rejected_request_is_noop(self):
        session = ServingSession(
            policy="pascal",
            config=ClusterConfig(
                n_instances=1,
                instance=InstanceConfig(kv_capacity_tokens=256),
            ),
            perf=UnitPerfModel(0.01),
            admission=MaxInFlightAdmission(1),
        )
        first = Request(rid=0, prompt_len=8, reasoning_len=100, answer_len=20)
        second = Request(
            rid=1, prompt_len=8, reasoning_len=5, answer_len=5, arrival_t=0.1
        )
        h1 = session.submit(first)
        h2 = session.submit(second)
        session.step(until=0.5)
        assert h2.status == RequestHandle.REJECTED
        assert session.cancel(h2) is False
        assert session.cancel(h1) is True
        session.drain()
        assert session.n_cancelled == 1
        assert session.n_rejected == 1

    def test_mark_cancelled_on_terminal_request_raises(self):
        req = Request(rid=0, prompt_len=8, reasoning_len=5, answer_len=5)
        req.mark_cancelled(1.0)
        with pytest.raises(RuntimeError):
            req.mark_cancelled(2.0)


class TestSessionApi:
    def test_handle_cancel_fires_subscriber(self):
        session = make_session()
        events: list[tuple[int, float]] = []

        class Watcher(SessionSubscriber):
            def on_cancel(self, handle, now):
                events.append((handle.request.rid, now))

        session.subscribe(Watcher())
        req = Request(rid=7, prompt_len=8, reasoning_len=200, answer_len=30)
        handle = session.submit(req)
        session.step(until=0.5)
        assert handle.cancel() is True
        session.drain()
        assert handle.status == RequestHandle.CANCELLED
        assert handle.done
        assert events == [(7, req.cancelled_t)]
        assert session.n_cancelled == 1
        assert session.metrics().n_cancelled == 1

    def test_event_printer_reports_cancel(self):
        lines: list[str] = []
        session = make_session()
        session.subscribe(EventPrinter(write=lines.append))
        req = Request(rid=3, prompt_len=8, reasoning_len=200, answer_len=30)
        handle = session.submit(req)
        session.step(until=0.5)
        handle.cancel()
        session.drain()
        out = "".join(lines)
        assert "cancel" in out
        assert "req 3" in out

    def test_detached_handle_cancel_raises(self):
        req = Request(rid=0, prompt_len=8, reasoning_len=5, answer_len=5)
        handle = RequestHandle(req)
        with pytest.raises(RuntimeError):
            handle.cancel()

    def test_stop_intake_cuts_sources(self):
        session = make_session()
        reqs = [
            Request(
                rid=i, prompt_len=8, reasoning_len=5, answer_len=5,
                arrival_t=float(i),
            )
            for i in range(50)
        ]
        session.attach(reqs)
        session.step(until=2.5)
        assert session.stop_intake() == 1
        session.step()
        # Only the requests pulled before the cut (plus the one primed
        # head event) ever entered the run; the source tail is unread.
        assert session.n_submitted < 10
        assert session.cluster.all_finished()


class TestCodecs:
    def _metrics_with_cancel(self):
        session = make_session()
        reqs = [
            Request(
                rid=i, prompt_len=8, reasoning_len=50, answer_len=10,
                arrival_t=0.1 * i,
            )
            for i in range(4)
        ]
        reqs[2].cancel_at = 0.5
        for req in reqs:
            session.submit(req)
        return session.drain()

    def test_disk_codec_roundtrips_cancelled(self):
        metrics = self._metrics_with_cancel()
        assert metrics.n_cancelled == 1
        restored = metrics_from_payload(metrics_to_payload(metrics))
        assert restored.n_cancelled == 1
        original = metrics.cancelled[0]
        copy = restored.cancelled[0]
        assert copy.rid == original.rid
        assert copy.cancel_at == original.cancel_at
        assert copy.cancelled_t == original.cancelled_t
        assert copy.state is ReqState.CANCELLED
        assert copy.generated_tokens == original.generated_tokens

    def test_shard_merge_carries_cancelled(self):
        metrics = self._metrics_with_cancel()
        merged = merge_metrics([metrics, self._metrics_with_cancel()])
        assert merged.n_cancelled == 2
        times = [r.cancelled_t for r in merged.cancelled]
        assert times == sorted(times)


class TestTraceFormatV2:
    def test_v1_roundtrip_stays_version_1(self, tmp_path):
        reqs = [
            Request(
                rid=i, prompt_len=5, reasoning_len=10, answer_len=5,
                arrival_t=0.5 * i, dataset="d",
            )
            for i in range(3)
        ]
        text = dump_trace(reqs)
        assert text.splitlines()[0] == (
            '{"format": "pascal-trace", "version": 1}'
        )
        path = tmp_path / "v1.jsonl"
        path.write_text(text)
        assert dump_trace(load_trace(path)) == text

    def test_v2_roundtrip_with_cancel_t(self, tmp_path):
        reqs = [
            Request(
                rid=i, prompt_len=5, reasoning_len=10, answer_len=5,
                arrival_t=0.5 * i, dataset="d",
            )
            for i in range(3)
        ]
        reqs[1].cancel_at = 1.25
        text = dump_trace(reqs)
        assert '"version": 2' in text.splitlines()[0]
        assert '"cancel_t": 1.25' in text
        path = tmp_path / "v2.jsonl"
        path.write_text(text)
        loaded = load_trace(path)
        assert loaded[0].cancel_at is None
        assert loaded[1].cancel_at == 1.25
        assert dump_trace(loaded) == text

    BASE = '"prompt_len": 5, "reasoning_len": 3, "answer_len": 2'

    def _write(self, tmp_path, version: int, record: str) -> str:
        path = tmp_path / "t.jsonl"
        header = f'{{"format": "pascal-trace", "version": {version}}}'
        path.write_text(header + "\n" + record + "\n")
        return str(path)

    def test_cancel_t_requires_version_2(self, tmp_path):
        path = self._write(
            tmp_path,
            1,
            f'{{"arrival_t": 0.5, {self.BASE}, "cancel_t": 1.0}}',
        )
        with pytest.raises(TraceFormatError, match="version-2 header"):
            load_trace(path)

    def test_cancel_t_must_follow_arrival(self, tmp_path):
        path = self._write(
            tmp_path,
            2,
            f'{{"arrival_t": 1.5, {self.BASE}, "cancel_t": 1.5}}',
        )
        with pytest.raises(TraceFormatError, match="cancel_t"):
            load_trace(path)

    def test_cancel_t_must_be_a_number(self, tmp_path):
        path = self._write(
            tmp_path,
            2,
            f'{{"arrival_t": 0.5, {self.BASE}, "cancel_t": true}}',
        )
        with pytest.raises(TraceFormatError, match="cancel_t"):
            load_trace(path)

    def test_rate_scale_rescales_cancels(self, tmp_path):
        req = Request(
            rid=0, prompt_len=5, reasoning_len=10, answer_len=5, arrival_t=1.0
        )
        req.cancel_at = 3.0
        path = tmp_path / "t.jsonl"
        path.write_text(dump_trace([req]))
        scaled = build_replay_trace(
            ReplayTraceConfig(path=str(path), rate_scale=2.0)
        )
        assert scaled[0].arrival_t == pytest.approx(0.5)
        assert scaled[0].cancel_at == pytest.approx(1.5)

    def test_replay_reproduces_cancellation_deterministically(self, tmp_path):
        reqs = [
            Request(
                rid=i, prompt_len=5, reasoning_len=150, answer_len=50,
                arrival_t=0.5 * i, dataset="d",
            )
            for i in range(3)
        ]
        reqs[1].cancel_at = 0.9
        path = tmp_path / "t.jsonl"
        path.write_text(dump_trace(reqs))

        def run() -> tuple:
            session = make_session()
            session.attach(ReplayTraceConfig(path=str(path)))
            metrics = session.drain()
            return (
                metrics.n_cancelled,
                [r.rid for r in metrics.cancelled],
                [r.cancelled_t for r in metrics.cancelled],
                [r.done_t for r in metrics.requests],
            )

        first, second = run(), run()
        assert first == second
        assert first[0] == 1 and first[1] == [1]
        assert first[2] == [pytest.approx(0.9)]


class TestLiveRecording:
    def test_stamp_live_cancels_clamps_to_after_arrival(self, tmp_path):
        early = Request(
            rid=0, prompt_len=5, reasoning_len=5, answer_len=5, arrival_t=2.0
        )
        early.mark_cancelled(1.0)  # cancelled before its nominal arrival
        late = Request(
            rid=1, prompt_len=5, reasoning_len=5, answer_len=5, arrival_t=0.0
        )
        late.mark_cancelled(4.0)
        finished = Request(
            rid=2, prompt_len=5, reasoning_len=0, answer_len=5, arrival_t=1.0
        )
        stamped = stamp_live_cancels([early, late, finished])
        assert stamped[0].cancel_at == math.nextafter(2.0, math.inf)
        assert stamped[1].cancel_at == 4.0
        assert stamped[2].cancel_at is None
        # The stamped set is loader-valid and round-trips.
        path = tmp_path / "live.jsonl"
        path.write_text(dump_trace(stamped))
        loaded = load_trace(path)
        assert sorted((r.rid, r.cancel_at or 0.0) for r in loaded) == [
            (0, math.nextafter(2.0, math.inf)),
            (1, 4.0),
            (2, 0.0),
        ]
