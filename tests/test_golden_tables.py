"""Golden-table regression tests: every figure, byte-for-byte.

A result cache that mis-invalidates corrupts science silently, and so does
an accidental change to a figure builder; these tests pin the rendered
quick-scale output of every :class:`ExperimentSpec` (plus the
trace-compare table on the checked-in sample trace) against files under
``tests/golden/``.  Any drift — an RNG change, a settings default, a
formatting tweak, a cache serving stale data — fails loudly with a diff.

Intentional changes are a one-line regen::

    python -m pytest tests/test_golden_tables.py --update-golden
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.harness.experiments import ALL_EXPERIMENTS
from repro.harness.replay import trace_compare
from repro.harness.runner import ReplaySettings
from repro.workload.trace import ReplayTraceConfig

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture
def golden(request, monkeypatch):
    """Compare ``text`` against (or regenerate) one golden file."""
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    update = request.config.getoption("--update-golden")

    def check(name: str, text: str) -> None:
        path = GOLDEN_DIR / f"{name}.txt"
        if update:
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(text, encoding="utf-8")
            pytest.skip(f"updated {path.name}")
        assert path.exists(), (
            f"missing golden file {path}; generate it with "
            f"`python -m pytest {__file__} --update-golden`"
        )
        expected = path.read_text(encoding="utf-8")
        assert text == expected, (
            f"{path.name} drifted from the checked-in golden table; if the "
            f"change is intentional, regenerate with --update-golden"
        )

    return check


@pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
def test_experiment_table_matches_golden(name, golden):
    golden(name, ALL_EXPERIMENTS[name]().render() + "\n")


def test_trace_compare_matches_golden(golden, monkeypatch):
    # chdir so the table's path note is repo-relative (machine-independent).
    monkeypatch.chdir(REPO_ROOT)
    result = trace_compare(
        ReplayTraceConfig(path="examples/sample_trace.jsonl"),
        policies=("fcfs", "rr", "pascal"),
        settings=ReplaySettings(),
        jobs=1,
    )
    golden("trace-compare", result.render() + "\n")


def test_trace_compare_cancellations_match_golden(golden, monkeypatch):
    """Scripted cancellations replay deterministically, policy by policy.

    The committed trace carries version-2 ``cancel_t`` records; the
    pinned table proves the whole cancellation path — CANCEL events,
    mid-epoch KV release, cancelled-vs-completed accounting, the
    cancelled note line — reproduces byte-for-byte.
    """
    monkeypatch.chdir(REPO_ROOT)
    result = trace_compare(
        ReplayTraceConfig(path="examples/cancellation_trace.jsonl"),
        policies=("fcfs", "pascal", "tiered-express"),
        settings=ReplaySettings(),
        jobs=1,
    )
    rendered = result.render()
    assert "cancelled" in rendered  # the note line must actually appear
    golden("trace-cancel", rendered + "\n")


def test_every_golden_file_has_an_owner():
    """No orphaned goldens: each file corresponds to a live experiment."""
    if not GOLDEN_DIR.is_dir():
        pytest.skip("goldens not generated yet")
    owners = set(ALL_EXPERIMENTS) | {"trace-compare", "trace-cancel"}
    stray = sorted(
        p.name for p in GOLDEN_DIR.glob("*.txt") if p.stem not in owners
    )
    assert not stray, f"golden files without a generating experiment: {stray}"
