"""``speculative-replace``: deferral, replacement, livelock backstop.

Covers the speculative extension policy end to end:

* the **livelock backstop** — an admission gate that re-defers a request
  forever on a cluster that is provably making no progress used to spin
  the event loop indefinitely; the cluster now converts such hopeless
  deferrals into rejections with a distinct reason, while ordinary
  backpressure (progress between retries, however slow) is never
  converted;
* the **speculative admission gate** — installed at bind time, outranked
  by an explicit session-level gate, disabled at ``speculative_max_defers
  = 0``, and bounded per request by the deferral budget;
* **replacement** — a pressured placement target demotes its
  predicted-longest in-flight reasoning request via PASCAL's own
  demotion mechanics;
* **byte-identity** — with deferral and preemption disabled the policy
  is behaviourally identical to ``length-predictive``.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import (
    AdmissionPolicy,
    AdmitAll,
    ListSource,
    MaxInFlightAdmission,
    ServingSession,
    SessionSubscriber,
    SyntheticSource,
    defer,
)
from repro.config import (
    ClusterConfig,
    ExtensionPolicyConfig,
    InstanceConfig,
    SchedulerConfig,
)
from repro.core.extensions import SpeculativeAdmission
from repro.harness.cache import metrics_to_payload
from repro.perfmodel.unit import UnitPerfModel
from repro.workload.datasets import ALPACA_EVAL
from repro.workload.request import Request
from repro.workload.trace import TraceConfig


def small_config(
    n_instances: int = 2, extensions: ExtensionPolicyConfig | None = None
) -> ClusterConfig:
    return ClusterConfig(
        n_instances=n_instances,
        instance=InstanceConfig(
            kv_capacity_tokens=2400,
            scheduler=SchedulerConfig(token_quantum=16),
        ),
        extensions=extensions or ExtensionPolicyConfig(),
    )


def make_requests(specs) -> list[Request]:
    """``specs`` = [(arrival_t, prompt, reasoning, answer), ...]."""
    return [
        Request(
            rid=rid,
            prompt_len=p,
            reasoning_len=r,
            answer_len=a,
            arrival_t=t,
            dataset="d",
        )
        for rid, (t, p, r, a) in enumerate(specs)
    ]


class Recorder(SessionSubscriber):
    def __init__(self):
        self.events: list[tuple] = []

    def on_admit(self, handle, now, instance_id):
        self.events.append(("admit", handle.rid, instance_id))

    def on_reject(self, handle, now, reason):
        self.events.append(("reject", handle.rid, reason))

    def on_defer(self, handle, now, delay_s):
        self.events.append(("defer", handle.rid, delay_s))

    def on_complete(self, handle, now):
        self.events.append(("complete", handle.rid))

    def kinds(self):
        return [e[0] for e in self.events]


# ---------------------------------------------------------------------------
# satellite: the deferral livelock backstop
# ---------------------------------------------------------------------------
class DeferForever(AdmissionPolicy):
    """The pathological gate: capacity "never frees" from its viewpoint."""

    def decide(self, cluster, req, now):
        return defer(0.05, "capacity never frees")


class TestDeferralLivelockBackstop:
    def test_hopeless_deferral_converts_to_rejection(self):
        # Regression: before the backstop, this gate re-deferred the same
        # request forever on an otherwise idle cluster — drain() spun the
        # event loop without end.  max_events bounds the test either way;
        # the assertions below fail (rather than hang) on the old code.
        session = ServingSession(
            policy="fcfs",
            config=small_config(1),
            admission=DeferForever(),
            perf=UnitPerfModel(0.01),
        )
        recorder = session.subscribe(Recorder())
        session.attach(ListSource(make_requests([(0.0, 4, 4, 4)])))
        session.step(max_events=500)

        assert session.n_rejected == 1
        assert session.n_completed == 0
        assert session.cluster.deferred() == []
        reject_events = [e for e in recorder.events if e[0] == "reject"]
        assert len(reject_events) == 1
        reason = reject_events[0][2]
        assert "deferral livelock" in reason
        # The original gate's reason survives inside the backstop's.
        assert "capacity never frees" in reason
        # The full stall budget was consumed before giving up: cap
        # deferrals happened, and the cap+1-th dispatch rejected instead.
        cap = session.cluster.max_stalled_deferrals
        assert recorder.kinds().count("defer") == cap

    def test_rejection_counts_as_deferral_outcome_not_completion(self):
        session = ServingSession(
            policy="fcfs",
            config=small_config(1),
            admission=DeferForever(),
            perf=UnitPerfModel(0.01),
        )
        session.attach(ListSource(make_requests([(0.0, 4, 4, 4)])))
        session.step(max_events=500)
        metrics = session.metrics()
        assert metrics.n_rejected == 1
        assert metrics.requests == []
        # The deferral count still records the futile retries.
        assert metrics.n_deferrals == session.cluster.max_stalled_deferrals

    def test_backstop_disabled_with_none_keeps_old_behaviour(self):
        session = ServingSession(
            policy="fcfs",
            config=small_config(1),
            admission=DeferForever(),
            perf=UnitPerfModel(0.01),
        )
        session.cluster.max_stalled_deferrals = None
        session.attach(ListSource(make_requests([(0.0, 4, 4, 4)])))
        session.step(max_events=200)
        # Opt-out: the request is still bouncing, never rejected.
        assert session.n_rejected == 0
        assert len(session.cluster.deferred()) == 1

    def test_legitimate_backpressure_is_never_converted(self):
        # A slow cluster behind a MaxInFlight gate: the second request
        # re-defers far more times than the stall cap while the first
        # decodes, but every retry window sees decode progress — so the
        # backstop must not fire and both requests must complete.
        session = ServingSession(
            policy="fcfs",
            config=small_config(1),
            admission=MaxInFlightAdmission(1, defer_s=0.05),
            perf=UnitPerfModel(0.5),
        )
        recorder = session.subscribe(Recorder())
        session.attach(
            ListSource(make_requests([(0.0, 4, 30, 30), (0.1, 4, 4, 4)]))
        )
        session.drain()
        cap = session.cluster.max_stalled_deferrals
        assert recorder.kinds().count("defer") > cap
        assert session.n_rejected == 0
        assert session.n_completed == 2

    def test_progress_by_another_request_resets_the_stall_count(self):
        # Interleave a hopeless request with a live workload: completions
        # keep moving the progress marker, so the hopeless request takes
        # *longer* than the cap to reject — consecutive stalls, not
        # lifetime deferrals, are what the backstop counts.
        class DeferRidOne(AdmissionPolicy):
            def decide(self, cluster, req, now):
                if req.rid == 1:
                    return defer(0.05, "singled out")
                from repro.api import admission

                return admission.admit()

        session = ServingSession(
            policy="fcfs",
            config=small_config(1),
            admission=DeferRidOne(),
            perf=UnitPerfModel(0.01),
        )
        recorder = session.subscribe(Recorder())
        # Short requests arriving every 0.3s keep completing while rid 1
        # bounces; once they dry up the cluster goes quiet and the
        # backstop finally fires.
        specs = [(0.0, 4, 4, 4), (0.05, 4, 4, 4)] + [
            (0.3 * i, 4, 4, 4) for i in range(2, 6)
        ]
        session.attach(ListSource(make_requests(specs)))
        session.step(max_events=2000)
        assert session.n_rejected == 1
        cap = session.cluster.max_stalled_deferrals
        defers = recorder.kinds().count("defer")
        assert defers > cap + 1  # progress bought extra retries
        assert session.n_completed == len(specs) - 1


# ---------------------------------------------------------------------------
# the speculative admission gate
# ---------------------------------------------------------------------------
def speculative_extensions(**overrides) -> ExtensionPolicyConfig:
    """Aggressive knobs so tiny workloads exercise the speculative paths."""
    defaults = dict(
        speculative_defer_s=0.05,
        speculative_max_defers=3,
        speculative_min_observations=2,
        speculative_pressure_tokens=10_000,
        speculative_long_tokens=50,
        speculative_preempt=False,
    )
    defaults.update(overrides)
    return ExtensionPolicyConfig(**defaults)


class TestSpeculativeGate:
    def test_policy_installs_gate_on_bind(self):
        session = ServingSession(
            policy="speculative-replace",
            config=small_config(extensions=speculative_extensions()),
            perf=UnitPerfModel(0.01),
        )
        assert isinstance(session.cluster.admission, SpeculativeAdmission)

    def test_zero_defer_budget_installs_no_gate(self):
        session = ServingSession(
            policy="speculative-replace",
            config=small_config(
                extensions=speculative_extensions(speculative_max_defers=0)
            ),
            perf=UnitPerfModel(0.01),
        )
        assert session.cluster.admission is None

    def test_explicit_session_gate_outranks_speculation(self):
        gate = AdmitAll()
        session = ServingSession(
            policy="speculative-replace",
            config=small_config(extensions=speculative_extensions()),
            admission=gate,
            perf=UnitPerfModel(0.01),
        )
        assert session.cluster.admission is gate

    def test_rank_uncertain_arrivals_defer_then_complete(self):
        session = ServingSession(
            policy="speculative-replace",
            config=small_config(extensions=speculative_extensions()),
            perf=UnitPerfModel(0.01),
        )
        recorder = session.subscribe(Recorder())
        # Two overlapping arrivals of an unseen dataset: the predictor has
        # 0 < 2 observations and another request is in flight, so the
        # later arrival waits for the earlier to teach the predictor.
        session.attach(
            ListSource(make_requests([(0.0, 4, 20, 8), (0.1, 4, 20, 8)]))
        )
        metrics = session.drain()
        assert "defer" in recorder.kinds()
        assert metrics.n_deferrals > 0
        assert session.n_completed == 2
        assert session.n_rejected == 0

    def test_lone_arrival_is_not_deferred(self):
        # Deferring with nothing in flight cannot tighten the predictor:
        # the gate must admit immediately.
        session = ServingSession(
            policy="speculative-replace",
            config=small_config(extensions=speculative_extensions()),
            perf=UnitPerfModel(0.01),
        )
        recorder = session.subscribe(Recorder())
        session.attach(ListSource(make_requests([(0.0, 4, 8, 4)])))
        session.drain()
        assert recorder.kinds() == ["admit", "complete"]

    def test_defer_budget_is_bounded_per_request(self):
        # A long-running first request keeps the cluster busy for longer
        # than max_defers * defer_s: the second arrival must exhaust its
        # budget and admit anyway, never reject.
        session = ServingSession(
            policy="speculative-replace",
            config=small_config(
                n_instances=1,
                extensions=speculative_extensions(
                    speculative_min_observations=5
                ),
            ),
            perf=UnitPerfModel(0.5),
        )
        recorder = session.subscribe(Recorder())
        session.attach(
            ListSource(make_requests([(0.0, 4, 40, 20), (0.1, 4, 8, 4)]))
        )
        session.drain()
        defers = [e for e in recorder.events if e[0] == "defer" and e[1] == 1]
        assert len(defers) == 3  # exactly the budget
        assert session.n_completed == 2
        assert session.n_rejected == 0


# ---------------------------------------------------------------------------
# replacement (speculative demotion)
# ---------------------------------------------------------------------------
class TestSpeculativeReplacement:
    def test_pressured_target_demotes_predicted_longest(self):
        # pressure threshold 0 = every target is pressured; long threshold
        # 0 = everything is predicted-long; PASCAL's own threshold pushed
        # out of reach — any demotion observed is the speculative one.
        extensions = speculative_extensions(
            speculative_max_defers=0,  # isolate replacement from deferral
            speculative_preempt=True,
            speculative_pressure_tokens=0,
            speculative_long_tokens=0,
        )
        config = ClusterConfig(
            n_instances=1,
            instance=InstanceConfig(
                kv_capacity_tokens=2400,
                scheduler=SchedulerConfig(
                    token_quantum=16,
                    demotion_threshold_tokens=10**9,
                ),
            ),
            extensions=extensions,
        )
        session = ServingSession(
            policy="speculative-replace",
            config=config,
            perf=UnitPerfModel(0.05),
        )
        requests = make_requests([(0.0, 4, 60, 8), (0.2, 4, 60, 8)])
        session.attach(ListSource(requests))
        session.drain()
        # The second arrival demoted the in-flight first request.
        assert requests[0].demoted is True
        assert session.n_completed == 2

    def test_preempt_flag_off_never_demotes(self):
        extensions = speculative_extensions(
            speculative_max_defers=0,
            speculative_preempt=False,
            speculative_pressure_tokens=0,
            speculative_long_tokens=0,
        )
        config = ClusterConfig(
            n_instances=1,
            instance=InstanceConfig(
                kv_capacity_tokens=2400,
                scheduler=SchedulerConfig(
                    token_quantum=16,
                    demotion_threshold_tokens=10**9,
                ),
            ),
            extensions=extensions,
        )
        session = ServingSession(
            policy="speculative-replace",
            config=config,
            perf=UnitPerfModel(0.05),
        )
        requests = make_requests([(0.0, 4, 60, 8), (0.2, 4, 60, 8)])
        session.attach(ListSource(requests))
        session.drain()
        assert not any(r.demoted for r in requests)


# ---------------------------------------------------------------------------
# byte-identity with the base policy when speculation is disabled
# ---------------------------------------------------------------------------
class TestByteIdentity:
    def test_disabled_speculation_matches_length_predictive(self):
        trace = TraceConfig(
            ALPACA_EVAL, n_requests=25, arrival_rate_per_s=3.0, seed=5
        )
        disabled = ExtensionPolicyConfig(
            speculative_max_defers=0, speculative_preempt=False
        )
        config = ClusterConfig(
            n_instances=2,
            instance=InstanceConfig(kv_capacity_tokens=40000),
            extensions=disabled,
        )
        base = ServingSession(policy="length-predictive", config=config)
        base.attach(SyntheticSource(trace))
        spec = ServingSession(policy="speculative-replace", config=config)
        spec.attach(SyntheticSource(trace))

        base_payload = metrics_to_payload(base.drain())
        spec_payload = metrics_to_payload(spec.drain())
        assert spec_payload["policy"] == "speculative-replace"
        # Modulo the policy label, every byte of the result is identical.
        spec_payload["policy"] = base_payload["policy"]
        assert spec_payload == base_payload

    def test_enabled_speculation_actually_diverges(self):
        # Sanity for the identity test above: with the gate on, the same
        # trace produces *different* results (otherwise the test proves
        # nothing).
        trace = TraceConfig(
            ALPACA_EVAL, n_requests=25, arrival_rate_per_s=3.0, seed=5
        )
        enabled = ExtensionPolicyConfig(
            speculative_defer_s=0.2,
            speculative_max_defers=3,
            speculative_min_observations=8,
        )
        config = ClusterConfig(
            n_instances=2,
            instance=InstanceConfig(kv_capacity_tokens=40000),
            extensions=enabled,
        )
        base = ServingSession(policy="length-predictive", config=config)
        base.attach(SyntheticSource(trace))
        spec = ServingSession(policy="speculative-replace", config=config)
        spec.attach(SyntheticSource(trace))

        base_metrics = base.drain()
        spec_metrics = spec.drain()
        assert spec_metrics.n_deferrals > 0
        assert base_metrics.n_deferrals == 0
        base_payload = metrics_to_payload(base_metrics)
        spec_payload = metrics_to_payload(spec_metrics)
        spec_payload["policy"] = base_payload["policy"]
        assert spec_payload != base_payload
