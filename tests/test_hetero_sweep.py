"""Parallel sweep parity for heterogeneous pools.

The sweep contract — parallel == serial, byte-identical — must survive
per-instance scheduler composition: a ``tiered-express`` pool and a
token-weighted ``slo-least-load`` carry extra state (PoolSpec, predictor,
weighted knob) that workers rebuild from the cell spec alone.
"""

from __future__ import annotations

import pytest

from repro.config import ExtensionPolicyConfig, PoolSpec
from repro.harness.replay import trace_compare
from repro.harness.runner import ReplaySettings, clear_caches
from repro.workload.datasets import ARENA_HARD
from repro.workload.trace import (
    ReplayTraceConfig,
    TraceConfig,
    build_trace,
    export_trace,
)

HETERO_SETTINGS = ReplaySettings(
    n_instances=4,
    kv_capacity_tokens=8000,
    extensions=ExtensionPolicyConfig(
        least_load_weighted=True,
        pool=PoolSpec(express_instances=2, express_threshold_tokens=600),
    ),
)

POLICIES = ("tiered-express", "slo-least-load", "pascal")


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


@pytest.fixture
def trace(tmp_path):
    path = tmp_path / "hetero.jsonl"
    export_trace(
        build_trace(
            TraceConfig(
                dataset=ARENA_HARD,
                n_requests=16,
                arrival_rate_per_s=2.0,
                seed=11,
            )
        ),
        path,
    )
    return ReplayTraceConfig(path=str(path))


def test_parallel_sweep_byte_identical_for_heterogeneous_pools(trace):
    serial = trace_compare(
        trace, policies=POLICIES, settings=HETERO_SETTINGS, jobs=1
    ).render()
    clear_caches()
    parallel = trace_compare(
        trace, policies=POLICIES, settings=HETERO_SETTINGS, jobs=2
    ).render()
    assert parallel == serial


def test_hetero_settings_change_the_cell_address(trace):
    from repro.harness.runner import ReplayCell
    from repro.harness.spec import cell_key

    homogeneous = ReplaySettings(n_instances=4, kv_capacity_tokens=8000)
    assert cell_key(
        ReplayCell(trace, "tiered-express", HETERO_SETTINGS)
    ) != cell_key(ReplayCell(trace, "tiered-express", homogeneous))
