"""Policy registry and ClusterPolicy strategy-layer tests.

Covers the registry contract (every policy constructed through it, custom
registration), PASCAL's conditional demotion through the policy-built
scheduler, the ``pascal-ri-only`` placement fallback, and the two
extension policies.
"""

import pytest

from repro.cluster.cluster import POLICIES, Cluster
from repro.config import (
    ClusterConfig,
    ExtensionPolicyConfig,
    InstanceConfig,
    SchedulerConfig,
)
from repro.core.extensions import ReasoningLengthPredictor
from repro.core.pascal import ANSWERING_BAND, band_of
from repro.core.policies import PascalPolicy
from repro.core.policy import ClusterPolicy
from repro.core.registry import (
    create_policy,
    get_policy_class,
    policy_names,
    policy_table,
    register_policy,
    unregister_policy,
)
from repro.perfmodel.unit import UnitPerfModel
from repro.schedulers.fcfs import FCFSScheduler
from repro.workload.request import Request


def small_config(n_instances=2, capacity=4000, quantum=50, **extension_knobs):
    return ClusterConfig(
        n_instances=n_instances,
        instance=InstanceConfig(
            kv_capacity_tokens=capacity,
            scheduler=SchedulerConfig(token_quantum=quantum),
        ),
        extensions=ExtensionPolicyConfig(**extension_knobs),
    )


def small_cluster(policy, decode_s=0.01, **kwargs):
    return Cluster(
        small_config(**kwargs), policy=policy, perf=UnitPerfModel(decode_s)
    )


def tiny_requests(n, reasoning=10, answer=10, spacing=0.2, dataset=""):
    return [
        Request(
            rid=i,
            prompt_len=16,
            reasoning_len=reasoning,
            answer_len=answer,
            arrival_t=i * spacing,
            dataset=dataset,
        )
        for i in range(n)
    ]


class TestRegistry:
    def test_paper_policies_registered(self):
        for name in (
            "fcfs",
            "rr",
            "oracle",
            "pascal",
            "pascal-nomigration",
            "pascal-nonadaptive",
            "pascal-ri-only",
            "phase-partitioned",
        ):
            assert name in policy_names()

    def test_extension_policies_registered(self):
        assert "slo-least-load" in policy_names()
        assert "length-predictive" in policy_names()

    def test_policies_tuple_matches_registry(self):
        assert set(POLICIES) <= set(policy_names())

    def test_create_policy_returns_named_instance(self):
        config = ClusterConfig()
        for name in policy_names():
            policy = create_policy(name, config)
            assert isinstance(policy, ClusterPolicy)
            assert policy.name == name

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            create_policy("lifo", ClusterConfig())
        with pytest.raises(ValueError, match="unknown policy"):
            get_policy_class("lifo")

    def test_policy_table_lists_every_policy(self):
        rows = dict(policy_table())
        assert set(rows) == set(policy_names())
        assert all(summary for summary in rows.values())

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_policy
            class Impostor(ClusterPolicy):
                name = "pascal"

    def test_default_name_rejected(self):
        with pytest.raises(ValueError, match="non-default"):

            @register_policy
            class Nameless(ClusterPolicy):
                pass

    def test_custom_policy_round_trip(self):
        @register_policy
        class Newest(ClusterPolicy):
            """Route everything to the newest (highest-iid) instance."""

            name = "newest-instance"

            def make_intra_scheduler(self, iid):
                return FCFSScheduler()

            def place_arrival(self, req, now):
                return self.instances[-1]

        try:
            cluster = small_cluster("newest-instance")
            requests = tiny_requests(8)
            cluster.run_trace(requests)
            assert cluster.all_finished()
            assert {r.instance_id for r in requests} == {1}
        finally:
            unregister_policy("newest-instance")

    def test_cluster_accepts_policy_instance(self):
        config = small_config()
        cluster = Cluster(
            config, policy=PascalPolicy(config), perf=UnitPerfModel(0.01)
        )
        assert cluster.policy_name == "pascal"
        cluster.run_trace(tiny_requests(6))
        assert cluster.all_finished()

    def test_policy_cannot_bind_twice(self):
        config = small_config()
        policy = PascalPolicy(config)
        Cluster(config, policy=policy, perf=UnitPerfModel(0.01))
        with pytest.raises(RuntimeError, match="already bound"):
            Cluster(config, policy=policy, perf=UnitPerfModel(0.01))

    def test_unbound_policy_rejects_decisions(self):
        from repro.core.policies import FCFSPolicy

        policy = FCFSPolicy(small_config())
        with pytest.raises(RuntimeError, match="not bound"):
            policy.place_arrival(tiny_requests(1)[0], 0.0)


class TestLegacyIntraSchedulerSignature:
    """The pre-pool zero-arg ``make_intra_scheduler`` keeps working."""

    def _register_legacy(self):
        @register_policy
        class Legacy(ClusterPolicy):
            """Old-style third-party policy (zero-arg scheduler factory)."""

            name = "legacy-zero-arg"

            def make_intra_scheduler(self):  # lint-ignore: PAS006 (old signature, on purpose)
                return FCFSScheduler()

            def place_arrival(self, req, now):
                return self.instances[req.rid % len(self.instances)]

        return Legacy

    def test_registration_warns_but_succeeds(self):
        with pytest.warns(DeprecationWarning, match="make_intra_scheduler"):
            self._register_legacy()
        try:
            assert "legacy-zero-arg" in policy_names()
        finally:
            unregister_policy("legacy-zero-arg")

    def test_legacy_policy_runs_end_to_end_with_warning(self):
        with pytest.warns(DeprecationWarning):
            self._register_legacy()
        try:
            with pytest.warns(DeprecationWarning, match="zero-argument"):
                cluster = small_cluster("legacy-zero-arg")
            requests = tiny_requests(8)
            cluster.run_trace(requests)
            assert cluster.all_finished()
            # Every instance still got its own scheduler object.
            schedulers = [inst.scheduler for inst in cluster.instances]
            assert len({id(s) for s in schedulers}) == len(schedulers)
        finally:
            unregister_policy("legacy-zero-arg")

    def test_new_signature_does_not_warn(self):
        import warnings as warnings_mod

        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error", DeprecationWarning)
            cluster = small_cluster("pascal")
        assert cluster.policy_name == "pascal"

    def test_signature_probe_handles_both_styles(self):
        from repro.core.policy import intra_scheduler_takes_iid

        assert intra_scheduler_takes_iid(ClusterPolicy.make_intra_scheduler)
        assert intra_scheduler_takes_iid(lambda iid: None)
        assert intra_scheduler_takes_iid(lambda *args: None)
        assert not intra_scheduler_takes_iid(lambda: None)
        # Only *positional* capacity counts: a **kwargs-only factory
        # cannot receive the id and must be adapted as legacy, not called
        # with a positional argument it would reject.
        assert not intra_scheduler_takes_iid(lambda **opts: None)

    def test_kwargs_only_factory_adapted_as_legacy(self):
        with pytest.warns(DeprecationWarning):

            @register_policy
            class KwargsOnly(ClusterPolicy):
                """Factory with keyword-options-only signature."""

                name = "legacy-kwargs-only"

                # lint-ignore: PAS006 (legacy kwargs-only form, on purpose)
                def make_intra_scheduler(self, **opts):
                    return FCFSScheduler()

                def place_arrival(self, req, now):
                    return self.instances[0]

        try:
            with pytest.warns(DeprecationWarning):
                cluster = small_cluster("legacy-kwargs-only")
            cluster.run_trace(tiny_requests(3))
            assert cluster.all_finished()
        finally:
            unregister_policy("legacy-kwargs-only")


class TestConditionalDemotion:
    """Section IV-C: reasoning beyond the threshold joins the answering band."""

    def test_long_reasoning_request_lands_in_answering_band(self):
        # Default threshold is 5000 generated tokens.  The quantum is
        # shortened so a batch reform (where demotion is applied) is
        # guaranteed to land between the threshold and the end of the
        # giant request's reasoning phase.
        cluster = Cluster(
            ClusterConfig(
                n_instances=1,
                instance=InstanceConfig(
                    kv_capacity_tokens=40_000,
                    scheduler=SchedulerConfig(token_quantum=100),
                ),
            ),
            policy="pascal",
            perf=UnitPerfModel(0.001),
        )
        giant = Request(
            rid=0, prompt_len=16, reasoning_len=5200, answer_len=8
        )
        others = [
            Request(
                rid=1 + i,
                prompt_len=16,
                reasoning_len=40,
                answer_len=40,
                arrival_t=0.01 * i,
            )
            for i in range(4)
        ]
        observed = {}
        scheduler = cluster.instances[0].scheduler

        def demotion_probe():
            live = [r for r in cluster.instances[0].requests if not r.finished]
            big = next((r for r in live if r.rid == 0), None)
            if big is not None and big.demoted and "at_demotion" not in observed:
                observed["at_demotion"] = (
                    band_of(big),
                    big.level,
                    big.quantum_used,
                )

        cluster.submit([giant, *others])
        while cluster.engine.step():
            demotion_probe()

        assert cluster.all_finished()
        assert giant.demoted is True
        # The demoted request sits in the answering band with a fresh
        # quantum (level 0), exactly like a phase-transitioned request.
        band, level, quantum_used = observed["at_demotion"]
        assert band == ANSWERING_BAND
        assert level == 0
        assert quantum_used < scheduler.quantum_tokens

    def test_short_reasoning_is_never_demoted(self):
        cluster = small_cluster("pascal")
        requests = tiny_requests(10, reasoning=30, answer=10)
        cluster.run_trace(requests)
        assert all(not r.demoted for r in requests)


class TestRiOnlyFallbackViaRegistry:
    def test_registry_builds_ri_only_without_fresh_fallback(self):
        config = small_config()
        full = create_policy("pascal", config)
        ri_only = create_policy("pascal-ri-only", config)
        assert full.use_fresh_fallback is True
        assert ri_only.use_fresh_fallback is False

    def test_ri_only_placement_ignores_fresh_answering_crowd(self):
        # Two instances, both violating their answering SLO.  Instance 0
        # hosts one reasoning request; instance 1 hosts none but a crowd of
        # fresh (level-0) answering requests.  Algorithm 2's fallback
        # penalizes the crowd; the ri-only ablation sees only r_i.
        def make(policy_name):
            cluster = small_cluster(policy_name, n_instances=2)
            for inst in cluster.instances:
                laggard = Request(
                    rid=900 + inst.iid,
                    prompt_len=4,
                    reasoning_len=0,
                    answer_len=50,
                )
                laggard.reasoning_end_t = 0.0
                laggard.first_answer_t = 0.0
                laggard.level = 3
                inst.requests.add(laggard)
            reasoning = Request(
                rid=800, prompt_len=4, reasoning_len=50, answer_len=10
            )
            cluster.instances[0].requests.add(reasoning)
            for i in range(2):
                fresh = Request(
                    rid=700 + i, prompt_len=4, reasoning_len=0, answer_len=60
                )
                fresh.reasoning_end_t = 4.9
                fresh.first_answer_t = 4.9
                fresh.level = 0
                cluster.instances[1].requests.add(fresh)
            probe = Request(rid=1, prompt_len=4, reasoning_len=0, answer_len=10)
            return cluster.policy.answering_placement.select(
                cluster.instances, probe, 5.0
            )

        assert make("pascal").iid == 0
        assert make("pascal-ri-only").iid == 1


class TestSLOAwareLeastLoad:
    def test_drains_and_balances_by_queue_depth(self):
        cluster = small_cluster("slo-least-load", n_instances=4)
        requests = tiny_requests(16, spacing=0.0)
        cluster.run_trace(requests)
        assert cluster.all_finished()
        # Simultaneous arrivals spread across all instances by live count.
        assert {r.instance_id for r in requests} == {0, 1, 2, 3}

    def test_migration_knob_pins_requests(self):
        pinned = small_cluster(
            "slo-least-load", n_instances=2, least_load_migration=False
        )
        pinned.run_trace(tiny_requests(12, spacing=0.05))
        assert pinned.all_finished()
        assert len(pinned.migrations.completed) == 0

    def test_rebalances_at_phase_boundaries_when_enabled(self):
        cluster = small_cluster("slo-least-load", n_instances=2)
        cluster.run_trace(tiny_requests(12, spacing=0.05))
        assert cluster.all_finished()
        assert len(cluster.migrations.completed) > 0


class TestLengthPredictive:
    def test_predictor_learns_from_observations(self):
        predictor = ReasoningLengthPredictor(alpha=0.5, prior_tokens=100)
        req = Request(
            rid=0, prompt_len=4, reasoning_len=40, answer_len=4, dataset="d"
        )
        assert predictor.predict_total(req) == 100.0
        predictor.observe(req, 400)
        assert predictor.predict_total(req) == 400.0
        predictor.observe(req, 200)
        assert predictor.predict_total(req) == pytest.approx(300.0)

    def test_predictor_falls_back_to_global_estimate(self):
        predictor = ReasoningLengthPredictor(alpha=0.5, prior_tokens=100)
        seen = Request(
            rid=0, prompt_len=4, reasoning_len=1, answer_len=1, dataset="a"
        )
        unseen = Request(
            rid=1, prompt_len=4, reasoning_len=1, answer_len=1, dataset="b"
        )
        predictor.observe(seen, 900)
        assert predictor.predict_total(unseen) == 900.0

    def test_remaining_is_zero_for_answering_requests(self):
        predictor = ReasoningLengthPredictor()
        req = Request(rid=0, prompt_len=4, reasoning_len=0, answer_len=10)
        assert predictor.predict_remaining(req) == 0.0

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            ReasoningLengthPredictor(alpha=0.0)
        with pytest.raises(ValueError):
            ReasoningLengthPredictor(prior_tokens=0)

    def test_policy_observes_every_transition(self):
        cluster = small_cluster("length-predictive")
        requests = tiny_requests(10, dataset="tiny")
        cluster.run_trace(requests)
        assert cluster.all_finished()
        assert cluster.policy.predictor.n_observations == 10
        # All requests reason for exactly 10 tokens; EWMA converges there.
        assert cluster.policy.predictor.predict_total(requests[0]) == 10.0

    def test_knobs_come_from_cluster_config(self):
        cluster = small_cluster(
            "length-predictive", predictor_alpha=0.5, predictor_prior_tokens=42
        )
        assert cluster.policy.predictor.alpha == 0.5
        assert cluster.policy.predictor.prior_tokens == 42.0

    def test_predicted_footprint_separates_instances(self):
        cluster = small_cluster("length-predictive", n_instances=2)
        policy = cluster.policy
        # Instance 0 hosts a reasoning request the predictor believes will
        # grow large; instance 1 an answering request of equal current KV.
        grower = Request(
            rid=0, prompt_len=50, reasoning_len=500, answer_len=10, dataset="g"
        )
        steady = Request(rid=1, prompt_len=50, reasoning_len=0, answer_len=10)
        cluster.instances[0].requests.add(grower)
        cluster.instances[1].requests.add(steady)
        policy.predictor.observe(grower, 800)
        probe = Request(rid=2, prompt_len=4, reasoning_len=20, answer_len=5)
        assert policy.place_arrival(probe, 0.0).iid == 1
