"""Direct unit tests of the shared batch-formation mechanism.

The behavioral suites exercise ``form_batch`` through full simulations;
these tests pin down the StepPlan contract itself: prefix semantics,
prefill priority, residency changes and the batch/memory limits.
"""

import pytest

from repro.schedulers.base import StepKind, StepPlan
from repro.schedulers.fcfs import FCFSScheduler
from repro.workload.request import ReqState, Request
from tests.conftest import build_instance


def request(rid, prompt=8, reasoning=4, answer=4, arrival=0.0):
    return Request(
        rid=rid,
        prompt_len=prompt,
        reasoning_len=reasoning,
        answer_len=answer,
        arrival_t=arrival,
    )


def admitted(inst, req, now=0.0):
    """Register a request with the scheduler without starting steps."""
    req.instance_id = inst.iid
    inst.requests.add(req)
    inst.scheduler.on_admit(req, now)
    return req


class TestStepPlan:
    def test_batch_size(self):
        plan = StepPlan(StepKind.DECODE, [object(), object()])
        assert plan.batch_size == 2

    def test_idle_plan_empty(self):
        assert StepPlan(StepKind.IDLE).requests == []


class TestPrefillPriority:
    def test_new_requests_prefill_before_decode(self):
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=640)
        resident = admitted(inst, request(0))
        inst.do_allocate(resident, 0.0)
        resident.prefill_done = True
        newcomer = admitted(inst, request(1, arrival=1.0))
        plan = inst.scheduler.form_batch(inst, 1.0)
        assert plan.kind == StepKind.PREFILL
        assert plan.requests == [newcomer]
        assert plan.prefill_tokens == newcomer.prompt_len

    def test_decode_when_everyone_prefilled(self):
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=640)
        for rid in range(3):
            req = admitted(inst, request(rid))
            inst.do_allocate(req, 0.0)
            req.prefill_done = True
        plan = inst.scheduler.form_batch(inst, 0.0)
        assert plan.kind == StepKind.DECODE
        assert plan.batch_size == 3

    def test_prefill_budget_limits_wave(self):
        from repro.config import InstanceConfig, SchedulerConfig

        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=100_000)
        inst.config = InstanceConfig(
            kv_capacity_tokens=100_000,
            scheduler=SchedulerConfig(max_prefill_tokens=100),
        )
        first = admitted(inst, request(0, prompt=80))
        second = admitted(inst, request(1, prompt=80, arrival=0.1))
        plan = inst.scheduler.form_batch(inst, 0.2)
        assert plan.kind == StepKind.PREFILL
        assert plan.requests == [first]


class TestPrefixSemantics:
    def test_admission_allocates_in_priority_order(self):
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=48)
        early = admitted(inst, request(0, prompt=17))
        late = admitted(inst, request(1, prompt=17, arrival=1.0))
        plan = inst.scheduler.form_batch(inst, 1.0)
        # Three blocks: early takes 2 (17+1 tokens), late's 2 don't fit.
        assert early in plan.requests
        assert late not in plan.requests
        assert inst.pool.holds(early)
        assert not inst.pool.holds(late)

    def test_no_leapfrog_past_blocked_head(self):
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=64)
        resident = admitted(inst, request(0, prompt=30))
        inst.do_allocate(resident, 0.0)
        resident.prefill_done = True
        big = admitted(inst, request(1, prompt=33, arrival=1.0))
        small = admitted(inst, request(2, prompt=1, arrival=2.0))
        plan = inst.scheduler.form_batch(inst, 2.0)
        # big (3 blocks) doesn't fit behind resident (2 blocks of 4);
        # small must not jump the queue even though it would fit.
        assert not inst.pool.holds(big)
        assert not inst.pool.holds(small)
        assert plan.requests == [resident]

    def test_eviction_of_prefix_overflow(self):
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=64)
        first = admitted(inst, request(0, prompt=30))
        inst.do_allocate(first, 0.0)
        first.prefill_done = True
        second = admitted(inst, request(1, prompt=16, arrival=1.0))
        inst.do_allocate(second, 1.0)
        second.prefill_done = True
        second.set_state(ReqState.RUNNING, 1.0)
        # Grow first to 33 tokens (3 blocks): 3 + second's 2-block need
        # no longer fit in the 4-block pool.
        inst.pool.grow(first, 3)
        plan = inst.scheduler.form_batch(inst, 2.0)
        assert plan.requests == [first]
        assert second.state == ReqState.PREEMPTED
        assert not second.on_gpu

    def test_swap_in_on_reform_when_room_frees(self):
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=64)
        victim = admitted(inst, request(0, prompt=30))
        inst.do_allocate(victim, 0.0)
        victim.prefill_done = True
        inst.do_swap_out(victim, 1.0)
        plan = inst.scheduler.form_batch(inst, 2.0)
        assert victim in plan.requests
        assert victim.on_gpu


class TestExternalPins:
    def test_migrating_kv_is_off_limits(self):
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=64)
        ghost = request(9, prompt=33)
        inst.pool.allocate(ghost, 33)  # simulates KV pinned mid-migration
        waiting = admitted(inst, request(1, prompt=30, arrival=1.0))
        plan = inst.scheduler.form_batch(inst, 1.0)
        # Only 1 block remains after the ghost's 3; waiting needs 2.
        assert waiting not in plan.requests
        assert not inst.pool.holds(waiting)

    def test_finished_requests_ignored(self):
        engine, inst = build_instance(FCFSScheduler(), capacity_tokens=640)
        done = request(0)
        done.state = ReqState.FINISHED
        inst.requests.add(done)
        live = admitted(inst, request(1, arrival=1.0))
        plan = inst.scheduler.form_batch(inst, 1.0)
        assert done not in plan.requests
        assert live in plan.requests
