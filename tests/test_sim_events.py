"""Event queue and simulation engine unit tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimulationEngine
from repro.sim.events import BucketEventQueue, Event, EventKind, EventQueue


class TestEventQueue:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(3.0, EventKind.CALLBACK, "c")
        q.push(1.0, EventKind.CALLBACK, "a")
        q.push(2.0, EventKind.CALLBACK, "b")
        assert [q.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        q = EventQueue()
        for name in ("first", "second", "third"):
            q.push(5.0, EventKind.CALLBACK, name)
        assert [q.pop().payload for _ in range(3)] == [
            "first",
            "second",
            "third",
        ]

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-0.1, EventKind.CALLBACK)

    def test_cancelled_events_are_skipped(self):
        q = EventQueue()
        keep = q.push(1.0, EventKind.CALLBACK, "keep")
        drop = q.push(0.5, EventKind.CALLBACK, "drop")
        drop.cancelled = True
        assert q.pop() is keep

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        drop = q.push(0.5, EventKind.CALLBACK)
        q.push(2.0, EventKind.CALLBACK)
        drop.cancelled = True
        assert q.peek_time() == 2.0

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_len_counts_pushed_events(self):
        q = EventQueue()
        q.push(1.0, EventKind.CALLBACK)
        q.push(2.0, EventKind.CALLBACK)
        assert len(q) == 2

    def test_event_ordering_operator(self):
        early = Event(1.0, 0, EventKind.CALLBACK, None)
        late = Event(2.0, 1, EventKind.CALLBACK, None)
        assert early < late
        assert not late < early


QUEUE_IMPLS = [EventQueue, BucketEventQueue]


@pytest.mark.parametrize("queue_cls", QUEUE_IMPLS)
class TestQueueOrderingContract:
    """The (time, seq) contract every queue implementation must honour.

    FIFO among equal timestamps is load-bearing: a bucket-queue candidate
    that silently reordered simultaneous events would change simulated
    schedules while still 'sorting by time'.
    """

    def test_equal_timestamps_pop_fifo(self, queue_cls):
        q = queue_cls()
        for i in range(50):
            q.push(5.0, EventKind.CALLBACK, i)
        assert [q.pop().payload for _ in range(50)] == list(range(50))

    def test_fifo_ties_survive_interleaved_pops(self, queue_cls):
        q = queue_cls()
        q.push(1.0, EventKind.CALLBACK, "a")
        q.push(1.0, EventKind.CALLBACK, "b")
        assert q.pop().payload == "a"
        # Pushing after a pop lands *behind* the still-queued tie.
        q.push(1.0, EventKind.CALLBACK, "c")
        assert [q.pop().payload, q.pop().payload] == ["b", "c"]

    def test_time_order_across_buckets(self, queue_cls):
        q = queue_cls()
        for t in (30.0, 0.01, 7.7, 0.02, 100.0):
            q.push(t, EventKind.CALLBACK, t)
        popped = [q.pop().payload for _ in range(5)]
        assert popped == sorted(popped)

    def test_negative_time_rejected(self, queue_cls):
        with pytest.raises(ValueError):
            queue_cls().push(-0.1, EventKind.CALLBACK)

    def test_cancelled_events_skipped(self, queue_cls):
        q = queue_cls()
        keep = q.push(1.0, EventKind.CALLBACK, "keep")
        drop = q.push(0.5, EventKind.CALLBACK, "drop")
        drop.cancelled = True
        assert q.pop() is keep
        assert q.pop() is None

    def test_peek_time_skips_cancelled(self, queue_cls):
        q = queue_cls()
        drop = q.push(0.5, EventKind.CALLBACK)
        q.push(2.0, EventKind.CALLBACK)
        drop.cancelled = True
        assert q.peek_time() == 2.0

    def test_empty_queue(self, queue_cls):
        q = queue_cls()
        assert q.pop() is None
        assert q.peek_time() is None
        assert len(q) == 0

    def test_engine_runs_on_any_impl(self, queue_cls):
        engine = SimulationEngine(queue=queue_cls())
        seen = []
        engine.register(EventKind.CALLBACK, lambda now, p: seen.append((now, p)))
        for t, p in ((2.0, "late"), (0.5, "early"), (0.5, "early2")):
            engine.schedule(t, EventKind.CALLBACK, p)
        engine.run()
        assert seen == [(0.5, "early"), (0.5, "early2"), (2.0, "late")]


class TestBucketQueueEquivalence:
    """Property test: the bucket queue is observationally identical to the
    heap under arbitrary interleaved push/pop/cancel sequences."""

    @settings(max_examples=200, deadline=None)
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(
                    st.just("push"),
                    # Coarse grid forces heavy timestamp collisions (ties)
                    # and bucket sharing.
                    st.integers(min_value=0, max_value=40).map(
                        lambda n: n * 0.025
                    ),
                ),
                st.tuples(st.just("pop"), st.just(0.0)),
                st.tuples(st.just("peek"), st.just(0.0)),
                st.tuples(st.just("cancel-next"), st.just(0.0)),
            ),
            max_size=120,
        )
    )
    def test_same_observable_behavior(self, ops):
        heap, bucket = EventQueue(), BucketEventQueue()
        pending_heap, pending_bucket = [], []
        for index, (op, t) in enumerate(ops):
            if op == "push":
                pending_heap.append(heap.push(t, EventKind.CALLBACK, index))
                pending_bucket.append(
                    bucket.push(t, EventKind.CALLBACK, index)
                )
            elif op == "pop":
                a, b = heap.pop(), bucket.pop()
                assert (a is None) == (b is None)
                if a is not None:
                    assert (a.time, a.payload) == (b.time, b.payload)
            elif op == "peek":
                assert heap.peek_time() == bucket.peek_time()
            else:  # cancel the oldest still-uncancelled handle on both
                for ev_h, ev_b in zip(pending_heap, pending_bucket):
                    if not ev_h.cancelled:
                        ev_h.cancelled = True
                        ev_b.cancelled = True
                        break
        # Drain: the leftovers must agree too.
        while True:
            a, b = heap.pop(), bucket.pop()
            assert (a is None) == (b is None)
            if a is None:
                break
            assert (a.time, a.payload) == (b.time, b.payload)

    def test_bad_bucket_width_rejected(self):
        with pytest.raises(ValueError):
            BucketEventQueue(bucket_width_s=0.0)


class TestSimulationEngine:
    def test_clock_advances_monotonically(self):
        engine = SimulationEngine()
        seen = []
        engine.register(EventKind.CALLBACK, lambda now, _: seen.append(now))
        for t in (2.0, 0.5, 1.0):
            engine.schedule(t, EventKind.CALLBACK)
        engine.run()
        assert seen == sorted(seen) == [0.5, 1.0, 2.0]

    def test_cannot_schedule_into_the_past(self):
        engine = SimulationEngine()

        def handler(now, _):
            with pytest.raises(ValueError):
                engine.schedule(now - 1.0, EventKind.CALLBACK)

        engine.register(EventKind.CALLBACK, handler)
        engine.schedule(5.0, EventKind.CALLBACK)
        engine.run()

    def test_schedule_in_relative_delay(self):
        engine = SimulationEngine()
        seen = []

        def handler(now, payload):
            seen.append((now, payload))
            if payload == "first":
                engine.schedule_in(1.5, EventKind.CALLBACK, "second")

        engine.register(EventKind.CALLBACK, handler)
        engine.schedule(1.0, EventKind.CALLBACK, "first")
        engine.run()
        assert seen == [(1.0, "first"), (2.5, "second")]

    def test_negative_delay_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            engine.schedule_in(-1.0, EventKind.CALLBACK)

    def test_horizon_stops_processing(self):
        engine = SimulationEngine(horizon_s=1.0)
        seen = []
        engine.register(EventKind.CALLBACK, lambda now, _: seen.append(now))
        engine.schedule(0.5, EventKind.CALLBACK)
        engine.schedule(2.0, EventKind.CALLBACK)
        engine.run()
        assert seen == [0.5]

    def test_missing_handler_raises(self):
        engine = SimulationEngine()
        engine.schedule(0.0, EventKind.ARRIVAL)
        with pytest.raises(RuntimeError, match="no handler"):
            engine.run()

    def test_max_events_guards_livelock(self):
        engine = SimulationEngine(max_events=10)

        def reschedule(now, _):
            engine.schedule_in(0.1, EventKind.CALLBACK)

        engine.register(EventKind.CALLBACK, reschedule)
        engine.schedule(0.0, EventKind.CALLBACK)
        with pytest.raises(RuntimeError, match="max_events"):
            engine.run()

    def test_step_processes_one_event(self):
        engine = SimulationEngine()
        seen = []
        engine.register(EventKind.CALLBACK, lambda now, p: seen.append(p))
        engine.schedule(0.0, EventKind.CALLBACK, "a")
        engine.schedule(1.0, EventKind.CALLBACK, "b")
        assert engine.step() is True
        assert seen == ["a"]
        assert engine.step() is True
        assert engine.step() is False

    def test_step_leaves_beyond_horizon_events_queued(self):
        # step() must not pop-and-drop an event past the horizon: a later
        # run() (e.g. on a copy of the engine with a larger horizon) has to
        # observe the same queue a pure run() would.
        engine = SimulationEngine(horizon_s=1.0)
        seen = []
        engine.register(EventKind.CALLBACK, lambda now, p: seen.append(p))
        engine.schedule(0.5, EventKind.CALLBACK, "in")
        engine.schedule(2.0, EventKind.CALLBACK, "out")
        assert engine.step() is True
        assert engine.step() is False
        assert seen == ["in"]
        assert len(engine.queue) == 1
        assert engine.queue.peek_time() == 2.0

    def test_run_leaves_beyond_horizon_events_queued(self):
        engine = SimulationEngine(horizon_s=1.0)
        engine.register(EventKind.CALLBACK, lambda now, _: None)
        engine.schedule(0.5, EventKind.CALLBACK)
        engine.schedule(2.0, EventKind.CALLBACK)
        engine.run()
        assert engine.queue.peek_time() == 2.0

    def test_step_enforces_max_events_guard(self):
        engine = SimulationEngine(max_events=3)

        def reschedule(now, _):
            engine.schedule_in(0.1, EventKind.CALLBACK)

        engine.register(EventKind.CALLBACK, reschedule)
        engine.schedule(0.0, EventKind.CALLBACK)
        for _ in range(3):
            assert engine.step() is True
        with pytest.raises(RuntimeError, match="max_events"):
            engine.step()

    def test_step_then_run_processes_remaining_events(self):
        engine = SimulationEngine()
        seen = []
        engine.register(EventKind.CALLBACK, lambda now, p: seen.append(p))
        for t, p in ((0.0, "a"), (1.0, "b"), (2.0, "c")):
            engine.schedule(t, EventKind.CALLBACK, p)
        assert engine.step() is True
        engine.run()
        assert seen == ["a", "b", "c"]
        assert engine.events_processed == 3

    def test_not_reentrant(self):
        engine = SimulationEngine()

        def recurse(now, _):
            engine.run()

        engine.register(EventKind.CALLBACK, recurse)
        engine.schedule(0.0, EventKind.CALLBACK)
        with pytest.raises(RuntimeError, match="re-entrant"):
            engine.run()

    def test_events_processed_counter(self):
        engine = SimulationEngine()
        engine.register(EventKind.CALLBACK, lambda now, _: None)
        for t in range(5):
            engine.schedule(float(t), EventKind.CALLBACK)
        engine.run()
        assert engine.events_processed == 5
