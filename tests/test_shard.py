"""Contract tests for ``repro.shard`` (K-partition sharded simulation).

Pins the package's two determinism guarantees:

* ``shards=1`` is **byte-identical** to the single-engine
  ``ServingSession`` path (so the golden tables cannot move);
* for fixed ``shards=K``, results are invariant to every execution knob:
  worker count, worker grouping, and epoch pacing.

Plus the satellite property: hash-partitioning a source into K parts and
recombining them with ``MergedSource`` reproduces the original stream
byte-for-byte for K in {1, 2, 5}.
"""

import json

import pytest

from repro.api import (
    MaxInFlightAdmission,
    MergedSource,
    ServingSession,
    SyntheticSource,
)
from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig
from repro.harness.cache import metrics_to_payload
from repro.metrics.collector import RunMetrics
from repro.shard import (
    EpochDirective,
    GlobalAccounting,
    ShardedAdmission,
    merge_metrics,
    partition_counts,
    partition_offsets,
    partitions_of,
    run_sharded,
    shard_of,
    stable_shard64,
)
from repro.workload.datasets import ALPACA_EVAL
from repro.workload.request import Request
from repro.workload.trace import TraceConfig

#: Small but non-trivial workload: enough load that all instances (and,
#: sharded, all partitions) see queueing, small enough to run many times.
CFG = TraceConfig(ALPACA_EVAL, n_requests=200, arrival_rate_per_s=3.0, seed=13)


def run_payload(**kwargs) -> str:
    """Canonical JSON of one sharded run's metrics (byte-comparable)."""
    return json.dumps(
        metrics_to_payload(run_sharded(CFG, **kwargs)), sort_keys=True
    )


def stream_tuples(source) -> list[tuple]:
    """A source's full stream as comparable value tuples."""
    return [
        (r.rid, r.arrival_t, r.prompt_len, r.reasoning_len, r.answer_len,
         r.dataset)
        for r in source
    ]


# ---------------------------------------------------------------------------
# partitioning primitives
# ---------------------------------------------------------------------------
class TestPartitioning:
    def test_stable_shard64_pinned_values(self):
        # Frozen outputs: the partition of any recorded trace must never
        # change across processes, Python versions, or refactors.
        assert stable_shard64(0) == 16294208416658607535
        assert stable_shard64(1) == 10451216379200822465
        assert stable_shard64(2) == 10905525725756348110
        assert stable_shard64(1_000_000) == 7497680628364559847

    def test_shard_of_is_total_and_in_range(self):
        for n_shards in (1, 2, 5, 7):
            for rid in range(500):
                assert 0 <= shard_of(rid, n_shards) < n_shards

    def test_shard_of_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            shard_of(3, 0)

    def test_partition_counts_near_even(self):
        assert partition_counts(8, 1) == (8,)
        assert partition_counts(8, 3) == (3, 3, 2)
        assert partition_counts(8, 8) == (1,) * 8
        assert partition_offsets(partition_counts(8, 3)) == (0, 3, 6)

    def test_partition_counts_rejects_empty_shards(self):
        with pytest.raises(ValueError):
            partition_counts(4, 5)
        with pytest.raises(ValueError):
            partition_counts(4, 0)

    @pytest.mark.parametrize("n_shards", [1, 2, 5])
    def test_partition_recombine_reproduces_stream(self, n_shards):
        # The satellite property: K hash-partitions, merged back together,
        # are byte-for-byte the original stream.  Poisson arrivals are
        # distinct with probability 1, so the merge order is total.
        original = stream_tuples(SyntheticSource(CFG))
        recombined = stream_tuples(MergedSource(partitions_of(CFG, n_shards)))
        assert recombined == original

    def test_partitions_disjoint_and_exhaustive(self):
        parts = [
            {r.rid for r in p} for p in partitions_of(CFG, 3)
        ]
        assert sum(len(p) for p in parts) == CFG.n_requests
        assert set.union(*parts) == {
            r.rid for r in SyntheticSource(CFG)
        }


# ---------------------------------------------------------------------------
# sharded runs: the determinism contract
# ---------------------------------------------------------------------------
class TestShardedRun:
    def test_k1_byte_identical_to_unsharded_session(self):
        session = ServingSession(policy="pascal")
        session.attach(SyntheticSource(CFG))
        base = json.dumps(metrics_to_payload(session.drain()), sort_keys=True)
        assert run_payload(policy="pascal", shards=1, workers=1) == base
        # ... and the multiprocess driver changes nothing either.
        assert run_payload(policy="pascal", shards=1) == base

    def test_fixed_k_invariant_to_execution_strategy(self):
        serial = run_payload(policy="pascal", shards=2, workers=1)
        parallel = run_payload(policy="pascal", shards=2, workers=2)
        assert serial == parallel
        # Epoch pacing is observational only (no cross-shard gate here).
        repaced = run_payload(
            policy="pascal", shards=2, workers=1, epoch_s=7.0
        )
        assert serial == repaced

    def test_worker_grouping_cannot_change_results(self):
        # 4 shards on 2 processes (2 workers per process) vs 4 processes.
        grouped = run_payload(policy="fcfs", shards=4, workers=2)
        spread = run_payload(policy="fcfs", shards=4, workers=4)
        assert grouped == spread

    def test_merged_run_conserves_requests(self):
        metrics = run_sharded(CFG, policy="fcfs", shards=3, workers=1)
        assert len(metrics.requests) + len(metrics.rejected) == CFG.n_requests
        assert metrics.rejected == []

    def test_instance_ids_remap_onto_global_grid(self):
        metrics = run_sharded(CFG, policy="fcfs", shards=2, workers=1)
        ids = {r.instance_id for r in metrics.requests}
        assert ids <= set(range(8))
        # Shard 1 owns global instances 4..7; its requests must not have
        # been left in local numbering (which would collide with shard 0).
        assert max(ids) >= 4

    def test_request_list_workloads_are_not_mutated(self):
        from repro.workload.trace import build_trace

        requests = build_trace(CFG)
        before = [(r.rid, r.generated_tokens, r.done_t) for r in requests]
        run_sharded(requests, policy="fcfs", shards=2, workers=1)
        after = [(r.rid, r.generated_tokens, r.done_t) for r in requests]
        assert after == before

    def test_rejects_more_shards_than_instances(self):
        with pytest.raises(ValueError):
            run_sharded(
                CFG, policy="fcfs", config=ClusterConfig(n_instances=2),
                shards=3,
            )

    def test_rejects_bare_arrival_source(self):
        with pytest.raises(TypeError):
            run_sharded(SyntheticSource(CFG), policy="fcfs", shards=2)


# ---------------------------------------------------------------------------
# epoch boundaries and the cross-shard census
# ---------------------------------------------------------------------------
class TestEpochProtocol:
    def test_epoch_boundary_fires_hook_and_creates_no_events(self):
        cluster = Cluster(ClusterConfig(n_instances=2), policy="fcfs")
        seen: list[float] = []
        cluster.on_epoch_hook = seen.append
        before = cluster.engine.peek_next_time()
        cluster.epoch_boundary(30.0)
        assert seen == [30.0]
        assert cluster.engine.peek_next_time() == before

    def test_global_accounting_excludes_own_shard(self):
        acct = GlobalAccounting(shard=1, n_shards=3)
        acct.apply(
            EpochDirective(
                epoch=2, end_t=60.0,
                peer_active=(5, 7, 2), peer_kv=(100, 900, 40),
            )
        )
        assert acct.peer_active == 5 + 2
        assert acct.peer_kv == 100 + 40

    def test_first_epoch_census_is_empty(self):
        acct = GlobalAccounting(shard=0, n_shards=2)
        acct.apply(EpochDirective(epoch=0, end_t=30.0))
        assert acct.peer_active == 0
        assert acct.peer_kv == 0

    def test_sharded_admission_widens_cluster_view(self):
        class FakeCluster:
            instances = ()

            def active_requests(self):
                return 3

        acct = GlobalAccounting(shard=0, n_shards=2)
        acct.apply(
            EpochDirective(
                epoch=1, end_t=30.0, peer_active=(0, 6), peer_kv=(0, 0)
            )
        )
        gate = ShardedAdmission(MaxInFlightAdmission(limit=8), acct)
        req = Request(rid=1, prompt_len=10, reasoning_len=5, answer_len=5)
        # 3 local + 6 peers = 9 active; 9 - 1 >= 8 -> reject.
        assert gate.decide(FakeCluster(), req, now=1.0).action == "reject"
        # Under the same local load alone (3 - 1 < 8) the base admits.
        base = MaxInFlightAdmission(limit=8)
        assert base.decide(FakeCluster(), req, now=1.0).action == "admit"

    def test_pool_wide_admission_rejects_under_global_pressure(self):
        metrics = run_sharded(
            CFG, policy="fcfs", shards=2, workers=1,
            admission=MaxInFlightAdmission(limit=8),
        )
        assert metrics.rejected  # the bound binds pool-wide
        assert (
            len(metrics.requests) + len(metrics.rejected) == CFG.n_requests
        )


# ---------------------------------------------------------------------------
# metrics merge
# ---------------------------------------------------------------------------
class TestMergeMetrics:
    def test_single_part_is_identity(self):
        part = RunMetrics(policy="fcfs", requests=[])
        assert merge_metrics([part]) is part

    def test_empty_parts_rejected(self):
        with pytest.raises(ValueError):
            merge_metrics([])

    def test_policy_mismatch_rejected(self):
        with pytest.raises(ValueError):
            merge_metrics(
                [
                    RunMetrics(policy="fcfs", requests=[]),
                    RunMetrics(policy="rr", requests=[]),
                ]
            )

    @staticmethod
    def _completed(rid: int, arrival_t: float, done_t: float) -> Request:
        req = Request(
            rid=rid, prompt_len=10, reasoning_len=4, answer_len=6,
            arrival_t=arrival_t,
        )
        req.done_t = done_t
        return req

    def test_requests_interleave_by_completion_time(self):
        a = RunMetrics(
            policy="fcfs",
            requests=[self._completed(0, 0.0, 5.0),
                      self._completed(2, 1.0, 9.0)],
            predictor_abs_errors={"d": (1.0,)},
            transfer_latencies_s=[0.5],
        )
        b = RunMetrics(
            policy="fcfs",
            requests=[self._completed(1, 0.5, 7.0)],
            predictor_abs_errors={"d": (2.0,)},
            transfer_latencies_s=[0.25],
        )
        merged = merge_metrics([a, b])
        assert [r.rid for r in merged.requests] == [0, 1, 2]
        assert merged.transfer_latencies_s == [0.5, 0.25]
        assert merged.predictor_abs_errors == {"d": (1.0, 2.0)}
        # Throughput recomputed over the merged span with the Cluster
        # formula: total decode tokens / (last done - first arrival).
        total = sum(r.total_decode_tokens for r in merged.requests)
        assert merged.throughput_tokens_per_s == pytest.approx(
            total / (9.0 - 0.0)
        )

    def test_merge_is_deterministic(self):
        parts = [
            RunMetrics(
                policy="fcfs",
                requests=[self._completed(i, float(i), float(i) + 3.0)],
            )
            for i in range(3)
        ]
        first = metrics_to_payload(merge_metrics(parts))
        second = metrics_to_payload(merge_metrics(parts))
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
