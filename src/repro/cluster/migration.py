"""KV-cache migration lifecycle (Section IV-B, "KV cache transfer overhead").

Reasoning models cannot predict phase transitions, so the transfer cannot
be overlapped with computation: the request stops generating the moment it
emits the end-of-think token, its whole KV cache crosses the fabric, and
only then can the destination schedule its first answering token.  The
source keeps the memory pinned until the copy lands (copy-then-free).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.fabric import Fabric
from repro.config import ModelConfig
from repro.serving.instance import ServingInstance
from repro.sim.engine import SimulationEngine
from repro.sim.events import Event, EventKind
from repro.workload.request import Request


@dataclass
class MigrationRecord:
    """One in-flight (or completed) migration."""

    request: Request
    source: ServingInstance
    destination: ServingInstance
    started_t: float
    completes_t: float
    #: Pending ``TRANSFER_COMPLETE`` handle while in flight (cancellation).
    event: Event | None = None

    @property
    def latency_s(self) -> float:
        return self.completes_t - self.started_t


class MigrationManager:
    """Starts transfers, releases source KV, lands requests at destinations."""

    def __init__(
        self,
        engine: SimulationEngine,
        fabric: Fabric,
        model: ModelConfig,
    ):
        self.engine = engine
        self.fabric = fabric
        self.model = model
        self.completed: list[MigrationRecord] = []
        self.in_flight = 0
        self._active: dict[int, MigrationRecord] = {}

    def start(
        self,
        req: Request,
        source: ServingInstance,
        destination: ServingInstance,
        now: float,
    ) -> MigrationRecord:
        """Detach the request from its source and ship its KV cache."""
        if destination.iid == source.iid:
            raise ValueError("migration must change instances")
        source.depart(req, now)
        n_bytes = req.kv_tokens * self.model.kv_bytes_per_token
        start, completes = self.fabric.reserve_transfer(
            source.iid, destination.iid, n_bytes, now
        )
        record = MigrationRecord(
            request=req,
            source=source,
            destination=destination,
            started_t=now,
            completes_t=completes,
        )
        self.in_flight += 1
        record.event = self.engine.schedule(
            completes, EventKind.TRANSFER_COMPLETE, record
        )
        self._active[req.rid] = record
        return record

    def cancel(self, req: Request, now: float) -> bool:
        """Abort an in-flight transfer (client cancellation).

        The source pool still pins the KV (copy-then-free), so release it
        there; the destination never heard of the request.  The fabric
        reservation stands — the wire time was committed at reserve time.
        """
        record = self._active.pop(req.rid, None)
        if record is None:
            return False
        if record.event is not None:
            record.event.cancelled = True
        record.source.sync(now)
        record.source.pool.release(req)
        record.source.mark_dirty()
        record.source.maybe_start_step(now)
        self.in_flight -= 1
        return True

    def on_transfer_complete(self, now: float, record: MigrationRecord) -> None:
        """The copy landed: free the source pool, admit at the destination."""
        req = record.request
        # Both pools are about to be mutated and re-read; emit any decode
        # tokens the instances lazily deferred before this moment.
        record.source.sync(now)
        record.destination.sync(now)
        record.source.pool.release(req)
        record.source.mark_dirty()
        record.source.maybe_start_step(now)
        req.n_migrations += 1
        req.transfer_wait_s += record.latency_s
        self.in_flight -= 1
        self._active.pop(req.rid, None)
        self.completed.append(record)
        record.destination.accept_migrated(req, now)

    def transfer_latencies(self) -> list[float]:
        """Observed end-to-end migration latencies (queueing + wire)."""
        return [rec.latency_s for rec in self.completed]
