"""Cluster interconnect model (Section V-A: 100 Gbps fabric).

KV-cache migrations serialize over per-instance NICs.  A transfer occupies
both endpoints' links for its serialization delay; concurrent migrations
targeting the same instance queue FIFO behind each other, which is exactly
the contention effect Section V-C measures (P99 transfer latencies of
0.14 s / 0.25 s under high arrival rates).
"""

from __future__ import annotations

from repro.config import FabricConfig


class Fabric:
    """Per-NIC FIFO bandwidth model."""

    def __init__(self, config: FabricConfig, n_instances: int):
        if n_instances < 1:
            raise ValueError("need at least one instance")
        self.config = config
        #: Earliest time each instance's NIC is free again.
        self._nic_free_at = [0.0] * n_instances
        self.transfers = 0
        self.bytes_moved = 0.0

    def reserve_transfer(
        self, src: int, dst: int, n_bytes: float, now: float
    ) -> tuple[float, float]:
        """Book a transfer; returns (start_time, completion_time).

        The transfer begins once *both* NICs are free and occupies both
        until completion (store-and-forward over a switched fabric).
        """
        if src == dst:
            raise ValueError("no transfer needed within one instance")
        if n_bytes < 0:
            raise ValueError(f"bytes must be non-negative, got {n_bytes}")
        start = max(now, self._nic_free_at[src], self._nic_free_at[dst])
        duration = self.config.transfer_seconds(n_bytes)
        completion = start + duration
        self._nic_free_at[src] = completion
        self._nic_free_at[dst] = completion
        self.transfers += 1
        self.bytes_moved += n_bytes
        return start, completion

    def nic_free_at(self, iid: int) -> float:
        return self._nic_free_at[iid]
