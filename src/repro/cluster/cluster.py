"""Cluster orchestration: engine wiring and event dispatch.

A :class:`Cluster` owns the simulation engine, a pool of serving instances
(Figure 6's "instance pool"), the instance monitor, the fabric and the
migration manager.  Every *decision* — which intra-instance scheduler the
instances run, where arrivals land, what happens at a phase transition —
is delegated to a :class:`~repro.core.policy.ClusterPolicy` resolved
through :mod:`repro.core.registry`, so the cluster core contains no
policy-specific logic.

Requests enter two ways:

* **batch** — :meth:`Cluster.submit` schedules every arrival up front
  (the original reproduce-a-figure path, still the convenience wrapper);
* **incremental** — :meth:`Cluster.attach_arrivals` feeds a lazy iterator
  of requests through the engine's pull-based feed mechanism, and
  :meth:`Cluster.submit_one` injects a single request mid-run (arrivals
  already in the past are admitted at the current clock).  This is the
  substrate of the online :class:`repro.api.ServingSession` façade.

Request *lifecycle hooks* (``on_admit_hook`` … ``on_complete_hook``) are
plain callables, no-ops by default, fired at admission, rejection,
deferral, the reasoning→answering transition, the first answering token
and completion.  An optional :attr:`Cluster.admission` policy (duck-typed
``decide(cluster, req, now)``, see :mod:`repro.api.admission`) can reject
or defer an arrival before placement; rejected requests land in
:attr:`Cluster.rejected` and are never seen by the scheduling policy.

See :mod:`repro.core.policies` for the paper's comparison set and
:mod:`repro.core.extensions` for the policies beyond it.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.cluster.fabric import Fabric
from repro.cluster.migration import MigrationManager
from repro.config import ClusterConfig
from repro.core.policy import ClusterPolicy, build_intra_scheduler
from repro.core.registry import create_policy, policy_names
from repro.perfmodel.analytical import AnalyticalPerfModel, PerfModel
from repro.schedulers.base import IntraScheduler
from repro.serving.instance import ServingInstance
from repro.serving.monitor import InstanceMonitor
from repro.sim.engine import SimulationEngine
from repro.sim.events import EventKind
from repro.workload.request import ReqState, Request


#: Registered policy names at import time.  Prefer
#: :func:`repro.core.registry.policy_names` in new code: policies
#: registered later (e.g. by plugins or tests) appear only there.
POLICIES = policy_names()


def make_intra_scheduler(
    policy: str, config: ClusterConfig, iid: int = 0
) -> IntraScheduler:
    """Intra-instance scheduler a cluster policy gives instance ``iid``."""
    return build_intra_scheduler(create_policy(policy, config), iid)


class Cluster:
    """A multi-instance serving deployment under one scheduling policy."""

    def __init__(
        self,
        config: ClusterConfig,
        policy: str | ClusterPolicy,
        perf: PerfModel | None = None,
        horizon_s: float = float("inf"),
    ):
        if isinstance(policy, str):
            policy = create_policy(policy, config)
        self.config = config
        self.policy = policy
        self.engine = SimulationEngine(horizon_s=horizon_s)
        self.perf = perf or AnalyticalPerfModel(
            config.instance.model, config.instance.gpu
        )
        self.monitor = InstanceMonitor(config.slo)
        self.instances = [
            ServingInstance(
                iid=i,
                config=config.instance,
                perf=self.perf,
                engine=self.engine,
                scheduler=build_intra_scheduler(policy, i),
            )
            for i in range(config.n_instances)
        ]
        self.fabric = Fabric(config.fabric, config.n_instances)
        self.migrations = MigrationManager(
            self.engine, self.fabric, config.instance.model
        )

        self.completed: list[Request] = []
        self.submitted: list[Request] = []
        self.rejected: list[Request] = []
        #: Client-cancelled requests (terminal; distinct from rejected —
        #: the client walked away, the cluster did not turn them down).
        self.cancelled: list[Request] = []
        #: rid -> request for every submission (cancellation lookup).
        self._by_rid: dict[int, Request] = {}
        #: rids the admission gate rejected; rejected requests keep their
        #: QUEUED scheduling state, so terminality needs its own marker.
        self._rejected_rids: set[int] = set()
        #: Requests whose ARRIVAL event is scheduled but not yet
        #: dispatched: batch submissions awaiting their arrival time,
        #: source pulls the engine has queued ahead, and admission
        #: deferrals.  Distinguishes "seen" from "actually on the
        #: cluster" (see :meth:`active_requests`).
        self.pending_arrivals = 0
        #: Deferred arrivals currently waiting out their delay, keyed by
        #: rid in defer order (insertion-ordered; see :meth:`deferred`).
        self._deferred: dict[int, Request] = {}
        #: Total admission deferral events (a request deferred k times
        #: counts k); surfaced through the metrics collector.
        self.n_deferrals = 0
        #: Deferral livelock backstop: a request re-deferred more than
        #: this many consecutive times while the cluster made *no*
        #: observable progress (no completion/rejection, no token of KV
        #: movement anywhere) is hopeless — capacity will never free — and
        #: its next deferral converts to a rejection with a distinct
        #: ``"deferral livelock"`` reason instead of spinning the event
        #: loop forever.  Any progress between two deferrals of the same
        #: request resets its count, so ordinary backpressure (slow but
        #: live service) is never cut short.  ``None`` disables the
        #: backstop.
        self.max_stalled_deferrals: int | None = 32
        #: rid -> (consecutive stalled deferrals, progress marker at the
        #: request's previous deferral).
        self._deferral_stalls: dict[int, tuple[int, tuple[int, int] | None]] = {}
        self.token_log: dict[int, list[float]] | None = None

        #: Optional pre-placement gate: ``decide(cluster, req, now)``
        #: returning an object with ``action`` in {"admit","reject",
        #: "defer"} (see :mod:`repro.api.admission`).  None admits all.
        #: Policies may install one at bind time
        #: (``speculative-replace``); an explicit
        #: :class:`repro.api.ServingSession` gate takes precedence.
        self.admission = None

        #: Lifecycle hooks, fired by the event handlers below.  They are
        #: plain attributes (not a subscriber list) so the no-hook fast
        #: path costs one attribute call; :class:`repro.api.ServingSession`
        #: wires them to its subscriber fan-out.
        self.on_admit_hook: Callable[[Request, ServingInstance, float], None] = (
            lambda req, inst, now: None
        )
        self.on_reject_hook: Callable[[Request, float, str], None] = (
            lambda req, now, reason: None
        )
        self.on_defer_hook: Callable[[Request, float, float], None] = (
            lambda req, now, delay_s: None
        )
        self.on_phase_hook: Callable[[Request, ServingInstance, float], None] = (
            lambda req, src, now: None
        )
        self.on_first_token_hook: Callable[[Request, float], None] = (
            lambda req, now: None
        )
        self.on_complete_hook: Callable[[Request, float], None] = (
            lambda req, now: None
        )
        self.on_cancel_hook: Callable[[Request, float], None] = (
            lambda req, now: None
        )
        #: Fired by :meth:`epoch_boundary` — the sharded runner's barrier
        #: cadence (see :mod:`repro.shard`).  Unused (and never fired) on
        #: the single-engine path.
        self.on_epoch_hook: Callable[[float], None] | None = None

        self.engine.register(EventKind.ARRIVAL, self._on_arrival)
        self.engine.register(EventKind.STEP_COMPLETE, self._on_step_complete)
        self.engine.register(
            EventKind.TRANSFER_COMPLETE, self.migrations.on_transfer_complete
        )
        self.engine.register(EventKind.CANCEL, self._on_cancel)
        for inst in self.instances:
            inst.on_transition = self._on_phase_transition
            inst.on_complete = self._on_request_complete
            inst.on_first_token = self._on_first_token

        # Bind last, against the fully constructed cluster: a policy's
        # on_bind may install an admission gate or read any of the
        # accounting attributes above.
        policy.bind(self)

    @property
    def policy_name(self) -> str:
        return self.policy.name

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _on_arrival(self, now: float, req: Request) -> None:
        if req.state is ReqState.CANCELLED:
            # Cancelled while this (re-)arrival sat in the queue: the
            # accounting was settled at cancel time (see
            # :meth:`_cancel_request`); drop the stale dispatch.
            return
        # Admission and placement read the cluster-wide census; catch
        # every instance's lazily-emitted decode epoch up to now first.
        for inst in self.instances:
            inst.sync(now)
        self.pending_arrivals -= 1
        # A re-arrival after a deferral leaves the waiting-room view;
        # it may be re-deferred below, which re-inserts it at the tail.
        self._deferred.pop(req.rid, None)
        if self.admission is not None:
            decision = self.admission.decide(self, req, now)
            action = getattr(decision, "action", "admit")
            if action == "reject":
                self._deferral_stalls.pop(req.rid, None)
                self._rejected_rids.add(req.rid)
                self.rejected.append(req)
                self.policy.on_arrival_rejected(req, now)
                self.on_reject_hook(req, now, getattr(decision, "reason", ""))
                return
            if action == "defer":
                delay_s = getattr(decision, "delay_s", 0.0)
                if delay_s <= 0:
                    raise ValueError(
                        f"admission deferred request {req.rid} by "
                        f"{delay_s}s; deferrals must be positive"
                    )
                reason = getattr(decision, "reason", "")
                if self._deferral_stalled(req):
                    # Livelock backstop: capacity is provably not
                    # freeing, so another deferral would re-present the
                    # same request to the same gate forever and the
                    # event loop would never drain.  Convert to a
                    # rejection with a distinct reason.
                    self._rejected_rids.add(req.rid)
                    self.rejected.append(req)
                    self.policy.on_arrival_rejected(req, now)
                    self.on_reject_hook(
                        req,
                        now,
                        "deferral livelock: no progress across "
                        f"{self.max_stalled_deferrals} deferrals ({reason})",
                    )
                    return
                self.n_deferrals += 1
                self.pending_arrivals += 1
                self._deferred[req.rid] = req
                self.engine.schedule_in(delay_s, EventKind.ARRIVAL, req)
                self.on_defer_hook(req, now, delay_s)
                return
        self._deferral_stalls.pop(req.rid, None)
        inst = self.policy.place_arrival(req, now)
        inst.admit(req, now)
        self.on_admit_hook(req, inst, now)

    def _progress_marker(self) -> tuple[int, int]:
        """A snapshot that changes iff the cluster made *any* progress.

        Completions/rejections free capacity outright; the cluster-wide
        KV total (allocated plus queued demand, O(1) running counters)
        moves with every decoded token, admission or departure.  Two
        equal markers bracket a window in which nothing happened at all.
        """
        return (
            len(self.completed) + len(self.rejected),
            sum(inst.total_kv_tokens() for inst in self.instances),
        )

    def _deferral_stalled(self, req: Request) -> bool:
        """Track a deferral of ``req``; True when it is hopeless.

        Counts *consecutive* deferrals of the same request with no
        progress in between (see :attr:`max_stalled_deferrals`); any
        progress resets the count, so ordinary backpressure — however
        many retries it takes — is never converted to a rejection.
        """
        if self.max_stalled_deferrals is None:
            return False
        marker = self._progress_marker()
        stalls, last_marker = self._deferral_stalls.get(req.rid, (0, None))
        stalls = stalls + 1 if marker == last_marker else 1
        if stalls > self.max_stalled_deferrals:
            self._deferral_stalls.pop(req.rid, None)
            return True
        self._deferral_stalls[req.rid] = (stalls, marker)
        return False

    def _on_step_complete(self, now: float, inst: ServingInstance) -> None:
        inst.on_step_complete(now)

    def _on_phase_transition(
        self, req: Request, src: ServingInstance, now: float
    ) -> None:
        """A request just emitted its end-of-think token on ``src``."""
        # Transition routing reads the cluster-wide census (Algorithm 2).
        for inst in self.instances:
            inst.sync(now)
        self.policy.on_phase_transition(req, src, now)
        # Fire after routing, so subscribers observe the post-decision
        # state (MIGRATING vs re-enqueued locally).
        self.on_phase_hook(req, src, now)

    def _on_first_token(self, req: Request, now: float) -> None:
        self.on_first_token_hook(req, now)

    def _on_request_complete(self, req: Request, now: float) -> None:
        self.completed.append(req)
        self.on_complete_hook(req, now)

    def _on_cancel(self, now: float, req: Request) -> None:
        self._cancel_request(req, now)

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------
    def _schedule_scripted_cancel(self, req: Request) -> None:
        """Schedule a trace-scripted cancellation (``cancel_at``), once.

        Called at submission (not in ``_on_arrival``: a deferral re-fires
        the ARRIVAL handler and would double-schedule the cancel).
        """
        if req.cancel_at is not None:
            self.engine.schedule(
                max(req.cancel_at, self.engine.now), EventKind.CANCEL, req
            )

    def request_cancel(self, req: Request, at: float | None = None) -> bool:
        """Schedule a cancellation, processed in deterministic event order.

        Safe to call from lifecycle hooks and subscriber callbacks (the
        immediate :meth:`cancel` is not: it mutates instance state the
        event currently being dispatched may still be iterating).  Returns
        ``False`` if the request is already terminal — nothing to cancel.
        """
        if (
            req.finished
            or req.cancelled
            or req.rid in self._rejected_rids
        ):
            return False
        at = self.engine.now if at is None else max(at, self.engine.now)
        self.engine.schedule(at, EventKind.CANCEL, req)
        return True

    def cancel(self, rid: int, now: float | None = None) -> bool:
        """Cancel a submitted request immediately, freeing its KV and any
        plan/epoch state mid-step.

        Returns ``True`` if the request was live (now cancelled), ``False``
        if it had already completed, been rejected, or been cancelled.
        Raises ``KeyError`` for a rid this cluster never saw.  Call only
        between events (not from inside lifecycle hooks — see
        :meth:`request_cancel` for the re-entrant variant).
        """
        req = self._by_rid.get(rid)
        if req is None:
            raise KeyError(f"unknown request id {rid}")
        return self._cancel_request(req, self.engine.now if now is None else now)

    def _cancel_request(self, req: Request, now: float) -> bool:
        """Dispatch a cancellation by lifecycle position.

        Exactly one of the branches below accounts the request out of the
        conservation ledger: off an instance, out of the migration fabric,
        or out of the pending-arrival pool (batch submissions awaiting
        their arrival time, admission deferrals, queued source pulls —
        their stale ARRIVAL event is dropped at dispatch).
        """
        if req.finished or req.cancelled or req.rid in self._rejected_rids:
            return False
        if req.state is ReqState.MIGRATING:
            if not self.migrations.cancel(req, now):  # pragma: no cover
                raise RuntimeError(
                    f"request {req.rid} is MIGRATING but has no active "
                    "transfer record"
                )
        elif req.instance_id is not None:
            inst = self.instances[req.instance_id]
            if not inst.cancel_request(req, now):  # pragma: no cover
                raise RuntimeError(
                    f"request {req.rid} claims residency on instance "
                    f"{req.instance_id} but is not registered there"
                )
        else:
            # Never placed: its ARRIVAL is still queued (or parked in the
            # deferral waiting room awaiting re-arrival).
            self.pending_arrivals -= 1
            self._deferred.pop(req.rid, None)
        self._deferral_stalls.pop(req.rid, None)
        req.mark_cancelled(now)
        self.cancelled.append(req)
        self.policy.on_request_cancelled(req, now)
        self.on_cancel_hook(req, now)
        return True

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def enable_token_log(self) -> dict[int, list[float]]:
        """Record every token's timestamp (timeline demos; adds overhead)."""
        self.token_log = {}
        for inst in self.instances:
            inst.token_log = self.token_log
        return self.token_log

    def submit_one(self, req: Request) -> None:
        """Schedule one arrival, mid-run safe.

        A request whose ``arrival_t`` is already in the past (a *late
        submission* relative to the simulated clock) is scheduled at the
        current clock instead: the wall-clock gap between its nominal
        arrival and its admission is accounted as blocked/queued time by
        the request's own interval bookkeeping.  The pre-feed batch path
        scheduled strictly at ``arrival_t`` and crashed on any mid-run
        submission ("cannot schedule into the past").
        """
        self.submitted.append(req)
        self._by_rid[req.rid] = req
        self.pending_arrivals += 1
        self.engine.schedule(
            max(req.arrival_t, self.engine.now), EventKind.ARRIVAL, req
        )
        self._schedule_scripted_cancel(req)

    def submit(self, requests: list[Request]) -> None:
        """Schedule arrival events for a trace (the batch convenience)."""
        for req in requests:
            self.submit_one(req)

    def attach_arrivals(self, requests: Iterable[Request]) -> None:
        """Feed a lazy, arrival-ordered request iterator into the engine.

        Requests are pulled one at a time as the simulation advances (see
        :meth:`repro.sim.engine.SimulationEngine.attach_feed`), so an
        arbitrarily long source is never materialized ahead of the run —
        though each pulled request joins :attr:`submitted` (and later
        :attr:`completed`) for measurement, so per-run memory still grows
        with the requests actually served.  ``len(cluster.submitted)`` is
        the number of requests the cluster has *seen*, not the length of
        the source.
        """
        self.engine.attach_feed(self._arrival_feed(requests))

    def _arrival_feed(
        self, requests: Iterable[Request]
    ) -> Iterator[tuple[float, EventKind, Request]]:
        for req in requests:
            self.submitted.append(req)
            self._by_rid[req.rid] = req
            self.pending_arrivals += 1
            self._schedule_scripted_cancel(req)
            yield req.arrival_t, EventKind.ARRIVAL, req

    def sync_instances(self) -> None:
        """Emit every instance's lazily-deferred epoch steps due by now.

        After a horizon stop, epoch events beyond the horizon will never
        dispatch even though some of their steps complete inside it —
        catch those up inclusively, exactly as single-stepping would have
        dispatched them.  Mid-run (events still pending) the cutoff is
        the current clock, strictly before, matching event order.
        """
        next_t = self.engine.peek_next_time()
        if next_t is None or next_t > self.engine.horizon_s:
            cutoff, inclusive = self.engine.horizon_s, True
        else:
            cutoff, inclusive = self.engine.now, False
        for inst in self.instances:
            inst.sync(cutoff, inclusive)

    def epoch_boundary(self, now: float) -> None:
        """Bring the cluster to a consistent snapshot at a barrier time.

        Called by the sharded runner (:mod:`repro.shard`) after advancing
        to each epoch boundary: instances catch up their lazily-emitted
        decode-epoch tokens through ``now`` inclusively (idempotent — the
        same catch-up any cross-instance read performs), then the optional
        :attr:`on_epoch_hook` observes the frozen boundary state.  Pure
        observation: no event is created, so a run segmented into epochs
        is event-for-event identical to an unsegmented one.
        """
        for inst in self.instances:
            inst.sync(now, True)
        if self.on_epoch_hook is not None:
            self.on_epoch_hook(now)

    def run(self) -> list[Request]:
        """Drain the simulation; returns the completed requests."""
        self.engine.run()
        self.sync_instances()
        return self.completed

    def run_trace(self, requests: list[Request]) -> list[Request]:
        """Submit and run in one call."""
        self.submit(requests)
        return self.run()

    # ------------------------------------------------------------------
    # cluster-wide accounting
    # ------------------------------------------------------------------
    def throughput_tokens_per_s(self) -> float:
        """Output tokens (reasoning + answering) per second of makespan."""
        if not self.completed:
            return 0.0
        start = min(r.arrival_t for r in self.completed)
        end = max(r.done_t for r in self.completed if r.done_t is not None)
        if end <= start:
            return 0.0
        total = sum(r.total_decode_tokens for r in self.completed)
        return total / (end - start)

    def all_finished(self) -> bool:
        """Every seen request resolved (completed, rejected or cancelled)."""
        return (
            len(self.completed) + len(self.rejected) + len(self.cancelled)
            == len(self.submitted)
        )

    def in_flight(self) -> int:
        """Requests seen but not yet resolved.

        Counts everything between submission and a terminal outcome:
        running/queued/migrating requests, admission deferrals awaiting
        re-arrival, and source pulls whose arrival event is still queued.
        For admission decisions prefer :meth:`active_requests`, which
        excludes the not-yet-arrived.
        """
        return (
            len(self.submitted)
            - len(self.completed)
            - len(self.rejected)
            - len(self.cancelled)
        )

    def active_requests(self) -> int:
        """Requests actually occupying the cluster right now.

        :meth:`in_flight` minus arrivals that are merely scheduled
        (future batch submissions, the engine's one-ahead source pulls,
        admission deferrals).  During an admission decision the request
        being decided *is* counted — it has arrived — so concurrency
        gates compare ``active_requests() - 1`` against their bound.
        """
        return self.in_flight() - self.pending_arrivals

    def deferred(self) -> list[Request]:
        """Admission-deferred requests currently waiting out their delay.

        A snapshot in defer order: a request enters when the admission
        gate defers it, leaves when its re-arrival fires (and re-enters
        at the tail if deferred again).  Subset of
        :attr:`pending_arrivals`; empty when no admission policy defers.
        """
        return list(self._deferred.values())
