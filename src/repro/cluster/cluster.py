"""Cluster orchestration: PASCAL's two-level scheduler wired together.

A :class:`Cluster` owns the simulation engine, a pool of serving instances
(Figure 6's "instance pool"), the instance monitor, the placement
algorithms and the migration manager.  Policies:

======================  =============  ==========================  =========
policy                  intra-instance placement                   migration
======================  =============  ==========================  =========
``fcfs``                FCFS           least-KV                     none
``rr``                  RR             least-KV                     none
``oracle``              FCFS           least-KV                     none
``pascal``              hierarchical   Alg. 1 / Alg. 2              adaptive
``pascal-nomigration``  hierarchical   Alg. 1 only                  none
``pascal-nonadaptive``  hierarchical   Alg. 1 / Alg. 2              always
``pascal-ri-only``      hierarchical   Alg. 2 w/o the a_i fallback  adaptive
``phase-partitioned``   RR             split reasoning/answer pools always
======================  =============  ==========================  =========

``pascal-nomigration`` / ``pascal-nonadaptive`` reproduce the Figure 13 and
Figure 15 ablations; ``pascal-ri-only`` isolates Algorithm 2's ``r_i + a_i``
fallback claim (Section IV-B); ``phase-partitioned`` implements the
DistServe-style explicit phase split the paper argues against (Section VII).
"""

from __future__ import annotations

from repro.cluster.fabric import Fabric
from repro.cluster.migration import MigrationManager
from repro.config import ClusterConfig
from repro.core.adaptive import AdaptiveMigrationPolicy
from repro.core.pascal import PascalScheduler
from repro.core.placement import (
    AnsweringPlacement,
    ReasoningPlacement,
    least_kv_placement,
)
from repro.perfmodel.analytical import AnalyticalPerfModel, PerfModel
from repro.schedulers.base import IntraScheduler
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.oracle import OracleScheduler
from repro.schedulers.round_robin import RoundRobinScheduler
from repro.serving.instance import ServingInstance
from repro.serving.monitor import InstanceMonitor
from repro.sim.engine import SimulationEngine
from repro.sim.events import EventKind
from repro.workload.request import Request

POLICIES = (
    "fcfs",
    "rr",
    "oracle",
    "pascal",
    "pascal-nomigration",
    "pascal-nonadaptive",
    "pascal-ri-only",
    "phase-partitioned",
)


def make_intra_scheduler(policy: str, config: ClusterConfig) -> IntraScheduler:
    """Intra-instance scheduler instance for a cluster policy name."""
    sched_cfg = config.instance.scheduler
    if policy == "fcfs":
        return FCFSScheduler()
    if policy in ("rr", "phase-partitioned"):
        return RoundRobinScheduler(quantum_tokens=sched_cfg.token_quantum)
    if policy == "oracle":
        return OracleScheduler()
    if policy.startswith("pascal"):
        return PascalScheduler(
            quantum_tokens=sched_cfg.token_quantum,
            demotion_threshold_tokens=sched_cfg.demotion_threshold_tokens,
        )
    raise ValueError(f"unknown policy {policy!r}; expected one of {POLICIES}")


class Cluster:
    """A multi-instance serving deployment under one scheduling policy."""

    def __init__(
        self,
        config: ClusterConfig,
        policy: str,
        perf: PerfModel | None = None,
        horizon_s: float = float("inf"),
    ):
        if policy not in POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; expected one of {POLICIES}"
            )
        self.config = config
        self.policy = policy
        self.engine = SimulationEngine(horizon_s=horizon_s)
        self.perf = perf or AnalyticalPerfModel(
            config.instance.model, config.instance.gpu
        )
        self.monitor = InstanceMonitor(config.slo)
        self.instances = [
            ServingInstance(
                iid=i,
                config=config.instance,
                perf=self.perf,
                engine=self.engine,
                scheduler=make_intra_scheduler(policy, config),
            )
            for i in range(config.n_instances)
        ]
        self.fabric = Fabric(config.fabric, config.n_instances)
        self.migrations = MigrationManager(
            self.engine, self.fabric, config.instance.model
        )

        self._is_pascal = policy.startswith("pascal")
        self._is_partitioned = policy == "phase-partitioned"
        self._migration_enabled = policy in (
            "pascal",
            "pascal-nonadaptive",
            "pascal-ri-only",
        )
        self.reasoning_placement = ReasoningPlacement(self.monitor)
        self.answering_placement = AnsweringPlacement(
            self.monitor,
            use_fresh_fallback=(policy != "pascal-ri-only"),
        )
        self.adaptive = AdaptiveMigrationPolicy(
            growth_headroom_tokens=config.instance.scheduler.token_quantum,
            enabled=(policy != "pascal-nonadaptive"),
        )
        # DistServe-style explicit phase partitioning (the Section VII
        # counterfactual): the first half of the pool serves reasoning,
        # the second half answering; every transition crosses the fabric.
        half = max(1, config.n_instances // 2)
        self.reasoning_pool = self.instances[:half]
        self.answering_pool = (
            self.instances[half:] if config.n_instances > 1 else self.instances
        )

        self.completed: list[Request] = []
        self.submitted: list[Request] = []
        self.token_log: dict[int, list[float]] | None = None

        self.engine.register(EventKind.ARRIVAL, self._on_arrival)
        self.engine.register(EventKind.STEP_COMPLETE, self._on_step_complete)
        self.engine.register(
            EventKind.TRANSFER_COMPLETE, self.migrations.on_transfer_complete
        )
        for inst in self.instances:
            inst.on_transition = self._on_phase_transition
            inst.on_complete = self._on_request_complete

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _on_arrival(self, now: float, req: Request) -> None:
        if self._is_partitioned:
            inst = least_kv_placement(self.reasoning_pool, req, now)
        elif self._is_pascal:
            inst = self.reasoning_placement.select(self.instances, req, now)
        else:
            inst = least_kv_placement(self.instances, req, now)
        inst.admit(req, now)

    def _on_step_complete(self, now: float, inst: ServingInstance) -> None:
        inst.on_step_complete(now)

    def _on_phase_transition(
        self, req: Request, src: ServingInstance, now: float
    ) -> None:
        """A request just emitted its end-of-think token on ``src``."""
        if self._is_partitioned:
            target = least_kv_placement(self.answering_pool, req, now)
            if target.iid == src.iid:
                src.scheduler.on_phase_transition_local(req, now)
            else:
                self.migrations.start(req, src, target, now)
            return
        if not self._migration_enabled:
            src.scheduler.on_phase_transition_local(req, now)
            return
        target = self.answering_placement.select(self.instances, req, now)
        if self.adaptive.should_migrate(req, src, target):
            self.migrations.start(req, src, target, now)
        else:
            src.scheduler.on_phase_transition_local(req, now)

    def _on_request_complete(self, req: Request, now: float) -> None:
        self.completed.append(req)

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def enable_token_log(self) -> dict[int, list[float]]:
        """Record every token's timestamp (timeline demos; adds overhead)."""
        self.token_log = {}
        for inst in self.instances:
            inst.token_log = self.token_log
        return self.token_log

    def submit(self, requests: list[Request]) -> None:
        """Schedule arrival events for a trace."""
        for req in requests:
            self.submitted.append(req)
            self.engine.schedule(req.arrival_t, EventKind.ARRIVAL, req)

    def run(self) -> list[Request]:
        """Drain the simulation; returns the completed requests."""
        self.engine.run()
        return self.completed

    def run_trace(self, requests: list[Request]) -> list[Request]:
        """Submit and run in one call."""
        self.submit(requests)
        return self.run()

    # ------------------------------------------------------------------
    # cluster-wide accounting
    # ------------------------------------------------------------------
    def throughput_tokens_per_s(self) -> float:
        """Output tokens (reasoning + answering) per second of makespan."""
        if not self.completed:
            return 0.0
        start = min(r.arrival_t for r in self.completed)
        end = max(r.done_t for r in self.completed if r.done_t is not None)
        if end <= start:
            return 0.0
        total = sum(r.total_decode_tokens for r in self.completed)
        return total / (end - start)

    def all_finished(self) -> bool:
        return len(self.completed) == len(self.submitted)
