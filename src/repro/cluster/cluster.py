"""Cluster orchestration: engine wiring and event dispatch.

A :class:`Cluster` owns the simulation engine, a pool of serving instances
(Figure 6's "instance pool"), the instance monitor, the fabric and the
migration manager.  Every *decision* — which intra-instance scheduler the
instances run, where arrivals land, what happens at a phase transition —
is delegated to a :class:`~repro.core.policy.ClusterPolicy` resolved
through :mod:`repro.core.registry`, so the cluster core contains no
policy-specific logic.

See :mod:`repro.core.policies` for the paper's comparison set and
:mod:`repro.core.extensions` for the policies beyond it.
"""

from __future__ import annotations

from repro.cluster.fabric import Fabric
from repro.cluster.migration import MigrationManager
from repro.config import ClusterConfig
from repro.core.policy import ClusterPolicy, build_intra_scheduler
from repro.core.registry import create_policy, policy_names
from repro.perfmodel.analytical import AnalyticalPerfModel, PerfModel
from repro.schedulers.base import IntraScheduler
from repro.serving.instance import ServingInstance
from repro.serving.monitor import InstanceMonitor
from repro.sim.engine import SimulationEngine
from repro.sim.events import EventKind
from repro.workload.request import Request


#: Registered policy names at import time.  Prefer
#: :func:`repro.core.registry.policy_names` in new code: policies
#: registered later (e.g. by plugins or tests) appear only there.
POLICIES = policy_names()


def make_intra_scheduler(
    policy: str, config: ClusterConfig, iid: int = 0
) -> IntraScheduler:
    """Intra-instance scheduler a cluster policy gives instance ``iid``."""
    return build_intra_scheduler(create_policy(policy, config), iid)


class Cluster:
    """A multi-instance serving deployment under one scheduling policy."""

    def __init__(
        self,
        config: ClusterConfig,
        policy: str | ClusterPolicy,
        perf: PerfModel | None = None,
        horizon_s: float = float("inf"),
    ):
        if isinstance(policy, str):
            policy = create_policy(policy, config)
        self.config = config
        self.policy = policy
        self.engine = SimulationEngine(horizon_s=horizon_s)
        self.perf = perf or AnalyticalPerfModel(
            config.instance.model, config.instance.gpu
        )
        self.monitor = InstanceMonitor(config.slo)
        self.instances = [
            ServingInstance(
                iid=i,
                config=config.instance,
                perf=self.perf,
                engine=self.engine,
                scheduler=build_intra_scheduler(policy, i),
            )
            for i in range(config.n_instances)
        ]
        self.fabric = Fabric(config.fabric, config.n_instances)
        self.migrations = MigrationManager(
            self.engine, self.fabric, config.instance.model
        )
        policy.bind(self)

        self.completed: list[Request] = []
        self.submitted: list[Request] = []
        self.token_log: dict[int, list[float]] | None = None

        self.engine.register(EventKind.ARRIVAL, self._on_arrival)
        self.engine.register(EventKind.STEP_COMPLETE, self._on_step_complete)
        self.engine.register(
            EventKind.TRANSFER_COMPLETE, self.migrations.on_transfer_complete
        )
        for inst in self.instances:
            inst.on_transition = self._on_phase_transition
            inst.on_complete = self._on_request_complete

    @property
    def policy_name(self) -> str:
        return self.policy.name

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _on_arrival(self, now: float, req: Request) -> None:
        self.policy.place_arrival(req, now).admit(req, now)

    def _on_step_complete(self, now: float, inst: ServingInstance) -> None:
        inst.on_step_complete(now)

    def _on_phase_transition(
        self, req: Request, src: ServingInstance, now: float
    ) -> None:
        """A request just emitted its end-of-think token on ``src``."""
        self.policy.on_phase_transition(req, src, now)

    def _on_request_complete(self, req: Request, now: float) -> None:
        self.completed.append(req)

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def enable_token_log(self) -> dict[int, list[float]]:
        """Record every token's timestamp (timeline demos; adds overhead)."""
        self.token_log = {}
        for inst in self.instances:
            inst.token_log = self.token_log
        return self.token_log

    def submit(self, requests: list[Request]) -> None:
        """Schedule arrival events for a trace."""
        for req in requests:
            self.submitted.append(req)
            self.engine.schedule(req.arrival_t, EventKind.ARRIVAL, req)

    def run(self) -> list[Request]:
        """Drain the simulation; returns the completed requests."""
        self.engine.run()
        return self.completed

    def run_trace(self, requests: list[Request]) -> list[Request]:
        """Submit and run in one call."""
        self.submit(requests)
        return self.run()

    # ------------------------------------------------------------------
    # cluster-wide accounting
    # ------------------------------------------------------------------
    def throughput_tokens_per_s(self) -> float:
        """Output tokens (reasoning + answering) per second of makespan."""
        if not self.completed:
            return 0.0
        start = min(r.arrival_t for r in self.completed)
        end = max(r.done_t for r in self.completed if r.done_t is not None)
        if end <= start:
            return 0.0
        total = sum(r.total_decode_tokens for r in self.completed)
        return total / (end - start)

    def all_finished(self) -> bool:
        return len(self.completed) == len(self.submitted)
