"""One entry point per paper table/figure, as declarative specs.

Each figure is an :class:`~repro.harness.spec.ExperimentSpec`: the sweep
cells it needs (``spec.required_cells(settings)``) plus a pure ``build``
function that assembles the :class:`~repro.harness.report.FigureResult`
from the memoized runs.  The per-figure functions (``fig4_reasoning_phase``
etc.) remain importable and behave exactly as before; the specs add the
parallel path — ``spec(jobs=8)`` fans the cells out over worker processes
before building, and ``python -m repro.harness all --jobs N`` sweeps the
*union* of cells across every figure (they overlap heavily) in one pool.

The benchmark suite under ``benchmarks/`` prints these tables and asserts
the qualitative shape (who wins, approximate factors).
"""

from __future__ import annotations

import dataclasses

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, InstanceConfig, SchedulerConfig
from repro.harness.report import FigureResult
from repro.harness.runner import (
    CharacterizationSettings,
    CharCell,
    EvalCell,
    EvalSettings,
    run_characterization,
    run_evaluation,
)
from repro.harness.spec import ExperimentSpec
from repro.harness.timeline import ascii_timeline
from repro.metrics.collector import RunMetrics
from repro.metrics.summary import mean, percentile
from repro.perfmodel.analytical import AnalyticalPerfModel
from repro.perfmodel.profile import ProfileTable
from repro.perfmodel.unit import UnitPerfModel
from repro.perfmodel.validate import validate_runs
from repro.workload.datasets import (
    ALPACA_EVAL,
    ARENA_HARD,
    GPQA,
    LIVECODEBENCH,
    MATH_500,
    deferral_stress_mix,
    reasoning_heavy_mix,
)
from repro.workload.request import Phase
from repro.workload.synthetic import (
    CHARACTERIZATION_LENGTHS,
    fixed_length_requests,
)
from repro.workload.trace import TraceConfig, build_trace, trace_token_stats

CHAR_POLICIES = ("oracle", "fcfs", "rr")
EVAL_POLICIES = ("fcfs", "rr", "pascal")

#: One figure title per experiment id — the single source for both
#: the rendered tables and the CLI `list` command.
TITLES: dict[str, str] = {
    "fig2": "Request C under oracle / FCFS / RR (time units)",
    "fig4": "Reasoning-phase latency breakdown (s), 50% memory cap",
    "fig5": "Answering-phase latency breakdown (s) and SLO attainment",
    "fig8": "Chat dataset token distributions (synthetic vs paper means)",
    "fig14": "Problem-solving dataset distributions (synthetic vs paper means)",
    "fig9": "Absolute TTFT across arrival rates (s)",
    "fig10": "Tail TTFT by reasoning-length bin, high arrival rate (s)",
    "fig11": "Answering-phase SLO violation rates (%)",
    "fig12": "Serving throughput (tokens/s)",
    "sec5c": "KV-cache transfer overhead under high arrival rate",
    "fig13": "PASCAL vs PASCAL(NoMigration), AlpacaEval high rate",
    "fig15": "PASCAL vs PASCAL(NonAdaptive), AlpacaEval",
    "fig16": "Mixed 50% Arena-Hard + 50% reasoning-heavy, high rate",
    "fig16x": "Mixed workload, heterogeneous pools + token-weighted load "
    "vs extension baselines, high rate",
    "deferral-stress": "Bursty bimodal mix, high rate: speculative "
    "deferral/replacement vs length-predictive",
    "sec5a": "Simulator validation: profile-table vs reference model (MAPE %)",
    "ablation-alg2": "Algorithm 2 fallback: r_i + a_i vs r_i alone, AlpacaEval",
    "ablation-partition": "Explicit phase partitioning vs PASCAL, AlpacaEval high rate",
}


# ---------------------------------------------------------------------------
# shared cell builders and row helpers
# ---------------------------------------------------------------------------
def _eval_cells(datasets, tiers, policies, settings) -> tuple[EvalCell, ...]:
    """The dataset x tier x policy evaluation matrix as sweep cells."""
    return tuple(
        EvalCell(dataset, tier, policy, settings)
        for dataset in datasets
        for tier in tiers
        for policy in policies
    )


def _char_cells(phase, settings, policies=CHAR_POLICIES) -> tuple[CharCell, ...]:
    return tuple(CharCell(phase, policy, settings) for policy in policies)


@dataclasses.dataclass(frozen=True)
class TailBinComparison:
    """One reasoning-length bin of a FCFS / RR / PASCAL tail comparison."""

    label: str
    n_samples: int
    metric_name: str
    fcfs: float
    rr: float
    pascal: float
    #: Fractional tail reduction of PASCAL vs each baseline (0..1).
    red_vs_fcfs: float
    red_vs_rr: float


def _tail_ttft_comparison(
    metrics: dict[str, RunMetrics], bin_width: int = 256
) -> list[TailBinComparison]:
    """Per-bin tail-TTFT comparison shared by Figures 10 and 16."""
    bins = {
        p: {b.lo: b for b in m.ttft_bins(bin_width=bin_width)}
        for p, m in metrics.items()
    }
    shared = sorted(set(bins["fcfs"]) & set(bins["rr"]) & set(bins["pascal"]))
    rows = []
    for lo in shared:
        fcfs_v = bins["fcfs"][lo].tail_value
        rr_v = bins["rr"][lo].tail_value
        pascal_v = bins["pascal"][lo].tail_value
        rows.append(
            TailBinComparison(
                label=bins["pascal"][lo].label,
                n_samples=bins["pascal"][lo].n_samples,
                metric_name=bins["pascal"][lo].metric_name,
                fcfs=fcfs_v,
                rr=rr_v,
                pascal=pascal_v,
                red_vs_fcfs=(fcfs_v - pascal_v) / fcfs_v if fcfs_v > 0 else 0.0,
                red_vs_rr=(rr_v - pascal_v) / rr_v if rr_v > 0 else 0.0,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 2 — scheduling timeline in abstract time units
# ---------------------------------------------------------------------------
def fig2_timeline(settings=None) -> FigureResult:
    """Oracle / FCFS / RR timelines for three requests, capacity = 2.

    Requests A, B, C arrive at t = 0, 1, 2; GPU memory fits two requests;
    the RR token quantum is 4.  The paper reads off a TTFT of 7 units for
    request C under FCFS versus 3 under RR.
    """
    rows = []
    timelines = {}
    for policy, capacity_requests in (
        ("oracle", 3),
        ("fcfs", 2),
        ("rr", 2),
    ):
        # One 16-token block per request: prompt 1 + up to 8 decode tokens.
        instance = InstanceConfig(
            kv_capacity_tokens=capacity_requests * 16,
            scheduler=SchedulerConfig(token_quantum=4),
        )
        config = ClusterConfig(n_instances=1, instance=instance)
        cluster = Cluster(
            config, policy=policy, perf=UnitPerfModel(decode_step_s=1.0)
        )
        log = cluster.enable_token_log()
        requests = fixed_length_requests(
            3,
            prompt_len=1,
            reasoning_len=4,
            answer_len=4,
            arrival_times=[0.0, 1.0, 2.0],
            dataset="fig2",
        )
        # Request C is one token shorter, as drawn in the paper.
        requests[2].answer_len = 3
        cluster.run_trace(requests)
        timelines[policy] = ascii_timeline(requests, log)
        req_c = requests[2]
        rows.append(
            [
                policy,
                req_c.first_sched_t - req_c.arrival_t,
                req_c.ttft(),
                max(r.done_t for r in requests),
            ]
        )
    return FigureResult(
        figure_id="fig2",
        title=TITLES["fig2"],
        headers=["policy", "C wait", "C TTFT", "makespan"],
        rows=rows,
        notes=[
            "paper: C's service is delayed ~7 units under FCFS vs ~3 under RR",
            *[f"{p} timeline:\n{t}" for p, t in timelines.items()],
        ],
    )


# ---------------------------------------------------------------------------
# Figure 4 — reasoning-phase latency breakdown
# ---------------------------------------------------------------------------
def fig4_reasoning_phase(
    settings: CharacterizationSettings | None = None,
) -> FigureResult:
    settings = settings or CharacterizationSettings.for_scale()
    runs = {
        policy: run_characterization("reasoning", policy, settings)
        for policy in CHAR_POLICIES
    }
    breakdowns = {
        policy: run.metrics.phase_breakdown(
            Phase.REASONING, lambda r: r.reasoning_len
        )
        for policy, run in runs.items()
    }
    rows = []
    for length in CHARACTERIZATION_LENGTHS:
        oracle_total = sum(breakdowns["oracle"].get(length, {}).values())
        for policy in CHAR_POLICIES:
            cell = breakdowns[policy].get(
                length, {"executed": 0.0, "blocked": 0.0, "preempted": 0.0}
            )
            total = sum(cell.values())
            rows.append(
                [
                    length,
                    policy,
                    cell["executed"],
                    cell["blocked"],
                    cell["preempted"],
                    total,
                    (total / oracle_total) if oracle_total > 0 else None,
                ]
            )
    return FigureResult(
        figure_id="fig4",
        title=TITLES["fig4"],
        headers=[
            "reasoning_tokens",
            "policy",
            "executed",
            "blocked",
            "preempted",
            "total",
            "vs_oracle",
        ],
        rows=rows,
        notes=[
            "paper: FCFS up to 5.14x oracle at 128 tokens (blocking-dominated)",
            "paper: RR up to 1.75x oracle at 2048 tokens (preemption-dominated)",
            f"capacity: oracle peak {runs['fcfs'].oracle_peak_tokens} tokens, "
            f"constrained {runs['fcfs'].capacity_tokens} tokens",
        ],
    )


# ---------------------------------------------------------------------------
# Figure 5 — answering-phase latency breakdown + SLO attainment
# ---------------------------------------------------------------------------
def fig5_answering_phase(
    settings: CharacterizationSettings | None = None,
) -> FigureResult:
    settings = settings or CharacterizationSettings.for_scale()
    runs = {
        policy: run_characterization("answering", policy, settings)
        for policy in CHAR_POLICIES
    }
    slo = ClusterConfig().slo
    rows = []
    for length in CHARACTERIZATION_LENGTHS:
        for policy in CHAR_POLICIES:
            metrics = runs[policy].metrics
            subset = [r for r in metrics.requests if r.answer_len == length]
            sub_metrics = RunMetrics(policy=policy, requests=subset)
            cell = sub_metrics.phase_breakdown(Phase.ANSWERING, lambda r: 0)[0]
            report = sub_metrics.slo_report(slo, include_ttfat=True)
            rows.append(
                [
                    length,
                    policy,
                    cell["executed"],
                    cell["blocked"],
                    cell["preempted"],
                    sum(cell.values()),
                    report.attainment_rate,
                ]
            )
    return FigureResult(
        figure_id="fig5",
        title=TITLES["fig5"],
        headers=[
            "answer_tokens",
            "policy",
            "executed",
            "blocked",
            "preempted",
            "total",
            "slo_attainment",
        ],
        rows=rows,
        notes=[
            "paper: FCFS attainment low across lengths (TTFAT blown by blocking)",
            "paper: RR attainment ~= oracle even where its total latency exceeds "
            "FCFS at 2048 tokens (threshold-based SLO tolerates preemption)",
            "SLO: QoE >= 0.95 with TTFAT target 0.25 s, TPOT target 100 ms",
        ],
    )


# ---------------------------------------------------------------------------
# Figures 8 and 14 — dataset token distributions
# ---------------------------------------------------------------------------
def _distribution_rows(specs, n_samples: int = 4000) -> list[list]:
    rows = []
    for spec in specs:
        trace = build_trace(
            TraceConfig(
                dataset=spec,
                n_requests=n_samples,
                arrival_rate_per_s=1.0,
                seed=13,
            )
        )
        stats = trace_token_stats(trace)
        rows.append(
            [
                spec.name,
                spec.reasoning.mean,
                stats["reasoning_mean"],
                spec.answering.mean,
                stats["answering_mean"],
                stats["reasoning_mean"] / max(stats["answering_mean"], 1e-9),
                stats["frac_reasoning_under_1000"],
            ]
        )
    return rows


_DISTRIBUTION_HEADERS = [
    "dataset",
    "paper_reason_mean",
    "measured_reason_mean",
    "paper_answer_mean",
    "measured_answer_mean",
    "reason/answer",
    "frac_reason<1000",
]


def fig8_chat_distributions(n_samples: int = 4000) -> FigureResult:
    return FigureResult(
        figure_id="fig8",
        title=TITLES["fig8"],
        headers=_DISTRIBUTION_HEADERS,
        rows=_distribution_rows((ALPACA_EVAL, ARENA_HARD), n_samples),
        notes=[
            "paper (fig 8): AlpacaEval 557.75/566.85, Arena-Hard 968.35/824.02",
            "paper (fig 10 caption): >70% of requests reason under 1000 tokens",
        ],
    )


def fig14_reasoning_heavy_distributions(n_samples: int = 4000) -> FigureResult:
    return FigureResult(
        figure_id="fig14",
        title=TITLES["fig14"],
        headers=_DISTRIBUTION_HEADERS,
        rows=_distribution_rows((MATH_500, GPQA, LIVECODEBENCH), n_samples),
        notes=[
            "paper (fig 14): MATH-500 747.20/164.67, GPQA 2679.27/316.09, "
            "LiveCodeBench 1896.64/697.09",
            "paper: reasoning tokens reach up to 8.48x the answering tokens",
        ],
    )


# ---------------------------------------------------------------------------
# Figures 9-12 — the Section V evaluation matrix
# ---------------------------------------------------------------------------
def fig9_ttft(settings: EvalSettings | None = None) -> FigureResult:
    settings = settings or EvalSettings.for_scale()
    rows = []
    for dataset in (ALPACA_EVAL, ARENA_HARD):
        for tier in ("low", "medium", "high"):
            for policy in EVAL_POLICIES:
                metrics = run_evaluation(dataset, tier, policy, settings)
                ttfts = metrics.ttfts()
                rows.append(
                    [
                        dataset.name,
                        tier,
                        policy,
                        mean(ttfts),
                        percentile(ttfts, 50),
                        percentile(ttfts, 99),
                        max(ttfts),
                    ]
                )
    return FigureResult(
        figure_id="fig9",
        title=TITLES["fig9"],
        headers=[
            "dataset",
            "rate",
            "policy",
            "mean",
            "p50",
            "p99",
            "max",
        ],
        rows=rows,
        notes=[
            "paper: TTFT grows with reasoning length; high rate inflates "
            "FCFS/RR tails far more than PASCAL's",
        ],
    )


def fig10_tail_ttft(settings: EvalSettings | None = None) -> FigureResult:
    settings = settings or EvalSettings.for_scale()
    rows = []
    headline = {}
    for dataset in (ALPACA_EVAL, ARENA_HARD):
        metrics = {
            policy: run_evaluation(dataset, "high", policy, settings)
            for policy in EVAL_POLICIES
        }
        comparison = _tail_ttft_comparison(metrics)
        for bin_row in comparison:
            rows.append(
                [
                    dataset.name,
                    bin_row.label,
                    bin_row.n_samples,
                    bin_row.metric_name,
                    bin_row.fcfs,
                    bin_row.rr,
                    bin_row.pascal,
                    100.0 * bin_row.red_vs_fcfs,
                    100.0 * bin_row.red_vs_rr,
                ]
            )
        headline[dataset.name] = (
            max([0.0, *(b.red_vs_fcfs for b in comparison)]),
            max([0.0, *(b.red_vs_rr for b in comparison)]),
        )
    notes = [
        "paper: PASCAL cuts tail TTFT by up to 61% (AlpacaEval) / 72% "
        "(Arena-Hard) vs FCFS, and 33% / 29% vs RR",
    ]
    for name, (vf, vr) in headline.items():
        notes.append(
            f"measured {name}: best reduction {100 * vf:.0f}% vs FCFS, "
            f"{100 * vr:.0f}% vs RR"
        )
    return FigureResult(
        figure_id="fig10",
        title=TITLES["fig10"],
        headers=[
            "dataset",
            "bin",
            "n",
            "metric",
            "fcfs",
            "rr",
            "pascal",
            "red_vs_fcfs_%",
            "red_vs_rr_%",
        ],
        rows=rows,
        notes=notes,
    )


def fig11_slo_violations(settings: EvalSettings | None = None) -> FigureResult:
    settings = settings or EvalSettings.for_scale()
    slo = settings.cluster_config().slo
    rows = []
    for dataset in (ALPACA_EVAL, ARENA_HARD):
        for tier in ("low", "medium", "high"):
            row = [dataset.name, tier]
            for policy in EVAL_POLICIES:
                metrics = run_evaluation(dataset, tier, policy, settings)
                row.append(100.0 * metrics.slo_report(slo).violation_rate)
            rows.append(row)
    return FigureResult(
        figure_id="fig11",
        title=TITLES["fig11"],
        headers=["dataset", "rate", "fcfs_%", "rr_%", "pascal_%"],
        rows=rows,
        notes=[
            "paper: PASCAL consistently lower or comparable violation rates",
            "violation: QoE (TPOT-anchored) below 0.95",
        ],
    )


def fig12_throughput(settings: EvalSettings | None = None) -> FigureResult:
    settings = settings or EvalSettings.for_scale()
    rows = []
    worst_gap = 0.0
    for dataset in (ALPACA_EVAL, ARENA_HARD):
        for tier in ("low", "medium", "high"):
            values = {}
            for policy in EVAL_POLICIES:
                metrics = run_evaluation(dataset, tier, policy, settings)
                values[policy] = metrics.throughput_tokens_per_s
            baseline_best = max(values["fcfs"], values["rr"])
            gap = (
                (baseline_best - values["pascal"]) / baseline_best
                if baseline_best > 0
                else 0.0
            )
            worst_gap = max(worst_gap, gap)
            rows.append(
                [
                    dataset.name,
                    tier,
                    values["fcfs"],
                    values["rr"],
                    values["pascal"],
                    100.0 * gap,
                ]
            )
    return FigureResult(
        figure_id="fig12",
        title=TITLES["fig12"],
        headers=[
            "dataset",
            "rate",
            "fcfs",
            "rr",
            "pascal",
            "pascal_deficit_%",
        ],
        rows=rows,
        notes=[
            "paper: PASCAL throughput within 3% of both baselines",
            f"measured worst PASCAL deficit vs best baseline: {100 * worst_gap:.1f}%",
        ],
    )


# ---------------------------------------------------------------------------
# Section V-C — KV cache transfer overhead
# ---------------------------------------------------------------------------
def sec5c_transfer_overhead(settings: EvalSettings | None = None) -> FigureResult:
    settings = settings or EvalSettings.for_scale()
    rows = []
    for dataset, paper_p99 in ((ALPACA_EVAL, 0.14), (ARENA_HARD, 0.25)):
        metrics = run_evaluation(dataset, "high", "pascal", settings)
        p99 = metrics.p99_transfer_latency()
        ttft_p99 = percentile(metrics.ttfts(), 99)
        rows.append(
            [
                dataset.name,
                len(metrics.transfer_latencies_s),
                paper_p99,
                p99,
                ttft_p99,
                (100.0 * p99 / ttft_p99) if (p99 and ttft_p99 > 0) else None,
            ]
        )
    return FigureResult(
        figure_id="sec5c",
        title=TITLES["sec5c"],
        headers=[
            "dataset",
            "n_transfers",
            "paper_p99_s",
            "measured_p99_s",
            "p99_ttft_s",
            "transfer/ttft_%",
        ],
        rows=rows,
        notes=[
            "paper: P99 transfer latency 0.14 s (AlpacaEval) / 0.25 s "
            "(Arena-Hard); negligible vs multi-second TTFTs",
        ],
    )


# ---------------------------------------------------------------------------
# Figure 13 — disabling migration
# ---------------------------------------------------------------------------
def fig13_no_migration(settings: EvalSettings | None = None) -> FigureResult:
    settings = settings or EvalSettings.for_scale()
    slo = settings.cluster_config().slo
    rows = []
    for policy in ("pascal", "pascal-nomigration"):
        metrics = run_evaluation(ALPACA_EVAL, "high", policy, settings)
        ttfts = metrics.ttfts()
        blocking = metrics.blocking_latencies()
        rows.append(
            [
                policy,
                mean(ttfts),
                percentile(ttfts, 99),
                mean(metrics.reasoning_latencies()),
                percentile(blocking, 99) if blocking else None,
                100.0 * metrics.slo_report(slo).violation_rate,
            ]
        )
    return FigureResult(
        figure_id="fig13",
        title=TITLES["fig13"],
        headers=[
            "policy",
            "mean_ttft_s",
            "p99_ttft_s",
            "mean_reasoning_s",
            "p99_blocking_s",
            "slo_violation_%",
        ],
        rows=rows,
        notes=[
            "paper: NoMigration's P99 blocking latency reaches 27.39 s while "
            "PASCAL keeps it near zero; reasoning latency is nearly unchanged "
            "but tail TTFT and SLO violations worsen",
        ],
    )


# ---------------------------------------------------------------------------
# Figure 15 — disabling adaptive migration
# ---------------------------------------------------------------------------
def fig15_non_adaptive(settings: EvalSettings | None = None) -> FigureResult:
    settings = settings or EvalSettings.for_scale()
    slo = settings.cluster_config().slo
    rows = []
    for policy in ("pascal", "pascal-nonadaptive"):
        for tier in ("low", "medium", "high"):
            metrics = run_evaluation(ALPACA_EVAL, tier, policy, settings)
            ttfts = metrics.ttfts()
            e2e = metrics.e2e_latencies()
            rows.append(
                [
                    policy,
                    tier,
                    100.0 * metrics.slo_report(slo).violation_rate,
                    mean(ttfts),
                    percentile(ttfts, 99),
                    mean(e2e),
                    percentile(e2e, 50),
                    percentile(e2e, 99),
                ]
            )
    return FigureResult(
        figure_id="fig15",
        title=TITLES["fig15"],
        headers=[
            "policy",
            "rate",
            "slo_violation_%",
            "mean_ttft_s",
            "p99_ttft_s",
            "mean_e2e_s",
            "p50_e2e_s",
            "p99_e2e_s",
        ],
        rows=rows,
        notes=[
            "paper: at high rate NonAdaptive violates SLO 7.45% vs 0.69%; "
            "median e2e +20.1%, tail +9.7%; TTFT distributions similar",
        ],
    )


# ---------------------------------------------------------------------------
# Figure 16 — reasoning-heavy mixed workload
# ---------------------------------------------------------------------------
def fig16_mixed_workload(settings: EvalSettings | None = None) -> FigureResult:
    settings = settings or EvalSettings.for_scale()
    mix = reasoning_heavy_mix()
    slo = settings.cluster_config().slo
    metrics = {
        policy: run_evaluation(mix, "high", policy, settings)
        for policy in EVAL_POLICIES
    }
    comparison = _tail_ttft_comparison(metrics, bin_width=512)
    rows = [
        [
            bin_row.label,
            bin_row.n_samples,
            bin_row.fcfs,
            bin_row.rr,
            bin_row.pascal,
            100.0 * bin_row.red_vs_fcfs,
            100.0 * bin_row.red_vs_rr,
        ]
        for bin_row in comparison
    ]
    best_vs_fcfs = max([0.0, *(b.red_vs_fcfs for b in comparison)])
    best_vs_rr = max([0.0, *(b.red_vs_rr for b in comparison)])
    worst_vs_rr = min([0.0, *(b.red_vs_rr for b in comparison)])
    slo_row = [
        "slo_violation_%",
        None,
        100.0 * metrics["fcfs"].slo_report(slo).violation_rate,
        100.0 * metrics["rr"].slo_report(slo).violation_rate,
        100.0 * metrics["pascal"].slo_report(slo).violation_rate,
        None,
        None,
    ]
    rows.append(slo_row)
    return FigureResult(
        figure_id="fig16",
        title=TITLES["fig16"],
        headers=[
            "bin",
            "n",
            "fcfs",
            "rr",
            "pascal",
            "red_vs_fcfs_%",
            "red_vs_rr_%",
        ],
        rows=rows,
        notes=[
            "paper: up to 70% tail-TTFT reduction vs FCFS on short bins; "
            "worst-case +6.8% on long reasoning; vs RR up to 13.9% better, "
            "worst-case degradation < 7.7%; SLO ~= RR, below FCFS",
            f"measured: best {100 * best_vs_fcfs:.0f}% vs FCFS, best "
            f"{100 * best_vs_rr:.0f}% / worst {100 * worst_vs_rr:.0f}% vs RR",
        ],
    )


# ---------------------------------------------------------------------------
# Figure 16 extension — heterogeneous pools and token-weighted load
# ---------------------------------------------------------------------------
def _weighted_settings(settings: EvalSettings) -> EvalSettings:
    """The same cell with ``slo-least-load`` flipped to token-weighted."""
    return dataclasses.replace(
        settings,
        extensions=dataclasses.replace(
            settings.extensions, least_load_weighted=True
        ),
    )


#: (row label, policy name, uses the weighted settings) for fig16x.
_FIG16X_ROWS = (
    ("pascal", "pascal", False),
    ("slo-least-load", "slo-least-load", False),
    ("slo-least-load[w]", "slo-least-load", True),
    ("length-predictive", "length-predictive", False),
    ("tiered-express", "tiered-express", False),
    ("speculative-replace", "speculative-replace", False),
)


def fig16x_extension_mixed(settings: EvalSettings | None = None) -> FigureResult:
    """The ROADMAP's extension comparison on the Figure 16 mixed workload:
    ``tiered-express`` (heterogeneous FCFS/PASCAL pool) and token-weighted
    ``slo-least-load`` against their single-tier / unweighted forms, with
    the online predictors' accuracy reported alongside."""
    settings = settings or EvalSettings.for_scale()
    weighted = _weighted_settings(settings)
    mix = reasoning_heavy_mix()
    slo = settings.cluster_config().slo
    rows = []
    notes = [
        "slo-least-load[w]: load = pending decode tokens (monitor signal) "
        "instead of live request count",
        "tiered-express: "
        f"{settings.extensions.pool.express_count(settings.n_instances)} "
        "FCFS express instances, threshold "
        f"{settings.extensions.pool.express_threshold_tokens} predicted "
        "reasoning tokens",
        "pred_err: |predicted - actual| reasoning length in tokens, "
        "learned online (no oracle lengths)",
        "rank_tau: Kendall tau-b of predicted score vs observed reasoning "
        "length, prequential (higher orders better)",
    ]
    for label, policy, use_weighted in _FIG16X_ROWS:
        metrics = run_evaluation(
            mix, "high", policy, weighted if use_weighted else settings
        )
        ttfts = metrics.ttfts()
        report = metrics.slo_report(slo)
        rows.append(
            [
                label,
                mean(ttfts),
                percentile(ttfts, 99),
                report.mean_qoe,
                100.0 * report.violation_rate,
                metrics.throughput_tokens_per_s,
                metrics.predictor_error_mean(),
                metrics.predictor_error_percentile(90),
                metrics.rank_correlation(),
            ]
        )
        per_dataset = metrics.predictor_error_rows()
        if per_dataset:
            detail = ", ".join(
                f"{dataset}: n={n} mean={err_mean:.0f} p90={err_p90:.0f}"
                for dataset, n, err_mean, err_p90 in per_dataset
            )
            notes.append(f"{label} per-dataset pred_err ({detail})")
    return FigureResult(
        figure_id="fig16x",
        title=TITLES["fig16x"],
        headers=[
            "policy",
            "mean_ttft_s",
            "p99_ttft_s",
            "mean_qoe",
            "slo_violation_%",
            "throughput",
            "pred_err_mean",
            "pred_err_p90",
            "rank_tau",
        ],
        rows=rows,
        notes=notes,
    )


def _stress_settings(settings: EvalSettings) -> EvalSettings:
    """The deferral-stress cell settings: bursty on-off arrivals."""
    return dataclasses.replace(
        settings,
        arrival_burst_duty=0.25,
        arrival_burst_cycle_s=40.0,
    )


def _ltr_settings(settings: EvalSettings) -> EvalSettings:
    """The same cell with the pairwise-LTR predictor selected."""
    return dataclasses.replace(
        settings,
        extensions=dataclasses.replace(
            settings.extensions, predictor="pairwise-ltr"
        ),
    )


#: (row label, policy name, uses the pairwise-LTR predictor).
_DEFERRAL_STRESS_ROWS = (
    ("pascal", "pascal", False),
    ("length-predictive", "length-predictive", False),
    ("speculative-replace", "speculative-replace", False),
    ("speculative-replace[ltr]", "speculative-replace", True),
)


def deferral_stress(settings: EvalSettings | None = None) -> FigureResult:
    """Speculative deferral/replacement under bursty heavy-tail load.

    The bimodal chat/GPQA mix of :func:`deferral_stress_mix` arrives in
    on-off bursts (duty 0.25: 4x the mean rate while "on") at the high
    tier — the regime where admitting a mis-ranked chain of thought at
    the head of a burst parks it in front of dozens of short chats.
    ``speculative-replace`` defers rank-uncertain and predicted-long
    arrivals into the cluster waiting room and demotes predicted-long
    in-flight requests on pressured targets; the ``[ltr]`` row swaps the
    flat EWMA for the pairwise learning-to-rank predictor.
    """
    settings = settings or EvalSettings.for_scale()
    stress = _stress_settings(settings)
    mix = deferral_stress_mix()
    slo = stress.cluster_config().slo
    rows = []
    notes = [
        f"arrivals: on-off bursts, duty {stress.arrival_burst_duty:g}, "
        f"cycle {stress.arrival_burst_cycle_s:g}s (mean rate preserved)",
        "deferrals: arrivals parked in the cluster waiting room by the "
        "speculative admission gate (re-placed on re-arrival)",
        "rank_tau: Kendall tau-b of predicted score vs observed reasoning "
        "length, prequential (higher orders better)",
    ]
    for label, policy, use_ltr in _DEFERRAL_STRESS_ROWS:
        cell_settings = _ltr_settings(stress) if use_ltr else stress
        metrics = run_evaluation(mix, "high", policy, cell_settings)
        ttfts = metrics.ttfts()
        report = metrics.slo_report(slo)
        rows.append(
            [
                label,
                mean(ttfts),
                percentile(ttfts, 99),
                report.mean_qoe,
                100.0 * report.violation_rate,
                metrics.throughput_tokens_per_s,
                metrics.n_deferrals,
                metrics.rank_correlation(),
            ]
        )
        per_dataset = metrics.rank_correlation_rows()
        if per_dataset:
            detail = ", ".join(
                f"{dataset}: n={n} tau={tau:.2f}"
                for dataset, n, tau in per_dataset
            )
            notes.append(f"{label} per-dataset rank_tau ({detail})")
    return FigureResult(
        figure_id="deferral-stress",
        title=TITLES["deferral-stress"],
        headers=[
            "policy",
            "mean_ttft_s",
            "p99_ttft_s",
            "mean_qoe",
            "slo_violation_%",
            "throughput",
            "deferrals",
            "rank_tau",
        ],
        rows=rows,
        notes=notes,
    )


# ---------------------------------------------------------------------------
# Section V-A — simulator validation (profile table vs analytical source)
# ---------------------------------------------------------------------------
def sec5a_validation(n_requests: int = 80, seed: int = 3) -> FigureResult:
    analytical = AnalyticalPerfModel(
        ClusterConfig().instance.model, ClusterConfig().instance.gpu
    )
    profile = ProfileTable.from_model(analytical)
    runs = {}
    for label, perf in (("analytical", analytical), ("profile", profile)):
        trace = build_trace(
            TraceConfig(
                dataset=ALPACA_EVAL,
                n_requests=n_requests,
                arrival_rate_per_s=0.5,
                seed=seed,
            )
        )
        instance = InstanceConfig(kv_capacity_tokens=16000)
        config = ClusterConfig(n_instances=1, instance=instance)
        cluster = Cluster(config, policy="fcfs", perf=perf)
        cluster.run_trace(trace)
        runs[label] = cluster.completed
    report = validate_runs(runs["analytical"], runs["profile"])
    rows = [
        [metric, paper, measured]
        for metric, paper, measured in report.rows()
    ]
    return FigureResult(
        figure_id="sec5a",
        title=TITLES["sec5a"],
        headers=["metric", "paper_mape_%", "measured_mape_%"],
        rows=rows,
        notes=[
            "paper validates simulated vs measured H100 latency; we validate "
            "the profile-interpolation path against its closed-form source, "
            f"over {report.n_requests} paired requests",
        ],
    )


# ---------------------------------------------------------------------------
# Design-choice ablations (claims the paper states without a figure)
# ---------------------------------------------------------------------------
def _alg2_stressed_settings(settings: EvalSettings) -> EvalSettings:
    """The ablation's hotter-than-high "stress" tier on top of the base."""
    return dataclasses.replace(
        settings,
        load_factors=settings.load_factors + (("stress", 1.35),),
    )


def ablation_alg2_fallback(settings: EvalSettings | None = None) -> FigureResult:
    """Algorithm 2's ``r_i + a_i`` fallback vs plain ``r_i`` (Section IV-B).

    The fallback only engages when every instance is violating its
    answering SLO, so this ablation runs a hotter-than-high "stress" tier
    on top of the standard tiers.
    """
    base = settings or EvalSettings.for_scale()
    stressed = _alg2_stressed_settings(base)
    slo = stressed.cluster_config().slo
    rows = []
    for policy in ("pascal", "pascal-ri-only"):
        for tier in ("high", "stress"):
            metrics = run_evaluation(ALPACA_EVAL, tier, policy, stressed)
            ttfts = metrics.ttfts()
            rows.append(
                [
                    policy,
                    tier,
                    100.0 * metrics.slo_report(slo).violation_rate,
                    mean(ttfts),
                    percentile(ttfts, 99),
                    metrics.throughput_tokens_per_s,
                ]
            )
    return FigureResult(
        figure_id="ablation-alg2",
        title=TITLES["ablation-alg2"],
        headers=[
            "policy",
            "rate",
            "slo_violation_%",
            "mean_ttft_s",
            "p99_ttft_s",
            "throughput",
        ],
        rows=rows,
        notes=[
            "paper (Sec IV-B): considering both r_i and a_i achieves better "
            "load balancing and SLO attainment than r_i alone when no "
            "instance meets the SLO condition",
        ],
    )


def ablation_phase_partitioning(
    settings: EvalSettings | None = None,
) -> FigureResult:
    """DistServe-style explicit phase partitioning (Section VII).

    Half the instances serve only reasoning, half only answering, with a
    mandatory KV transfer at every phase boundary.  The paper argues the
    two phases share identical per-step compute, so partitioning forfeits
    statistical multiplexing for no benefit.
    """
    settings = settings or EvalSettings.for_scale()
    slo = settings.cluster_config().slo
    rows = []
    for policy in ("pascal", "phase-partitioned", "fcfs"):
        metrics = run_evaluation(ALPACA_EVAL, "high", policy, settings)
        ttfts = metrics.ttfts()
        rows.append(
            [
                policy,
                mean(ttfts),
                percentile(ttfts, 99),
                100.0 * metrics.slo_report(slo).violation_rate,
                metrics.throughput_tokens_per_s,
                len(metrics.transfer_latencies_s),
            ]
        )
    return FigureResult(
        figure_id="ablation-partition",
        title=TITLES["ablation-partition"],
        headers=[
            "policy",
            "mean_ttft_s",
            "p99_ttft_s",
            "slo_violation_%",
            "throughput",
            "migrations",
        ],
        rows=rows,
        notes=[
            "paper (Sec VII): both phases are decode steps with similar "
            "per-step latency, so a DistServe-style split yields no "
            "efficiency gain while halving each phase's memory pool",
        ],
    )


# ---------------------------------------------------------------------------
# the registry: every figure as a declarative spec
# ---------------------------------------------------------------------------
_TIERS = ("low", "medium", "high")
_CHAT = (ALPACA_EVAL, ARENA_HARD)


ALL_EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.figure_id: spec
    for spec in (
        ExperimentSpec(
            figure_id="fig2",
            title=TITLES["fig2"],
            build=fig2_timeline,
        ),
        ExperimentSpec(
            figure_id="fig4",
            title=TITLES["fig4"],
            build=fig4_reasoning_phase,
            cells=lambda s: _char_cells("reasoning", s),
            settings_factory=CharacterizationSettings.for_scale,
        ),
        ExperimentSpec(
            figure_id="fig5",
            title=TITLES["fig5"],
            build=fig5_answering_phase,
            cells=lambda s: _char_cells("answering", s),
            settings_factory=CharacterizationSettings.for_scale,
        ),
        ExperimentSpec(
            figure_id="fig8",
            title=TITLES["fig8"],
            build=lambda settings=None: fig8_chat_distributions(),
        ),
        ExperimentSpec(
            figure_id="fig9",
            title=TITLES["fig9"],
            build=fig9_ttft,
            cells=lambda s: _eval_cells(_CHAT, _TIERS, EVAL_POLICIES, s),
            settings_factory=EvalSettings.for_scale,
        ),
        ExperimentSpec(
            figure_id="fig10",
            title=TITLES["fig10"],
            build=fig10_tail_ttft,
            cells=lambda s: _eval_cells(_CHAT, ("high",), EVAL_POLICIES, s),
            settings_factory=EvalSettings.for_scale,
        ),
        ExperimentSpec(
            figure_id="fig11",
            title=TITLES["fig11"],
            build=fig11_slo_violations,
            cells=lambda s: _eval_cells(_CHAT, _TIERS, EVAL_POLICIES, s),
            settings_factory=EvalSettings.for_scale,
        ),
        ExperimentSpec(
            figure_id="fig12",
            title=TITLES["fig12"],
            build=fig12_throughput,
            cells=lambda s: _eval_cells(_CHAT, _TIERS, EVAL_POLICIES, s),
            settings_factory=EvalSettings.for_scale,
        ),
        ExperimentSpec(
            figure_id="fig13",
            title=TITLES["fig13"],
            build=fig13_no_migration,
            cells=lambda s: _eval_cells(
                (ALPACA_EVAL,),
                ("high",),
                ("pascal", "pascal-nomigration"),
                s,
            ),
            settings_factory=EvalSettings.for_scale,
        ),
        ExperimentSpec(
            figure_id="fig14",
            title=TITLES["fig14"],
            build=lambda settings=None: fig14_reasoning_heavy_distributions(),
        ),
        ExperimentSpec(
            figure_id="fig15",
            title=TITLES["fig15"],
            build=fig15_non_adaptive,
            cells=lambda s: _eval_cells(
                (ALPACA_EVAL,),
                _TIERS,
                ("pascal", "pascal-nonadaptive"),
                s,
            ),
            settings_factory=EvalSettings.for_scale,
        ),
        ExperimentSpec(
            figure_id="fig16",
            title=TITLES["fig16"],
            build=fig16_mixed_workload,
            cells=lambda s: _eval_cells(
                (reasoning_heavy_mix(),), ("high",), EVAL_POLICIES, s
            ),
            settings_factory=EvalSettings.for_scale,
        ),
        ExperimentSpec(
            figure_id="fig16x",
            title=TITLES["fig16x"],
            build=fig16x_extension_mixed,
            cells=lambda s: tuple(
                EvalCell(
                    reasoning_heavy_mix(),
                    "high",
                    policy,
                    _weighted_settings(s) if use_weighted else s,
                )
                for _, policy, use_weighted in _FIG16X_ROWS
            ),
            settings_factory=EvalSettings.for_scale,
        ),
        ExperimentSpec(
            figure_id="deferral-stress",
            title=TITLES["deferral-stress"],
            build=deferral_stress,
            cells=lambda s: tuple(
                EvalCell(
                    deferral_stress_mix(),
                    "high",
                    policy,
                    _ltr_settings(_stress_settings(s))
                    if use_ltr
                    else _stress_settings(s),
                )
                for _, policy, use_ltr in _DEFERRAL_STRESS_ROWS
            ),
            settings_factory=EvalSettings.for_scale,
        ),
        ExperimentSpec(
            figure_id="sec5a",
            title=TITLES["sec5a"],
            build=lambda settings=None: sec5a_validation(),
        ),
        ExperimentSpec(
            figure_id="sec5c",
            title=TITLES["sec5c"],
            build=sec5c_transfer_overhead,
            cells=lambda s: _eval_cells(_CHAT, ("high",), ("pascal",), s),
            settings_factory=EvalSettings.for_scale,
        ),
        ExperimentSpec(
            figure_id="ablation-alg2",
            title=TITLES["ablation-alg2"],
            build=ablation_alg2_fallback,
            cells=lambda s: _eval_cells(
                (ALPACA_EVAL,),
                ("high", "stress"),
                ("pascal", "pascal-ri-only"),
                _alg2_stressed_settings(s),
            ),
            settings_factory=EvalSettings.for_scale,
        ),
        ExperimentSpec(
            figure_id="ablation-partition",
            title=TITLES["ablation-partition"],
            build=ablation_phase_partitioning,
            cells=lambda s: _eval_cells(
                (ALPACA_EVAL,),
                ("high",),
                ("pascal", "phase-partitioned", "fcfs"),
                s,
            ),
            settings_factory=EvalSettings.for_scale,
        ),
    )
}
