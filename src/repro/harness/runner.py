"""Experiment runners: build a cluster + workload, execute, collect.

Two experiment families mirror the paper:

* **characterization** (Section III, Figures 4-5) — a single instance whose
  KV capacity is capped at 50 % of the oracle's *peak observed usage*;
* **evaluation** (Section V, Figures 9-16) — an eight-instance cluster with
  dataset traces at calibrated low/medium/high arrival rates;
* **replay** — a recorded JSONL trace (see :mod:`repro.workload.trace`)
  replayed through any registered policy, optionally rate-rescaled.

Every run rebuilds its trace from the same seed, so all policies see
byte-identical workloads, and run results are memoized per configuration so
the figure benchmarks can share the expensive simulations.

The evaluation and replay runners are thin clients of the online
:class:`repro.api.ServingSession` façade: workloads stream in through
pull-based :class:`~repro.api.sources.ArrivalSource` iterators instead of
a materialized list.  The streaming path is draw-for-draw and
event-for-event equivalent to the old batch preload (the golden tables
and ``tests/test_api_session.py`` pin it), so this is purely an
architectural inversion, not a behavior change.

:func:`sweep` fans a set of :class:`EvalCell` / :class:`CharCell` /
:class:`ReplayCell` work items out over ``multiprocessing`` workers and
seeds the memoization caches with the results, so a figure build that
follows a parallel sweep
reads exactly the data a serial run would have produced (every cell is a
deterministic function of its settings).

Memoization is layered: **in-process dict -> on-disk store -> compute**.
The disk layer (:mod:`repro.harness.cache`, enabled via the CLI's
``--cache {ro,rw}`` or :func:`repro.harness.cache.configure`) addresses
each cell by the hash of its canonical spec plus a simulator-code
fingerprint, so runs are shared across processes and CI jobs but never
served stale.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
from dataclasses import dataclass, field

from repro.api import ServingSession, SyntheticSource, TraceFileSource
from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, ExtensionPolicyConfig, InstanceConfig
from repro.harness import cache as result_cache
from repro.harness import calibrate
from repro.metrics.collector import RunMetrics, collect
from repro.perfmodel.analytical import AnalyticalPerfModel
from repro.schedulers.oracle import oracle_capacity_tokens
from repro.sim.rng import RandomStreams
from repro.workload import arrival, synthetic
from repro.workload.datasets import (
    ALPACA_EVAL,
    ARENA_HARD,
    DatasetSpec,
    MixedDataset,
    sample_trace,
)
from repro.workload.trace import (
    ReplayTraceConfig,
    TraceConfig,
    TraceFormatError,
)


def default_scale() -> str:
    """Experiment scale: 'quick' for CI, 'paper' for full-size runs."""
    return os.environ.get("REPRO_SCALE", "quick")


@dataclass(frozen=True)
class EvalSettings:
    """Knobs of the Section V evaluation runs."""

    n_requests: int = 1200
    seed: int = 42
    n_instances: int = 8
    #: Per-instance KV capacity (tokens).  Mirrors the paper's setup: large
    #: relative to any single request (so one chain-of-thought cannot hog an
    #: instance) yet small enough that the high arrival tier saturates it.
    kv_capacity_tokens: int = 60000
    #: The trace must outnumber the cluster's resident-request capacity for
    #: memory pressure to build; traces are sized to this multiple of it.
    trace_residency_multiple: float = 4.5
    load_factors: tuple[tuple[str, float], ...] = (
        ("low", 0.5),
        ("medium", 0.8),
        ("high", 1.1),
    )
    #: Extension-policy knobs (weighted load, heterogeneous pool layout)
    #: threaded into the cluster config.  Part of the cell spec: changing
    #: any knob re-addresses every cell run under these settings.
    extensions: ExtensionPolicyConfig = field(
        default_factory=ExtensionPolicyConfig
    )
    #: On-off burst duty cycle of the arrival process (1.0 = plain
    #: Poisson, draw-for-draw; see
    #: :func:`repro.workload.arrival.iter_onoff_arrivals`).  Part of the
    #: cell spec — burstiness reshapes the offered load.
    arrival_burst_duty: float = 1.0
    #: On-off burst cycle length in seconds (ignored at duty 1.0).
    arrival_burst_cycle_s: float = 60.0
    #: Cluster partitions simulated via :mod:`repro.shard` (1 = the
    #: single-engine path).  Part of the cell spec: sharding partitions
    #: the deployment itself, so results are re-addressed.  Worker-process
    #: count is *not* here — it is an execution knob (like ``--jobs``)
    #: that provably cannot change a byte.
    shards: int = 1
    #: Barrier spacing for sharded runs (simulated seconds; ignored at
    #: ``shards=1``).  Results are pacing-invariant absent a cross-shard
    #: admission gate, but the knob stays in the spec so any future
    #: gate-carrying settings re-address conservatively.
    shard_epoch_s: float = 30.0

    @classmethod
    def for_scale(cls, scale: str | None = None) -> "EvalSettings":
        scale = scale or default_scale()
        # Like $REPRO_SCALE, the CLI's --shards travels by environment so
        # it reaches every settings construction (including ones inside
        # sweep workers) and lands in the cell spec like any field.
        shards = int(os.environ.get("REPRO_SHARDS", "1"))
        if scale == "paper":
            return cls(trace_residency_multiple=6.0, shards=shards)
        return cls(shards=shards)

    def cluster_config(self) -> ClusterConfig:
        instance = InstanceConfig(kv_capacity_tokens=self.kv_capacity_tokens)
        return ClusterConfig(
            n_instances=self.n_instances,
            instance=instance,
            extensions=self.extensions,
        )

    def resident_request_capacity(
        self, dataset: DatasetSpec | MixedDataset
    ) -> float:
        """How many average requests the cluster's GPU pools hold at once."""
        mean_kv = calibrate.mixture_mean_request_tokens(
            dataset
        ) - calibrate.mixture_mean_decode_tokens(dataset) / 2.0
        return self.n_instances * self.kv_capacity_tokens / mean_kv

    def n_requests_for(self, dataset: DatasetSpec | MixedDataset) -> int:
        """Trace length: enough requests to overrun residency at high rate."""
        return max(
            self.n_requests,
            int(
                self.trace_residency_multiple
                * self.resident_request_capacity(dataset)
            ),
        )

    def rates_for(self, dataset: DatasetSpec | MixedDataset) -> dict[str, float]:
        """Arrival rates per tier, anchored at *measured* cluster capacity.

        The analytical estimate in :mod:`repro.harness.calibrate` is a good
        first guess but misses workload-specific effects (prefill share,
        achievable batch depth, swap churn), so the tiers here are scaled
        against the saturated throughput of an actual probe simulation —
        which is how one would calibrate against a real deployment too.
        """
        capacity_req_per_s = measured_capacity_req_per_s(dataset, self)
        return {
            tier: capacity_req_per_s * factor
            for tier, factor in self.load_factors
        }


@dataclass(frozen=True)
class CharacterizationSettings:
    """Knobs of the Section III single-instance characterization."""

    n_requests: int = 300
    seed: int = 7
    #: Near the constrained configuration's service capacity: one H100
    #: serving the 32B model sustains ~250 decode tokens/s at the capped
    #: memory operating point, and the mean request is ~1.2k tokens.
    #: The reasoning experiment runs slightly hotter so blocking dominates
    #: short requests (Figure 4); the answering experiment runs at capacity
    #: so RR's pacer buffer covers its preemption gaps (Figure 5).
    reasoning_rate_per_s: float = 0.30
    answering_rate_per_s: float = 0.22
    #: Memory cap as a fraction of the oracle's peak usage (paper: 50 %).
    capacity_fraction: float = 0.5

    def rate_for(self, phase: str) -> float:
        if phase == "reasoning":
            return self.reasoning_rate_per_s
        if phase == "answering":
            return self.answering_rate_per_s
        raise ValueError(f"unknown characterization phase {phase!r}")

    @classmethod
    def for_scale(cls, scale: str | None = None) -> "CharacterizationSettings":
        scale = scale or default_scale()
        if scale == "paper":
            return cls(n_requests=300)
        return cls(n_requests=150)


@dataclass
class CharacterizationRun:
    """One characterization result plus the capacity bookkeeping."""

    metrics: RunMetrics
    oracle_peak_tokens: int
    capacity_tokens: int


def _characterization_workload(phase: str, settings: CharacterizationSettings):
    streams = RandomStreams(settings.seed)
    arrivals = arrival.poisson_arrivals(
        settings.rate_for(phase),
        settings.n_requests,
        streams.stream(f"char-arrivals:{phase}"),
    )
    rng = streams.stream(f"char-lengths:{phase}")
    if phase == "reasoning":
        return synthetic.reasoning_phase_workload(
            settings.n_requests, arrivals, rng
        )
    if phase == "answering":
        return synthetic.answering_phase_workload(
            settings.n_requests, arrivals, rng
        )
    raise ValueError(f"unknown characterization phase {phase!r}")


_char_cache: dict[tuple, CharacterizationRun] = {}
_oracle_peak_cache: dict[tuple, int] = {}

#: Cluster/probe simulations actually executed by this process (disk and
#: in-process cache hits do not count).  The CLI reports it so a cache-reuse
#: smoke test can assert "second run: zero simulations".
_sim_runs = 0


def _count_simulation() -> None:
    global _sim_runs
    _sim_runs += 1


def simulation_count() -> int:
    """Simulations executed by this process (excludes worker processes)."""
    return _sim_runs


def reset_simulation_count() -> None:
    global _sim_runs
    _sim_runs = 0


def run_characterization(
    phase: str,
    policy: str,
    settings: CharacterizationSettings | None = None,
) -> CharacterizationRun:
    """Single-instance run for Figure 4 (reasoning) / Figure 5 (answering).

    The oracle policy runs with capacity covering the whole workload; FCFS
    and RR run with GPU KV capped at ``capacity_fraction`` of the peak KV
    footprint the oracle actually used (the paper's "50 % of the oracle
    capacity" configuration).
    """
    settings = settings or CharacterizationSettings.for_scale()
    key = (phase, policy, settings)
    if key in _char_cache:
        return _char_cache[key]

    oracle_key = (phase, settings)
    disk_hit = _disk_lookup(CharCell(phase, policy, settings))
    if disk_hit is not None:
        _char_cache[key] = disk_hit
        _oracle_peak_cache.setdefault(oracle_key, disk_hit.oracle_peak_tokens)
        return disk_hit

    requests = _characterization_workload(phase, settings)
    full_capacity = oracle_capacity_tokens(requests)

    if policy != "oracle" and oracle_key not in _oracle_peak_cache:
        # The capped capacity derives from the oracle's peak; a cached
        # oracle run supplies it without simulating anything.
        oracle_hit = _disk_lookup(CharCell(phase, "oracle", settings))
        if oracle_hit is not None:
            _char_cache[(phase, "oracle", settings)] = oracle_hit
            _oracle_peak_cache[oracle_key] = oracle_hit.oracle_peak_tokens

    # The oracle itself must always run uncapped: its peak KV usage
    # *defines* the constrained capacity the other policies get.  A warm
    # peak cache alone (e.g. seeded by _store_cell after a parallel sweep
    # of non-oracle cells) is not enough to answer an oracle query — the
    # fall-through below would cap the oracle at 50 % of its own peak.
    if policy == "oracle" or oracle_key not in _oracle_peak_cache:
        oracle_requests = _characterization_workload(phase, settings)
        instance = InstanceConfig(kv_capacity_tokens=full_capacity)
        config = ClusterConfig(n_instances=1, instance=instance)
        cluster = Cluster(config, policy="oracle")
        _count_simulation()
        cluster.run_trace(oracle_requests)
        peak = cluster.instances[0].pool.peak_gpu_tokens()
        _oracle_peak_cache[oracle_key] = peak
        oracle_run = CharacterizationRun(
            metrics=collect(cluster),
            oracle_peak_tokens=peak,
            capacity_tokens=full_capacity,
        )
        _char_cache[(phase, "oracle", settings)] = oracle_run
        _disk_store(CharCell(phase, "oracle", settings), oracle_run)
        if policy == "oracle":
            return _char_cache[key]

    peak = _oracle_peak_cache[oracle_key]
    capped = max(1024, int(peak * settings.capacity_fraction))
    instance = InstanceConfig(kv_capacity_tokens=capped)
    config = ClusterConfig(n_instances=1, instance=instance)
    cluster = Cluster(config, policy=policy)
    _count_simulation()
    cluster.run_trace(requests)
    run = CharacterizationRun(
        metrics=collect(cluster),
        oracle_peak_tokens=peak,
        capacity_tokens=capped,
    )
    _char_cache[key] = run
    _disk_store(CharCell(phase, policy, settings), run)
    return run


_capacity_cache: dict[tuple, float] = {}


def measured_capacity_req_per_s(
    dataset: DatasetSpec | MixedDataset,
    settings: "EvalSettings",
    probe_requests: int = 320,
) -> float:
    """Saturated service rate (requests/s) of the cluster for a dataset.

    A closed-loop probe: every probe request arrives at t=0 under FCFS, so
    the cluster runs flat out until the backlog drains.  The sustainable
    token throughput is the slope of the cluster's cumulative-token curve
    over the middle of the run (the makespan itself is dominated by the
    longest request's sequential decode and would badly underestimate it);
    dividing by the mean decode length converts it to a request rate.
    """
    key = (dataset.name, settings.n_instances, settings.kv_capacity_tokens)
    if key in _capacity_cache:
        return _capacity_cache[key]
    store = result_cache.active()
    probe_spec = None
    if store is not None:
        from repro.harness.spec import capacity_spec

        probe_spec = capacity_spec(dataset, settings, probe_requests)
        cached = store.load(result_cache.spec_key(probe_spec), "capacity")
        if isinstance(cached, float):
            _capacity_cache[key] = cached
            return cached
    # Size the probe so the backlog over-fills GPU memory: sustained
    # throughput must be measured at full batch depth, not at whatever
    # depth an arbitrary fixed request count happens to reach.
    mean_kv = calibrate.mixture_mean_request_tokens(
        dataset
    ) - calibrate.mixture_mean_decode_tokens(dataset) / 2.0
    resident = settings.n_instances * settings.kv_capacity_tokens / mean_kv
    probe_requests = max(probe_requests, int(1.5 * resident))

    # Stage 1: all-at-once burst gives a floor (burst admission churn
    # biases it low).  Stage 2: Poisson at 1.4x the floor approaches the
    # true saturated rate from below without the pathological burst.
    estimate = _probe_rate(dataset, settings, probe_requests, None)
    for _ in range(2):
        estimate = max(
            estimate,
            _probe_rate(dataset, settings, probe_requests, 1.4 * estimate),
        )
    _capacity_cache[key] = estimate
    if store is not None and probe_spec is not None:
        store.store(
            result_cache.spec_key(probe_spec), "capacity", probe_spec, estimate
        )
    return estimate


def _probe_rate(
    dataset: DatasetSpec | MixedDataset,
    settings: "EvalSettings",
    probe_requests: int,
    arrival_rate: float | None,
) -> float:
    """Max sustained completion rate (req/s) observed in one probe run."""
    streams = RandomStreams(1234)
    if arrival_rate is None:
        arrivals = [0.0] * probe_requests
    else:
        arrivals = arrival.poisson_arrivals(
            arrival_rate, probe_requests, streams.stream("probe-arrivals")
        )
    probe = sample_trace(dataset, probe_requests, arrivals, streams)
    mean_decode = sum(r.total_decode_tokens for r in probe) / len(probe)
    # The slope is sampled every N *engine events* mid-run, so the probe
    # must step token-by-token: decode-epoch coalescing collapses the
    # event stream and would shift every sample point (and undercount
    # tokens still inside an in-flight epoch), changing the measured
    # capacity that anchors every figure's arrival-rate tiers.
    config = settings.cluster_config()
    config = config.with_instance(
        dataclasses.replace(config.instance, epoch_coalescing=False)
    )
    cluster = Cluster(config, policy="fcfs")
    _count_simulation()
    cluster.submit(probe)
    samples: list[tuple[float, int]] = []
    while cluster.engine.step():
        if cluster.engine.events_processed % 200 == 0:
            total = sum(inst.tokens_generated for inst in cluster.instances)
            samples.append((cluster.engine.now, total))
    if len(samples) < 8:
        raise RuntimeError("capacity probe too short to measure a slope")
    total_tokens = samples[-1][1]
    if total_tokens <= 0:
        raise RuntimeError("capacity probe saw no progress")
    # Average slope between the 25% and 90% token marks.  A window average
    # can never exceed the true sustainable rate (unlike a max over short
    # windows, which catches transient young-batch bursts), and by the 25%
    # mark the age mix has reached its steady state.
    lo = next(s for s in samples if s[1] >= 0.25 * total_tokens)
    hi = next(s for s in samples if s[1] >= 0.90 * total_tokens)
    if hi[0] <= lo[0]:
        raise RuntimeError("capacity probe produced a degenerate window")
    tokens_per_s = (hi[1] - lo[1]) / (hi[0] - lo[0])
    return tokens_per_s / mean_decode


_eval_cache: dict[tuple, RunMetrics] = {}


def run_evaluation(
    dataset: DatasetSpec | MixedDataset,
    rate_tier: str,
    policy: str,
    settings: EvalSettings | None = None,
) -> RunMetrics:
    """One Section V cluster run; memoized per configuration."""
    settings = settings or EvalSettings.for_scale()
    key = (dataset.name, rate_tier, policy, settings)
    if key in _eval_cache:
        return _eval_cache[key]
    cell = EvalCell(dataset, rate_tier, policy, settings)
    disk_hit = _disk_lookup(cell)
    if disk_hit is not None:
        _eval_cache[key] = disk_hit
        return disk_hit
    rates = settings.rates_for(dataset)
    if rate_tier not in rates:
        raise KeyError(
            f"unknown rate tier {rate_tier!r}; expected {sorted(rates)}"
        )
    trace_config = TraceConfig(
        dataset=dataset,
        n_requests=settings.n_requests_for(dataset),
        arrival_rate_per_s=rates[rate_tier],
        seed=settings.seed,
        burst_duty=settings.arrival_burst_duty,
        burst_cycle_s=settings.arrival_burst_cycle_s,
    )
    if settings.shards > 1:
        # K-way partitioned deployment: repro.shard splits instances and
        # arrivals across per-shard engines (epoch-synced; see
        # docs/sharding.md).  Capacity probes above stay anchored to the
        # unsharded cluster, so rate tiers mean the same thing at any K.
        from repro.shard import run_sharded

        _count_simulation()
        metrics = run_sharded(
            trace_config,
            policy=policy,
            config=settings.cluster_config(),
            shards=settings.shards,
            epoch_s=settings.shard_epoch_s,
        )
    else:
        # Thin client of the serving-session façade: the synthetic
        # workload streams into the engine incrementally (no up-front
        # request list), and the result is byte-identical to the old
        # batch preload — the golden tables pin that equivalence.
        session = ServingSession(
            policy=policy, config=settings.cluster_config()
        )
        session.attach(SyntheticSource(trace_config))
        _count_simulation()
        session.step()
        if not session.cluster.all_finished():
            raise RuntimeError(
                f"run did not drain: {session.n_completed}/"
                f"{session.n_submitted} finished "
                f"({dataset.name}, {rate_tier}, {policy})"
            )
        metrics = session.metrics()
    _eval_cache[key] = metrics
    _disk_store(cell, metrics)
    return metrics


@dataclass(frozen=True)
class ReplaySettings:
    """Cluster shape for trace-replay runs (no synthesis knobs needed)."""

    n_instances: int = 8
    kv_capacity_tokens: int = 60000
    #: Extension-policy knobs (the CLI's ``--pool`` lands here).
    extensions: ExtensionPolicyConfig = field(
        default_factory=ExtensionPolicyConfig
    )
    #: Cluster partitions for the replay (see :class:`EvalSettings`).
    shards: int = 1
    shard_epoch_s: float = 30.0

    def cluster_config(self) -> ClusterConfig:
        instance = InstanceConfig(kv_capacity_tokens=self.kv_capacity_tokens)
        return ClusterConfig(
            n_instances=self.n_instances,
            instance=instance,
            extensions=self.extensions,
        )


_replay_cache: dict[tuple, RunMetrics] = {}


def _replay_key(
    trace: ReplayTraceConfig, policy: str, settings: ReplaySettings
) -> tuple:
    # Unlike the synthesis caches, the path alone does not determine the
    # workload — the file can be rewritten in place.  Key on the file's
    # *content* (same memoized hasher the disk store uses): a stat-based
    # identity (mtime + size) misses in-place rewrites that preserve the
    # byte count within the filesystem's mtime granularity, and archive
    # restores that preserve timestamps outright.
    path = os.path.abspath(trace.path)
    try:
        identity = result_cache.file_sha256(path)
    except OSError:
        identity = None  # missing file: load_trace will raise on the run
    return (path, identity, trace.rate_scale, policy, settings)


def run_replay(
    trace: ReplayTraceConfig,
    policy: str,
    settings: ReplaySettings | None = None,
) -> RunMetrics:
    """Replay one recorded trace through one policy; memoized like the rest.

    The trace is re-loaded from disk for every run: simulation mutates
    request state, so each policy must see freshly constructed requests —
    this is what makes replayed comparisons byte-identical across policies.
    """
    settings = settings or ReplaySettings()
    key = _replay_key(trace, policy, settings)
    if key in _replay_cache:
        return _replay_cache[key]
    cell = ReplayCell(trace, policy, settings)
    # Snapshot the disk address now: it hashes the trace file's content,
    # and the file may be rewritten while the simulation runs.
    disk_ref = _disk_ref(cell)
    disk_hit = _disk_lookup(cell, disk_ref)
    if disk_hit is not None:
        _replay_cache[key] = disk_hit
        return disk_hit
    if settings.shards > 1:
        # Partitioned replay: each shard worker streams its own hash-
        # partition of the trace file (see docs/sharding.md).
        from repro.shard import run_sharded

        _count_simulation()
        metrics = run_sharded(
            trace,
            policy=policy,
            config=settings.cluster_config(),
            shards=settings.shards,
            epoch_s=settings.shard_epoch_s,
        )
        if not metrics.requests and not metrics.rejected:
            raise TraceFormatError(
                trace.path, 1, "trace contains no requests"
            )
    else:
        # Thin client of the serving-session façade: records stream from
        # disk one validated line at a time instead of loading up front
        # (TraceFormatError surfaces on the offending line, mid-run).
        session = ServingSession(
            policy=policy, config=settings.cluster_config()
        )
        session.attach(TraceFileSource(trace))
        _count_simulation()
        session.step()
        if session.n_submitted == 0:
            raise TraceFormatError(
                trace.path, 1, "trace contains no requests"
            )
        if not session.cluster.all_finished():
            raise RuntimeError(
                f"replay did not drain: {session.n_completed}/"
                f"{session.n_submitted} finished ({trace.name}, {policy})"
            )
        metrics = session.metrics()
    _replay_cache[key] = metrics
    _disk_store(cell, metrics, disk_ref)
    return metrics


def clear_caches() -> None:
    """Reset memoized runs (used by tests)."""
    _char_cache.clear()
    _oracle_peak_cache.clear()
    _eval_cache.clear()
    _replay_cache.clear()


def snapshot_caches() -> dict[str, dict]:
    """Copy the in-process memoization (tests save/restore around clears,
    so cache-isolation fixtures don't force later tests to resimulate)."""
    return {
        "char": dict(_char_cache),
        "oracle_peak": dict(_oracle_peak_cache),
        "eval": dict(_eval_cache),
        "replay": dict(_replay_cache),
        "capacity": dict(_capacity_cache),
    }


def restore_caches(snapshot: dict[str, dict]) -> None:
    """Reinstall a :func:`snapshot_caches` copy (after a clear)."""
    clear_caches()
    _capacity_cache.clear()
    _char_cache.update(snapshot["char"])
    _oracle_peak_cache.update(snapshot["oracle_peak"])
    _eval_cache.update(snapshot["eval"])
    _replay_cache.update(snapshot["replay"])
    _capacity_cache.update(snapshot["capacity"])


# ---------------------------------------------------------------------------
# parallel sweep
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class EvalCell:
    """One Section V evaluation run: dataset x rate tier x policy."""

    dataset: DatasetSpec | MixedDataset
    tier: str
    policy: str
    settings: EvalSettings


@dataclass(frozen=True)
class CharCell:
    """One Section III characterization run: phase x policy."""

    phase: str
    policy: str
    settings: CharacterizationSettings


@dataclass(frozen=True)
class ReplayCell:
    """One trace-replay run: recorded trace (x rate scale) x policy."""

    trace: ReplayTraceConfig
    policy: str
    settings: ReplaySettings


Cell = EvalCell | CharCell | ReplayCell


# ---------------------------------------------------------------------------
# disk layer (see repro.harness.cache): in-process -> disk -> compute
# ---------------------------------------------------------------------------
def _disk_ref(cell: Cell) -> tuple[str, str, dict] | None:
    """``(key, kind, spec)`` address snapshot for one cell, or None.

    Like the in-process replay key, a replay cell's *disk* address must be
    snapshotted before the simulation runs: it embeds the trace file's
    content hash, and recomputing it after the run would file results from
    the old content under a concurrently rewritten file's address —
    poisoning the store for every future reader of the new content.
    """
    store = result_cache.active()
    if store is None:
        return None
    from repro.harness import spec as _spec

    try:
        spec_dict = _spec.cell_spec(cell)
    except OSError:
        return None  # e.g. replay trace file missing; the run will report it
    return (result_cache.spec_key(spec_dict), _spec.cell_kind(cell), spec_dict)


def _disk_lookup(cell: Cell, ref: tuple | None = None):
    """Decode a disk-cached result for ``cell``, or None on any miss.

    A malformed payload (tampered entry, partial schema) decodes as a miss
    so the cell is recomputed — the store never crashes a run.
    """
    store = result_cache.active()
    if store is None:
        return None
    if ref is None:
        ref = _disk_ref(cell)
    if ref is None:
        return None
    key, kind, _ = ref
    payload = store.load(key, kind)
    if payload is None:
        return None
    try:
        if isinstance(cell, CharCell):
            return result_cache.char_run_from_payload(payload)
        return result_cache.metrics_from_payload(payload)
    except (KeyError, TypeError, ValueError, AttributeError):
        store.stats.invalid += 1
        return None


def _disk_store(
    cell: Cell, result, ref: tuple | None = None, if_missing: bool = False
) -> None:
    """Persist one computed cell (no-op when the cache is off or ``ro``).

    ``ref`` is the cell's address snapshotted *before* the run (see
    :func:`_disk_ref`); passing None recomputes it, which is only safe for
    cells whose spec cannot change while the simulation runs.
    """
    store = result_cache.active()
    if store is None or store.mode != "rw":
        return
    if ref is None:
        ref = _disk_ref(cell)
    if ref is None:
        return
    key, kind, spec_dict = ref
    if isinstance(cell, CharCell):
        payload = result_cache.char_run_to_payload(result)
    else:
        payload = result_cache.metrics_to_payload(result)
    if if_missing:
        store.store_if_missing(key, kind, spec_dict, payload)
    else:
        store.store(key, kind, spec_dict, payload)


def run_cell(cell: Cell):
    """Execute one sweep cell (memoized like the underlying runner)."""
    if isinstance(cell, EvalCell):
        return run_evaluation(cell.dataset, cell.tier, cell.policy, cell.settings)
    if isinstance(cell, CharCell):
        return run_characterization(cell.phase, cell.policy, cell.settings)
    if isinstance(cell, ReplayCell):
        return run_replay(cell.trace, cell.policy, cell.settings)
    raise TypeError(f"not a sweep cell: {cell!r}")


def _cell_cached(cell: Cell) -> bool:
    if isinstance(cell, EvalCell):
        key = (cell.dataset.name, cell.tier, cell.policy, cell.settings)
        return key in _eval_cache
    if isinstance(cell, ReplayCell):
        return _replay_key(cell.trace, cell.policy, cell.settings) in _replay_cache
    return (cell.phase, cell.policy, cell.settings) in _char_cache


def _store_cell(cell: Cell, result, replay_key: tuple | None = None) -> None:
    """Seed the memoization caches with a worker-produced result.

    ``replay_key`` is the cell's cache key snapshotted at *dispatch* time:
    a replay key embeds the trace file's content hash, so computing it
    after the run would file results from the old content under a
    concurrently rewritten file's identity.
    """
    if isinstance(cell, EvalCell):
        key = (cell.dataset.name, cell.tier, cell.policy, cell.settings)
        _eval_cache[key] = result
    elif isinstance(cell, ReplayCell):
        if replay_key is None:
            replay_key = _replay_key(cell.trace, cell.policy, cell.settings)
        _replay_cache[replay_key] = result
    else:
        _char_cache[(cell.phase, cell.policy, cell.settings)] = result
        _oracle_peak_cache.setdefault(
            (cell.phase, cell.settings), result.oracle_peak_tokens
        )


def _sweep_initializer(
    capacity_cache: dict,
    oracle_peak_cache: dict,
    cache_mode: str = "off",
    cache_dir: str | None = None,
) -> None:
    """Hand workers the shared probe results (spawn-safe; no-op cost for
    fork, where the caches are inherited anyway) and the parent's disk
    cache configuration, so workers persist their own results atomically."""
    _capacity_cache.update(capacity_cache)
    _oracle_peak_cache.update(oracle_peak_cache)
    result_cache.configure(cache_mode, cache_dir)


def _prewarm_shared_probes(cells: list[Cell]) -> None:
    """Run the per-dataset capacity probes and per-phase oracle runs once,
    in-process, so parallel workers don't each redo the shared prefix."""
    seen_eval = set()
    seen_char = set()
    for cell in cells:
        if isinstance(cell, EvalCell):
            key = (cell.dataset.name, cell.settings)
            if key not in seen_eval:
                seen_eval.add(key)
                measured_capacity_req_per_s(cell.dataset, cell.settings)
        elif isinstance(cell, CharCell):
            key = (cell.phase, cell.settings)
            if key not in seen_char:
                seen_char.add(key)
                run_characterization(cell.phase, "oracle", cell.settings)
        # ReplayCells share no probe prefix: each run is self-contained.


def sweep(
    cells, jobs: int | None = None
) -> dict[Cell, "RunMetrics | CharacterizationRun"]:
    """Run every cell, fanning out over ``jobs`` worker processes.

    Results land in the runner caches (so figure builds that follow hit
    them) and are returned keyed by cell.  ``jobs=None`` uses every CPU;
    ``jobs<=1`` runs serially.  Cells are deterministic functions of their
    settings, so the parallel schedule cannot change any result.
    """
    unique: list[Cell] = list(dict.fromkeys(cells))
    if jobs is None:
        jobs = os.cpu_count() or 1
    pending = [cell for cell in unique if not _cell_cached(cell)]
    if result_cache.active() is not None and pending:
        # Resolve disk hits up front: they need no probe prewarm and no
        # worker slot, and loading them here lets a fully cached sweep
        # skip process fan-out entirely.
        still_pending = []
        for cell in pending:
            hit = _disk_lookup(cell)
            if hit is None:
                still_pending.append(cell)
            else:
                _store_cell(cell, hit)
        pending = still_pending
    if jobs <= 1 or len(pending) <= 1:
        return {cell: run_cell(cell) for cell in unique}

    _prewarm_shared_probes(pending)
    pending = [cell for cell in pending if not _cell_cached(cell)]
    if pending:
        # Snapshot replay keys (and disk addresses) before dispatch: both
        # embed the trace file's identity/content, which may change while
        # the workers run.
        replay_keys = {
            cell: _replay_key(cell.trace, cell.policy, cell.settings)
            for cell in pending
            if isinstance(cell, ReplayCell)
        }
        store = result_cache.active()
        disk_refs = (
            {cell: _disk_ref(cell) for cell in pending}
            if store is not None
            else {}
        )
        ctx = multiprocessing.get_context()
        with ctx.Pool(
            processes=min(jobs, len(pending)),
            initializer=_sweep_initializer,
            initargs=(
                dict(_capacity_cache),
                dict(_oracle_peak_cache),
                store.mode if store is not None else "off",
                str(store.root) if store is not None else None,
            ),
        ) as pool:
            for cell, result in zip(pending, pool.map(run_cell, pending)):
                _store_cell(cell, result, replay_keys.get(cell))
                # Workers persist their own results; this covers a worker
                # that died between computing and writing.  A cell whose
                # dispatch-time address could not be taken (ref None with
                # an active store) is not re-addressed now — the file may
                # have changed under us.
                ref = disk_refs.get(cell)
                if store is None or ref is not None:
                    _disk_store(cell, result, ref, if_missing=True)
    return {cell: run_cell(cell) for cell in unique}


CHAT_DATASETS = (ALPACA_EVAL, ARENA_HARD)
RATE_TIERS = ("low", "medium", "high")
BASELINE_POLICIES = ("fcfs", "rr")
