"""Declarative experiment specs.

An :class:`ExperimentSpec` describes one paper figure as data:

* ``cells`` — the simulation work items (:class:`~repro.harness.runner.EvalCell`
  / :class:`~repro.harness.runner.CharCell` /
  :class:`~repro.harness.runner.ReplayCell`) the figure needs, as a
  function of its settings;
* ``build`` — a pure function that assembles the
  :class:`~repro.harness.report.FigureResult` from the memoized runs.

Separating the two lets the harness fan the cells of one figure — or the
union of cells across *all* figures, which overlap heavily — out over
worker processes via :func:`~repro.harness.runner.sweep`, then build every
table from the shared cache.  Because each cell is a deterministic function
of its settings, a parallel sweep yields byte-identical figures to a serial
run.

Specs are callable with the same ``(settings=None)`` convention as the
original per-figure functions, plus an optional ``jobs`` fan-out degree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.harness.report import FigureResult
from repro.harness.runner import Cell, sweep


@dataclass(frozen=True)
class ExperimentSpec:
    """One paper figure: its work items plus its table builder."""

    figure_id: str
    title: str
    #: ``build(settings) -> FigureResult``; must tolerate ``settings=None``
    #: (each builder falls back to its scale-default settings).
    build: Callable[[Any], FigureResult]
    #: ``cells(settings) -> tuple[Cell, ...]`` (eval, characterization or
    #: replay cells); None for figures whose simulations are too cheap to
    #: be worth dispatching.
    cells: Callable[[Any], tuple[Cell, ...]] | None = None
    #: Zero-arg factory for the figure's scale-default settings.
    settings_factory: Callable[[], Any] | None = None

    def default_settings(self) -> Any:
        if self.settings_factory is None:
            return None
        return self.settings_factory()

    def required_cells(self, settings: Any = None) -> tuple[Cell, ...]:
        """The sweep cells this figure needs under ``settings``."""
        if self.cells is None:
            return ()
        if settings is None:
            settings = self.default_settings()
        return tuple(self.cells(settings))

    def run(
        self, settings: Any = None, jobs: int | None = None
    ) -> FigureResult:
        """Build the figure, optionally pre-running its cells in parallel."""
        if settings is None:
            settings = self.default_settings()
        if jobs is not None and jobs > 1:
            cells = self.required_cells(settings)
            if cells:
                sweep(cells, jobs=jobs)
        return self.build(settings)

    def __call__(
        self, settings: Any = None, jobs: int | None = None
    ) -> FigureResult:
        return self.run(settings, jobs=jobs)
