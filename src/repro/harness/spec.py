"""Declarative experiment specs.

An :class:`ExperimentSpec` describes one paper figure as data:

* ``cells`` — the simulation work items (:class:`~repro.harness.runner.EvalCell`
  / :class:`~repro.harness.runner.CharCell` /
  :class:`~repro.harness.runner.ReplayCell`) the figure needs, as a
  function of its settings;
* ``build`` — a pure function that assembles the
  :class:`~repro.harness.report.FigureResult` from the memoized runs.

Separating the two lets the harness fan the cells of one figure — or the
union of cells across *all* figures, which overlap heavily — out over
worker processes via :func:`~repro.harness.runner.sweep`, then build every
table from the shared cache.  Because each cell is a deterministic function
of its settings, a parallel sweep yields byte-identical figures to a serial
run.

Specs are callable with the same ``(settings=None)`` convention as the
original per-figure functions, plus an optional ``jobs`` fan-out degree.

This module also owns the *canonical cell serialization*: every cell kind
maps to a plain JSON-ready dict (:func:`cell_spec`) whose sorted-key hash
(:func:`cell_key`, mixed with the simulator-code fingerprint) is the cell's
address in the on-disk result store (:mod:`repro.harness.cache`).  The
spec embeds the full settings dataclass and the full dataset model —
including distribution parameters — so changing *any* knob yields a new
key, and a recorded trace is addressed by its file *content*, not its
path.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable

from repro.harness import cache
from repro.harness.report import FigureResult
from repro.harness.runner import (
    Cell,
    CharCell,
    EvalCell,
    EvalSettings,
    ReplayCell,
    sweep,
)
from repro.workload.datasets import DatasetSpec, MixedDataset


# ---------------------------------------------------------------------------
# canonical cell serialization + hashing
# ---------------------------------------------------------------------------
def dataset_spec(dataset: DatasetSpec | MixedDataset) -> dict:
    """The full length model of a dataset/mixture as a JSON-ready dict."""
    return dataclasses.asdict(dataset)


def settings_spec(settings: Any) -> dict:
    """Canonical serialization of one settings dataclass.

    The ``settings`` component of every :func:`cell_spec`: recursive
    ``dataclasses.asdict``, so **every** field — including nested config
    dataclasses like ``ExtensionPolicyConfig``/``PoolSpec`` — joins the
    cache key.  The PAS005 lint rule cross-checks declared fields against
    :func:`canonical_field_manifest`, which is derived from this
    function; a field that stops reaching the output here is exactly the
    stale-cache-hit bug class (two runs differing only in that knob
    share a disk entry).
    """
    return dataclasses.asdict(settings)


def canonical_field_manifest() -> dict[str, frozenset[str]]:
    """Dataclass name -> field names reaching the canonical cell spec.

    Built by serializing a *default instance* of every cache-key
    settings dataclass with :func:`settings_spec` and recording,
    recursively, which declared fields appear in the output.  Nested
    config dataclasses contribute their own entries (the defaults
    instantiate them via ``default_factory``), so the manifest covers
    ``ExtensionPolicyConfig`` and ``PoolSpec`` too.

    This is the ground truth the PAS005 cache-key-completeness rule
    checks against: it reflects what the serializer *actually emits*,
    not what anyone believes it emits.
    """
    from repro.harness.runner import (
        CharacterizationSettings,
        ReplaySettings,
    )

    manifest: dict[str, frozenset[str]] = {}

    def record(obj: Any, serialized: Any) -> None:
        if not dataclasses.is_dataclass(obj) or not isinstance(
            serialized, dict
        ):
            return
        covered = frozenset(
            f.name for f in dataclasses.fields(obj) if f.name in serialized
        )
        name = type(obj).__name__
        manifest[name] = manifest.get(name, frozenset()) | covered
        for f in dataclasses.fields(obj):
            if f.name in serialized:
                record(getattr(obj, f.name), serialized[f.name])

    for cls in (EvalSettings, ReplaySettings, CharacterizationSettings):
        instance = cls()
        record(instance, settings_spec(instance))
    return manifest


def cell_spec(cell: Cell) -> dict:
    """Canonical JSON-ready description of one sweep cell.

    The dict is the *complete* input of the cell's simulation: two cells
    with equal specs produce byte-identical results, and any difference —
    a settings knob, a dataset distribution parameter, the content of a
    replayed trace file — yields a different spec.
    """
    if isinstance(cell, EvalCell):
        return {
            "kind": "eval",
            "dataset": dataset_spec(cell.dataset),
            "tier": cell.tier,
            "policy": cell.policy,
            "settings": settings_spec(cell.settings),
        }
    if isinstance(cell, CharCell):
        return {
            "kind": "char",
            "phase": cell.phase,
            "policy": cell.policy,
            "settings": settings_spec(cell.settings),
        }
    if isinstance(cell, ReplayCell):
        return {
            "kind": "replay",
            "trace": {
                "sha256": cache.file_sha256(cell.trace.path),
                "rate_scale": cell.trace.rate_scale,
            },
            "policy": cell.policy,
            "settings": settings_spec(cell.settings),
        }
    raise TypeError(f"not a sweep cell: {cell!r}")


def cell_kind(cell: Cell) -> str:
    if isinstance(cell, EvalCell):
        return "eval"
    if isinstance(cell, CharCell):
        return "char"
    if isinstance(cell, ReplayCell):
        return "replay"
    raise TypeError(f"not a sweep cell: {cell!r}")


def cell_key(cell: Cell) -> str:
    """Content address of a cell under the current simulator code."""
    return cache.spec_key(cell_spec(cell))


def capacity_spec(
    dataset: DatasetSpec | MixedDataset,
    settings: EvalSettings,
    probe_requests: int,
) -> dict:
    """Spec of one capacity probe (the shared prefix of evaluation runs).

    The probe's result depends only on the dataset model and the cluster
    shape, not on the trace-sizing knobs of :class:`EvalSettings` — so
    quick- and paper-scale runs share probe entries.  Extension knobs
    (``EvalSettings.extensions``: weighted load, pool layout) are likewise
    excluded: the probe always runs FCFS, which reads none of them, so
    cells differing only in extension knobs share one calibration.
    """
    return {
        "kind": "capacity",
        "dataset": dataset_spec(dataset),
        "n_instances": settings.n_instances,
        "kv_capacity_tokens": settings.kv_capacity_tokens,
        "probe_requests": probe_requests,
    }


@dataclass(frozen=True)
class ExperimentSpec:
    """One paper figure: its work items plus its table builder."""

    figure_id: str
    title: str
    #: ``build(settings) -> FigureResult``; must tolerate ``settings=None``
    #: (each builder falls back to its scale-default settings).
    build: Callable[[Any], FigureResult]
    #: ``cells(settings) -> tuple[Cell, ...]`` (eval, characterization or
    #: replay cells); None for figures whose simulations are too cheap to
    #: be worth dispatching.
    cells: Callable[[Any], tuple[Cell, ...]] | None = None
    #: Zero-arg factory for the figure's scale-default settings.
    settings_factory: Callable[[], Any] | None = None

    def default_settings(self) -> Any:
        if self.settings_factory is None:
            return None
        return self.settings_factory()

    def required_cells(self, settings: Any = None) -> tuple[Cell, ...]:
        """The sweep cells this figure needs under ``settings``."""
        if self.cells is None:
            return ()
        if settings is None:
            settings = self.default_settings()
        return tuple(self.cells(settings))

    def run(
        self, settings: Any = None, jobs: int | None = None
    ) -> FigureResult:
        """Build the figure, optionally pre-running its cells in parallel."""
        if settings is None:
            settings = self.default_settings()
        if jobs is not None and jobs > 1:
            cells = self.required_cells(settings)
            if cells:
                sweep(cells, jobs=jobs)
        return self.build(settings)

    def __call__(
        self, settings: Any = None, jobs: int | None = None
    ) -> FigureResult:
        return self.run(settings, jobs=jobs)
