"""Arrival-rate calibration.

The paper evaluates at "low", "medium" and "high" Poisson arrival rates but
never prints the absolute rates; it only says the high rate "stresses the
LLM serving system more severely; exceeding GPU compute and memory capacity
increases the likelihood of preemption and blocking" (Figure 9 caption).

We therefore derive rates from first principles: estimate the steady-state
token throughput one instance sustains at its memory operating point, scale
by the cluster size, divide by the mean token work per request, and apply a
load factor per rate tier.  ``high`` is chosen slightly above 1.0 so demand
transiently exceeds capacity — the regime where scheduling policy matters.
"""

from __future__ import annotations

from repro.config import ClusterConfig
from repro.perfmodel.analytical import PerfModel
from repro.workload.datasets import DatasetSpec, MixedDataset, mean_request_tokens

#: Load factors for the three arrival-rate tiers of Section V.
LOAD_FACTORS = {"low": 0.5, "medium": 0.8, "high": 1.1}


def mixture_mean_request_tokens(dataset: DatasetSpec | MixedDataset) -> float:
    """Expected prompt+reasoning+answering tokens of one request."""
    if isinstance(dataset, MixedDataset):
        return sum(
            weight * mean_request_tokens(spec)
            for spec, weight in dataset.components
        )
    return mean_request_tokens(dataset)


def mixture_mean_decode_tokens(dataset: DatasetSpec | MixedDataset) -> float:
    """Expected decode (reasoning+answering) tokens of one request."""
    if isinstance(dataset, MixedDataset):
        return sum(
            weight * (spec.reasoning.mean + spec.answering.mean)
            for spec, weight in dataset.components
        )
    return dataset.reasoning.mean + dataset.answering.mean


def estimate_instance_tokens_per_s(
    perf: PerfModel,
    kv_capacity_tokens: int,
    mean_kv_per_request: float,
    max_batch_size: int = 256,
) -> float:
    """Decode throughput of one instance at its memory operating point.

    At steady state the GPU pool is full, so the resident batch is roughly
    ``capacity / mean request KV`` and every step decodes one token per
    resident request while streaming the full pool from HBM.
    """
    if kv_capacity_tokens <= 0:
        raise ValueError("capacity must be positive")
    if mean_kv_per_request <= 0:
        raise ValueError("mean KV per request must be positive")
    batch = max(1, min(max_batch_size, int(kv_capacity_tokens / mean_kv_per_request)))
    step_s = perf.decode_step_seconds(batch, kv_capacity_tokens)
    return batch / step_s


def arrival_rates(
    config: ClusterConfig,
    dataset: DatasetSpec | MixedDataset,
    perf: PerfModel,
    load_factors: dict[str, float] | None = None,
) -> dict[str, float]:
    """Poisson rates (requests/s) for each load tier."""
    factors = load_factors or LOAD_FACTORS
    mean_decode = mixture_mean_decode_tokens(dataset)
    # Average resident KV: prompt plus roughly half the decode output.
    mean_kv = mixture_mean_request_tokens(dataset) - mean_decode / 2.0
    per_instance = estimate_instance_tokens_per_s(
        perf,
        config.instance.gpu_kv_tokens(),
        mean_kv,
        config.instance.scheduler.max_batch_size,
    )
    cluster_tokens_per_s = per_instance * config.n_instances
    base_rate = cluster_tokens_per_s / mean_decode
    return {tier: base_rate * factor for tier, factor in factors.items()}
