"""Command-line access to the per-figure experiments and trace tools.

Usage::

    python -m repro.harness list                 # available experiment ids
    python -m repro.harness --list-policies      # registered cluster policies
    python -m repro.harness fig4                 # run one and print its table
    python -m repro.harness fig12 fig13          # run several
    python -m repro.harness all                  # run everything
    python -m repro.harness all --jobs 8         # ... fanned out over 8 workers
    python -m repro.harness fig12 --scale paper  # full-size run

    # record a synthesized trace to JSONL, then replay it per policy:
    python -m repro.harness record-trace --dataset arena-hard \\
        --n-requests 200 --rate 2.0 --record-trace trace.jsonl
    python -m repro.harness trace-compare --trace trace.jsonl --jobs 8
    python -m repro.harness trace-compare --trace trace.jsonl \\
        --rate-scale 2.0 --policies pascal,fcfs,rr

``--jobs`` parallelizes at the simulation-cell level (one dataset x tier x
policy run, or one replayed trace x policy, per task): the requested cells
are deduplicated, executed across worker processes, and every table is then
built from the shared results — byte-identical to a serial run.

Results also land in ``benchmarks/results/`` when run via the benchmark
suite; this entry point is for interactive exploration.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.core.registry import get_policy_class, policy_table
from repro.harness.experiments import ALL_EXPERIMENTS
from repro.harness.replay import trace_compare
from repro.harness.runner import ReplaySettings, sweep
from repro.workload.datasets import get_dataset, reasoning_heavy_mix
from repro.workload.trace import (
    ReplayTraceConfig,
    TraceConfig,
    TraceFormatError,
    build_replay_trace,
    build_trace,
    export_trace,
)

#: Targets handled by the trace tools rather than the figure registry.
TRACE_TARGETS = ("trace-compare", "record-trace")


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Run the paper-figure experiment harness.",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids (see `list`), `all`, `list`, "
        "`trace-compare`, or `record-trace`",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=os.cpu_count(),
        metavar="N",
        help="worker processes for the simulation sweep "
        "(default: all CPUs; 1 = serial)",
    )
    parser.add_argument(
        "--scale",
        choices=("quick", "paper"),
        default=None,
        help="experiment scale (default: $REPRO_SCALE or 'quick')",
    )
    parser.add_argument(
        "--list-policies",
        action="store_true",
        help="print the registered cluster policies and exit",
    )
    replay = parser.add_argument_group("trace replay (trace-compare)")
    replay.add_argument(
        "--trace",
        metavar="PATH",
        help="JSONL trace to replay through the policies",
    )
    replay.add_argument(
        "--rate-scale",
        type=float,
        default=1.0,
        metavar="F",
        help="arrival-rate multiplier for the loaded trace "
        "(2.0 = twice the offered load; default 1.0)",
    )
    replay.add_argument(
        "--policies",
        metavar="CSV",
        help="comma-separated policy subset (default: all registered "
        "except oracle, which is misleading at replay capacity)",
    )
    record = parser.add_argument_group("trace recording (record-trace)")
    record.add_argument(
        "--record-trace",
        metavar="PATH",
        help="write a JSONL trace here: the synthesized trace for "
        "`record-trace`, or the (rate-rescaled) trace `trace-compare` "
        "actually replayed",
    )
    record.add_argument(
        "--dataset",
        default="alpaca-eval-2.0",
        metavar="NAME",
        help="dataset model to synthesize from, or `reasoning-heavy-mix` "
        "(default: alpaca-eval-2.0)",
    )
    record.add_argument(
        "--n-requests",
        type=int,
        default=100,
        metavar="N",
        help="requests to synthesize (default: 100)",
    )
    record.add_argument(
        "--rate",
        type=float,
        default=1.0,
        metavar="R",
        help="Poisson arrival rate in requests/s (default: 1.0)",
    )
    record.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="synthesis seed (default: 0)",
    )
    return parser


def _print_experiment_list() -> None:
    for name in sorted(ALL_EXPERIMENTS):
        print(f"{name:20s} {ALL_EXPERIMENTS[name].title}")
    print(f"{'record-trace':20s} Synthesize a trace and record it to JSONL")
    print(f"{'trace-compare':20s} Replay a JSONL trace through the policies")


def _print_policies() -> None:
    for name, summary in policy_table():
        print(f"{name:20s} {summary}")


def _run_record_trace(args) -> int:
    if not args.record_trace:
        print(
            "record-trace needs an output path: --record-trace PATH",
            file=sys.stderr,
        )
        return 2
    if args.dataset == "reasoning-heavy-mix":
        dataset = reasoning_heavy_mix()
    else:
        try:
            dataset = get_dataset(args.dataset)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
    try:
        trace = build_trace(
            TraceConfig(
                dataset=dataset,
                n_requests=args.n_requests,
                arrival_rate_per_s=args.rate,
                seed=args.seed,
            )
        )
        export_trace(trace, args.record_trace)
    except (ValueError, OSError) as exc:
        # Bad synthesis knobs (negative rate/count) or an unwritable
        # output path are usage errors, same as trace-compare's contract.
        print(f"record-trace: {exc}", file=sys.stderr)
        return 2
    print(
        f"recorded {len(trace)} requests ({dataset.name}, "
        f"{args.rate:g} req/s, seed {args.seed}) -> {args.record_trace}"
    )
    return 0


def _run_trace_compare(args) -> int:
    if not args.trace:
        print(
            "trace-compare needs an input trace: --trace PATH",
            file=sys.stderr,
        )
        return 2
    policies = None
    if args.policies:
        policies = tuple(
            name.strip() for name in args.policies.split(",") if name.strip()
        )
    # Bad input is a usage error, not a crash: validate the cheap pieces
    # (rate scale, policy names) up front, and around the run itself catch
    # only file problems — an unexpected ValueError from deep inside the
    # simulation is a bug and must keep its traceback.
    try:
        trace = ReplayTraceConfig(path=args.trace, rate_scale=args.rate_scale)
        for policy in policies or ():
            get_policy_class(policy)
    except ValueError as exc:
        print(f"trace-compare: {exc}", file=sys.stderr)
        return 2
    try:
        result = trace_compare(
            trace,
            policies=policies,
            settings=ReplaySettings(),
            jobs=args.jobs,
        )
    except (TraceFormatError, OSError) as exc:
        print(f"trace-compare: {exc}", file=sys.stderr)
        return 2
    print(result.render())
    if args.record_trace:
        try:
            export_trace(build_replay_trace(trace), args.record_trace)
        except OSError as exc:
            print(f"trace-compare: {exc}", file=sys.stderr)
            return 2
        print(f"replayed trace recorded -> {args.record_trace}")
    return 0


def main(argv: list[str]) -> int:
    args = _parser().parse_args(argv)
    if args.list_policies:
        _print_policies()
        return 0
    if not args.targets:
        print(__doc__)
        return 2
    if "list" in args.targets:
        _print_experiment_list()
        return 0
    if args.scale is not None:
        os.environ["REPRO_SCALE"] = args.scale

    trace_targets = [t for t in args.targets if t in TRACE_TARGETS]
    names = [t for t in args.targets if t not in TRACE_TARGETS]
    if "all" in names:
        names = sorted(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s) {', '.join(map(repr, unknown))}; "
            f"try one of: {', '.join(sorted(ALL_EXPERIMENTS))}, "
            f"{', '.join(TRACE_TARGETS)}",
            file=sys.stderr,
        )
        return 2

    for target in trace_targets:
        handler = (
            _run_record_trace if target == "record-trace" else _run_trace_compare
        )
        status = handler(args)
        if status != 0:
            return status

    # One deduplicated sweep over every requested figure's cells, then
    # build each table from the shared results.
    if args.jobs and args.jobs > 1:
        cells: list = []
        for name in names:
            cells.extend(ALL_EXPERIMENTS[name].required_cells())
        if cells:
            sweep(cells, jobs=args.jobs)
    for name in names:
        print(ALL_EXPERIMENTS[name]().render())
        print()
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main(sys.argv[1:]))
    except BrokenPipeError:
        # Downstream pager/`head` closed the pipe; not an error.
        sys.exit(141)
