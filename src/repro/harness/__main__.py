"""Command-line access to the per-figure experiments.

Usage::

    python -m repro.harness list                 # available experiment ids
    python -m repro.harness --list-policies      # registered cluster policies
    python -m repro.harness fig4                 # run one and print its table
    python -m repro.harness fig12 fig13          # run several
    python -m repro.harness all                  # run everything
    python -m repro.harness all --jobs 8         # ... fanned out over 8 workers
    python -m repro.harness fig12 --scale paper  # full-size run

``--jobs`` parallelizes at the simulation-cell level (one dataset x tier x
policy run per task): the requested figures' cells are deduplicated,
executed across worker processes, and every table is then built from the
shared results — byte-identical to a serial run.

Results also land in ``benchmarks/results/`` when run via the benchmark
suite; this entry point is for interactive exploration.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.core.registry import policy_table
from repro.harness.experiments import ALL_EXPERIMENTS
from repro.harness.runner import sweep


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Run the paper-figure experiment harness.",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids (see `list`), or `all`, or `list`",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=os.cpu_count(),
        metavar="N",
        help="worker processes for the simulation sweep "
        "(default: all CPUs; 1 = serial)",
    )
    parser.add_argument(
        "--scale",
        choices=("quick", "paper"),
        default=None,
        help="experiment scale (default: $REPRO_SCALE or 'quick')",
    )
    parser.add_argument(
        "--list-policies",
        action="store_true",
        help="print the registered cluster policies and exit",
    )
    return parser


def _print_experiment_list() -> None:
    for name in sorted(ALL_EXPERIMENTS):
        print(f"{name:20s} {ALL_EXPERIMENTS[name].title}")


def _print_policies() -> None:
    for name, summary in policy_table():
        print(f"{name:20s} {summary}")


def main(argv: list[str]) -> int:
    args = _parser().parse_args(argv)
    if args.list_policies:
        _print_policies()
        return 0
    if not args.targets:
        print(__doc__)
        return 2
    if "list" in args.targets:
        _print_experiment_list()
        return 0
    if args.scale is not None:
        os.environ["REPRO_SCALE"] = args.scale

    names = sorted(ALL_EXPERIMENTS) if "all" in args.targets else args.targets
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s) {', '.join(map(repr, unknown))}; "
            f"try one of: {', '.join(sorted(ALL_EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2

    # One deduplicated sweep over every requested figure's cells, then
    # build each table from the shared results.
    if args.jobs and args.jobs > 1:
        cells: list = []
        for name in names:
            cells.extend(ALL_EXPERIMENTS[name].required_cells())
        if cells:
            sweep(cells, jobs=args.jobs)
    for name in names:
        print(ALL_EXPERIMENTS[name]().render())
        print()
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main(sys.argv[1:]))
    except BrokenPipeError:
        # Downstream pager/`head` closed the pipe; not an error.
        sys.exit(141)
