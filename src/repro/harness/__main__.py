"""Command-line access to the per-figure experiments and trace tools.

Usage::

    python -m repro.harness list                 # available experiment ids
    python -m repro.harness --list-policies      # registered cluster policies
    python -m repro.harness fig4                 # run one and print its table
    python -m repro.harness fig12 fig13          # run several
    python -m repro.harness all                  # run everything
    python -m repro.harness all --jobs 8         # ... fanned out over 8 workers
    python -m repro.harness fig12 --scale paper  # full-size run

    # the on-disk result store: reuse simulation cells across processes
    python -m repro.harness figures --cache rw   # cell-backed tables, cached
    python -m repro.harness all --scale both --cache rw   # quick + paper
    python -m repro.harness cache ls             # inspect the store
    python -m repro.harness cache prune          # drop stale/old entries
    python -m repro.harness cache prune --max-bytes 100000000  # size budget
    python -m repro.harness cache clear

    # the perf-trajectory microbenchmarks (BENCH_<date>.json artifact)
    python -m repro.harness bench

    # record a synthesized trace to JSONL, then replay it per policy:
    python -m repro.harness record-trace --dataset arena-hard \\
        --n-requests 200 --rate 2.0 --record-trace trace.jsonl
    python -m repro.harness trace-compare --trace trace.jsonl --jobs 8
    python -m repro.harness trace-compare --trace trace.jsonl \\
        --rate-scale 2.0 --policies pascal,fcfs,rr
    python -m repro.harness trace-compare --trace trace.jsonl \\
        --pool 2:800 --policies tiered-express,pascal  # heterogeneous pool

    # convert real server logs into the trace schema:
    python -m repro.harness import-trace --format vllm \\
        --input server_requests.jsonl --output trace.jsonl
    python -m repro.harness import-trace --format openai \\
        --input responses.jsonl --output trace.jsonl --skip-malformed

    # stream a trace through the online ServingSession API, printing
    # per-request lifecycle events (admit/phase/first-token/complete):
    python -m repro.harness serve --trace examples/sample_trace.jsonl
    python -m repro.harness serve --trace trace.jsonl --policy fcfs \\
        --admit-max 64        # reject arrivals beyond 64 in flight

    # real-time serving: pace the session against the wall clock, and
    # optionally expose an OpenAI-compatible HTTP endpoint whose client
    # disconnects become first-class cancellations (docs/serving.md):
    python -m repro.harness serve --realtime --trace trace.jsonl \\
        --time-scale 10       # ten simulated seconds per wall second
    python -m repro.harness serve --realtime --port 8077 \\
        --oracle sampled --dataset arena-hard --record-trace live.jsonl

    # the determinism & contract linter (rules PAS001-PAS008):
    python -m repro.harness lint                      # src + tests
    python -m repro.harness lint --format github      # CI annotations
    python -m repro.harness lint --baseline lint_baseline.json src

``--jobs`` parallelizes at the simulation-cell level (one dataset x tier x
policy run, or one replayed trace x policy, per task): the requested cells
are deduplicated, executed across worker processes, and every table is then
built from the shared results — byte-identical to a serial run.

``--cache {off,ro,rw}`` layers a content-addressed on-disk store under the
in-process memoization (``rw`` reads and writes, ``ro`` only reads): each
cell is addressed by the hash of its full spec plus a simulator-code
fingerprint, so cached tables are byte-identical to fresh ones and a code
change can never serve stale results.  ``figures`` is the cell-backed
subset of ``all`` (everything the store can serve end-to-end).

Results also land in ``benchmarks/results/`` when run via the benchmark
suite; this entry point is for interactive exploration.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import signal
import sys

from repro.api import (
    EventPrinter,
    MaxInFlightAdmission,
    ServingSession,
    TraceFileSource,
)
from repro.config import ExtensionPolicyConfig, PoolSpec
from repro.core.registry import get_policy_class, policy_table
from repro.harness import cache as result_cache
from repro.harness import runner
from repro.harness.experiments import ALL_EXPERIMENTS
from repro.harness.replay import trace_compare
from repro.harness.runner import ReplaySettings, sweep
from repro.workload import importers
from repro.workload.datasets import get_dataset, reasoning_heavy_mix
from repro.workload.trace import (
    ReplayTraceConfig,
    TraceConfig,
    TraceFormatError,
    build_replay_trace,
    build_trace,
    export_trace,
)

#: Targets handled by the trace tools rather than the figure registry.
TRACE_TARGETS = ("trace-compare", "record-trace", "import-trace", "serve")

#: Sub-actions of the `cache` maintenance target.
CACHE_ACTIONS = ("ls", "prune", "clear")


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Run the paper-figure experiment harness.",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids (see `list`), `all`, `figures`, `list`, "
        "`trace-compare`, `record-trace`, `bench`, or "
        "`cache {ls,prune,clear}`",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=os.cpu_count(),
        metavar="N",
        help="worker processes for the simulation sweep "
        "(default: all CPUs; 1 = serial)",
    )
    parser.add_argument(
        "--scale",
        choices=("quick", "paper", "both"),
        default=None,
        help="experiment scale (default: $REPRO_SCALE or 'quick'; "
        "'both' runs quick then paper in one process, sharing cells)",
    )
    parser.add_argument(
        "--list-policies",
        action="store_true",
        help="print the registered cluster policies and exit",
    )
    store = parser.add_argument_group("on-disk result store")
    store.add_argument(
        "--cache",
        choices=result_cache.CACHE_MODES,
        default=os.environ.get("REPRO_CACHE", "off"),
        help="disk store mode: off (default, or $REPRO_CACHE), "
        "ro (read, never write), rw (read and write)",
    )
    store.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="store location (default: $PASCAL_CACHE_DIR or "
        "~/.cache/pascal-repro)",
    )
    store.add_argument(
        "--max-age-days",
        type=float,
        default=30.0,
        metavar="D",
        help="`cache prune`: also drop entries older than D days "
        "(default: 30)",
    )
    store.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="`cache prune`: then evict least-recently-used entries "
        "(the store bumps an entry's mtime on every read) until the "
        "store is at most N bytes",
    )
    shard = parser.add_argument_group("sharded simulation (repro.shard)")
    shard.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="K",
        help="partition the simulated cluster K ways (instances and "
        "arrivals hash-split across K epoch-synced engines; default 1 = "
        "the single-engine path, byte-identical to omitting the flag)",
    )
    shard.add_argument(
        "--shard-workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes hosting the K shards (default: one per "
        "shard; 1 = serial in-process).  Execution knob only: results "
        "are byte-identical for any N",
    )
    shard.add_argument(
        "--shard-epoch",
        type=float,
        default=None,
        metavar="S",
        help="barrier spacing in simulated seconds for sharded runs "
        "(default 30)",
    )
    bench = parser.add_argument_group("microbenchmarks (bench)")
    bench.add_argument(
        "--bench-out",
        metavar="PATH",
        default=None,
        help="BENCH json destination file or directory "
        "(default: benchmarks/results/ if present, else CWD)",
    )
    bench.add_argument(
        "--bench-requests",
        type=int,
        default=240,
        metavar="N",
        help="requests per timed fig9 run (default: 240)",
    )
    bench.add_argument(
        "--bench-repeats",
        type=int,
        default=3,
        metavar="N",
        help="best-of repeats for the queue replays (default: 3)",
    )
    bench.add_argument(
        "--shard-requests",
        type=int,
        default=2000,
        metavar="N",
        help="requests per shard.sim.* scaling run (0 skips the series; "
        "committed artifacts use 1000000; default: 2000)",
    )
    bench.add_argument(
        "--profile",
        action="store_true",
        help="cProfile the fig9 hot path and embed the top-N "
        "cumulative-time table as the BENCH json `profile` section",
    )
    bench.add_argument(
        "--no-epoch",
        action="store_true",
        help="time the fig9 runs with decode-epoch coalescing disabled "
        "(A/B escape hatch; the fast path is on by default)",
    )
    replay = parser.add_argument_group("trace replay (trace-compare)")
    replay.add_argument(
        "--trace",
        metavar="PATH",
        help="JSONL trace to replay through the policies",
    )
    replay.add_argument(
        "--rate-scale",
        type=float,
        default=1.0,
        metavar="F",
        help="arrival-rate multiplier for the loaded trace "
        "(2.0 = twice the offered load; default 1.0)",
    )
    replay.add_argument(
        "--policies",
        metavar="CSV",
        help="comma-separated policy subset (default: all registered "
        "except oracle, which is misleading at replay capacity)",
    )
    replay.add_argument(
        "--pool",
        metavar="EXPRESS[:THRESHOLD]",
        default=None,
        help="heterogeneous pool for the replay cluster: EXPRESS express "
        "(FCFS fast-lane) instances, optionally a predicted-reasoning "
        "routing threshold in tokens (consumed by tier-aware policies "
        "such as tiered-express)",
    )
    serve = parser.add_argument_group("online session streaming (serve)")
    serve.add_argument(
        "--policy",
        metavar="NAME",
        default="pascal",
        help="cluster policy the serving session runs (default: pascal)",
    )
    serve.add_argument(
        "--admit-max",
        type=int,
        default=None,
        metavar="N",
        help="admission control: reject arrivals while N requests are "
        "already in flight (default: admit everything)",
    )
    serve.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the per-event stream; print only the summary",
    )
    serve.add_argument(
        "--realtime",
        action="store_true",
        help="pace the session against the wall clock (events take "
        "effect when due) instead of running as fast as possible",
    )
    serve.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        metavar="F",
        help="realtime speed multiplier in simulated seconds per wall "
        "second (10 = ten times faster than real time; default 1.0)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="P",
        help="with --realtime: serve an OpenAI-compatible HTTP endpoint "
        "on this port (0 = ephemeral; default: no HTTP gateway)",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        metavar="ADDR",
        help="gateway bind address (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--oracle",
        choices=("auto", "header", "trace", "sampled"),
        default="auto",
        help="how live HTTP requests map to simulated token lengths: "
        "x-pascal-* headers, a recorded trace's shapes (--oracle-trace), "
        "seeded dataset sampling (--dataset/--seed), or auto = headers "
        "with trace/sampled fallback (default)",
    )
    serve.add_argument(
        "--oracle-trace",
        metavar="PATH",
        default=None,
        help="trace file backing the `trace` length oracle",
    )
    serve.add_argument(
        "--drain-deadline",
        type=float,
        default=5.0,
        metavar="S",
        help="wall-second budget for finishing in-flight requests at "
        "shutdown (default: 5.0)",
    )
    importer = parser.add_argument_group("log conversion (import-trace)")
    importer.add_argument(
        "--format",
        choices=importers.IMPORT_FORMATS,
        default=None,
        help="input log format: vllm (RequestOutput/RequestMetrics JSONL) "
        "or openai (API response JSONL)",
    )
    importer.add_argument(
        "--input",
        metavar="PATH",
        help="log file to convert",
    )
    importer.add_argument(
        "--output",
        metavar="PATH",
        help="destination JSONL trace",
    )
    importer.add_argument(
        "--skip-malformed",
        action="store_true",
        help="import every valid line and report the malformed ones "
        "(default: fail on the first malformed line)",
    )
    record = parser.add_argument_group("trace recording (record-trace)")
    record.add_argument(
        "--record-trace",
        metavar="PATH",
        help="write a JSONL trace here: the synthesized trace for "
        "`record-trace`, or the (rate-rescaled) trace `trace-compare` "
        "actually replayed",
    )
    record.add_argument(
        "--dataset",
        default="alpaca-eval-2.0",
        metavar="NAME",
        help="dataset model to synthesize from, or `reasoning-heavy-mix` "
        "(default: alpaca-eval-2.0)",
    )
    record.add_argument(
        "--n-requests",
        type=int,
        default=100,
        metavar="N",
        help="requests to synthesize (default: 100)",
    )
    record.add_argument(
        "--rate",
        type=float,
        default=1.0,
        metavar="R",
        help="Poisson arrival rate in requests/s (default: 1.0)",
    )
    record.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="synthesis seed (default: 0)",
    )
    return parser


def _cacheable_experiments() -> list[str]:
    """The `figures` alias: every cell-backed (cacheable) experiment."""
    return sorted(
        name for name, spec in ALL_EXPERIMENTS.items() if spec.cells is not None
    )


def _print_experiment_list() -> None:
    for name in sorted(ALL_EXPERIMENTS):
        print(f"{name:20s} {ALL_EXPERIMENTS[name].title}")
    print(f"{'figures':20s} All cell-backed tables (the disk-cacheable set)")
    print(f"{'record-trace':20s} Synthesize a trace and record it to JSONL")
    print(f"{'trace-compare':20s} Replay a JSONL trace through the policies")
    print(f"{'import-trace':20s} Convert vLLM/OpenAI-style logs to the "
          "trace schema")
    print(f"{'serve':20s} Stream a trace through the online "
          "ServingSession API")
    print(f"{'bench':20s} Microbenchmarks -> BENCH_<date>.json artifact")
    print(f"{'cache':20s} Result-store maintenance: cache ls|prune|clear")
    print(f"{'lint':20s} Determinism & contract linter (PAS rules)")


def _print_policies() -> None:
    for name, summary in policy_table():
        print(f"{name:20s} {summary}")


def _run_record_trace(args) -> int:
    if not args.record_trace:
        print(
            "record-trace needs an output path: --record-trace PATH",
            file=sys.stderr,
        )
        return 2
    if args.dataset == "reasoning-heavy-mix":
        dataset = reasoning_heavy_mix()
    else:
        try:
            dataset = get_dataset(args.dataset)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
    try:
        trace = build_trace(
            TraceConfig(
                dataset=dataset,
                n_requests=args.n_requests,
                arrival_rate_per_s=args.rate,
                seed=args.seed,
            )
        )
        export_trace(trace, args.record_trace)
    except (ValueError, OSError) as exc:
        # Bad synthesis knobs (negative rate/count) or an unwritable
        # output path are usage errors, same as trace-compare's contract.
        print(f"record-trace: {exc}", file=sys.stderr)
        return 2
    print(
        f"recorded {len(trace)} requests ({dataset.name}, "
        f"{args.rate:g} req/s, seed {args.seed}) -> {args.record_trace}"
    )
    return 0


def _parse_pool(text: str) -> PoolSpec:
    """``EXPRESS[:THRESHOLD]`` -> :class:`PoolSpec` (ValueError on junk)."""
    express_text, sep, threshold_text = text.partition(":")
    try:
        express = int(express_text)
        threshold = (
            int(threshold_text)
            if sep
            else PoolSpec().express_threshold_tokens
        )
    except ValueError:
        raise ValueError(
            f"--pool expects EXPRESS[:THRESHOLD] integers, got {text!r}"
        ) from None
    if express < 0 or threshold < 0:
        raise ValueError(f"--pool values must be >= 0, got {text!r}")
    return PoolSpec(
        express_instances=express, express_threshold_tokens=threshold
    )


def _run_trace_compare(args) -> int:
    if not args.trace:
        print(
            "trace-compare needs an input trace: --trace PATH",
            file=sys.stderr,
        )
        return 2
    policies = None
    if args.policies:
        policies = tuple(
            name.strip() for name in args.policies.split(",") if name.strip()
        )
    # Bad input is a usage error, not a crash: validate the cheap pieces
    # (rate scale, policy names, pool spec) up front, and around the run
    # itself catch only file problems — an unexpected ValueError from deep
    # inside the simulation is a bug and must keep its traceback.
    try:
        trace = ReplayTraceConfig(path=args.trace, rate_scale=args.rate_scale)
        for policy in policies or ():
            get_policy_class(policy)
        settings = ReplaySettings()
        if args.pool is not None:
            settings = ReplaySettings(
                extensions=ExtensionPolicyConfig(pool=_parse_pool(args.pool))
            )
        settings = _apply_shard_args(settings, args)
    except ValueError as exc:
        print(f"trace-compare: {exc}", file=sys.stderr)
        return 2
    try:
        result = trace_compare(
            trace,
            policies=policies,
            settings=settings,
            jobs=args.jobs,
        )
    except (TraceFormatError, OSError) as exc:
        print(f"trace-compare: {exc}", file=sys.stderr)
        return 2
    print(result.render())
    if args.record_trace:
        try:
            export_trace(build_replay_trace(trace), args.record_trace)
        except OSError as exc:
            print(f"trace-compare: {exc}", file=sys.stderr)
            return 2
        print(f"replayed trace recorded -> {args.record_trace}")
    return 0


def _apply_shard_args(settings: ReplaySettings, args) -> ReplaySettings:
    """Thread ``--shards`` / ``--shard-epoch`` into replay settings.

    ``--shard-workers`` is handled globally in :func:`main` — it is an
    execution knob, deliberately kept out of the settings (and therefore
    out of every cache key).
    """
    if args.shards is not None:
        if args.shards < 1:
            raise ValueError(f"--shards must be >= 1, got {args.shards}")
        settings = dataclasses.replace(settings, shards=args.shards)
    if args.shard_epoch is not None:
        if args.shard_epoch <= 0:
            raise ValueError(
                f"--shard-epoch must be positive, got {args.shard_epoch:g}"
            )
        settings = dataclasses.replace(
            settings, shard_epoch_s=args.shard_epoch
        )
    return settings


def _run_import_trace(args) -> int:
    """`import-trace`: convert a real-format log into the trace schema."""
    if not args.format or not args.input or not args.output:
        print(
            "import-trace needs --format {vllm,openai}, --input PATH and "
            "--output PATH",
            file=sys.stderr,
        )
        return 2
    try:
        report = importers.import_to_trace(
            args.input,
            args.output,
            fmt=args.format,
            strict=not args.skip_malformed,
        )
    except (importers.TraceImportError, OSError, ValueError) as exc:
        print(f"import-trace: {exc}", file=sys.stderr)
        return 2
    if report.errors:
        print(
            f"import-trace: skipped {len(report.errors)} malformed "
            f"line(s):\n{report.error_summary()}",
            file=sys.stderr,
        )
    if not report.requests:
        print(
            f"import-trace: no importable requests in {args.input} "
            f"({report.n_lines} lines)",
            file=sys.stderr,
        )
        return 2
    print(
        f"imported {report.n_imported}/{report.n_lines} requests "
        f"({args.format}) -> {args.output}"
    )
    return 0


def _build_serve_session(args) -> "ServingSession | None":
    """Construct the serve session (usage errors print and return None)."""
    try:
        get_policy_class(args.policy)
        admission = None
        if args.admit_max is not None:
            admission = MaxInFlightAdmission(args.admit_max)
        settings = ReplaySettings()
        if args.pool is not None:
            settings = ReplaySettings(
                extensions=ExtensionPolicyConfig(pool=_parse_pool(args.pool))
            )
    except ValueError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return None
    session = ServingSession(
        policy=args.policy,
        config=settings.cluster_config(),
        admission=admission,
    )
    if not args.quiet:
        session.subscribe(EventPrinter())
    return session


def _serve_accounting(session) -> str:
    """The final-state line every serve exit path prints."""
    line = (
        f"serve: final submitted={session.n_submitted} "
        f"completed={session.n_completed} "
        f"cancelled={session.n_cancelled} "
        f"rejected={session.n_rejected}"
    )
    if session.n_in_flight:
        line += f" in-flight={session.n_in_flight}"
    return line


def _serve_drain(session, deadline_s: float) -> None:
    """Finish in-flight work, fast-forward, within a wall budget."""
    from repro.serve import fast_forward_drain

    fast_forward_drain(session, deadline_s)


def _serve_record(session, path: str) -> int:
    """`serve --record-trace`: export the traffic actually served."""
    from repro.serve import stamp_live_cancels

    try:
        export_trace(
            stamp_live_cancels(session.cluster.submitted), path
        )
    except OSError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    print(f"served traffic recorded -> {path}")
    return 0


def _serve_oracle(args):
    """Build the length oracle for the gateway (ValueError on bad args)."""
    from repro.serve import (
        HeaderOracle,
        OracleChain,
        SampledOracle,
        TraceOracle,
    )

    if args.dataset == "reasoning-heavy-mix":
        sampled_dataset = args.dataset
    else:
        get_dataset(args.dataset)  # KeyError -> usage error upstream
        sampled_dataset = args.dataset
    if args.oracle == "header":
        return HeaderOracle()
    if args.oracle == "trace" or (
        args.oracle == "auto" and args.oracle_trace
    ):
        if not args.oracle_trace:
            raise ValueError("--oracle trace needs --oracle-trace PATH")
        fallback = TraceOracle(args.oracle_trace)
    elif args.oracle == "sampled" or args.oracle == "auto":
        fallback = SampledOracle(sampled_dataset, args.seed)
    if args.oracle in ("trace", "sampled"):
        return fallback
    return OracleChain((HeaderOracle(), fallback))


def _run_serve_offline(args) -> int:
    """`serve` without --realtime: replay as fast as possible."""
    session = _build_serve_session(args)
    if session is None:
        return 2
    trace = ReplayTraceConfig(path=args.trace, rate_scale=args.rate_scale)
    # SIGTERM behaves like ^C: cut intake, drain bounded, report.
    signal.signal(signal.SIGTERM, _raise_keyboard_interrupt)
    try:
        # Attaching primes the source's first record, so file problems
        # (missing trace, malformed line 1) surface here as well as
        # during the incremental pulls inside drain().
        session.attach(TraceFileSource(trace))
        metrics = session.drain()
    except (TraceFormatError, OSError) as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        _serve_drain(session, args.drain_deadline)
        print(_serve_accounting(session))
        if args.record_trace:
            _serve_record(session, args.record_trace)
        return 130
    ttfts = metrics.ttfts()
    mean_ttft = (
        f"{sum(ttfts) / len(ttfts):.3f}s mean ttft" if ttfts else "no ttft"
    )
    print(
        f"served {session.n_completed} requests "
        f"({session.n_rejected} rejected, {session.n_cancelled} cancelled) "
        f"from {trace.name} under "
        f"{args.policy} in {session.now:.1f}s simulated; {mean_ttft}"
    )
    print(_serve_accounting(session))
    if args.record_trace:
        return _serve_record(session, args.record_trace)
    return 0


def _raise_keyboard_interrupt(signum, frame):
    raise KeyboardInterrupt


def _run_serve_realtime(args) -> int:
    """`serve --realtime`: wall-clock pacing, optional HTTP gateway."""
    from repro.serve import WallClockPacer

    session = _build_serve_session(args)
    if session is None:
        return 2
    try:
        pacer = WallClockPacer(session, time_scale=args.time_scale)
    except ValueError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    if args.trace:
        trace = ReplayTraceConfig(
            path=args.trace, rate_scale=args.rate_scale
        )
        try:
            session.attach(TraceFileSource(trace))
        except (TraceFormatError, OSError) as exc:
            print(f"serve: {exc}", file=sys.stderr)
            return 2

    if args.port is not None:
        status = _serve_gateway_loop(args, session, pacer)
        if status != 0:
            return status
    else:
        if not args.trace:
            print(
                "serve --realtime needs --trace PATH (or --port P for "
                "live HTTP traffic)",
                file=sys.stderr,
            )
            return 2
        stopped = _pace_until_signalled(pacer)
        if stopped:
            print("serve: interrupted, draining", file=sys.stderr)
    _serve_drain(session, args.drain_deadline)
    print(_serve_accounting(session))
    if args.record_trace:
        return _serve_record(session, args.record_trace)
    return 0


def _pace_until_signalled(pacer) -> bool:
    """Run the pacer until the trace drains or SIGINT/SIGTERM arrives."""
    stop = {"requested": False}

    def _on_signal(signum, frame):
        stop["requested"] = True

    previous = {
        sig: signal.signal(sig, _on_signal)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        pacer.run(should_stop=lambda: stop["requested"])
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    return stop["requested"]


def _serve_gateway_loop(args, session, pacer) -> int:
    """Run the OpenAI-compatible gateway until SIGINT/SIGTERM."""
    import asyncio

    from repro.serve import Gateway

    try:
        oracle = _serve_oracle(args)
    except (ValueError, KeyError, OSError) as exc:
        message = exc.args[0] if isinstance(exc, KeyError) else exc
        print(f"serve: {message}", file=sys.stderr)
        return 2
    gateway = Gateway(pacer, oracle, host=args.host, port=args.port)

    async def _main() -> None:
        await gateway.start()
        print(
            f"serving {gateway.model_name} on "
            f"http://{args.host}:{gateway.bound_port} "
            f"(policy {args.policy}, x{args.time_scale:g} time)",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        await stop.wait()
        print("serve: interrupted, draining", file=sys.stderr)
        await gateway.stop()

    try:
        asyncio.run(_main())
    except OSError as exc:  # bind failure
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    return 0


def _run_serve(args) -> int:
    """`serve`: stream a trace (or live HTTP traffic) through a session."""
    if args.realtime:
        return _run_serve_realtime(args)
    if not args.trace:
        print("serve needs an input trace: --trace PATH", file=sys.stderr)
        return 2
    return _run_serve_offline(args)


def _run_cache_command(args, actions: list[str]) -> int:
    """The `cache {ls,prune,clear}` maintenance subcommand."""
    if len(actions) != 1 or actions[0] not in CACHE_ACTIONS:
        got = " ".join(actions) if actions else "(nothing)"
        print(
            f"cache: expected one of {', '.join(CACHE_ACTIONS)}, got {got}",
            file=sys.stderr,
        )
        return 2
    # Maintenance needs write access regardless of the run mode.
    store = result_cache.DiskCache("rw", args.cache_dir)
    action = actions[0]
    if action == "ls":
        entries = store.entries()
        total = 0
        for info in entries:
            total += info.size_bytes
            print(
                f"{info.key[:16]}  {info.kind:8s} {info.size_bytes:>10,d}B  "
                f"{info.created}  {info.summary}"
            )
        print(
            f"{len(entries)} entries, {total:,d} bytes in {store.root} "
            f"(fingerprint {result_cache.code_fingerprint()})"
        )
        return 0
    if action == "prune":
        try:
            removed = store.prune(
                max_age_days=args.max_age_days, max_bytes=args.max_bytes
            )
        except ValueError as exc:
            print(f"cache prune: {exc}", file=sys.stderr)
            return 2
        budget = (
            f" (budget {args.max_bytes:,d} bytes)"
            if args.max_bytes is not None
            else ""
        )
        print(
            f"pruned {removed} stale/old/evicted entries from "
            f"{store.root}{budget}"
        )
        return 0
    removed = store.clear()
    print(f"cleared {removed} entries from {store.root}")
    return 0


def _run_bench(args) -> int:
    from repro.bench import run_suite, write_bench_json
    from repro.bench.suite import render_suite

    result = run_suite(
        n_requests=args.bench_requests,
        repeats=args.bench_repeats,
        profile=args.profile,
        epoch_coalescing=not args.no_epoch,
        shard_requests=args.shard_requests,
    )
    print(render_suite(result))
    try:
        path = write_bench_json(result, args.bench_out)
    except OSError as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 2
    print(f"bench artifact -> {path}")
    return 0


def _print_cache_stats() -> None:
    """One stderr line so stdout tables stay byte-comparable across runs."""
    store = result_cache.active()
    if store is None:
        return
    print(
        f"[cache] mode={store.mode} dir={store.root} {store.stats.line()} "
        f"simulations={runner.simulation_count()}",
        file=sys.stderr,
    )


def main(argv: list[str]) -> int:
    if argv and argv[0] == "lint":
        # The linter owns its own flags (`--format text|json|github`
        # would collide with import-trace's `--format vllm|openai`), so
        # dispatch before the main parse — same pattern as `cache`.
        from repro.analysis.cli import run_lint

        return run_lint(argv[1:])
    args = _parser().parse_args(argv)
    if args.list_policies:
        _print_policies()
        return 0
    if not args.targets:
        print(__doc__)
        return 2
    if "list" in args.targets:
        _print_experiment_list()
        return 0
    if args.targets[0] == "cache":
        return _run_cache_command(args, args.targets[1:])
    if args.cache not in result_cache.CACHE_MODES:
        # argparse only validates `choices` for values given on the
        # command line; the default can come from $REPRO_CACHE.
        print(
            f"--cache (or $REPRO_CACHE) must be one of "
            f"{', '.join(result_cache.CACHE_MODES)}, got {args.cache!r}",
            file=sys.stderr,
        )
        return 2
    if args.cache != "off":
        result_cache.configure(args.cache, args.cache_dir)
    if args.shards is not None and args.shards < 1:
        print(f"--shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    if args.shards is not None:
        # Same pattern as --scale/$REPRO_SCALE: experiment settings built
        # from for_scale() pick the shard count up from the environment,
        # so it reaches sweep workers and cell specs (and cache keys)
        # like any other settings field.
        os.environ["REPRO_SHARDS"] = str(args.shards)
    if args.shard_workers is not None:
        from repro.shard import set_default_workers

        try:
            set_default_workers(args.shard_workers)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    trace_targets = [t for t in args.targets if t in TRACE_TARGETS]
    names = [t for t in args.targets if t not in TRACE_TARGETS and t != "bench"]
    if "all" in names:
        names = sorted(ALL_EXPERIMENTS)
    elif "figures" in names:
        names = [n for n in names if n != "figures"]
        names.extend(
            n for n in _cacheable_experiments() if n not in names
        )
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s) {', '.join(map(repr, unknown))}; "
            f"try one of: {', '.join(sorted(ALL_EXPERIMENTS))}, "
            f"figures, {', '.join(TRACE_TARGETS)}, bench, cache",
            file=sys.stderr,
        )
        return 2

    if "bench" in args.targets:
        status = _run_bench(args)
        if status != 0 or args.targets == ["bench"]:
            return status
    if args.scale is not None and args.scale != "both":
        os.environ["REPRO_SCALE"] = args.scale

    trace_handlers = {
        "record-trace": _run_record_trace,
        "trace-compare": _run_trace_compare,
        "import-trace": _run_import_trace,
        "serve": _run_serve,
    }
    for target in trace_targets:
        status = trace_handlers[target](args)
        if status != 0:
            _print_cache_stats()
            return status

    # One deduplicated sweep over every requested figure's cells, then
    # build each table from the shared results.  With `--scale both` the
    # quick and paper passes share one process (and one disk cache), so
    # scale-independent work — capacity probes, identical cells — is
    # reused across the passes.
    scales = ("quick", "paper") if args.scale == "both" else (None,)
    for scale in scales:
        if scale is not None:
            os.environ["REPRO_SCALE"] = scale
            if names:
                print(f"=== scale: {scale} ===\n")
        if args.jobs and args.jobs > 1:
            cells: list = []
            for name in names:
                cells.extend(ALL_EXPERIMENTS[name].required_cells())
            if cells:
                sweep(cells, jobs=args.jobs)
        for name in names:
            print(ALL_EXPERIMENTS[name]().render())
            print()
    _print_cache_stats()
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main(sys.argv[1:]))
    except BrokenPipeError:
        # Downstream pager/`head` closed the pipe; not an error.
        sys.exit(141)
