"""Command-line access to the per-figure experiments.

Usage::

    python -m repro.harness list            # available experiment ids
    python -m repro.harness fig4            # run one and print its table
    python -m repro.harness all             # run everything (slow)

Results also land in ``benchmarks/results/`` when run via the benchmark
suite; this entry point is for interactive exploration.
"""

from __future__ import annotations

import sys

from repro.harness.experiments import ALL_EXPERIMENTS


def main(argv: list[str]) -> int:
    if len(argv) != 1 or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 2
    target = argv[0]
    if target == "list":
        for name in sorted(ALL_EXPERIMENTS):
            doc = (ALL_EXPERIMENTS[name].__doc__ or "").strip().splitlines()
            summary = doc[0] if doc else ""
            print(f"{name:20s} {summary}")
        return 0
    if target == "all":
        for name in sorted(ALL_EXPERIMENTS):
            print(ALL_EXPERIMENTS[name]().render())
            print()
        return 0
    if target not in ALL_EXPERIMENTS:
        print(
            f"unknown experiment {target!r}; "
            f"try one of: {', '.join(sorted(ALL_EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    print(ALL_EXPERIMENTS[target]().render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
