"""Reporting helpers: fixed-width tables and paper-vs-measured rows.

Every figure benchmark prints its reproduction as an ASCII table whose rows
match the series the paper plots, plus (where the paper states a number) a
"paper" column so the reader can eyeball shape agreement directly in the
benchmark output.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def format_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_table(
    headers: list[str],
    rows: list[list],
    title: str = "",
) -> str:
    """Monospace table with a rule under the header."""
    if not headers:
        raise ValueError("need at least one column")
    cells = [[format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


@dataclass
class FigureResult:
    """One reproduced table/figure, ready to print and to assert on."""

    figure_id: str
    title: str
    headers: list[str]
    rows: list[list]
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        parts = [
            render_table(
                self.headers, self.rows, title=f"[{self.figure_id}] {self.title}"
            )
        ]
        for note in self.notes:
            parts.append(f"  note: {note}")
        return "\n".join(parts)

    def column(self, name: str) -> list:
        """All values of one named column (for assertions)."""
        try:
            idx = self.headers.index(name)
        except ValueError:
            raise KeyError(
                f"no column {name!r}; available: {self.headers}"
            ) from None
        return [row[idx] for row in self.rows]

    def row_map(self, key_column: str = None) -> dict:
        """Rows keyed by their first (or a named) column."""
        key_idx = 0 if key_column is None else self.headers.index(key_column)
        return {row[key_idx]: row for row in self.rows}

    def cell(self, row_key, column: str, key_column: str = None):
        """One value: the row keyed ``row_key``, at the named column.

        The assertion-friendly accessor the comparison tests use: raises
        ``KeyError`` on an unknown row or column rather than misreading a
        neighbour.
        """
        try:
            row = self.row_map(key_column)[row_key]
        except KeyError:
            raise KeyError(
                f"no row keyed {row_key!r} in figure {self.figure_id}"
            ) from None
        try:
            idx = self.headers.index(column)
        except ValueError:
            raise KeyError(
                f"no column {column!r}; available: {self.headers}"
            ) from None
        return row[idx]
