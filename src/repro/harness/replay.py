"""Trace-replay comparison: one recorded trace, every policy, one table.

The paper's evaluation runs each policy over byte-identical traces; this
module extends that discipline to *recorded* traces, so "how would PASCAL
do on my production traffic?" is one command::

    python -m repro.harness trace-compare --trace prod.jsonl --jobs 8

:func:`trace_compare` builds one :class:`ReplayCell` per policy, fans them
out through :func:`~repro.harness.runner.sweep` (parallel == serial,
byte-identical), and renders a per-policy TTFT / TTFAT / QoE / SLO table.

Each replay cell executes as a thin client of the online
:class:`repro.api.ServingSession` façade (see
:func:`~repro.harness.runner.run_replay`): the trace streams from disk one
validated record at a time, so the request list is never materialized
ahead of the simulation (per-request measurement records still accumulate
for the metrics table, as in every run).
"""

from __future__ import annotations

from repro.core.registry import get_policy_class, policy_names
from repro.harness.report import FigureResult
from repro.harness.runner import ReplayCell, ReplaySettings, sweep
from repro.metrics.summary import mean, percentile
from repro.workload.trace import ReplayTraceConfig


def replay_cells(
    trace: ReplayTraceConfig,
    policies: tuple[str, ...] | None = None,
    settings: ReplaySettings | None = None,
) -> tuple[ReplayCell, ...]:
    """One sweep cell per policy.

    Defaults to every registered policy except ``oracle``: the oracle is
    only an upper bound when its capacity covers peak demand, and under a
    replay cluster's fixed capacity it degenerates to a second FCFS row
    with a misleading label.  Request it explicitly to include it anyway.
    """
    if policies is None:
        policies = tuple(n for n in policy_names() if n != "oracle")
    for policy in policies:
        get_policy_class(policy)  # fail fast, not inside a worker process
    settings = settings or ReplaySettings()
    return tuple(ReplayCell(trace, policy, settings) for policy in policies)


def trace_compare(
    trace: ReplayTraceConfig,
    policies: tuple[str, ...] | None = None,
    settings: ReplaySettings | None = None,
    jobs: int | None = None,
) -> FigureResult:
    """Replay one trace through several policies and tabulate the results."""
    settings = settings or ReplaySettings()
    cells = replay_cells(trace, policies, settings)
    results = sweep(cells, jobs=jobs)
    slo = settings.cluster_config().slo
    rows = []
    cancelled_counts = {
        cell.policy: results[cell].n_cancelled for cell in cells
    }
    for cell in cells:
        metrics = results[cell]
        ttfts = metrics.ttfts()
        # A trace may legitimately yield no samples for a view (e.g. no
        # TTFAT when no request has a reasoning phase); render those as "-".
        ttfats = metrics.ttfats()
        report = metrics.slo_report(slo)
        rows.append(
            [
                cell.policy,
                len(metrics.requests),
                mean(ttfts) if ttfts else None,
                percentile(ttfts, 99) if ttfts else None,
                mean(ttfats) if ttfats else None,
                report.mean_qoe,
                100.0 * report.violation_rate,
                metrics.throughput_tokens_per_s,
            ]
        )
    return FigureResult(
        figure_id="trace-compare",
        title=f"Trace replay: {trace.name} "
        f"({settings.n_instances} instances)",
        headers=[
            "policy",
            "n",
            "mean_ttft_s",
            "p99_ttft_s",
            "mean_ttfat_s",
            "mean_qoe",
            "slo_violation_%",
            "throughput",
        ],
        rows=rows,
        notes=[
            f"trace: {trace.path} (rate x{trace.rate_scale:g}); every policy "
            "replays the identical request list",
            "violation: QoE (TPOT-anchored) below threshold; unserved "
            "requests count as violations",
        ]
        + (
            # Only when the trace scripts cancellations (cancel_t
            # records): pre-existing tables stay byte-identical.
            [
                "cancelled (client abandoned, scripted cancel_t): "
                + ", ".join(
                    f"{policy}={count}"
                    for policy, count in cancelled_counts.items()
                )
            ]
            if any(cancelled_counts.values())
            else []
        ),
    )
