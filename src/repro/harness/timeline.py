"""ASCII execution timelines (Figure 2 reproduction).

Renders per-request decoding activity over discretized time slots, the way
Figure 2 draws numbered decoding steps, preemptions and waiting periods.
"""

from __future__ import annotations

import math

from repro.workload.request import Request


def token_slots(req: Request, all_token_times: list[float], slot_s: float) -> set[int]:
    """Slots in which this request produced at least one token."""
    return {int(math.floor(t / slot_s - 1e-9)) for t in all_token_times}


def ascii_timeline(
    requests: list[Request],
    token_times: dict[int, list[float]],
    slot_s: float = 1.0,
    horizon_slots: int | None = None,
) -> str:
    """Grid of request rows x time-slot columns.

    Cell legend: ``#`` token generated in the slot, ``.`` waiting (after
    arrival, before completion), blank otherwise.
    """
    if not requests:
        raise ValueError("no requests to draw")
    last = max(
        (max(times) for times in token_times.values() if times), default=0.0
    )
    n_slots = horizon_slots or int(math.ceil(last / slot_s)) + 1
    lines = []
    header = "time    " + "".join(
        str(i % 10) for i in range(n_slots)
    )
    lines.append(header)
    for req in sorted(requests, key=lambda r: r.rid):
        slots = token_slots(req, token_times.get(req.rid, []), slot_s)
        arrival_slot = int(math.floor(req.arrival_t / slot_s))
        done_slot = (
            int(math.ceil((req.done_t or last) / slot_s)) if req.done_t else n_slots
        )
        cells = []
        for i in range(n_slots):
            if i in slots:
                cells.append("#")
            elif arrival_slot <= i < done_slot:
                cells.append(".")
            else:
                cells.append(" ")
        lines.append(f"req {req.rid:<3d} " + "".join(cells))
    lines.append("legend: '#' decoding, '.' waiting/preempted")
    return "\n".join(lines)
