"""Content-addressed on-disk result store for sweep cells.

Every sweep cell (dataset x tier x policy x settings, characterization
phase x policy x settings, or recorded trace x policy x settings) hashes to
a stable key derived from its *full canonical spec* (see
:func:`repro.harness.spec.cell_spec`) plus a fingerprint of the simulator
source code, so a cached entry can only ever be served for the exact
configuration — and the exact simulator — that produced it.  Results are
persisted as versioned gzip-JSON under ``~/.cache/pascal-repro``
(overridable via ``--cache-dir`` or ``$PASCAL_CACHE_DIR``) and shared
across processes and CI jobs.

Correctness over reuse, always:

* the key embeds the code fingerprint, so editing any simulation module
  invalidates every entry (stale entries are garbage-collected by
  ``cache prune``);
* entries are validated on load (format, version, kind, fingerprint); a
  corrupt, truncated or mismatched entry reads as a miss and the cell is
  recomputed, never served stale and never crashed on;
* writes go through a tempfile in the cache directory followed by an
  atomic :func:`os.replace`, so concurrent writers (parallel sweep
  workers, parallel CI jobs) can share one directory;
* ``ro`` mode never writes — a CI job can consume a seeded cache without
  being able to poison it.

The payload codecs below serialize the *entire* measurement record of a
run (:class:`~repro.metrics.collector.RunMetrics` down to each request's
per-phase time accounting and answer-token timestamps).  JSON round-trips
Python floats exactly (shortest-repr), so a table built from a disk hit is
byte-identical to one built from a fresh run — the golden-table tests pin
this down.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro.metrics.collector import RunMetrics
from repro.workload.request import Phase, Request, ReqState

CACHE_FORMAT = "pascal-cache"
# v2: payloads carry predictor_rank_pairs and n_deferrals (strict reads).
# v3: payloads carry cancelled requests; request records carry
#     cancel_at/cancelled_t (strict reads).
CACHE_VERSION = 3

#: Cache modes: ``off`` (no disk), ``ro`` (read, never write), ``rw``.
CACHE_MODES = ("off", "ro", "rw")


def default_cache_dir() -> str:
    """``$PASCAL_CACHE_DIR`` or ``~/.cache/pascal-repro``."""
    env = os.environ.get("PASCAL_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "pascal-repro")


# ---------------------------------------------------------------------------
# canonical JSON + hashing
# ---------------------------------------------------------------------------
def canonical_json(obj) -> str:
    """Minimal sorted-key JSON: the hashable canonical form of a spec."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def spec_key(spec: dict) -> str:
    """Content address of one cell spec under the current simulator code."""
    digest = hashlib.sha256()
    digest.update(code_fingerprint().encode("ascii"))
    digest.update(b"\0")
    digest.update(canonical_json(spec).encode("utf-8"))
    return digest.hexdigest()[:40]


# ---------------------------------------------------------------------------
# simulator code fingerprint
# ---------------------------------------------------------------------------
#: Harness modules that do *not* affect simulation results: they build
#: tables and CLI plumbing from memoized runs, so editing them must not
#: invalidate the cache.  Everything else under ``repro`` — including
#: ``harness/runner.py`` (trace/cluster assembly) and
#: ``harness/calibrate.py`` (rate calibration) — determines results.
_NON_SIMULATOR_MODULES = frozenset(
    {
        "harness/__init__.py",
        "harness/__main__.py",
        "harness/cache.py",
        "harness/experiments.py",
        "harness/replay.py",
        "harness/report.py",
        "harness/spec.py",
        "harness/timeline.py",
        # Log importers only *produce* trace files; a replay cell is
        # addressed by the trace's content, so importer edits cannot
        # change any cached result.
        "workload/importers.py",
    }
)

_fingerprint: str | None = None


def _simulator_sources() -> list[Path]:
    import repro

    root = Path(repro.__file__).resolve().parent
    files = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        # ``bench`` (measurement harness) and ``serve`` (wall-clock
        # gateway) never determine a simulated result: cells replayed
        # from a serve-recorded trace are addressed by the trace's
        # *content*, so gateway edits cannot change any cached table.
        if rel in _NON_SIMULATOR_MODULES or any(
            f"/{pkg}/" in f"/{rel}" for pkg in ("bench", "serve")
        ):
            continue
        files.append(path)
    return files


def _compute_fingerprint() -> str:
    digest = hashlib.sha256()
    import repro

    root = Path(repro.__file__).resolve().parent
    for path in _simulator_sources():
        digest.update(path.relative_to(root).as_posix().encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def code_fingerprint() -> str:
    """Hash of every simulation-result-determining source file (memoized)."""
    global _fingerprint
    if _fingerprint is None:
        _fingerprint = _compute_fingerprint()
    return _fingerprint


# ---------------------------------------------------------------------------
# file content hashing (replay traces are addressed by content, not path)
# ---------------------------------------------------------------------------
_file_hash_memo: dict[tuple, str] = {}

#: Files below this size are always rehashed: an in-place rewrite that
#: preserves the byte count *and* lands within the filesystem's mtime
#: granularity (or a tar/rsync restore with preserved timestamps) is
#: indistinguishable from the memoized file by (mtime_ns, size) alone,
#: and small files — every trace a test writes — are exactly where such
#: rewrites happen and where rehashing is cheap anyway.
_HASH_MEMO_MIN_BYTES = 1 << 20


def _stat_identity_trustworthy(stat: os.stat_result) -> bool:
    """Can (mtime_ns, size) be trusted to witness unchanged content?

    Not for small files (rehashing is cheaper than being wrong), and not
    when the stored mtime is suspiciously coarse — an exact whole-second
    ``mtime_ns`` is what FAT-class filesystems, archive restores and
    second-resolution ``utime`` calls produce, where two different
    contents can share one timestamp tick.
    """
    if stat.st_size < _HASH_MEMO_MIN_BYTES:
        return False
    return stat.st_mtime_ns % 1_000_000_000 != 0


def file_sha256(path: str | os.PathLike) -> str:
    """Content hash of a file, memoized on (path, mtime_ns, size).

    The memo is consulted only when that identity is trustworthy (see
    :func:`_stat_identity_trustworthy`); otherwise the file is rehashed
    every call, so a same-size in-place rewrite can never be served a
    stale digest.
    """
    path = os.path.abspath(path)
    stat = os.stat(path)
    memo_key = (path, stat.st_mtime_ns, stat.st_size)
    if _stat_identity_trustworthy(stat):
        cached = _file_hash_memo.get(memo_key)
        if cached is not None:
            return cached
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 16), b""):
            digest.update(block)
    value = digest.hexdigest()
    if _stat_identity_trustworthy(stat):
        _file_hash_memo[memo_key] = value
    return value


# ---------------------------------------------------------------------------
# payload codecs
# ---------------------------------------------------------------------------
#: Request fields serialized verbatim (ints, floats, bools, strings, or
#: None).  Everything a figure builder or SLO evaluation can read is here;
#: ``breakdown`` (enum-keyed) and ``phase``/``state`` are handled apart.
_REQUEST_SCALARS = (
    "rid",
    "prompt_len",
    "reasoning_len",
    "answer_len",
    "arrival_t",
    "skip_prefill",
    "dataset",
    "instance_id",
    "prefill_done",
    "generated_tokens",
    "kv_tokens",
    "on_gpu",
    "quantum_used",
    "level",
    "demoted",
    "enqueue_seq",
    "_state_since",
    "first_sched_t",
    "prefill_end_t",
    "reasoning_end_t",
    "first_answer_t",
    "answer_sched_t",
    "done_t",
    "cancel_at",
    "cancelled_t",
    "n_preemptions",
    "n_migrations",
    "transfer_wait_s",
)


def request_to_record(req: Request) -> dict:
    """Full measurement record of one simulated request, JSON-ready."""
    record = {name: getattr(req, name) for name in _REQUEST_SCALARS}
    record["phase"] = req.phase.name
    record["state"] = req.state.name
    record["breakdown"] = sorted(
        [phase.name, bucket, seconds]
        for (phase, bucket), seconds in req.breakdown.items()
    )
    record["answer_token_times"] = req.answer_token_times
    return record


def request_from_record(record: dict) -> Request:
    """Rebuild a request indistinguishable from the simulated original."""
    req = Request(
        rid=record["rid"],
        prompt_len=record["prompt_len"],
        reasoning_len=record["reasoning_len"],
        answer_len=record["answer_len"],
        arrival_t=record["arrival_t"],
        skip_prefill=record["skip_prefill"],
        dataset=record["dataset"],
    )
    for name in _REQUEST_SCALARS:
        setattr(req, name, record[name])
    req.phase = Phase[record["phase"]]
    req.state = ReqState[record["state"]]
    req.breakdown = {
        (Phase[phase], bucket): seconds
        for phase, bucket, seconds in record["breakdown"]
    }
    req.answer_token_times = list(record["answer_token_times"])
    return req


def metrics_to_payload(metrics: RunMetrics) -> dict:
    return {
        "policy": metrics.policy,
        "throughput_tokens_per_s": metrics.throughput_tokens_per_s,
        "transfer_latencies_s": metrics.transfer_latencies_s,
        "predictor_abs_errors": {
            dataset: list(errors)
            for dataset, errors in metrics.predictor_abs_errors.items()
        },
        "predictor_rank_pairs": {
            dataset: [[score, value] for score, value in pairs]
            for dataset, pairs in metrics.predictor_rank_pairs.items()
        },
        "requests": [request_to_record(r) for r in metrics.requests],
        "rejected": [request_to_record(r) for r in metrics.rejected],
        "cancelled": [request_to_record(r) for r in metrics.cancelled],
        "n_deferrals": metrics.n_deferrals,
    }


def metrics_from_payload(payload: dict) -> RunMetrics:
    # `predictor_abs_errors`, `predictor_rank_pairs`, `rejected`,
    # `cancelled` and `n_deferrals` are read strictly: a codec (or cache
    # entry) that drops any of them must surface as a decode failure —
    # recomputed as a miss — not as silently empty columns in a figure.
    return RunMetrics(
        policy=payload["policy"],
        requests=[request_from_record(r) for r in payload["requests"]],
        throughput_tokens_per_s=payload["throughput_tokens_per_s"],
        transfer_latencies_s=list(payload["transfer_latencies_s"]),
        predictor_abs_errors={
            dataset: tuple(errors)
            for dataset, errors in payload["predictor_abs_errors"].items()
        },
        predictor_rank_pairs={
            dataset: tuple((score, value) for score, value in pairs)
            for dataset, pairs in payload["predictor_rank_pairs"].items()
        },
        rejected=[request_from_record(r) for r in payload["rejected"]],
        cancelled=[request_from_record(r) for r in payload["cancelled"]],
        n_deferrals=payload["n_deferrals"],
    )


def char_run_to_payload(run) -> dict:
    return {
        "metrics": metrics_to_payload(run.metrics),
        "oracle_peak_tokens": run.oracle_peak_tokens,
        "capacity_tokens": run.capacity_tokens,
    }


def char_run_from_payload(payload: dict):
    from repro.harness.runner import CharacterizationRun

    return CharacterizationRun(
        metrics=metrics_from_payload(payload["metrics"]),
        oracle_peak_tokens=payload["oracle_peak_tokens"],
        capacity_tokens=payload["capacity_tokens"],
    )


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------
@dataclass
class CacheStats:
    """Per-process counters (parallel workers keep their own)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    #: Entries that existed but failed validation (corrupt/mismatched).
    invalid: int = 0
    #: Writes that failed (unwritable dir, disk full) and were dropped.
    write_errors: int = 0

    def line(self) -> str:
        text = (
            f"disk_hits={self.hits} disk_misses={self.misses} "
            f"disk_writes={self.writes} invalid_entries={self.invalid}"
        )
        if self.write_errors:
            text += f" write_errors={self.write_errors}"
        return text


@dataclass
class EntryInfo:
    """One on-disk entry as listed by ``cache ls``."""

    key: str
    kind: str
    summary: str
    size_bytes: int
    created: str
    fingerprint: str
    path: Path


class DiskCache:
    """One cache directory plus an access mode (``ro`` or ``rw``)."""

    def __init__(self, mode: str, root: str | os.PathLike | None = None):
        if mode not in ("ro", "rw"):
            raise ValueError(f"cache mode must be 'ro' or 'rw', got {mode!r}")
        self.mode = mode
        self.root = Path(root) if root else Path(default_cache_dir())
        self.stats = CacheStats()

    # -- paths ---------------------------------------------------------
    def entry_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json.gz"

    # -- read ----------------------------------------------------------
    def load(self, key: str, kind: str):
        """Payload for ``key`` or None; any malformed entry is a miss."""
        path = self.entry_path(key)
        try:
            with gzip.open(path, "rt", encoding="utf-8") as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, EOFError, ValueError):
            # Truncated gzip stream, invalid JSON, permission trouble:
            # all read as a miss so the cell is recomputed.
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("format") != CACHE_FORMAT
            or entry.get("version") != CACHE_VERSION
            or entry.get("kind") != kind
            or entry.get("key") != key
            or entry.get("fingerprint") != code_fingerprint()
            or "payload" not in entry
        ):
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._record_access(path)
        return entry["payload"]

    @staticmethod
    def _record_access(path: Path) -> None:
        """Bump the entry's mtime so eviction can see read-hotness.

        ``prune --max-bytes`` evicts least-recently-*used* entries, but on
        ``noatime``/``relatime`` mounts (the common case) atime never
        advances on reads — so last-use is recorded inside the store
        instead, as an mtime bump on every hit.  Entries never read since
        their write keep the write mtime, which is the natural fallback.
        Best-effort: a read-only store (a CI artifact, someone else's
        directory) simply keeps write-time ordering.
        """
        try:
            os.utime(path)
        except OSError:
            pass

    # -- write ---------------------------------------------------------
    def store(self, key: str, kind: str, spec: dict, payload) -> bool:
        """Persist one entry atomically; no-op (False) in ``ro`` mode.

        A failed write (unwritable directory, disk full) is reported in
        the stats and swallowed: losing a cache entry must never lose the
        simulation result it was about to record.
        """
        if self.mode != "rw":
            return False
        entry = {
            "format": CACHE_FORMAT,
            "version": CACHE_VERSION,
            "kind": kind,
            "key": key,
            "fingerprint": code_fingerprint(),
            "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "spec": spec,
            "payload": payload,
        }
        path = self.entry_path(key)
        tmp = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
            )
            # mtime=0 keeps the gzip container deterministic, so two
            # workers racing on one cell write byte-identical files.
            with os.fdopen(fd, "wb") as raw:
                with gzip.GzipFile(
                    filename="", mode="wb", fileobj=raw, mtime=0
                ) as gz:
                    gz.write(
                        json.dumps(entry, sort_keys=True).encode("utf-8")
                    )
            os.replace(tmp, path)
        except OSError:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            self.stats.write_errors += 1
            return False
        self.stats.writes += 1
        return True

    def store_if_missing(self, key: str, kind: str, spec: dict, payload) -> bool:
        if self.mode != "rw" or self.entry_path(key).exists():
            return False
        return self.store(key, kind, spec, payload)

    # -- maintenance ---------------------------------------------------
    def _entry_files(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("??/*.json.gz"))

    def entries(self) -> list[EntryInfo]:
        """Metadata of every readable entry (unreadable ones summarized)."""
        infos = []
        for path in self._entry_files():
            size = path.stat().st_size
            key = path.name[: -len(".json.gz")]
            try:
                with gzip.open(path, "rt", encoding="utf-8") as fh:
                    entry = json.load(fh)
                # Valid gzip+JSON is not enough: a tampered entry can be
                # any JSON value, and `ls`/`prune` must list it as corrupt
                # rather than crash (prune is how it gets removed).
                if not isinstance(entry, dict) or not isinstance(
                    entry.get("spec", {}), dict
                ):
                    raise ValueError("entry is not a cache object")
                spec = entry.get("spec", {})
                summary = " ".join(
                    f"{name}={spec[name]}"
                    for name in ("policy", "tier", "phase")
                    if name in spec
                )
                dataset = spec.get("dataset")
                if isinstance(dataset, dict) and "name" in dataset:
                    summary = f"dataset={dataset['name']} {summary}".strip()
                infos.append(
                    EntryInfo(
                        key=key,
                        kind=str(entry.get("kind", "?")),
                        summary=summary,
                        size_bytes=size,
                        created=str(entry.get("created", "?")),
                        fingerprint=str(entry.get("fingerprint", "?")),
                        path=path,
                    )
                )
            except (OSError, EOFError, ValueError, TypeError, AttributeError):
                infos.append(
                    EntryInfo(
                        key=key,
                        kind="corrupt",
                        summary="(unreadable entry)",
                        size_bytes=size,
                        created="?",
                        fingerprint="?",
                        path=path,
                    )
                )
        return infos

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self._entry_files():
            path.unlink()
            removed += 1
        self._drop_empty_shards()
        return removed

    def prune(
        self,
        max_age_days: float | None = None,
        max_bytes: int | None = None,
    ) -> int:
        """Drop stale-fingerprint, corrupt, and (optionally) old entries;
        then, with ``max_bytes``, evict least-recently-used entries until
        the store fits the byte budget.

        Recency is the entry's mtime: :meth:`load` bumps it on every hit
        (see :meth:`_record_access`), so "oldest mtime" means "neither
        written nor read for the longest" — unlike atime, which on
        ``noatime``/``relatime`` mounts silently degrades to creation
        order and evicts read-hot entries.  ``max_age_days`` uses the same
        clock, so "old" likewise means unused, not merely created early.

        Only cache entry files (``??/*.json.gz`` under the store root) are
        ever deleted — anything else living in the directory is not ours
        to touch.
        """
        # Validate everything before the first unlink: a rejected call
        # must not have half-mutated the store.
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        cutoff = None
        if max_age_days is not None:
            cutoff = time.time() - max_age_days * 86400.0
        removed = 0
        current = code_fingerprint()
        for info in self.entries():
            stale = info.kind == "corrupt" or info.fingerprint != current
            old = cutoff is not None and info.path.stat().st_mtime < cutoff
            if stale or old:
                info.path.unlink()
                removed += 1
        if max_bytes is not None:
            # The store is shared across processes: any entry can vanish
            # between the glob and our stat/unlink (a concurrent prune or
            # clear).  An already-gone entry is simply not ours to count.
            survivors = []
            total = 0
            for path in self._entry_files():
                try:
                    stat = path.stat()
                except FileNotFoundError:
                    continue
                survivors.append((stat.st_mtime_ns, path, stat.st_size))
                total += stat.st_size
            survivors.sort()
            for _, path, size in survivors:
                if total <= max_bytes:
                    break
                try:
                    path.unlink()
                    removed += 1
                except FileNotFoundError:
                    pass
                total -= size
        self._drop_empty_shards()
        return removed

    def _drop_empty_shards(self) -> None:
        if not self.root.is_dir():
            return
        for shard in self.root.glob("??"):
            if shard.is_dir() and not any(shard.iterdir()):
                shard.rmdir()


# ---------------------------------------------------------------------------
# process-wide active cache
# ---------------------------------------------------------------------------
_active: DiskCache | None = None


def configure(
    mode: str, cache_dir: str | os.PathLike | None = None
) -> DiskCache | None:
    """Install (or, with ``off``, remove) the process-wide disk cache."""
    global _active
    if mode not in CACHE_MODES:
        raise ValueError(
            f"cache mode must be one of {CACHE_MODES}, got {mode!r}"
        )
    _active = None if mode == "off" else DiskCache(mode, cache_dir)
    return _active


def active() -> DiskCache | None:
    """The configured disk cache, or None when caching is off."""
    return _active
