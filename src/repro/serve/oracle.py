"""Length oracles: map live HTTP requests onto simulator workload shape.

The simulator does not tokenize or run a model — a request is three token
counts (prompt / reasoning / answer) and a dataset label.  A live HTTP
request carries none of those, so the gateway consults a *length oracle*
to decide what simulated request an incoming completion call becomes:

* :class:`HeaderOracle` — the client pins exact lengths with
  ``x-pascal-*`` headers (the precise tool for scripted load tests);
* :class:`TraceOracle` — lengths are drawn from a recorded trace file,
  cycled in order (replay the *shape* of real traffic against live
  arrival times);
* :class:`SampledOracle` — lengths are sampled from a named dataset
  model with a seeded RNG (the predictor-only setting: nothing is known
  per request beyond the traffic mix).

Oracles compose with :class:`OracleChain`: the first oracle to claim a
request wins.  :func:`default_oracle` chains headers over dataset
sampling, so explicit headers always take precedence.

Every oracle is deterministic given its construction arguments and the
order of incoming requests — live runs stay replayable.
"""

from __future__ import annotations

import random
from typing import Mapping, Sequence

from repro.workload.datasets import get_dataset, reasoning_heavy_mix
from repro.workload.request import Request
from repro.workload.trace import load_trace

#: Request headers understood by :class:`HeaderOracle` (case-insensitive;
#: the gateway lower-cases header names before lookup).
HEADER_PROMPT = "x-pascal-prompt-tokens"
HEADER_REASONING = "x-pascal-reasoning-tokens"
HEADER_ANSWER = "x-pascal-answer-tokens"
HEADER_DATASET = "x-pascal-dataset"


class OracleError(ValueError):
    """A live request could not be mapped to workload parameters.

    The gateway surfaces this as an HTTP 400 with the message as the
    error body — it marks client mistakes (bad header values), not
    server faults.
    """


def estimate_prompt_tokens(payload: Mapping) -> int:
    """Rough prompt length from the chat payload (~4 chars per token).

    Good enough for a simulator whose prompt length only sizes the
    prefill pass and KV footprint; clients needing exact control send
    the ``x-pascal-prompt-tokens`` header instead.
    """
    messages = payload.get("messages", ())
    chars = 0
    if isinstance(messages, Sequence):
        for message in messages:
            if isinstance(message, Mapping):
                chars += len(str(message.get("content", "")))
    return max(1, chars // 4)


class LengthOracle:
    """Abstract request-shape resolver.

    :meth:`resolve` returns the simulated :class:`Request` for a live
    call, or ``None`` to decline (letting the next oracle in a chain
    try).  Invalid client input raises :class:`OracleError`.
    """

    def resolve(
        self,
        rid: int,
        arrival_t: float,
        headers: Mapping[str, str],
        payload: Mapping,
    ) -> Request | None:
        raise NotImplementedError


class HeaderOracle(LengthOracle):
    """Exact lengths from ``x-pascal-*`` headers.

    Claims a request when any length header is present.  Unspecified
    lengths default to: prompt — estimated from the message text,
    reasoning — 0 (a plain chat request), answer — 64 tokens.  The
    dataset label defaults to ``"http"``.
    """

    DEFAULT_ANSWER_TOKENS = 64

    def resolve(
        self,
        rid: int,
        arrival_t: float,
        headers: Mapping[str, str],
        payload: Mapping,
    ) -> Request | None:
        present = [
            name
            for name in (HEADER_PROMPT, HEADER_REASONING, HEADER_ANSWER)
            if name in headers
        ]
        if not present:
            return None
        prompt = self._int_header(
            headers, HEADER_PROMPT, estimate_prompt_tokens(payload), minimum=1
        )
        reasoning = self._int_header(headers, HEADER_REASONING, 0, minimum=0)
        answer = self._int_header(
            headers, HEADER_ANSWER, self.DEFAULT_ANSWER_TOKENS, minimum=1
        )
        return Request(
            rid=rid,
            prompt_len=prompt,
            reasoning_len=reasoning,
            answer_len=answer,
            arrival_t=arrival_t,
            dataset=headers.get(HEADER_DATASET, "http"),
        )

    @staticmethod
    def _int_header(
        headers: Mapping[str, str], name: str, default: int, minimum: int
    ) -> int:
        text = headers.get(name)
        if text is None:
            return default
        try:
            value = int(text)
        except ValueError:
            raise OracleError(
                f"header {name} must be an integer, got {text!r}"
            ) from None
        if value < minimum:
            raise OracleError(
                f"header {name} must be >= {minimum}, got {value}"
            )
        return value


class TraceOracle(LengthOracle):
    """Lengths cycled from a recorded trace file, in file order.

    The k-th live request takes the shape (prompt/reasoning/answer
    lengths, dataset, prefill flag) of the k-th trace record, wrapping
    around — arrival times and any scripted cancellations in the file
    are ignored; the live clock and live disconnects provide those.
    """

    def __init__(self, path: str):
        self._shapes = load_trace(path)
        if not self._shapes:
            raise ValueError(f"trace {path!r} holds no requests")
        self._cursor = 0

    def resolve(
        self,
        rid: int,
        arrival_t: float,
        headers: Mapping[str, str],
        payload: Mapping,
    ) -> Request | None:
        shape = self._shapes[self._cursor % len(self._shapes)]
        self._cursor += 1
        return Request(
            rid=rid,
            prompt_len=shape.prompt_len,
            reasoning_len=shape.reasoning_len,
            answer_len=shape.answer_len,
            arrival_t=arrival_t,
            skip_prefill=shape.skip_prefill,
            dataset=shape.dataset,
        )


class SampledOracle(LengthOracle):
    """Lengths sampled from a dataset model with a seeded RNG.

    ``dataset`` is any registered dataset name, or
    ``"reasoning-heavy-mix"`` for the paper's mixed workload.  Sampling
    order is the arrival order of live requests, so a run is
    reproducible from (dataset, seed, arrival sequence).
    """

    def __init__(self, dataset: str = "alpaca-eval-2.0", seed: int = 0):
        if dataset == "reasoning-heavy-mix":
            self._dataset = reasoning_heavy_mix()
        else:
            self._dataset = get_dataset(dataset)
        self._rng = random.Random(seed)

    def resolve(
        self,
        rid: int,
        arrival_t: float,
        headers: Mapping[str, str],
        payload: Mapping,
    ) -> Request | None:
        return self._dataset.sample_request(rid, arrival_t, self._rng)


class OracleChain(LengthOracle):
    """First oracle to claim a request wins; exhaustion is an error."""

    def __init__(self, oracles: Sequence[LengthOracle]):
        if not oracles:
            raise ValueError("OracleChain needs at least one oracle")
        self.oracles = tuple(oracles)

    def resolve(
        self,
        rid: int,
        arrival_t: float,
        headers: Mapping[str, str],
        payload: Mapping,
    ) -> Request | None:
        for oracle in self.oracles:
            request = oracle.resolve(rid, arrival_t, headers, payload)
            if request is not None:
                return request
        raise OracleError(
            "no oracle claimed the request (send x-pascal-* headers, or "
            "configure a trace/sampled oracle)"
        )


def default_oracle(
    dataset: str = "alpaca-eval-2.0", seed: int = 0
) -> OracleChain:
    """Headers when given, dataset sampling otherwise."""
    return OracleChain((HeaderOracle(), SampledOracle(dataset, seed)))
