"""Wall-clock pacing: run a :class:`~repro.api.session.ServingSession` in
real time.

The simulator is a discrete-event engine: left alone it burns through its
queue as fast as Python allows, the simulated clock jumping from event to
event.  The pacer anchors that clock to a monotonic wall clock so events
take effect when they are *due*::

    sim_now = (wall_clock() - anchor) * time_scale

Each :meth:`WallClockPacer.poll` advances the session through every event
whose simulated time has been reached and reports how long, in wall
seconds, the caller should sleep until the next one.  Between polls the
caller may inject work — submit fresh requests, cancel running ones —
which is how the HTTP gateway (:mod:`repro.serve.gateway`) feeds live
traffic into a paced session.

``time_scale`` is a speed multiplier in simulated seconds per wall
second: ``1.0`` replays in real time, ``10.0`` runs ten times faster than
real time, ``0.5`` at half speed.

Wall time never influences *simulated* outcomes.  The simulated timeline
is fully determined by the (simulated) timestamps of injected arrivals
and cancellations; the wall clock only decides when the engine is
cranked.  Re-running a recorded live trace offline therefore reproduces
the run event-for-event (see :mod:`repro.serve.record`).

The clock and sleep functions are injectable so unit tests drive the
pacer with a fake clock and never actually sleep.
"""

from __future__ import annotations

import math
import time
from typing import Callable

from repro.api.session import RequestHandle, ServingSession
from repro.workload.request import Request


def fast_forward_drain(
    session: ServingSession,
    deadline_s: float,
    *,
    clock: Callable[[], float] = time.monotonic,
    chunk_events: int = 5000,
) -> bool:
    """Finish a session's in-flight work as fast as possible, bounded.

    The graceful-shutdown tail: intake is cut first (no further arrivals
    are drawn from attached sources), then the remaining events run
    unpaced in bounded chunks until the session settles or ``deadline_s``
    wall seconds pass.  Returns ``True`` when everything reached a
    terminal state.
    """
    session.stop_intake()
    deadline = clock() + max(0.0, deadline_s)
    while not session.cluster.all_finished():
        if session.step(max_events=chunk_events) == 0:
            break
        if clock() > deadline:
            break
    return session.cluster.all_finished()


class WallClockPacer:
    """Anchor a serving session's simulated clock to wall time.

    ``max_poll_s`` caps every sleep the pacer recommends (and the ones
    :meth:`run` performs): even when the next simulated event is far
    away, the loop wakes at least that often to notice injected work and
    stop requests.
    """

    def __init__(
        self,
        session: ServingSession,
        *,
        time_scale: float = 1.0,
        max_poll_s: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not math.isfinite(time_scale) or time_scale <= 0:
            raise ValueError(
                f"time_scale must be positive and finite, got {time_scale!r}"
            )
        if not math.isfinite(max_poll_s) or max_poll_s <= 0:
            raise ValueError(
                f"max_poll_s must be positive and finite, got {max_poll_s!r}"
            )
        self.session = session
        self.time_scale = time_scale
        self.max_poll_s = max_poll_s
        self._clock = clock
        self._anchor: float | None = None

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Anchor simulated ``t=0`` at the current wall instant.

        Idempotent: a second call keeps the original anchor, so helpers
        that need a started pacer may call it defensively.
        """
        if self._anchor is None:
            self._anchor = self._clock()

    @property
    def started(self) -> bool:
        return self._anchor is not None

    @property
    def sim_now(self) -> float:
        """The simulated instant corresponding to the current wall time.

        This is where the simulated clock *should* be; the engine's own
        clock trails it until the next :meth:`poll` catches up.
        """
        if self._anchor is None:
            raise RuntimeError("pacer not started; call start() first")
        return (self._clock() - self._anchor) * self.time_scale

    # ------------------------------------------------------------------
    # pacing
    # ------------------------------------------------------------------
    def poll(self) -> float | None:
        """Run every event now due; wall seconds until the next one.

        Advances the session through all events with simulated time
        ``<= sim_now``, then returns how long the caller should sleep
        before the next event is due (0.0 when it is already overdue),
        or ``None`` when the engine is idle — no pending event, which
        with live traffic means "until something is injected".  Never
        sleeps itself.
        """
        self.session.step(until=self.sim_now)
        next_t = self.session.cluster.engine.peek_next_time()
        if next_t is None:
            return None
        return max(0.0, (next_t - self.sim_now) / self.time_scale)

    def idle(self) -> bool:
        """No pending event and every attached arrival source consumed."""
        engine = self.session.cluster.engine
        return engine.peek_next_time() is None and engine.feeds_exhausted()

    def finished(self) -> bool:
        """Idle *and* every submitted request reached a terminal state."""
        return self.idle() and self.session.cluster.all_finished()

    def run(
        self,
        *,
        sleep: Callable[[float], None] = time.sleep,
        should_stop: Callable[[], bool] | None = None,
    ) -> int:
        """Pace until the workload drains (or ``should_stop`` says so).

        The loop alternates :meth:`poll` with a sleep capped at
        ``max_poll_s``, so a stop request is honoured within one cap
        interval.  Returns the number of polls performed.
        """
        self.start()
        polls = 0
        while should_stop is None or not should_stop():
            delay = self.poll()
            polls += 1
            if delay is None:
                if self.finished():
                    break
                # Idle but unresolved work exists (or live injection is
                # expected): wake again after the cap.
                delay = self.max_poll_s
            sleep(min(delay, self.max_poll_s))
        return polls

    # ------------------------------------------------------------------
    # live injection
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> RequestHandle:
        """Inject a live request (construct it with ``arrival_t`` already
        stamped from :attr:`sim_now` — the request's internal accounting
        clock is seeded from its arrival time at construction)."""
        return self.session.submit(request)

    def cancel(self, target: RequestHandle | Request) -> bool:
        """Cancel a live request at the current wall instant.

        The cancellation is timestamped :attr:`sim_now` and takes effect
        when the engine catches up to it, in deterministic event order.
        Returns ``False`` when the request is already terminal.
        """
        return self.session.cancel(target, at=self.sim_now)
