"""Real-time serving: wall-clock pacing, HTTP gateway, live cancellation.

The rest of the repository runs the simulator as fast as Python allows —
the clock is a number that jumps from event to event.  This package runs
the *same* simulator against a wall clock:

* :class:`~repro.serve.pacer.WallClockPacer` anchors simulated time to a
  monotonic clock and sleeps until the next event is due, accepting
  externally injected arrivals and cancellations between events;
* :class:`~repro.serve.gateway.Gateway` is an asyncio, OpenAI-compatible
  HTTP endpoint (``POST /v1/chat/completions`` with SSE streaming) whose
  tokens are released by the pacer, and whose client disconnects become
  first-class cancellations;
* :mod:`~repro.serve.oracle` maps live HTTP requests onto simulator
  workload parameters (token lengths, dataset label);
* :mod:`~repro.serve.record` turns a live run's traffic — cancellations
  included — into a version-2 JSONL trace that replays offline,
  deterministically, through ``trace-compare``.

Wall time never influences *simulated* outcomes: it only decides when the
engine is cranked.  Everything here is therefore exempt from the PAS001
wall-clock lint rule (see ``docs/lint_rules.md``) but still records its
results on the deterministic simulated timeline.
"""

from repro.serve.gateway import Gateway
from repro.serve.oracle import (
    HeaderOracle,
    LengthOracle,
    OracleChain,
    OracleError,
    SampledOracle,
    TraceOracle,
    default_oracle,
)
from repro.serve.pacer import WallClockPacer, fast_forward_drain
from repro.serve.record import stamp_live_cancels

__all__ = [
    "Gateway",
    "HeaderOracle",
    "LengthOracle",
    "OracleChain",
    "OracleError",
    "SampledOracle",
    "TraceOracle",
    "WallClockPacer",
    "default_oracle",
    "fast_forward_drain",
    "stamp_live_cancels",
]
