"""OpenAI-compatible HTTP gateway over a wall-clock-paced session.

A small asyncio server (stdlib only — ``asyncio.start_server`` plus
hand-rolled HTTP/1.1 parsing) that turns the simulator into something a
real OpenAI client can talk to:

* ``POST /v1/chat/completions`` — submits a simulated request (shaped by
  the configured :mod:`~repro.serve.oracle`) and, with ``"stream": true``,
  streams SSE chunks whose timing is the *simulated* token timing, paced
  to wall time by the :class:`~repro.serve.pacer.WallClockPacer`;
* ``GET /v1/models`` — the single simulated model;
* ``GET /metrics`` — a JSON snapshot of the session's counters.

Cancellation is first-class: a client that drops its connection
mid-stream cancels the simulated request — KV freed, plans reformed —
and the abort shows up in ``/metrics`` (and any recorded trace) as
``cancelled``, never as a completion.

One event loop, no locks: the pacing task and every connection handler
interleave cooperatively.  Handlers never advance the simulation
directly; they inject work and wake the pacing task, which is the only
place :meth:`~repro.serve.pacer.WallClockPacer.poll` runs once
:meth:`Gateway.start` has anchored the clock.  After each poll the
pacing task *rotates the tick*: every open stream holds the current tick
event, and setting it wakes them all to emit whatever tokens the poll
released.

Token *content* is deterministic filler (``tok0 tok1 ...``): the
simulator models timing, not language.
"""

from __future__ import annotations

import asyncio
import itertools
import json
from typing import Mapping

from repro.api.session import RequestHandle
from repro.serve.oracle import LengthOracle, OracleError
from repro.serve.pacer import WallClockPacer

#: Live HTTP requests get rids from here up, far above any trace rid, so
#: recorded mixed (trace + live) runs never collide.
HTTP_RID_BASE = 10**6

#: Largest accepted request head + body (bytes); pure DoS hygiene.
_MAX_HEAD_BYTES = 64 * 1024
_MAX_BODY_BYTES = 4 * 1024 * 1024


def _token_text(index: int) -> str:
    """Deterministic filler for the ``index``-th answer token."""
    return f"tok{index} "


class Gateway:
    """The HTTP front door of a paced serving session."""

    def __init__(
        self,
        pacer: WallClockPacer,
        oracle: LengthOracle,
        *,
        host: str = "127.0.0.1",
        port: int = 8077,
        model_name: str = "pascal-sim",
    ):
        self.pacer = pacer
        self.oracle = oracle
        self.host = host
        self.port = port
        self.model_name = model_name
        self._rids = itertools.count(HTTP_RID_BASE)
        self._server: asyncio.AbstractServer | None = None
        self._pacing_task: asyncio.Task | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._stopping = False
        #: Rotated by the pacing loop after every poll; streams wait on
        #: the *current* tick to learn "new simulated time was released".
        self._tick = asyncio.Event()
        #: Set by handlers after injecting work, waking the pacing loop
        #: early so a fresh arrival doesn't wait out a long idle sleep.
        self._kick = asyncio.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Anchor the pacer, bind the socket, start the pacing loop."""
        self.pacer.start()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self._pacing_task = asyncio.create_task(self._pacing_loop())

    @property
    def bound_port(self) -> int:
        """The actually bound port (useful with ``port=0``)."""
        if self._server is None:
            raise RuntimeError("gateway not started")
        return int(self._server.sockets[0].getsockname()[1])

    async def stop(self) -> None:
        """Stop accepting, abort open streams, stop the pacing loop.

        Simulated requests behind aborted streams stay in flight; the
        caller decides whether to fast-forward them to completion (the
        CLI's drain) or abandon the session.
        """
        self._stopping = True
        self._kick.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._pacing_task is not None:
            await self._pacing_task
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    # ------------------------------------------------------------------
    # pacing
    # ------------------------------------------------------------------
    async def _pacing_loop(self) -> None:
        while not self._stopping:
            delay = self.pacer.poll()
            # Wake every open stream: the poll may have released tokens
            # or resolved requests.
            tick, self._tick = self._tick, asyncio.Event()
            tick.set()
            if delay is None:
                delay = self.pacer.max_poll_s
            kick = self._kick
            try:
                await asyncio.wait_for(
                    kick.wait(), timeout=min(delay, self.pacer.max_poll_s)
                )
            except asyncio.TimeoutError:
                pass
            if kick.is_set():
                self._kick = asyncio.Event()
        # Final rotation so any stream mid-wait re-checks state and sees
        # its task cancelled promptly.
        self._tick.set()

    def _wake_pacer(self) -> None:
        self._kick.set()

    async def _next_tick(self, eof: asyncio.Task) -> bool:
        """Wait for the next pacing tick; True if the client vanished."""
        tick_wait = asyncio.ensure_future(self._tick.wait())
        try:
            await asyncio.wait(
                {tick_wait, eof}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            tick_wait.cancel()
        return eof.done()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        try:
            await self._serve_connection(reader, writer)
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionError,
        ):
            pass  # client hung up mid-request / mid-response
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        head = await reader.readuntil(b"\r\n\r\n")
        if len(head) > _MAX_HEAD_BYTES:
            await self._respond_error(writer, 431, "headers too large")
            return
        request_line, headers = self._parse_head(head)
        parts = request_line.split(" ")
        if len(parts) != 3:
            await self._respond_error(writer, 400, "malformed request line")
            return
        method, path, _ = parts
        path = path.split("?", 1)[0]
        body = b""
        length_text = headers.get("content-length", "0") or "0"
        try:
            length = int(length_text)
        except ValueError:
            await self._respond_error(writer, 400, "bad content-length")
            return
        if length > _MAX_BODY_BYTES:
            await self._respond_error(writer, 413, "body too large")
            return
        if length:
            body = await reader.readexactly(length)

        if method == "GET" and path == "/v1/models":
            await self._respond_json(writer, 200, self._models_payload())
        elif method == "GET" and path == "/metrics":
            self.pacer.poll()  # counters as of this wall instant
            await self._respond_json(writer, 200, self._metrics_payload())
        elif method == "POST" and path == "/v1/chat/completions":
            await self._handle_completion(reader, writer, headers, body)
        else:
            await self._respond_error(
                writer, 404, f"no route for {method} {path}"
            )

    @staticmethod
    def _parse_head(head: bytes) -> tuple[str, dict[str, str]]:
        lines = head.decode("latin-1").split("\r\n")
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return lines[0], headers

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------
    def _models_payload(self) -> dict:
        return {
            "object": "list",
            "data": [
                {
                    "id": self.model_name,
                    "object": "model",
                    "created": 0,
                    "owned_by": "pascal-sim",
                }
            ],
        }

    def _metrics_payload(self) -> dict:
        session = self.pacer.session
        return {
            "policy": session.cluster.policy_name,
            "time_scale": self.pacer.time_scale,
            "sim_now": session.now,
            "submitted": session.n_submitted,
            "completed": session.n_completed,
            "cancelled": session.n_cancelled,
            "rejected": session.n_rejected,
            "in_flight": session.n_in_flight,
        }

    async def _handle_completion(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        headers: Mapping[str, str],
        body: bytes,
    ) -> None:
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            await self._respond_error(writer, 400, "body is not valid JSON")
            return
        if not isinstance(payload, dict):
            await self._respond_error(writer, 400, "body must be an object")
            return
        max_tokens = payload.get("max_tokens")
        if max_tokens is not None and (
            isinstance(max_tokens, bool)
            or not isinstance(max_tokens, int)
            or max_tokens < 1
        ):
            await self._respond_error(
                writer, 400, "max_tokens must be a positive integer"
            )
            return

        rid = next(self._rids)
        arrival_t = self.pacer.sim_now
        try:
            request = self.oracle.resolve(rid, arrival_t, headers, payload)
        except OracleError as exc:
            await self._respond_error(writer, 400, str(exc))
            return
        if request is None:
            await self._respond_error(
                writer, 400, "no oracle claimed the request"
            )
            return
        if max_tokens is not None:
            request.answer_len = min(request.answer_len, max_tokens)
        handle = self.pacer.submit(request)
        self._wake_pacer()

        eof = asyncio.ensure_future(self._watch_eof(reader))
        try:
            if payload.get("stream"):
                await self._stream_completion(writer, handle, eof)
            else:
                await self._await_completion(writer, handle, eof)
        finally:
            eof.cancel()
            # A handler exiting abnormally (client reset mid-write, task
            # cancelled at shutdown) must not leak a live simulated
            # request; cancel() is a no-op on terminal ones.
            if not handle.done:
                self.pacer.cancel(handle)
                self._wake_pacer()

    @staticmethod
    async def _watch_eof(reader: asyncio.StreamReader) -> None:
        """Resolve when the client closes (or resets) its connection."""
        try:
            while await reader.read(4096):
                pass  # ignore pipelined bytes; one request per connection
        except ConnectionError:
            pass

    async def _stream_completion(
        self,
        writer: asyncio.StreamWriter,
        handle: RequestHandle,
        eof: asyncio.Task,
    ) -> None:
        request = handle.request
        chat_id = f"chatcmpl-sim{request.rid}"
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        self._write_chunk(writer, chat_id, request, {"role": "assistant"})
        await writer.drain()
        sent = 0
        while True:
            times = request.answer_token_times
            while sent < len(times):
                self._write_chunk(
                    writer, chat_id, request, {"content": _token_text(sent)}
                )
                sent += 1
            await writer.drain()
            if handle.done:
                break
            if await self._next_tick(eof):
                # Client disconnected mid-stream: a first-class cancel.
                self.pacer.cancel(handle)
                self._wake_pacer()
                return
        if handle.status == RequestHandle.COMPLETED:
            self._write_chunk(
                writer, chat_id, request, {}, finish_reason="stop"
            )
            writer.write(b"data: [DONE]\n\n")
            await writer.drain()
        # Rejected or externally cancelled: the stream just ends — the
        # outcome is visible in /metrics, not invented as a completion.

    async def _await_completion(
        self,
        writer: asyncio.StreamWriter,
        handle: RequestHandle,
        eof: asyncio.Task,
    ) -> None:
        while not handle.done:
            if await self._next_tick(eof):
                self.pacer.cancel(handle)
                self._wake_pacer()
                return
        request = handle.request
        if handle.status != RequestHandle.COMPLETED:
            await self._respond_error(
                writer,
                503,
                f"request {handle.status} by the serving policy",
            )
            return
        content = "".join(
            _token_text(i) for i in range(len(request.answer_token_times))
        )
        await self._respond_json(
            writer,
            200,
            {
                "id": f"chatcmpl-sim{request.rid}",
                "object": "chat.completion",
                "created": int(request.arrival_t),
                "model": self.model_name,
                "choices": [
                    {
                        "index": 0,
                        "message": {"role": "assistant", "content": content},
                        "finish_reason": "stop",
                    }
                ],
                "usage": {
                    "prompt_tokens": request.prompt_len,
                    "completion_tokens": request.answer_len,
                    "reasoning_tokens": request.reasoning_len,
                    "total_tokens": request.prompt_len
                    + request.total_decode_tokens,
                },
            },
        )

    def _write_chunk(
        self,
        writer: asyncio.StreamWriter,
        chat_id: str,
        request,
        delta: dict,
        finish_reason: str | None = None,
    ) -> None:
        chunk = {
            "id": chat_id,
            "object": "chat.completion.chunk",
            "created": int(request.arrival_t),
            "model": self.model_name,
            "choices": [
                {"index": 0, "delta": delta, "finish_reason": finish_reason}
            ],
        }
        writer.write(b"data: " + json.dumps(chunk).encode("utf-8") + b"\n\n")

    # ------------------------------------------------------------------
    # response plumbing
    # ------------------------------------------------------------------
    _STATUS_TEXT = {
        200: "OK",
        400: "Bad Request",
        404: "Not Found",
        413: "Payload Too Large",
        431: "Request Header Fields Too Large",
        503: "Service Unavailable",
    }

    async def _respond_json(
        self, writer: asyncio.StreamWriter, status: int, payload: dict
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        text = self._STATUS_TEXT.get(status, "")
        writer.write(
            f"HTTP/1.1 {status} {text}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode("latin-1")
        )
        writer.write(body)
        await writer.drain()

    async def _respond_error(
        self, writer: asyncio.StreamWriter, status: int, message: str
    ) -> None:
        await self._respond_json(
            writer,
            status,
            {"error": {"message": message, "type": "invalid_request_error"}},
        )
