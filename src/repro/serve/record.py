"""Turn a live serving run into a replayable version-2 JSONL trace.

A paced run's simulated timeline is deterministic given the (simulated)
timestamps of its arrivals and cancellations — the wall clock only
decides when the engine is cranked.  Recording those timestamps into the
trace schema therefore captures the run completely: replaying the file
offline (``python -m repro.harness serve --trace ...`` or
``trace-compare``) reproduces every admission, token, and cancellation
event-for-event.

Arrival times are already on the requests.  Cancellation times live in
``cancelled_t`` (when the cancel *took effect*), which
:func:`stamp_live_cancels` copies onto the scripted ``cancel_at`` field
the trace format serializes as ``cancel_t``.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.workload.request import Request


def stamp_live_cancels(requests: Iterable[Request]) -> list[Request]:
    """Copy live cancellation instants onto the scripted ``cancel_at``.

    The trace schema requires ``cancel_t`` strictly after ``arrival_t``
    (a cancel at-or-before arrival would be a request that never
    existed), while a live client may abandon a request the instant it
    was submitted — or, for scripted background traffic, even before its
    nominal arrival.  Those are clamped to the smallest representable
    instant after arrival, which replays identically: the request is
    cancelled before it does any work.

    Returns the input as a list (requests are mutated in place).
    """
    requests = list(requests)
    for req in requests:
        if req.cancelled and req.cancelled_t is not None:
            req.cancel_at = max(
                req.cancelled_t, math.nextafter(req.arrival_t, math.inf)
            )
    return requests
