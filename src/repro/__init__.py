"""Reproduction of PASCAL (HPCA 2026): phase-aware scheduling for serving
reasoning-based LLMs.

Public API quick tour::

    from repro import ClusterConfig, Cluster, build_trace, TraceConfig, collect
    from repro.workload.datasets import ALPACA_EVAL

    config = ClusterConfig()                      # 8 x H100-96GB, 100 Gbps
    trace = build_trace(TraceConfig(ALPACA_EVAL, n_requests=200,
                                    arrival_rate_per_s=3.0, seed=7))
    cluster = Cluster(config, policy="pascal")
    cluster.run_trace(trace)
    metrics = collect(cluster)
    print(metrics.mean_ttft(), metrics.slo_report(config.slo).violation_rate)

For *online* serving — live submission, lifecycle events, admission
control, backpressure — use the :mod:`repro.api` façade instead::

    from repro.api import ServingSession, SyntheticSource

    session = ServingSession(policy="pascal")
    session.attach(SyntheticSource(TraceConfig(ALPACA_EVAL, 200, 3.0, 7)))
    session.step(until=60.0)          # or drain() to completion
    print(session.n_completed, session.metrics().mean_ttft())

Subpackages:

* :mod:`repro.api`       — the stable public serving façade:
  ``ServingSession`` (submit/observe/step/drain + lifecycle subscriber
  hooks), pull-based ``ArrivalSource`` workload iterators, and
  ``AdmissionPolicy`` pre-placement gates
* :mod:`repro.core`      — PASCAL itself (hierarchical scheduler,
  Algorithms 1/2, adaptive migration) plus the cluster-policy strategy
  layer: :class:`ClusterPolicy`, the policy registry, and the extension
  policies (``slo-least-load``, ``length-predictive``)
* :mod:`repro.schedulers`— FCFS / RR / oracle baselines
* :mod:`repro.serving`   — continuous-batching instance engine, token pacer
* :mod:`repro.cluster`   — multi-instance orchestration, fabric, migration
* :mod:`repro.workload`  — request model, dataset traces, arrival
  processes, JSONL trace record/replay
* :mod:`repro.perfmodel` — analytical + profile-table latency models
* :mod:`repro.memory`    — paged KV-cache pool with GPU/CPU residency
* :mod:`repro.metrics`   — QoE, SLO and tail-latency statistics
* :mod:`repro.harness`   — declarative per-figure experiment specs and a
  multiprocessing sweep runner (``python -m repro.harness all --jobs 8``)
"""

from repro.cluster.cluster import Cluster, POLICIES
from repro.config import (
    ClusterConfig,
    ExtensionPolicyConfig,
    FabricConfig,
    GPUConfig,
    InstanceConfig,
    ModelConfig,
    PoolSpec,
    SchedulerConfig,
    SLOConfig,
)
from repro.core.policy import ClusterPolicy
from repro.core.registry import (
    create_policy,
    policy_names,
    register_policy,
)
from repro.metrics.collector import RunMetrics, collect
from repro.workload.request import Phase, ReqState, Request
from repro.workload.trace import (
    ReplayTraceConfig,
    TraceConfig,
    TraceFormatError,
    build_replay_trace,
    build_trace,
    export_trace,
    iter_trace,
    load_trace,
)

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "ClusterConfig",
    "ClusterPolicy",
    "ExtensionPolicyConfig",
    "FabricConfig",
    "GPUConfig",
    "InstanceConfig",
    "ModelConfig",
    "Phase",
    "POLICIES",
    "PoolSpec",
    "ReplayTraceConfig",
    "ReqState",
    "Request",
    "RunMetrics",
    "SchedulerConfig",
    "SLOConfig",
    "TraceConfig",
    "TraceFormatError",
    "build_replay_trace",
    "build_trace",
    "collect",
    "export_trace",
    "iter_trace",
    "load_trace",
    "create_policy",
    "policy_names",
    "register_policy",
]
