"""``repro.shard`` — K-partition, epoch-synced sharded simulation.

Scale one simulated deployment across processes: the cluster splits into
``K`` sub-clusters, each simulated by its own engine in a shard worker,
fed by a deterministic hash-partition of the arrival stream
(:func:`~repro.api.sources.shard_of` on the request id — a stable
function, never Python's per-process ``hash()``).  Cross-shard coupling
(pool-wide admission census) is exchanged at fixed-length epoch barriers;
per-shard metrics merge into one
:class:`~repro.metrics.collector.RunMetrics`.

Determinism contract (pinned by ``tests/test_shard.py``; rationale in
``docs/sharding.md``):

* ``shards=1`` is byte-identical to the single-engine path — the golden
  tables do not move;
* for fixed ``shards``, results are invariant to execution strategy:
  worker count, worker grouping, and epoch pacing (absent a cross-shard
  admission gate) never change a byte;
* ``shards=K>1`` simulates a *K-way partitioned deployment* — a
  different (realistic) system than one globally scheduled cluster, so
  results legitimately differ from ``shards=1``.

Entry point: :func:`run_sharded`.  The harness routes through it whenever
a spec's ``shards`` setting exceeds 1 (``--shards K`` on the CLI).
"""

from repro.shard.coordinator import (
    DEFAULT_EPOCH_S,
    run_sharded,
    set_default_workers,
)
from repro.shard.merge import merge_metrics
from repro.shard.partitioner import (
    PartitionedSource,
    partition_counts,
    partition_offsets,
    partitions_of,
    shard_of,
    stable_shard64,
)
from repro.shard.protocol import (
    EpochDirective,
    EpochReport,
    GlobalAccounting,
    GlobalClusterView,
    ShardedAdmission,
    ShardTask,
)
from repro.shard.worker import ShardWorker, shard_worker_main

__all__ = [
    "DEFAULT_EPOCH_S",
    "EpochDirective",
    "EpochReport",
    "GlobalAccounting",
    "GlobalClusterView",
    "PartitionedSource",
    "ShardTask",
    "ShardWorker",
    "ShardedAdmission",
    "merge_metrics",
    "partition_counts",
    "partition_offsets",
    "partitions_of",
    "run_sharded",
    "set_default_workers",
    "shard_of",
    "shard_worker_main",
    "stable_shard64",
]
