"""Fold per-shard :class:`~repro.metrics.collector.RunMetrics` into one.

The merge is pure data-plumbing with two invariants:

* **Identity at one part.**  A single-part merge returns the part
  untouched — the ``shards=1`` path produces the exact object the
  unsharded engine would have, which is what lets the golden tables pin
  byte-identity.
* **Order independence.**  Multi-part output depends only on the *set* of
  per-shard results, never on arrival order of the parts: requests are
  re-sorted on ``(done_t, rid)`` (completion order, rid-tie-broken — two
  requests finishing at the same float instant on different shards have
  no cross-shard causal order, so the rid makes the choice explicit and
  stable), rejections on ``(arrival_t, rid)``, and predictor errors merge
  per sorted dataset name.  Shard-ordered inputs are still required for
  the concatenated views (transfer latencies) to be reproducible.

Throughput cannot be summed or averaged from per-shard values — each
shard computes tokens over *its own* completed span, and the spans
overlap — so it is recomputed from the merged request list with the same
formula :meth:`~repro.cluster.cluster.Cluster.throughput_tokens_per_s`
uses (total decode tokens over the completed-request makespan).
"""

from __future__ import annotations

from typing import Sequence

from repro.metrics.collector import RunMetrics
from repro.workload.request import Request


def merge_metrics(parts: Sequence[RunMetrics]) -> RunMetrics:
    """Combine per-shard run metrics (in shard order) into one record."""
    parts = list(parts)
    if not parts:
        raise ValueError("merge_metrics needs at least one part")
    if len(parts) == 1:
        return parts[0]
    policies = sorted({part.policy for part in parts})
    if len(policies) != 1:
        raise ValueError(
            f"cannot merge metrics from different policies: {policies}"
        )
    requests = sorted(
        (req for part in parts for req in part.requests),
        key=lambda req: (req.done_t, req.rid),
    )
    rejected = sorted(
        (req for part in parts for req in part.rejected),
        key=lambda req: (req.arrival_t, req.rid),
    )
    cancelled = sorted(
        (req for part in parts for req in part.cancelled),
        key=lambda req: (req.cancelled_t, req.rid),
    )
    transfer = [
        lat for part in parts for lat in part.transfer_latencies_s
    ]
    errors: dict[str, tuple[float, ...]] = {}
    for part in parts:
        for dataset, errs in sorted(part.predictor_abs_errors.items()):
            errors[dataset] = errors.get(dataset, ()) + tuple(errs)
    return RunMetrics(
        policy=policies[0],
        requests=requests,
        throughput_tokens_per_s=_merged_throughput(requests),
        transfer_latencies_s=transfer,
        predictor_abs_errors=errors,
        rejected=rejected,
        cancelled=cancelled,
    )


def _merged_throughput(completed: Sequence[Request]) -> float:
    """``Cluster.throughput_tokens_per_s`` over the merged request list."""
    if not completed:
        return 0.0
    start = min(req.arrival_t for req in completed)
    end = max(
        req.done_t for req in completed if req.done_t is not None
    )
    if end <= start:
        return 0.0
    total = sum(req.total_decode_tokens for req in completed)
    return total / (end - start)
