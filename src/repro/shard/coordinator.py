"""The sharded-run coordinator: partition, drive epochs, merge.

:func:`run_sharded` is the one entry point.  It splits the cluster into
``shards`` sub-clusters (:func:`~repro.shard.partitioner.partition_counts`),
hash-partitions the arrival stream across them, and drives every shard
through the epoch-barrier protocol until the pool drains, then merges the
per-shard metrics into one :class:`~repro.metrics.collector.RunMetrics`.

Two drivers speak the identical protocol:

* **serial** (``workers=1``): all shard workers live in this process and
  run each epoch in shard order — no pickling of simulation state, no
  child processes, and the fallback whenever spawning is impossible
  (daemonic pool workers, e.g. inside ``sweep(jobs=N)``).
* **parallel** (``workers>1``): workers are grouped onto child processes
  and exchange directives/reports over pipes, so shards simulate their
  epochs concurrently.

Both feed the same fold (:func:`_drive`), and results travel through the
same payload codec either way, so for a fixed ``shards`` the two drivers
are byte-identical — worker count is an execution knob, like ``--jobs``,
and never part of a result's identity.

Epoch pacing is the other non-semantic knob: barriers only *observe* the
simulation (``Cluster.epoch_boundary`` creates no events), so for a fixed
``shards`` any ``epoch_s`` yields the same result when no cross-shard
admission gate is installed, and census staleness — bounded by one epoch
— is the only ``epoch_s``-sensitive effect when one is.  Globally idle
stretches are skipped: when every shard's next event lies beyond the next
barrier, the coordinator jumps straight to the barrier containing the
earliest pending event.
"""

from __future__ import annotations

import dataclasses
import math
import multiprocessing
from typing import Callable, Iterable, Sequence

from repro.api.admission import AdmissionPolicy
from repro.api.sources import ArrivalSource
from repro.config import ClusterConfig
from repro.harness.cache import metrics_from_payload
from repro.metrics.collector import RunMetrics
from repro.shard.merge import merge_metrics
from repro.shard.partitioner import partition_counts, partition_offsets
from repro.shard.protocol import (
    EpochDirective,
    EpochReport,
    ShardTask,
    ShardWorkload,
)
from repro.shard.worker import ShardWorker, shard_worker_main
from repro.workload.request import Request
from repro.workload.trace import ReplayTraceConfig, TraceConfig

#: Default barrier spacing in simulated seconds.  Coarse on purpose:
#: barriers are cheap but not free (a full instance sync + one pipe
#: round-trip per shard), and the census they refresh only matters to
#: cross-shard admission gates.
DEFAULT_EPOCH_S = 30.0

#: ``(kind, payload)`` messages a worker group sends back (see
#: :func:`repro.shard.worker.shard_worker_main`).
_REPORTS = "reports"
_RESULTS = "results"
_ERROR = "error"

#: Process-wide default for ``run_sharded(workers=None)``; None means one
#: process per shard.  An execution knob, never part of a result's
#: identity — which is why it is set out-of-band (the CLI's
#: ``--shard-workers``) instead of riding in the settings dataclasses
#: that feed the cache key.
_default_workers: int | None = None


def set_default_workers(workers: int | None) -> None:
    """Set the process-wide worker default (None restores one-per-shard)."""
    global _default_workers
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    _default_workers = workers


def run_sharded(
    workload: ShardWorkload | ArrivalSource | Iterable[Request],
    policy: str = "pascal",
    config: ClusterConfig | None = None,
    shards: int = 1,
    epoch_s: float = DEFAULT_EPOCH_S,
    workers: int | None = None,
    admission: AdmissionPolicy | None = None,
) -> RunMetrics:
    """Run one workload on a ``shards``-way partitioned cluster.

    ``config`` describes the *whole* pool; its ``n_instances`` are divided
    near-evenly across shards, and arrivals route to shards by
    :func:`~repro.api.sources.shard_of` on the request id.  ``workers``
    bounds child processes (default: one per shard; 1 = serial,
    in-process).  ``admission``, when given, gates arrivals on pool-wide
    load via :class:`~repro.shard.protocol.ShardedAdmission`.

    With ``shards=1`` this is exactly the single-engine path — one
    partition containing every instance and every request — and the
    result is byte-identical to ``ServingSession`` + ``drain()`` (pinned
    by ``tests/test_shard.py``).
    """
    config = config or ClusterConfig()
    if epoch_s <= 0:
        raise ValueError(f"epoch_s must be positive, got {epoch_s}")
    counts = partition_counts(config.n_instances, shards)
    offsets = partition_offsets(counts)
    spec = _workload_spec(workload)
    tasks = tuple(
        ShardTask(
            shard=shard,
            n_shards=shards,
            policy=policy,
            config=dataclasses.replace(config, n_instances=counts[shard]),
            iid_offset=offsets[shard],
            workload=spec,
            admission=admission,
        )
        for shard in range(shards)
    )
    if workers is None:
        workers = _default_workers
    n_procs = shards if workers is None else max(1, min(workers, shards))
    if n_procs > 1 and multiprocessing.current_process().daemon:
        # Daemonic processes (e.g. sweep()'s pool workers) cannot spawn
        # children; the serial driver is byte-identical, just slower.
        n_procs = 1
    if n_procs == 1:
        results = _run_serial(tasks, epoch_s)
    else:
        results = _run_parallel(tasks, epoch_s, n_procs)
    results.sort(key=lambda item: item[0])
    return merge_metrics(
        [metrics_from_payload(payload) for _, payload in results]
    )


def _workload_spec(
    workload: ShardWorkload | ArrivalSource | Iterable[Request],
) -> ShardWorkload:
    """Normalize a workload into a picklable, re-iterable task payload.

    Arbitrary :class:`ArrivalSource` objects are rejected rather than
    silently materialized: sources are single-use iterables and may be
    unbounded, so callers must hand over the underlying config (re-
    synthesized per worker) or a finite request list (deep-copied per
    worker).
    """
    if isinstance(workload, (TraceConfig, ReplayTraceConfig)):
        return workload
    if isinstance(workload, ArrivalSource):
        raise TypeError(
            f"run_sharded cannot partition a bare "
            f"{type(workload).__name__}: sources are single-use; pass the "
            f"underlying TraceConfig/ReplayTraceConfig or a request list"
        )
    if isinstance(workload, Iterable):
        return tuple(workload)
    raise TypeError(
        f"cannot build a sharded workload from {type(workload).__name__!r}"
    )


def _drive(
    n_shards: int,
    epoch_s: float,
    exchange: Callable[[EpochDirective], list[EpochReport]],
    collect: Callable[[], list[tuple[int, dict]]],
) -> list[tuple[int, dict]]:
    """The barrier loop both drivers share.

    Broadcasts directives until every shard is drained, then asks for
    final results.  The fold is deterministic: reports are ordered by
    shard id before any reduction, and the next barrier time is a pure
    function of the current one and the shard-minimum next event time.
    """
    epoch = 0
    end_t = epoch_s
    peer_active: tuple[int, ...] = ()
    peer_kv: tuple[int, ...] = ()
    while True:
        directive = EpochDirective(
            epoch=epoch,
            end_t=end_t,
            peer_active=peer_active,
            peer_kv=peer_kv,
        )
        reports = sorted(exchange(directive), key=lambda r: r.shard)
        if len(reports) != n_shards:
            raise RuntimeError(
                f"epoch {epoch}: expected {n_shards} reports, "
                f"got {len(reports)}"
            )
        peer_active = tuple(r.active_requests for r in reports)
        peer_kv = tuple(r.kv_tokens for r in reports)
        pending = [
            r.next_event_t for r in reports if r.next_event_t is not None
        ]
        if not pending:
            break  # every shard drained: feeds exhausted, queues empty
        epoch += 1
        end_t += epoch_s
        target = min(pending)
        if target > end_t:
            # Globally idle epoch(s): jump to the barrier whose window
            # contains the earliest pending event.  ceil keeps barriers
            # on the fixed epoch grid, so pacing stays reproducible.
            end_t = max(end_t, epoch_s * math.ceil(target / epoch_s))
    return collect()


def _run_serial(
    tasks: Sequence[ShardTask], epoch_s: float
) -> list[tuple[int, dict]]:
    """All shards in this process, each epoch walked in shard order."""
    workers = [ShardWorker(task) for task in tasks]

    def exchange(directive: EpochDirective) -> list[EpochReport]:
        return [worker.run_epoch(directive) for worker in workers]

    def collect() -> list[tuple[int, dict]]:
        return [worker.result() for worker in workers]

    return _drive(len(tasks), epoch_s, exchange, collect)


def _run_parallel(
    tasks: Sequence[ShardTask], epoch_s: float, n_procs: int
) -> list[tuple[int, dict]]:
    """Shard workers grouped onto ``n_procs`` child processes."""
    groups = [list(tasks[g::n_procs]) for g in range(n_procs)]
    groups = [group for group in groups if group]
    conns = []
    procs = []
    try:
        for group in groups:
            parent, child = multiprocessing.Pipe()
            proc = multiprocessing.Process(
                target=shard_worker_main, args=(group, child), daemon=True
            )
            proc.start()
            child.close()
            conns.append(parent)
            procs.append(proc)

        def _gather(expect: str) -> list:
            gathered: list = []
            for conn in conns:
                kind, payload = conn.recv()
                if kind == _ERROR:
                    raise RuntimeError(f"shard worker failed:\n{payload}")
                if kind != expect:
                    raise RuntimeError(
                        f"protocol violation: expected {expect!r} message, "
                        f"got {kind!r}"
                    )
                gathered.extend(payload)
            return gathered

        def exchange(directive: EpochDirective) -> list[EpochReport]:
            for conn in conns:
                conn.send(directive)
            return _gather(_REPORTS)

        def collect() -> list[tuple[int, dict]]:
            stop = EpochDirective(epoch=-1, end_t=0.0, stop=True)
            for conn in conns:
                conn.send(stop)
            return _gather(_RESULTS)

        return _drive(len(tasks), epoch_s, exchange, collect)
    finally:
        for conn in conns:
            conn.close()
        for proc in procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - crash cleanup
                proc.terminate()
                proc.join()
