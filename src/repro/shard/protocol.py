"""The epoch-barrier protocol: what coordinator and workers exchange.

A sharded run advances in fixed-length *epochs* of simulated time.  At
each barrier the coordinator broadcasts one :class:`EpochDirective`
(where to stop, plus the previous barrier's cluster-wide census) and
every worker answers with one :class:`EpochReport` (progress counters and
the timestamp of its next pending event).  Both are small frozen
dataclasses so the exchange pickles cheaply over a pipe and is trivially
replayable in-process — the serial and multiprocess drivers speak exactly
the same protocol, which is what makes them byte-identical.

Cross-shard state is *census-grade*, not event-grade: a worker never sees
a peer's requests, only aggregate counts frozen at the last barrier.
:class:`ShardedAdmission` is the consumer — it lets any existing
:class:`~repro.api.admission.AdmissionPolicy` gate on pool-wide load by
presenting the local cluster plus the peer census as one duck-typed
cluster view.  The census is at most one epoch stale by construction;
``docs/sharding.md`` spells out the staleness contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.api.admission import AdmissionDecision, AdmissionPolicy
from repro.config import ClusterConfig
from repro.workload.request import Request
from repro.workload.trace import ReplayTraceConfig, TraceConfig

if TYPE_CHECKING:  # annotation-only: keep the runtime import graph acyclic
    from repro.cluster.cluster import Cluster

#: Workload shapes a :class:`ShardTask` can carry to a worker process.
#: Configs re-synthesize per worker; request tuples are deep-copied by the
#: worker so simulation never mutates caller-owned objects.
ShardWorkload = TraceConfig | ReplayTraceConfig | tuple[Request, ...]


@dataclass(frozen=True)
class ShardTask:
    """Everything one worker needs to simulate its partition.

    Self-contained and picklable: the worker rebuilds its sub-cluster,
    admission gate and partitioned arrival stream from this alone, so a
    task runs identically in-process or in a spawned worker.
    """

    #: This worker's partition index in ``[0, n_shards)``.
    shard: int
    n_shards: int
    #: Registered cluster-policy name (instances are not picklable).
    policy: str
    #: The *sub-cluster* shape: ``n_instances`` already divided down.
    config: ClusterConfig
    #: Global instance-id base (see ``partition_offsets``).
    iid_offset: int
    workload: ShardWorkload
    #: Base admission gate, or None for admit-everything.  Wrapped in
    #: :class:`ShardedAdmission` by the worker when ``n_shards > 1``.
    admission: AdmissionPolicy | None = None


@dataclass(frozen=True)
class EpochDirective:
    """Coordinator -> workers: advance to ``end_t``, then report.

    Carries the previous barrier's census (``peer_active[k]`` /
    ``peer_kv[k]`` are shard ``k``'s on-cluster request count and KV
    footprint), indexed by shard id.  Empty tuples mean "no census yet"
    (the first epoch).  ``stop=True`` asks for final results instead of
    another epoch.
    """

    epoch: int
    end_t: float
    stop: bool = False
    peer_active: tuple[int, ...] = ()
    peer_kv: tuple[int, ...] = ()


@dataclass(frozen=True)
class EpochReport:
    """Worker -> coordinator: state at the ``end_t`` barrier.

    ``next_event_t`` is the timestamp of the shard's next pending event
    (None when drained) — the coordinator uses the minimum across shards
    to fast-forward over globally idle epochs without losing barrier
    alignment.  ``active_requests``/``kv_tokens`` seed the next
    directive's census.
    """

    shard: int
    epoch: int
    end_t: float
    active: bool
    next_event_t: float | None
    submitted: int
    completed: int
    rejected: int
    in_flight: int
    active_requests: int
    kv_tokens: int


class GlobalAccounting:
    """A worker's view of the pool-wide census, updated at each barrier.

    Holds the *peer* totals (own shard excluded) so local live state and
    barrier-frozen remote state never double-count.
    """

    __slots__ = ("shard", "n_shards", "peer_active", "peer_kv")

    def __init__(self, shard: int, n_shards: int):
        self.shard = shard
        self.n_shards = n_shards
        self.peer_active = 0
        self.peer_kv = 0

    def apply(self, directive: EpochDirective) -> None:
        """Fold one directive's census into the peer totals."""
        if directive.peer_active:
            self.peer_active = (
                sum(directive.peer_active) - directive.peer_active[self.shard]
            )
        if directive.peer_kv:
            self.peer_kv = (
                sum(directive.peer_kv) - directive.peer_kv[self.shard]
            )


class _PeerLoad:
    """Pseudo-instance aggregating the peer shards' barrier census.

    Appended to the instance list a :class:`GlobalClusterView` exposes, so
    footprint-summing admission policies (e.g.
    :class:`~repro.api.admission.KVBudgetAdmission`) see remote KV tokens
    without knowing about sharding.  It reports no free capacity —
    placement never reads it because placement happens in the cluster
    policy, which only ever sees the real local instances.
    """

    __slots__ = ("_accounting",)

    def __init__(self, accounting: GlobalAccounting):
        self._accounting = accounting

    def total_kv_tokens(self) -> int:
        return self._accounting.peer_kv

    def live_requests(self) -> int:
        return self._accounting.peer_active

    def gpu_free_tokens(self) -> int:
        return 0


class GlobalClusterView:
    """Duck-typed cluster proxy: local live state + peer barrier census.

    Presented to the wrapped admission policy in place of the real
    :class:`~repro.cluster.cluster.Cluster`.  The load reads admission
    policies use (``active_requests()``, ``in_flight()``, the instance
    list's KV footprint) are widened by the peer totals; everything else
    passes through to the local cluster unchanged.
    """

    def __init__(self, cluster: "Cluster", accounting: GlobalAccounting):
        self._cluster = cluster
        self._accounting = accounting

    def active_requests(self) -> int:
        return self._cluster.active_requests() + self._accounting.peer_active

    def in_flight(self) -> int:
        return self._cluster.in_flight() + self._accounting.peer_active

    @property
    def instances(self) -> list:
        return [*self._cluster.instances, _PeerLoad(self._accounting)]

    def __getattr__(self, name: str):
        return getattr(self._cluster, name)


class ShardedAdmission(AdmissionPolicy):
    """Adapt any admission policy to pool-wide accounting.

    Wraps a base policy and hands it a :class:`GlobalClusterView`, so a
    bound written for one cluster ("at most N in flight", "KV footprint
    under B tokens") gates on the *whole pool*: local state is live,
    remote state is the last barrier's census (staleness <= one epoch).
    The decision itself — admit, reject, defer — is entirely the base
    policy's.
    """

    def __init__(self, base: AdmissionPolicy, accounting: GlobalAccounting):
        self.base = base
        self.accounting = accounting

    def decide(
        self, cluster: "Cluster", req: Request, now: float
    ) -> AdmissionDecision:
        view = GlobalClusterView(cluster, self.accounting)
        return self.base.decide(view, req, now)  # type: ignore[arg-type]
