"""Deterministic workload and cluster partitioning for sharded runs.

The partitioning primitives themselves (:func:`stable_shard64`,
:func:`shard_of`, :class:`PartitionedSource`) live in
:mod:`repro.api.sources` — the public workload layer — and are re-exported
here so shard-internal code has one import site.  The dependency direction
is deliberate: ``repro.api`` must never import ``repro.shard`` (the
coordinator builds :class:`~repro.api.session.ServingSession` objects), so
anything the API layer needs lives on the API side.

This module adds the *cluster*-side split: how ``n_instances`` simulation
instances divide into ``n_shards`` sub-clusters, and where each shard's
instance ids land in the global numbering.
"""

from __future__ import annotations

from typing import Sequence

from repro.api.sources import (
    ArrivalSource,
    MergedSource,
    PartitionedSource,
    SourceLike,
    as_source,
    shard_of,
    stable_shard64,
)

__all__ = [
    "ArrivalSource",
    "MergedSource",
    "PartitionedSource",
    "SourceLike",
    "as_source",
    "partition_counts",
    "partition_offsets",
    "partitions_of",
    "shard_of",
    "stable_shard64",
]


def partition_counts(n_instances: int, n_shards: int) -> tuple[int, ...]:
    """Instances per shard for an ``n_shards``-way split of the cluster.

    Near-even and deterministic: shard ``k`` gets ``n // K`` instances
    plus one of the ``n % K`` remainders, assigned to the lowest-numbered
    shards.  Every shard gets at least one instance — a shard with no
    instances could never place a request, so over-splitting is an error,
    not a degenerate run.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if n_shards > n_instances:
        raise ValueError(
            f"cannot split {n_instances} instance(s) into {n_shards} "
            f"shards: every shard needs at least one instance"
        )
    base, extra = divmod(n_instances, n_shards)
    return tuple(
        base + (1 if shard < extra else 0) for shard in range(n_shards)
    )


def partition_offsets(counts: Sequence[int]) -> tuple[int, ...]:
    """Global instance-id base of each shard (prefix sums of ``counts``).

    Shard ``k`` owns global instance ids ``[offsets[k], offsets[k] +
    counts[k])``; workers number instances locally from 0 and the
    coordinator adds the offset back when merging metrics, so a merged
    run reads like one cluster with contiguous instance ids.
    """
    offsets: list[int] = []
    total = 0
    for count in counts:
        offsets.append(total)
        total += count
    return tuple(offsets)


def partitions_of(
    workload: SourceLike, n_shards: int
) -> tuple[PartitionedSource, ...]:
    """The ``n_shards`` hash-partitions of one workload, in shard order.

    The partitions are disjoint and jointly exhaustive; recombining them
    with :class:`MergedSource` reproduces the original stream (see
    :class:`PartitionedSource` for the equal-time tie-break caveat).  The
    base is iterated once per partition, so ``workload`` must build a
    fresh iterator per ``__iter__`` — true of every config-backed source
    and of materialized request lists.
    """
    base = as_source(workload)
    return tuple(
        PartitionedSource(base, shard, n_shards) for shard in range(n_shards)
    )
