"""The shard worker: one sub-cluster simulation, drivable epoch by epoch.

:class:`ShardWorker` owns one :class:`~repro.api.session.ServingSession`
over the shard's sub-cluster, fed by the shard's hash-partition of the
arrival stream.  It exposes exactly two operations — :meth:`run_epoch`
and :meth:`result` — both pure functions of the directive stream, so the
coordinator can host workers in-process (serial driver) or behind a pipe
in a child process (:func:`shard_worker_main`) with byte-identical
outcomes.

A process hosts a *group* of workers (``tasks[g::n_procs]`` striding), so
``--shard-workers`` bounds process count independently of ``--shards``;
grouping cannot change results because each worker's epoch is a closed
computation over its own task and the shared directive.
"""

from __future__ import annotations

import copy
import traceback
from multiprocessing.connection import Connection
from typing import Sequence

from repro.api.session import ServingSession
from repro.harness.cache import metrics_to_payload
from repro.shard.partitioner import PartitionedSource, as_source, shard_of
from repro.shard.protocol import (
    EpochDirective,
    EpochReport,
    GlobalAccounting,
    ShardedAdmission,
    ShardTask,
)


class ShardWorker:
    """One partition's simulation, advanced one epoch at a time."""

    def __init__(self, task: ShardTask):
        self.task = task
        self.accounting = GlobalAccounting(task.shard, task.n_shards)
        admission = task.admission
        if admission is not None and task.n_shards > 1:
            admission = ShardedAdmission(admission, self.accounting)
        self.session = ServingSession(
            policy=task.policy, config=task.config, admission=admission
        )
        self.session.attach(self._source())

    def _source(self) -> PartitionedSource:
        """This shard's arrival stream.

        Request tuples are filtered first, then deep-copied — simulation
        mutates request state, and in the serial driver every worker
        shares the caller's objects.  Copying only the owned partition
        keeps the cost at 1x the workload across all shards.  The
        (re-)filtering PartitionedSource wrapper is a no-op on an
        already-filtered list but keeps every workload shape on the one
        code path.
        """
        task = self.task
        workload = task.workload
        if isinstance(workload, tuple):
            workload = [
                copy.deepcopy(req)
                for req in workload
                if shard_of(req.rid, task.n_shards) == task.shard
            ]
        return PartitionedSource(as_source(workload), task.shard, task.n_shards)

    def run_epoch(self, directive: EpochDirective) -> EpochReport:
        """Advance to the directive's barrier and report shard state."""
        self.accounting.apply(directive)
        cluster = self.session.cluster
        self.session.step(until=directive.end_t)
        cluster.epoch_boundary(
            min(directive.end_t, cluster.engine.horizon_s)
        )
        next_t = cluster.engine.peek_next_time()
        return EpochReport(
            shard=self.task.shard,
            epoch=directive.epoch,
            end_t=directive.end_t,
            active=next_t is not None,
            next_event_t=next_t,
            submitted=len(cluster.submitted),
            completed=len(cluster.completed),
            rejected=len(cluster.rejected),
            in_flight=cluster.in_flight(),
            active_requests=cluster.active_requests(),
            kv_tokens=sum(
                inst.total_kv_tokens() for inst in cluster.instances
            ),
        )

    def result(self) -> tuple[int, dict]:
        """``(shard, metrics payload)`` after the final barrier.

        Local instance ids are remapped onto the global grid before
        encoding, so the merged run reads like one cluster.  The payload
        codec (the disk cache's exact-round-trip encoder) is used in
        *both* drivers — the serial path pays the same encode/decode the
        pipe forces on the parallel path, which is what makes their
        results byte-identical rather than merely close.
        """
        cluster = self.session.cluster
        if not cluster.all_finished():
            raise RuntimeError(
                f"shard {self.task.shard} did not drain: "
                f"{len(cluster.completed)} completed + "
                f"{len(cluster.rejected)} rejected of "
                f"{len(cluster.submitted)} submitted"
            )
        metrics = self.session.metrics()
        offset = self.task.iid_offset
        if offset:
            for req in metrics.requests:
                if req.instance_id is not None:
                    req.instance_id += offset
            for req in metrics.rejected:
                if req.instance_id is not None:
                    req.instance_id += offset
        return self.task.shard, metrics_to_payload(metrics)


def shard_worker_main(
    tasks: Sequence[ShardTask], conn: Connection
) -> None:
    """Child-process entry point: host a worker group over a pipe.

    Messages are ``(kind, payload)`` tuples: each non-stop directive
    yields ``("reports", [EpochReport, ...])``, the stop directive yields
    ``("results", [(shard, payload), ...])``, and any exception is
    shipped back as ``("error", traceback_text)`` instead of dying
    silently and deadlocking the coordinator's recv.
    """
    try:
        workers = [ShardWorker(task) for task in tasks]
        while True:
            directive: EpochDirective = conn.recv()
            if directive.stop:
                conn.send(("results", [w.result() for w in workers]))
                return
            conn.send(("reports", [w.run_epoch(directive) for w in workers]))
    except EOFError:
        return  # coordinator hung up (error elsewhere); just exit
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:
            pass
