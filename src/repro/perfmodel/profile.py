"""Profile-table performance model.

The paper's simulator is *profile based*: it replays measured vLLM step
latencies instead of computing them from first principles (Section V-A,
citing Vidur/vTrain/Splitwise methodology).  This module reproduces that
design: a :class:`ProfileTable` holds step latencies sampled on a
(batch size x KV tokens) grid — here sampled from the analytical roofline
model standing in for hardware measurements — and serves queries by bilinear
interpolation, exactly as a profile-driven simulator would.

The interpolation error of this table against its source model is what the
simulator-validation experiment (Section V-A's MAPE numbers) quantifies.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.perfmodel.analytical import AnalyticalPerfModel, PerfModel

DEFAULT_BATCH_GRID = (1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128, 192, 256)
DEFAULT_KV_GRID = (
    0,
    1_024,
    4_096,
    16_384,
    32_768,
    65_536,
    131_072,
    262_144,
    524_288,
)
DEFAULT_PREFILL_GRID = (1, 16, 64, 128, 256, 512, 1024, 2048, 4096, 8192)


def _interp_weight(grid: tuple[int, ...], value: float) -> tuple[int, int, float]:
    """(lo index, hi index, weight of hi) for 1-D linear interpolation."""
    if value <= grid[0]:
        return 0, 0, 0.0
    if value >= grid[-1]:
        last = len(grid) - 1
        return last, last, 0.0
    hi = bisect.bisect_right(grid, value)
    lo = hi - 1
    span = grid[hi] - grid[lo]
    return lo, hi, (value - grid[lo]) / span


@dataclass
class ProfileTable(PerfModel):
    """Bilinear-interpolated step-latency table (a synthetic vLLM profile)."""

    batch_grid: tuple[int, ...]
    kv_grid: tuple[int, ...]
    prefill_grid: tuple[int, ...]
    decode_table: list[list[float]]
    prefill_table: list[float]
    swap_s_per_token: float

    @classmethod
    def from_model(
        cls,
        model: AnalyticalPerfModel,
        batch_grid: tuple[int, ...] = DEFAULT_BATCH_GRID,
        kv_grid: tuple[int, ...] = DEFAULT_KV_GRID,
        prefill_grid: tuple[int, ...] = DEFAULT_PREFILL_GRID,
    ) -> "ProfileTable":
        """Sample a source model onto the grid ("run the profiler")."""
        decode_table = [
            [model.decode_step_seconds(b, k) for k in kv_grid] for b in batch_grid
        ]
        prefill_table = [model.prefill_seconds(p) for p in prefill_grid]
        return cls(
            batch_grid=tuple(batch_grid),
            kv_grid=tuple(kv_grid),
            prefill_grid=tuple(prefill_grid),
            decode_table=decode_table,
            prefill_table=prefill_table,
            swap_s_per_token=model.swap_seconds(1),
        )

    def decode_step_seconds(self, batch_size: int, kv_tokens: int) -> float:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if kv_tokens < 0:
            raise ValueError(f"kv_tokens must be non-negative, got {kv_tokens}")
        b_lo, b_hi, wb = _interp_weight(self.batch_grid, batch_size)
        k_lo, k_hi, wk = _interp_weight(self.kv_grid, kv_tokens)
        t00 = self.decode_table[b_lo][k_lo]
        t01 = self.decode_table[b_lo][k_hi]
        t10 = self.decode_table[b_hi][k_lo]
        t11 = self.decode_table[b_hi][k_hi]
        low = t00 * (1 - wk) + t01 * wk
        high = t10 * (1 - wk) + t11 * wk
        return low * (1 - wb) + high * wb

    def prefill_seconds(self, prompt_tokens: int) -> float:
        if prompt_tokens < 0:
            raise ValueError(
                f"prompt_tokens must be non-negative, got {prompt_tokens}"
            )
        if prompt_tokens == 0:
            return 0.0
        lo, hi, w = _interp_weight(self.prefill_grid, prompt_tokens)
        return self.prefill_table[lo] * (1 - w) + self.prefill_table[hi] * w

    def swap_seconds(self, kv_tokens: int) -> float:
        if kv_tokens < 0:
            raise ValueError(f"kv_tokens must be non-negative, got {kv_tokens}")
        return kv_tokens * self.swap_s_per_token
