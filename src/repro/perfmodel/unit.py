"""Unit-cost performance model.

Figure 2 of the paper reasons about scheduling in abstract "time units":
every decode step costs one unit and everything else is free.  This model
reproduces that setting exactly; it is also handy in unit tests, where
physically calibrated latencies would only obscure the arithmetic.
"""

from __future__ import annotations

from repro.perfmodel.analytical import PerfModel


class UnitPerfModel(PerfModel):
    """decode = ``decode_step_s`` per step, prefill/swap configurable."""

    def __init__(
        self,
        decode_step_s: float = 1.0,
        prefill_s: float = 0.0,
        swap_s_per_token: float = 0.0,
    ):
        if decode_step_s <= 0:
            raise ValueError("decode step must be positive")
        if prefill_s < 0 or swap_s_per_token < 0:
            raise ValueError("latencies must be non-negative")
        self.decode_step_s = decode_step_s
        self.prefill_s = prefill_s
        self.swap_s_per_token = swap_s_per_token

    def decode_step_seconds(self, batch_size: int, kv_tokens: int) -> float:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        return self.decode_step_s

    def prefill_seconds(self, prompt_tokens: int) -> float:
        if prompt_tokens < 0:
            raise ValueError("prompt_tokens must be non-negative")
        return self.prefill_s if prompt_tokens > 0 else 0.0

    def swap_seconds(self, kv_tokens: int) -> float:
        if kv_tokens < 0:
            raise ValueError("kv_tokens must be non-negative")
        return kv_tokens * self.swap_s_per_token
