"""Analytical roofline performance model.

The paper uses a *profile-based* single-instance simulator: per-step GPU
latencies come from vLLM profiling data on a real H100 (Section V-A).  We
cannot profile hardware here, so this module provides the closed-form
roofline equivalent for the same model/GPU geometry:

* **decode step** — memory-bandwidth bound: the GPU streams all weights once
  per step plus the KV cache of every sequence in the batch, with a small
  per-sequence kernel overhead;
* **prefill step** — compute bound: ~2 FLOPs per parameter per prompt token
  at a prefill MFU, plus a fixed launch overhead;
* **swap** — whole-request KV movement over PCIe (preemption / resumption);
* **migration serialization** — KV bytes over the cluster fabric link.

`repro.perfmodel.profile.ProfileTable` samples this model onto a grid and
interpolates, mirroring the paper's methodology; the validation experiment
(Section V-A's MAPE table) compares the two.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GPUConfig, ModelConfig


@dataclass(frozen=True)
class StepShape:
    """Inputs that determine one engine step's latency."""

    batch_size: int
    kv_tokens: int
    prefill_tokens: int = 0


class PerfModel:
    """Base interface: latency of engine steps and data movement."""

    def decode_step_seconds(self, batch_size: int, kv_tokens: int) -> float:
        raise NotImplementedError

    def prefill_seconds(self, prompt_tokens: int) -> float:
        raise NotImplementedError

    def swap_seconds(self, kv_tokens: int) -> float:
        raise NotImplementedError


class AnalyticalPerfModel(PerfModel):
    """Roofline model parameterized by model and GPU geometry."""

    #: Fixed per-step scheduling/launch overhead (seconds).
    step_overhead_s = 0.002
    #: Per-sequence attention-kernel overhead during decode (seconds).
    per_seq_overhead_s = 2.0e-4
    #: Small batches under-utilize the memory system: the effective
    #: bandwidth penalty decays as ~1/batch (kernel-efficiency curve).
    small_batch_penalty = 0.15

    def __init__(self, model: ModelConfig, gpu: GPUConfig):
        self.model = model
        self.gpu = gpu
        effective_bw = gpu.hbm_bandwidth * gpu.bw_efficiency
        self._weights_read_s = model.weight_bytes / effective_bw
        self._kv_read_s_per_token = model.kv_bytes_per_token / effective_bw
        self._prefill_s_per_token = (
            2.0 * model.n_params / (gpu.peak_flops * gpu.mfu_prefill)
        )
        # Quadratic self-attention FLOPs dominate very long prompts:
        # ~4 * layers * hidden * P^2 per forward pass.
        self._prefill_s_per_token_sq = (
            4.0
            * model.n_layers
            * model.hidden_size
            / (gpu.peak_flops * gpu.mfu_prefill)
        )
        self._swap_s_per_token = model.kv_bytes_per_token / gpu.pcie_bandwidth

    def decode_step_seconds(self, batch_size: int, kv_tokens: int) -> float:
        """One token for every sequence in the batch.

        ``kv_tokens`` is the total cached context across the batch: decode
        attention must stream all of it from HBM, which is what makes large
        aggregate KV footprints slow down every co-batched request.  The
        ``small_batch_penalty`` term models the measured kernel-efficiency
        curve (tiny batches do not saturate HBM), which is what makes this
        model non-trivial for the profile table to interpolate.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if kv_tokens < 0:
            raise ValueError(f"kv_tokens must be non-negative, got {kv_tokens}")
        efficiency = 1.0 + self.small_batch_penalty / batch_size
        return (
            self.step_overhead_s
            + self._weights_read_s * efficiency
            + batch_size * self.per_seq_overhead_s
            + kv_tokens * self._kv_read_s_per_token
        )

    def prefill_seconds(self, prompt_tokens: int) -> float:
        """Process ``prompt_tokens`` prompt tokens in one forward pass."""
        if prompt_tokens < 0:
            raise ValueError(
                f"prompt_tokens must be non-negative, got {prompt_tokens}"
            )
        if prompt_tokens == 0:
            return 0.0
        return (
            self.step_overhead_s
            + prompt_tokens * self._prefill_s_per_token
            + prompt_tokens * prompt_tokens * self._prefill_s_per_token_sq
        )

    def swap_seconds(self, kv_tokens: int) -> float:
        """Move one request's KV cache across PCIe (either direction)."""
        if kv_tokens < 0:
            raise ValueError(f"kv_tokens must be non-negative, got {kv_tokens}")
        return kv_tokens * self._swap_s_per_token

    def decode_rate_tokens_per_s(self, batch_size: int, kv_tokens: int) -> float:
        """Aggregate decode throughput for a steady batch shape."""
        return batch_size / self.decode_step_seconds(batch_size, kv_tokens)
