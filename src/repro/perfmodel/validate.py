"""Simulator-validation harness (Section V-A's MAPE table).

The paper validates its profile-based simulator against a real H100 node
and reports MAPE of 1.62 % (end-to-end latency), 12.6 % (mean TTFT) and
6.49 % (TPOT).  We have no hardware, so the equivalent code path is
exercised by comparing two full simulator runs that differ only in the
performance model driving them:

* **reference** — the analytical roofline model (stands in for the
  measured system), and
* **candidate** — the :class:`~repro.perfmodel.profile.ProfileTable`
  sampled from that reference (stands in for the profile-driven simulator).

Any divergence is interpolation error propagated through scheduling
decisions, which is precisely the error class the paper's validation
quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ValidationReport:
    """MAPE of the candidate run against the reference run."""

    mape_e2e_pct: float
    mape_ttft_pct: float
    mape_tpot_pct: float
    n_requests: int

    def rows(self) -> list[tuple[str, float, float]]:
        """(metric, paper MAPE %, measured MAPE %) rows for reporting."""
        return [
            ("end-to-end latency", 1.62, self.mape_e2e_pct),
            ("mean TTFT", 12.6, self.mape_ttft_pct),
            ("TPOT", 6.49, self.mape_tpot_pct),
        ]


def mape(reference: list[float], candidate: list[float]) -> float:
    """Mean absolute percentage error, in percent.

    Pairs whose reference value is zero are skipped (a percentage error is
    undefined there); an empty comparison raises.
    """
    if len(reference) != len(candidate):
        raise ValueError(
            f"length mismatch: {len(reference)} vs {len(candidate)}"
        )
    terms = [
        abs(c - r) / abs(r)
        for r, c in zip(reference, candidate)
        if r != 0.0
    ]
    if not terms:
        raise ValueError("no nonzero reference values to compare")
    return 100.0 * sum(terms) / len(terms)


def paired_request_metrics(requests) -> tuple[list[float], list[float], list[float]]:
    """Per-request (e2e latency, TTFT, mean TPOT) for finished requests."""
    e2e, ttft, tpot = [], [], []
    for req in requests:
        if req.done_t is None or req.first_answer_t is None:
            continue
        e2e.append(req.e2e_latency())
        ttft.append(req.ttft())
        times = req.answer_token_times
        if len(times) >= 2:
            tpot.append((times[-1] - times[0]) / (len(times) - 1))
        else:
            tpot.append(0.0)
    return e2e, ttft, tpot


def validate_runs(reference_requests, candidate_requests) -> ValidationReport:
    """Build the MAPE report from two runs of the same trace."""
    ref = {r.rid: r for r in reference_requests}
    cand = {r.rid: r for r in candidate_requests}
    shared = sorted(set(ref) & set(cand))
    ref_list = [ref[rid] for rid in shared]
    cand_list = [cand[rid] for rid in shared]
    ref_e2e, ref_ttft, ref_tpot = paired_request_metrics(ref_list)
    cand_e2e, cand_ttft, cand_tpot = paired_request_metrics(cand_list)
    n = min(len(ref_e2e), len(cand_e2e))
    return ValidationReport(
        mape_e2e_pct=mape(ref_e2e[:n], cand_e2e[:n]),
        mape_ttft_pct=mape(ref_ttft[:n], cand_ttft[:n]),
        mape_tpot_pct=mape(ref_tpot[:n], cand_tpot[:n]),
        n_requests=n,
    )
