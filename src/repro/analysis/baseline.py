"""Grandfathered-findings baseline for the lint engine.

A baseline file records findings that are *known and justified* — the
linter reports them as suppressed instead of failing the run, so the
gate stays green on historical debt while any **new** finding still goes
red.  Entries match on file + rule code + a source-snippet substring
(never on line numbers, which churn with every edit above the finding):

.. code-block:: json

    {
      "format": "pascal-lint-baseline",
      "version": 1,
      "entries": [
        {
          "file": "src/repro/sim/events.py",
          "code": "PAS004",
          "match": "self.time != other.time",
          "justification": "comparator tie detection; exact by design"
        }
      ]
    }

An entry that matches nothing is *stale* — reported as a warning so dead
suppressions get cleaned up rather than silently masking future
findings.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic

#: Conventional baseline location, picked up when it exists.
DEFAULT_BASELINE = "lint_baseline.json"


class BaselineError(ValueError):
    """Unreadable or malformed baseline file."""


@dataclass
class BaselineEntry:
    """One grandfathered finding."""

    file: str
    code: str
    #: Substring matched against the finding's source snippet (and, as a
    #: fallback, its message).  Empty = match every ``file``+``code``
    #: finding.
    match: str = ""
    justification: str = ""
    #: Findings this entry absorbed in the current run.
    hits: int = field(default=0, compare=False)

    def matches(self, diag: Diagnostic) -> bool:
        if diag.path != self.file or diag.code != self.code:
            return False
        return (
            not self.match
            or self.match in diag.snippet
            or self.match in diag.message
        )

    def as_dict(self) -> dict[str, str]:
        return {
            "file": self.file,
            "code": self.code,
            "match": self.match,
            "justification": self.justification,
        }


class Baseline:
    """A loaded baseline: entry matching plus staleness accounting."""

    def __init__(self, entries: list[BaselineEntry] | None = None):
        self.entries: list[BaselineEntry] = list(entries or [])

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        try:
            doc = json.loads(Path(path).read_text())
        except OSError as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise BaselineError(
                f"baseline {path} is not valid JSON: {exc}"
            ) from exc
        if (
            not isinstance(doc, dict)
            or doc.get("format") != "pascal-lint-baseline"
            or doc.get("version") != 1
        ):
            raise BaselineError(
                f"baseline {path}: expected a pascal-lint-baseline v1 "
                f"document"
            )
        entries = []
        for raw in doc.get("entries", []):
            if not isinstance(raw, dict) or "file" not in raw or "code" not in raw:
                raise BaselineError(
                    f"baseline {path}: every entry needs `file` and `code`"
                )
            entries.append(
                BaselineEntry(
                    file=str(raw["file"]),
                    code=str(raw["code"]),
                    match=str(raw.get("match", "")),
                    justification=str(raw.get("justification", "")),
                )
            )
        return cls(entries)

    def absorb(self, diag: Diagnostic) -> bool:
        """True (and counted) if some entry grandfathers this finding."""
        for entry in self.entries:
            if entry.matches(diag):
                entry.hits += 1
                return True
        return False

    def stale_entries(self) -> list[BaselineEntry]:
        """Entries that matched no finding in the run just filtered."""
        return [entry for entry in self.entries if entry.hits == 0]

    def save(self, path: str | Path) -> None:
        doc = {
            "format": "pascal-lint-baseline",
            "version": 1,
            "entries": [entry.as_dict() for entry in self.entries],
        }
        Path(path).write_text(json.dumps(doc, indent=2) + "\n")


def baseline_from_diagnostics(diagnostics: list[Diagnostic]) -> Baseline:
    """A fresh baseline grandfathering exactly the given findings.

    Used by ``--update-baseline``: each entry matches on the finding's
    source snippet and carries a TODO justification for a human to fill
    in — an empty justification is a review prompt, not a free pass.
    """
    entries = [
        BaselineEntry(
            file=diag.path,
            code=diag.code,
            match=diag.snippet,
            justification="TODO: justify or fix",
        )
        for diag in diagnostics
    ]
    return Baseline(entries)
