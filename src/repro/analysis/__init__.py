"""Static analysis for the reproduction's determinism & API contracts.

Every guarantee the harness sells — byte-identical golden tables,
parallel ``sweep()`` == serial, cache hits == recompute — rests on
coding rules (seeded RNG only, no wall clock in sim paths, ordered
iteration, complete cache keys) that property tests can only catch
after the fact.  This package enforces them at diff time: an AST-based
lint engine with PASCAL-specific rules (PAS001-PAS008), inline
suppressions, a grandfathered-findings baseline, and text/JSON/GitHub
output.

Entry points:

* CLI — ``python -m repro.harness lint [PATHS...]`` (or
  ``python -m repro.analysis``);
* library — :func:`repro.analysis.engine.lint_paths`.

Rule reference: ``docs/lint_rules.md``.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import LintReport, lint_paths
from repro.analysis.rules import RULES, FileContext, LintRule, register_rule

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Diagnostic",
    "FileContext",
    "LintReport",
    "LintRule",
    "RULES",
    "lint_paths",
    "register_rule",
]
