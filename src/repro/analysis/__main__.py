"""``python -m repro.analysis`` — direct access to the lint CLI."""

from __future__ import annotations

import sys

from repro.analysis.cli import run_lint

if __name__ == "__main__":
    raise SystemExit(run_lint(sys.argv[1:]))
