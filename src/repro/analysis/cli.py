"""The ``lint`` command-line front end.

Reached as ``python -m repro.harness lint ...`` (the harness dispatches
here) or directly as ``python -m repro.analysis``::

    python -m repro.harness lint                      # src + tests
    python -m repro.harness lint src/repro/core       # a subtree
    python -m repro.harness lint --format github      # CI annotations
    python -m repro.harness lint --baseline lint_baseline.json
    python -m repro.harness lint --update-baseline    # regenerate it

Exit codes: 0 = clean (every finding baselined), 1 = new findings,
2 = usage error.  ``lint_baseline.json`` in the working directory is
picked up automatically when present; ``--baseline`` overrides.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    Baseline,
    BaselineError,
    baseline_from_diagnostics,
)
from repro.analysis.diagnostics import FORMATS
from repro.analysis.engine import lint_paths

#: Default lint targets when no paths are given.
DEFAULT_PATHS = ("src", "tests")


def _lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness lint",
        description=(
            "AST-based determinism & contract linter (rules PAS001-PAS008; "
            "see docs/lint_rules.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help=f"files or directories to lint (default: "
        f"{' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=f"grandfathered-findings file (default: ./{DEFAULT_BASELINE} "
        f"when present)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(FORMATS),
        default="text",
        help="report format (default: text; `github` emits workflow "
        "annotations)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to grandfather every current finding "
        "(entries get a TODO justification to fill in)",
    )
    return parser


def run_lint(argv: Sequence[str]) -> int:
    """The `lint` subcommand; returns the process exit status."""
    args = _lint_parser().parse_args(list(argv))
    paths = args.paths or list(DEFAULT_PATHS)

    baseline_path = args.baseline
    if baseline_path is None and Path(DEFAULT_BASELINE).is_file():
        baseline_path = DEFAULT_BASELINE
    baseline = None
    if baseline_path is not None and not args.update_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            print(f"lint: {exc}", file=sys.stderr)
            return 2

    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(
            f"lint: no such path(s): {', '.join(missing)}", file=sys.stderr
        )
        return 2

    report = lint_paths(paths, baseline=baseline)

    if args.update_baseline:
        target = baseline_path or DEFAULT_BASELINE
        baseline_from_diagnostics(report.new).save(target)
        print(
            f"lint: wrote {len(report.new)} entrie(s) to {target}; "
            f"fill in the TODO justifications",
            file=sys.stderr,
        )
        return 0

    render = FORMATS[args.format]
    print(render(report.new, report.baselined, report.n_files))
    for entry in report.stale:
        print(
            f"lint: stale baseline entry ({entry.file}, {entry.code}, "
            f"match={entry.match!r}) matched nothing — remove it",
            file=sys.stderr,
        )
    return 0 if report.ok else 1
