"""Diagnostic records and the three lint output formats.

A :class:`Diagnostic` is one finding: ``file:line:col: CODE message``.
Diagnostics order by location (then code), so every report renders in a
stable, diff-friendly order regardless of rule execution order — the same
determinism contract the rules themselves enforce.

Three renderers:

* ``text`` — the classic compiler format, one finding per line;
* ``json`` — a versioned document for tooling (and for regenerating the
  baseline file);
* ``github`` — GitHub Actions workflow commands (``::error file=...``),
  so CI findings annotate the diff inline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One lint finding, anchored to a source location."""

    #: POSIX-style path, relative to the lint invocation's root.
    path: str
    line: int
    col: int
    #: Rule code (``PAS001`` ... ``PAS008``; ``PAS000`` = unparseable file).
    code: str
    message: str
    #: The stripped source line, for baseline matching and human context.
    #: Excluded from ordering/equality: two findings at one location with
    #: equal messages are the same finding.
    snippet: str = field(default="", compare=False)

    def text(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def github(self) -> str:
        message = self.message.replace("\n", " ")
        return (
            f"::error file={self.path},line={self.line},col={self.col},"
            f"title={self.code}::{message}"
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "file": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "snippet": self.snippet,
        }


def render_text(
    new: list[Diagnostic],
    baselined: list[Diagnostic],
    n_files: int,
) -> str:
    """The human-facing report: findings, then a one-line summary."""
    lines = [diag.text() for diag in new]
    summary = (
        f"{len(new)} finding(s) in {n_files} file(s)"
        f" ({len(baselined)} baselined)"
        if baselined
        else f"{len(new)} finding(s) in {n_files} file(s)"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    new: list[Diagnostic],
    baselined: list[Diagnostic],
    n_files: int,
) -> str:
    """Versioned machine-readable report (``pascal-lint`` format)."""
    doc = {
        "format": "pascal-lint",
        "version": 1,
        "n_files": n_files,
        "diagnostics": [d.as_dict() for d in new],
        "baselined": [d.as_dict() for d in baselined],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def render_github(
    new: list[Diagnostic],
    baselined: list[Diagnostic],
    n_files: int,
) -> str:
    """GitHub Actions annotations: errors for findings, a notice summary."""
    lines = [diag.github() for diag in new]
    lines.append(
        f"::notice title=pascal-lint::{len(new)} finding(s) in "
        f"{n_files} file(s), {len(baselined)} baselined"
    )
    return "\n".join(lines)


#: ``--format`` choice -> renderer.
FORMATS = {
    "text": render_text,
    "json": render_json,
    "github": render_github,
}
