"""The lint engine: file discovery, suppression, rule dispatch.

:func:`lint_paths` is the library entry point (the CLI in
:mod:`repro.analysis.cli` is a thin shell around it):

1. expand the given paths into a sorted list of ``.py`` files —
   directories recurse (skipping :data:`DEFAULT_EXCLUDES`, e.g. the
   deliberately-bad lint fixtures), explicitly named files are always
   linted (that is how the CI smoke proves the gate goes red);
2. parse each file once, run every registered per-file rule whose scope
   matches, then the project-level rules over the whole set;
3. drop findings carrying an inline ``# lint-ignore[: CODE[,CODE]]``
   suppression (same line, or a standalone comment on the line above);
4. split the rest into *new* vs *baselined* via the optional
   :class:`~repro.analysis.baseline.Baseline`.

The walk order, rule order and diagnostic sort are all deterministic —
the linter holds itself to the contracts it enforces.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules import RULES, FileContext, LintRule

# Import for the side effect of registering the project-level rule.
from repro.analysis import contracts  # noqa: F401  (registers PAS005)

#: Directory names never descended into during discovery.
SKIP_DIRNAMES = frozenset({"__pycache__", ".git", ".hypothesis", ".venv"})

#: Relative paths excluded from *directory expansion* (explicitly named
#: files are still linted): the corpus of deliberately-bad rule fixtures.
DEFAULT_EXCLUDES = ("tests/fixtures/lint",)

#: ``# lint-ignore`` (all codes) or ``# lint-ignore: PAS003, PAS004``;
#: trailing prose after the code list is welcome (justify the ignore!).
_IGNORE_RE = re.compile(
    r"#\s*lint-ignore\b"
    r"(?::\s*(?P<codes>[A-Z0-9_]+(?:\s*,\s*[A-Z0-9_]+)*))?"
)

#: Pseudo-code attached to unparseable files.
PARSE_ERROR_CODE = "PAS000"


@dataclass
class LintReport:
    """The outcome of one lint run."""

    #: Findings not absorbed by the baseline (the gate fails on these).
    new: list[Diagnostic] = field(default_factory=list)
    #: Findings the baseline grandfathers.
    baselined: list[Diagnostic] = field(default_factory=list)
    #: Baseline entries that matched nothing (clean-up warnings).
    stale: list[BaselineEntry] = field(default_factory=list)
    n_files: int = 0

    @property
    def ok(self) -> bool:
        return not self.new

    def all_diagnostics(self) -> list[Diagnostic]:
        return sorted(self.new + self.baselined)


def iter_python_files(
    paths: Sequence[str | Path],
    excludes: Sequence[str] = DEFAULT_EXCLUDES,
    root: Path | None = None,
) -> list[Path]:
    """Expand paths into a deterministic, deduplicated ``.py`` file list.

    Directories recurse in sorted order; ``excludes`` (relative-path
    prefixes) and :data:`SKIP_DIRNAMES` apply only during that
    expansion, so naming a file (or an excluded directory) explicitly
    always lints it.
    """
    root = (root or Path.cwd()).resolve()
    exclude_prefixes = tuple(str(Path(e)) for e in excludes)
    seen: set[Path] = set()
    ordered: list[Path] = []

    def add(path: Path) -> None:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            ordered.append(path)

    def excluded(path: Path) -> bool:
        rel = _relpath(path, root)
        return any(
            rel == prefix or rel.startswith(prefix + "/")
            for prefix in (p.replace("\\", "/") for p in exclude_prefixes)
        )

    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            # Naming an excluded directory explicitly lints it; the
            # exclusion list only prunes *recursion* from above.
            prune = not excluded(path)
            for candidate in sorted(path.rglob("*.py")):
                if SKIP_DIRNAMES & set(candidate.parts):
                    continue
                if prune and excluded(candidate):
                    continue
                add(candidate)
        elif path.suffix == ".py":
            add(path)
    return ordered


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def _suppressions(lines: Sequence[str]) -> dict[int, frozenset[str] | None]:
    """Line number -> suppressed codes (None = all codes).

    A trailing ``# lint-ignore: PAS003`` suppresses its own line; a
    standalone ``# lint-ignore`` comment line suppresses the next line.
    """
    table: dict[int, frozenset[str] | None] = {}

    def merge(lineno: int, codes: frozenset[str] | None) -> None:
        existing = table.get(lineno, frozenset())
        if codes is None or existing is None:
            table[lineno] = None
        else:
            table[lineno] = existing | codes

    for idx, line in enumerate(lines, start=1):
        match = _IGNORE_RE.search(line)
        if match is None:
            continue
        raw = match.group("codes")
        codes = (
            frozenset(c.strip() for c in raw.split(",") if c.strip())
            if raw
            else None
        )
        target = idx + 1 if line.lstrip().startswith("#") else idx
        merge(target, codes)
    return table


def _suppressed(
    diag: Diagnostic, table: dict[int, frozenset[str] | None]
) -> bool:
    codes = table.get(diag.line, frozenset())
    return codes is None or diag.code in codes


def load_context(path: Path, root: Path) -> FileContext | Diagnostic:
    """Parse one file; a syntax error becomes a PAS000 diagnostic."""
    relpath = _relpath(path, root)
    try:
        source = path.read_text()
    except (OSError, UnicodeDecodeError) as exc:
        return Diagnostic(
            path=relpath,
            line=1,
            col=1,
            code=PARSE_ERROR_CODE,
            message=f"cannot read file: {exc}",
        )
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return Diagnostic(
            path=relpath,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            code=PARSE_ERROR_CODE,
            message=f"syntax error: {exc.msg}",
        )
    return FileContext(
        path=path,
        relpath=relpath,
        tree=tree,
        lines=tuple(source.splitlines()),
    )


def lint_paths(
    paths: Sequence[str | Path],
    baseline: Baseline | None = None,
    excludes: Sequence[str] = DEFAULT_EXCLUDES,
    rules: Iterable[LintRule] | None = None,
    root: Path | None = None,
) -> LintReport:
    """Run the registered rules over ``paths`` and split by baseline."""
    root = (root or Path.cwd()).resolve()
    active = list(rules) if rules is not None else [
        RULES[code] for code in sorted(RULES)
    ]
    per_file = [rule for rule in active if not rule.project_level]
    project = [rule for rule in active if rule.project_level]

    contexts: dict[str, FileContext] = {}
    tables: dict[str, dict[int, frozenset[str] | None]] = {}
    findings: list[Diagnostic] = []
    report = LintReport()

    for path in iter_python_files(paths, excludes=excludes, root=root):
        loaded = load_context(path, root)
        report.n_files += 1
        if isinstance(loaded, Diagnostic):
            findings.append(loaded)
            continue
        contexts[loaded.relpath] = loaded
        tables[loaded.relpath] = _suppressions(loaded.lines)
        for rule in per_file:
            if rule.applies_to(loaded):
                findings.extend(rule.check(loaded))

    for rule in project:
        findings.extend(rule.check_project(contexts))

    for diag in sorted(findings):
        table = tables.get(diag.path, {})
        if _suppressed(diag, table):
            continue
        if baseline is not None and baseline.absorb(diag):
            report.baselined.append(diag)
        else:
            report.new.append(diag)
    if baseline is not None:
        report.stale = baseline.stale_entries()
    return report
