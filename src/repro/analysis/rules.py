"""The PASCAL determinism & contract rules (PAS001-PAS008).

Each rule is a small AST pass over one file (or, for the project-level
cache-key rule, over the whole linted set — see
:mod:`repro.analysis.contracts`).  Rules register themselves in
:data:`RULES` via :func:`register_rule`; the engine runs every registered
rule whose scope matches the file's path.

Scoping is path-segment based: a rule with ``scope = {"sim", "core"}``
runs only on files with a ``sim`` or ``core`` directory component, and
``allowed_segments`` / ``allowed_suffixes`` carve out sanctioned
exceptions (the scoped config the wall-clock rule uses for ``bench/`` and
``harness/cache.py``).  Rules are syntactic: they see one file's AST and
its import table, nothing cross-file — cheap, dependency-free, and wrong
only in the conservative direction (documented per rule).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Type

from repro.analysis.diagnostics import Diagnostic


@dataclass
class FileContext:
    """Everything the per-file rules see about one source file."""

    path: Path
    #: POSIX-style path relative to the lint root (what diagnostics show).
    relpath: str
    tree: ast.Module
    lines: tuple[str, ...]
    #: Directory components of :attr:`relpath` (scope matching).
    dir_parts: frozenset[str] = field(init=False)
    #: Local name -> fully dotted origin, from this file's imports.
    aliases: dict[str, str] = field(init=False)

    def __post_init__(self) -> None:
        self.dir_parts = frozenset(Path(self.relpath).parts[:-1])
        self.aliases = _import_aliases(self.tree)

    def snippet(self, node: ast.AST) -> str:
        lineno = getattr(node, "lineno", 0)
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def diag(self, node: ast.AST, code: str, message: str) -> Diagnostic:
        return Diagnostic(
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
            snippet=self.snippet(node),
        )


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map each imported local name to its fully dotted origin.

    ``import time`` -> ``{"time": "time"}``; ``import numpy as np`` ->
    ``{"np": "numpy"}``; ``from time import perf_counter as pc`` ->
    ``{"pc": "time.perf_counter"}``.  Relative imports keep their bare
    module name — good enough for recognizing stdlib/numpy origins, which
    is all the rules resolve.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname is not None:
                    aliases[name.asname] = name.name
                else:
                    # ``import a.b`` binds ``a``; the dotted tail is
                    # reached through attribute access, which dotted()
                    # resolves naturally from the head.
                    head = name.name.split(".", 1)[0]
                    aliases[head] = head
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for name in node.names:
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    return aliases


def dotted(node: ast.AST) -> str | None:
    """``a.b.c`` attribute/name chain as a dotted string (else None)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve_call(node: ast.Call, aliases: dict[str, str]) -> str | None:
    """The fully dotted origin of a call's callee, through import aliases."""
    chain = dotted(node.func)
    if chain is None:
        return None
    head, sep, rest = chain.partition(".")
    origin = aliases.get(head, head)
    return f"{origin}.{rest}" if sep else origin


#: code -> rule instance, in registration (= code) order.
RULES: dict[str, "LintRule"] = {}


def register_rule(cls: Type["LintRule"]) -> Type["LintRule"]:
    """Class decorator: instantiate and index the rule by its code."""
    rule = cls()
    if not rule.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if rule.code in RULES:
        raise ValueError(f"duplicate rule code {rule.code}")
    RULES[rule.code] = rule
    return cls


class LintRule:
    """Base class: a code, a path scope, and a per-file check."""

    code: str = ""
    #: Path segments the rule applies to; None = every linted file.
    scope: frozenset[str] | None = None
    #: Segments where findings are sanctioned even inside scope.
    allowed_segments: frozenset[str] = frozenset()
    #: Relative-path suffixes sanctioned even inside scope.
    allowed_suffixes: tuple[str, ...] = ()
    #: Project-level rules run once over the whole linted set instead
    #: of per file (see ``check_project``).
    project_level: bool = False

    def applies_to(self, ctx: FileContext) -> bool:
        if self.allowed_segments & ctx.dir_parts:
            return False
        if any(ctx.relpath.endswith(sfx) for sfx in self.allowed_suffixes):
            return False
        if self.scope is None:
            return True
        return bool(self.scope & ctx.dir_parts)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Yield this rule's findings for one file."""
        raise NotImplementedError

    def check_project(
        self, files: dict[str, FileContext]
    ) -> Iterator[Diagnostic]:
        """Project-level findings (only if :attr:`project_level`)."""
        raise NotImplementedError

    def summary(self) -> str:
        doc = (self.__doc__ or "").strip().splitlines()
        return doc[0] if doc else ""


# ---------------------------------------------------------------------------
# PAS001: wall-clock time in deterministic code
# ---------------------------------------------------------------------------
#: The simulation's determinism boundary: everything here must read the
#: simulated clock (``engine.now`` / a ``now`` parameter), never the wall.
SIM_SCOPE = frozenset({"sim", "core", "cluster", "serving", "api"})

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register_rule
class WallClockRule(LintRule):
    """PAS001: wall-clock reads poison simulated time.

    ``time.time()``, ``perf_counter()``, ``datetime.now()`` etc. make a
    run's behavior depend on the host machine, so two runs of the same
    cell stop being byte-identical.  Simulation code must use the engine
    clock (``engine.now``, the ``now`` callback argument).  Sanctioned
    homes for wall-clock reads: ``bench/`` (that's what benchmarks
    measure), ``serve/`` (the wall-clock pacer exists to anchor the
    simulated clock to real time — wall time decides *when* the engine
    is cranked, never the simulated outcome), and ``harness/cache.py``
    (store timestamps, not results).
    """

    code = "PAS001"
    scope = None  # everywhere, minus the sanctioned scopes below
    allowed_segments = frozenset({"bench", "serve"})
    allowed_suffixes = ("harness/cache.py",)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = resolve_call(node, ctx.aliases)
            if origin in _WALL_CLOCK:
                yield ctx.diag(
                    node,
                    self.code,
                    f"wall-clock call {origin}() in deterministic code; "
                    f"use the simulated clock (engine.now / the `now` "
                    f"argument)",
                )


# ---------------------------------------------------------------------------
# PAS002: global/unseeded randomness
# ---------------------------------------------------------------------------
_GLOBAL_RANDOM = frozenset(
    {
        "betavariate",
        "binomialvariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)


@register_rule
class GlobalRandomRule(LintRule):
    """PAS002: global random state is shared, unseeded, order-dependent.

    Module-level ``random.*`` functions and anything under
    ``numpy.random`` draw from process-global state: results then depend
    on import order, worker identity, and whatever else touched the
    stream.  Use a named seeded stream (:class:`repro.sim.rng.
    RandomStreams`) or an explicit ``random.Random(seed)`` instance.
    """

    code = "PAS002"
    scope = None

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = resolve_call(node, ctx.aliases)
            if origin is None:
                continue
            if origin.startswith("numpy.random."):
                yield ctx.diag(
                    node,
                    self.code,
                    f"global numpy random state ({origin}); use a seeded "
                    f"stream from repro.sim.rng",
                )
                continue
            head, _, func = origin.rpartition(".")
            if head == "random" and func in _GLOBAL_RANDOM:
                yield ctx.diag(
                    node,
                    self.code,
                    f"global random state (random.{func}); use a seeded "
                    f"stream from repro.sim.rng or random.Random(seed)",
                )


# ---------------------------------------------------------------------------
# PAS003: unordered iteration in event-emitting / placement code
# ---------------------------------------------------------------------------
_DICT_VIEWS = frozenset({"keys", "values", "items"})
_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})


def _is_set_annotation(annotation: ast.expr) -> bool:
    text = ast.unparse(annotation)
    head = text.split("[", 1)[0].strip()
    return head in {"set", "frozenset", "Set", "FrozenSet", "AbstractSet",
                    "typing.Set", "typing.FrozenSet", "typing.AbstractSet"}


def _is_set_value(value: ast.expr | None) -> bool:
    if isinstance(value, (ast.Set, ast.SetComp)):
        return True
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        return value.func.id in _SET_CONSTRUCTORS
    return False


def _symbol_key(target: ast.expr) -> str | None:
    """``x`` or ``self.x`` as a trackable symbol key (else None)."""
    if isinstance(target, ast.Name):
        return target.id
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return f"self.{target.attr}"
    return None


@register_rule
class UnorderedIterationRule(LintRule):
    """PAS003: hash-ordered iteration leaks into event/placement order.

    Iterating a ``set`` in code that emits events or places requests
    makes the schedule depend on hash order — identical across reruns of
    one binary, but not across machines, Python builds, or refactors
    that perturb insertion history.  Iterate a deterministic container
    (list, insertion-ordered registry) or wrap in ``sorted(...)``.
    ``dict.keys()/values()/items()`` iteration is flagged in the same
    scope as a readability/intent marker: plain dicts are
    insertion-ordered, so make the ordering claim explicit with
    ``sorted(...)`` or iterate an explicitly ordered structure.

    Single-file by construction: a set attribute iterated from another
    module (e.g. ``inst.requests`` from the monitor) is not seen — keep
    shared registries insertion-ordered at the type level instead.
    """

    code = "PAS003"
    scope = frozenset({"sim", "core", "cluster", "serving", "schedulers",
                       "shard"})

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        set_symbols = self._set_symbols(ctx.tree)
        for node in ast.walk(ctx.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                diag = self._check_iter(ctx, it, set_symbols)
                if diag is not None:
                    yield diag

    def _set_symbols(self, tree: ast.Module) -> frozenset[str]:
        symbols: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign):
                key = _symbol_key(node.target)
                if key and _is_set_annotation(node.annotation):
                    symbols.add(key)
            elif isinstance(node, ast.Assign) and _is_set_value(node.value):
                for target in node.targets:
                    key = _symbol_key(target)
                    if key:
                        symbols.add(key)
            elif isinstance(node, ast.arg) and node.annotation is not None:
                if _is_set_annotation(node.annotation):
                    symbols.add(node.arg)
        return frozenset(symbols)

    def _check_iter(
        self, ctx: FileContext, it: ast.expr, set_symbols: frozenset[str]
    ) -> Diagnostic | None:
        # dict.keys()/.values()/.items() calls as the iterable.
        if (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Attribute)
            and it.func.attr in _DICT_VIEWS
            and not it.args
            and not it.keywords
        ):
            return ctx.diag(
                it,
                self.code,
                f"iteration over .{it.func.attr}() in event-emitting/"
                f"placement code without sorted(...); make the order "
                f"explicit",
            )
        # Literal sets / set(...) calls as the iterable.
        if _is_set_value(it):
            return ctx.diag(
                it,
                self.code,
                "iteration over a set in event-emitting/placement code; "
                "sets iterate in hash order — use sorted(...) or an "
                "ordered container",
            )
        # Names/attributes this file knows to be sets.
        key = _symbol_key(it)
        if key is not None and key in set_symbols:
            return ctx.diag(
                it,
                self.code,
                f"iteration over set `{key}` in event-emitting/placement "
                f"code; sets iterate in hash order — use sorted(...) or "
                f"an ordered container",
            )
        return None


# ---------------------------------------------------------------------------
# PAS004: float equality on simulated time
# ---------------------------------------------------------------------------
_TIME_NAMES = frozenset({"now", "t", "time", "deadline", "horizon"})
_TIME_SUFFIXES = ("_t", "_s", "_time", "_seconds", "_deadline")


def _timelike_name(name: str) -> bool:
    return name in _TIME_NAMES or name.endswith(_TIME_SUFFIXES)


def _timelike_expr(node: ast.expr) -> str | None:
    """The time-like name an expression reads, if any."""
    if isinstance(node, ast.Name) and _timelike_name(node.id):
        return node.id
    if isinstance(node, ast.Attribute) and _timelike_name(node.attr):
        return node.attr
    if isinstance(node, ast.BinOp):
        return _timelike_expr(node.left) or _timelike_expr(node.right)
    return None


@register_rule
class FloatTimeEqualityRule(LintRule):
    """PAS004: exact float equality on simulated-time expressions.

    Simulated timestamps are sums of float service times; two nominally
    simultaneous events can differ in the last ulp depending on
    accumulation order, so ``==``/``!=`` on them encodes an accident of
    arithmetic.  Compare with a tolerance, or order by the event
    sequence number the engine already provides.  (Deliberate exact tie
    detection — e.g. the event comparator — belongs in the baseline with
    a justification.)
    """

    code = "PAS004"
    scope = frozenset({"sim", "core", "cluster", "serving", "schedulers",
                       "api", "shard"})

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._is_none_check(left, right):
                    continue
                name = _timelike_expr(left) or _timelike_expr(right)
                if name is not None:
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield ctx.diag(
                        node,
                        self.code,
                        f"float {symbol} on simulated-time expression "
                        f"(`{name}`); compare with a tolerance or order "
                        f"by event sequence",
                    )

    @staticmethod
    def _is_none_check(left: ast.expr, right: ast.expr) -> bool:
        return any(
            isinstance(side, ast.Constant) and side.value is None
            for side in (left, right)
        )


# ---------------------------------------------------------------------------
# PAS006: unregistered / legacy-signature cluster policies
# ---------------------------------------------------------------------------
_POLICY_BASES = frozenset({"ClusterPolicy"})


def _base_names(node: ast.ClassDef) -> set[str]:
    names = set()
    for base in node.bases:
        chain = dotted(base)
        if chain is not None:
            names.add(chain.rpartition(".")[2])
    return names


def _has_register_decorator(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        chain = dotted(target)
        if chain is not None and chain.rpartition(".")[2] == "register_policy":
            return True
    return False


def _module_level_registrations(tree: ast.Module) -> set[str]:
    """Class names passed to a module-level ``register_policy(X)`` call."""
    registered: set[str] = set()
    for stmt in tree.body:
        if not (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)):
            continue
        call = stmt.value
        chain = dotted(call.func)
        if chain is None or chain.rpartition(".")[2] != "register_policy":
            continue
        for arg in call.args:
            if isinstance(arg, ast.Name):
                registered.add(arg.id)
    return registered


@register_rule
class PolicyRegistrationRule(LintRule):
    """PAS006: policies outside the registry are dead or half-wired code.

    Every concrete :class:`ClusterPolicy` subclass must register
    (``@register_policy`` or a module-level ``register_policy(Cls)``
    call) so ``--list-policies``, the harness sweep and the invariant
    test matrix all see it.  Also flags the deprecated zero-argument
    ``make_intra_scheduler(self)`` override: the per-instance signature
    is ``(self, iid)`` (heterogeneous pools compose schedulers by
    instance id); the zero-arg form only survives through a
    DeprecationWarning adapter.  Deliberate legacy fixtures belong under
    an inline ``# lint-ignore: PAS006``.
    """

    code = "PAS006"
    scope = None

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        registered_here = _module_level_registrations(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = _base_names(node)
            if not (bases & _POLICY_BASES):
                continue
            if node in ctx.tree.body:  # module-level classes only
                if (
                    not _has_register_decorator(node)
                    and node.name not in registered_here
                ):
                    yield ctx.diag(
                        node,
                        self.code,
                        f"ClusterPolicy subclass `{node.name}` is never "
                        f"registered; add @register_policy (or an inline "
                        f"ignore for deliberate bases/fixtures)",
                    )
            for item in node.body:
                if (
                    isinstance(item, ast.FunctionDef)
                    and item.name == "make_intra_scheduler"
                    and self._zero_arg(item)
                ):
                    yield ctx.diag(
                        item,
                        self.code,
                        f"`{node.name}.make_intra_scheduler` uses the "
                        f"deprecated zero-arg signature; the contract is "
                        f"make_intra_scheduler(self, iid)",
                    )

    @staticmethod
    def _zero_arg(fn: ast.FunctionDef) -> bool:
        args = fn.args
        positional = len(args.posonlyargs) + len(args.args)
        return positional <= 1 and args.vararg is None


# ---------------------------------------------------------------------------
# PAS007: mutable default arguments
# ---------------------------------------------------------------------------
_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CONSTRUCTORS
    return False


@register_rule
class MutableDefaultRule(LintRule):
    """PAS007: mutable default arguments are shared across calls.

    A ``def f(x=[])`` default is evaluated once at definition time and
    mutated in place by every call — cross-request state smuggled
    through a signature.  Use ``None`` plus an in-body default (or a
    ``field(default_factory=...)`` on dataclasses).
    """

    code = "PAS007"
    scope = None

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield ctx.diag(
                        default,
                        self.code,
                        f"mutable default argument in `{node.name}`; "
                        f"default to None and construct inside the body",
                    )


# ---------------------------------------------------------------------------
# PAS008: lifecycle-subscriber signature drift
# ---------------------------------------------------------------------------
def _protocol_signatures() -> dict[str, tuple[str, ...]]:
    """Hook name -> canonical parameter names, from the live protocol.

    Derived from :class:`repro.api.session.SessionSubscriber` itself, so
    the rule can never drift from the protocol it enforces.
    """
    import inspect

    from repro.api.session import SessionSubscriber

    signatures: dict[str, tuple[str, ...]] = {}
    for name, member in vars(SessionSubscriber).items():
        if name.startswith("on_") and inspect.isfunction(member):
            signatures[name] = tuple(
                inspect.signature(member).parameters
            )
    return signatures


_SUBSCRIBER_BASES = frozenset({"SessionSubscriber", "EventPrinter"})


@register_rule
class SubscriberSignatureRule(LintRule):
    """PAS008: subscriber hooks with drifted signatures break silently.

    The session fan-out calls every hook positionally with the protocol
    signature (``on_admit(handle, now, instance_id)``, ...).  A subclass
    whose override renames, drops or adds parameters either crashes at
    dispatch time or — worse — silently shadows the base no-op under a
    typo'd name.  ``*args``/``**kwargs`` overrides are accepted as an
    explicit pass-through escape hatch.
    """

    code = "PAS008"
    scope = None

    def __init__(self) -> None:
        self._signatures: dict[str, tuple[str, ...]] | None = None

    def protocol(self) -> dict[str, tuple[str, ...]]:
        if self._signatures is None:
            self._signatures = _protocol_signatures()
        return self._signatures

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        protocol = self.protocol()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not (_base_names(node) & _SUBSCRIBER_BASES):
                continue
            for item in node.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                canonical = protocol.get(item.name)
                if canonical is None:
                    if item.name.startswith("on_") and not item.name.startswith("_"):
                        yield ctx.diag(
                            item,
                            self.code,
                            f"`{node.name}.{item.name}` is not a "
                            f"SessionSubscriber hook (known hooks: "
                            f"{', '.join(sorted(protocol))}); typo'd "
                            f"overrides never fire",
                        )
                    continue
                if item.args.vararg is not None or item.args.kwarg is not None:
                    continue  # explicit pass-through escape hatch
                params = tuple(
                    a.arg
                    for a in (*item.args.posonlyargs, *item.args.args)
                )
                if params != canonical:
                    yield ctx.diag(
                        item,
                        self.code,
                        f"`{node.name}.{item.name}{params}` drifts from "
                        f"the protocol signature {canonical}; the "
                        f"session calls hooks positionally",
                    )


def iter_rules() -> Iterable[LintRule]:
    """Registered rules in code order."""
    return [RULES[code] for code in sorted(RULES)]
