"""PAS005: cache-key completeness (the stale-cache-hit bug class).

The on-disk result store addresses each simulation cell by a hash of its
canonical spec (:func:`repro.harness.spec.cell_spec`).  Any settings
field that does not reach that serialization is a knob two different
runs can disagree on while sharing a cache entry — the exact bug PR 4
had to hand-fix when ``EvalSettings.extensions`` was added without
joining the key.

This rule cross-checks the *declared* fields of every cache-key settings
dataclass (``EvalSettings``, ``ReplaySettings``,
``CharacterizationSettings``, and the nested ``ExtensionPolicyConfig`` /
``PoolSpec``) against the *canonical field manifest*
(:func:`repro.harness.spec.canonical_field_manifest`) — which fields the
real serializer actually emits — and flags any declared field the
serializer drops, anchored at the field's definition line.

Unlike the syntactic rules, this one imports the live dataclasses: the
contract is between runtime serialization and runtime field lists, so
source-only inspection would just re-implement ``dataclasses.fields``
badly.  The core check is injectable (``classes`` / ``manifest``) so
tests can exercise the bug class on synthetic dataclasses.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Iterator, Sequence

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules import FileContext, LintRule, register_rule


def _default_classes() -> tuple[type, ...]:
    from repro.config import ExtensionPolicyConfig, PoolSpec
    from repro.harness.runner import (
        CharacterizationSettings,
        EvalSettings,
        ReplaySettings,
    )

    return (
        EvalSettings,
        ReplaySettings,
        CharacterizationSettings,
        ExtensionPolicyConfig,
        PoolSpec,
    )


def _default_manifest() -> dict[str, frozenset[str]]:
    from repro.harness import spec

    return spec.canonical_field_manifest()


def _class_node(
    ctx: FileContext, class_name: str
) -> ast.ClassDef | None:
    for node in ctx.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return node
    return None


def _field_node(cls_node: ast.ClassDef, field_name: str) -> ast.AST:
    for item in cls_node.body:
        if (
            isinstance(item, ast.AnnAssign)
            and isinstance(item.target, ast.Name)
            and item.target.id == field_name
        ):
            return item
    return cls_node


def _defining_context(
    files: dict[str, FileContext], cls: type
) -> tuple[FileContext, ast.ClassDef] | None:
    """The linted file (and ClassDef) where ``cls`` is defined, if any."""
    import inspect

    try:
        source = inspect.getsourcefile(cls)
    except TypeError:  # pragma: no cover - builtins only
        return None
    if source is None:
        return None
    target = Path(source).resolve()
    for ctx in files.values():
        try:
            if ctx.path.resolve() == target:
                node = _class_node(ctx, cls.__name__)
                if node is not None:
                    return ctx, node
        except OSError:  # pragma: no cover - vanished file
            continue
    return None


def cache_key_diagnostics(
    files: dict[str, FileContext],
    classes: Sequence[type] | None = None,
    manifest: dict[str, frozenset[str]] | None = None,
) -> Iterator[Diagnostic]:
    """Findings for settings fields the canonical serializer drops.

    Diagnostics attach to the field's declaration line in its defining
    file; classes whose defining module is not part of the linted set
    are skipped (there is nowhere to anchor the finding).
    """
    if classes is None:
        classes = _default_classes()
    if manifest is None:
        manifest = _default_manifest()
    for cls in classes:
        located = _defining_context(files, cls)
        if located is None:
            continue
        ctx, cls_node = located
        covered = manifest.get(cls.__name__)
        if covered is None:
            yield ctx.diag(
                cls_node,
                "PAS005",
                f"settings dataclass `{cls.__name__}` never reaches the "
                f"canonical cell serialization (harness/spec.py); cells "
                f"differing in it would share a cache entry",
            )
            continue
        for f in dataclasses.fields(cls):
            if f.name not in covered:
                yield ctx.diag(
                    _field_node(cls_node, f.name),
                    "PAS005",
                    f"field `{cls.__name__}.{f.name}` does not "
                    f"participate in the canonical cell serialization; "
                    f"runs differing only in it would share a cache "
                    f"entry (add it to the spec or justify in the "
                    f"baseline)",
                )


@register_rule
class CacheKeyCompletenessRule(LintRule):
    """PAS005: every settings field must reach the canonical cache key.

    A settings dataclass field absent from the canonical cell
    serialization (``harness/spec.py``) means two runs that differ only
    in that knob resolve to the same disk-cache entry — the second run
    silently reads the first run's results.  Deliberately excluded
    fields (none today) belong in the baseline with a justification.
    """

    code = "PAS005"
    project_level = True

    def check_project(
        self, files: dict[str, FileContext]
    ) -> Iterator[Diagnostic]:
        yield from cache_key_diagnostics(files)
