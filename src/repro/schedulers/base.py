"""Intra-instance scheduler framework.

All four intra-instance policies in the paper — FCFS (vLLM default), RR,
the infinite-memory oracle and PASCAL's hierarchical queue — reduce to one
mechanism with different *priority keys*:

1. sort the instance's live requests by the policy's key (lower = sooner);
2. walk the order greedily, reserving GPU KV blocks (current footprint plus
   one token of growth) for each request until memory or the batch limit is
   exhausted — **without skipping**: the first request that does not fit
   cuts the prefix, which is exactly what produces head-of-line blocking
   under FCFS and bounded preemption under RR/PASCAL;
3. requests beyond the prefix lose GPU residency (swap to CPU over PCIe),
   requests inside it gain residency (admission or swap-in);
4. if any selected request still needs its prompt processed, the step is a
   prefill step (vLLM runs prefills with priority); otherwise it decodes
   one token for every batched request.

Priority *state* (multilevel ladder position, band) lives on the request;
policies are stateless apart from a sequence counter, which keeps the whole
zoo small and uniformly testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import TYPE_CHECKING

from repro.workload.request import ReqState, Request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.instance import ServingInstance


class StepKind(Enum):
    IDLE = auto()
    PREFILL = auto()
    DECODE = auto()


@dataclass
class StepPlan:
    """What the instance executes next.

    A decode plan carries *incremental* bookkeeping so the per-step hot
    loop never re-derives batch aggregates: ``kv_total`` is the batch's
    summed KV footprint (advanced by ``batch_size`` per decode step) and
    ``crossing_counts[s % block_size]`` is the number of requests whose
    cache crosses a block boundary on the plan's ``s``-th growth step —
    valid for the plan's whole life because a reused decode plan grows
    every member by exactly one token per step.  ``steps_taken`` counts
    growth steps applied under this plan.
    """

    kind: StepKind
    requests: list[Request] = field(default_factory=list)
    prefill_tokens: int = 0
    kv_total: int = 0
    crossing_counts: list[int] = field(default_factory=list)
    steps_taken: int = 0

    @property
    def batch_size(self) -> int:
        return len(self.requests)

    def prepare_decode(self, block_size: int) -> None:
        """Snapshot the decode aggregates from the batch's current state."""
        self.kv_total = sum(r.kv_tokens for r in self.requests)
        counts = [0] * block_size
        for r in self.requests:
            counts[-r.kv_tokens % block_size] += 1
        self.crossing_counts = counts
        self.steps_taken = 0


class IntraScheduler:
    """Base policy: subclasses define the priority key and the quantum."""

    name = "base"

    #: Token quantum; None disables time-sharing (FCFS / oracle).
    quantum_tokens: int | None = None

    def __init__(self) -> None:
        self._seq = 0

    # ------------------------------------------------------------------
    # policy surface
    # ------------------------------------------------------------------
    def priority_key(self, req: Request) -> tuple:
        """Sort key; lower sorts earlier (= scheduled sooner)."""
        raise NotImplementedError

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # ------------------------------------------------------------------
    # lifecycle hooks (called by the instance / cluster)
    # ------------------------------------------------------------------
    def on_admit(self, req: Request, now: float) -> None:
        """A request was routed to this instance (new or migrated in)."""
        req.level = 0
        req.quantum_used = 0
        req.enqueue_seq = self.next_seq()

    def on_quantum_expired(self, req: Request, now: float) -> None:
        """The request consumed its token quantum: lower its priority."""
        req.level += 1
        req.quantum_used = 0
        req.enqueue_seq = self.next_seq()

    def on_phase_transition_local(self, req: Request, now: float) -> None:
        """The request entered answering and stays on this instance."""

    def refresh(self, requests: list[Request], now: float) -> None:
        """Pre-sort hook (PASCAL uses it for conditional demotion)."""

    # ------------------------------------------------------------------
    # batch formation
    # ------------------------------------------------------------------
    def form_batch(self, inst: "ServingInstance", now: float) -> StepPlan:
        """Recompute GPU residency and the next step's batch."""
        pool = inst.pool
        cfg = inst.config.scheduler
        live = [r for r in inst.requests if not r.finished]
        self.refresh(live, now)
        order = sorted(live, key=self.priority_key)

        # Blocks pinned by requests that are no longer schedulable here
        # (KV caches mid-migration stay allocated until the copy lands)
        # are off-limits for this plan.
        resident_blocks = sum(
            pool.blocks_for(r.kv_tokens)
            for r in live
            if pool.holds(r) and pool.on_gpu(r)
        )
        external_blocks = pool.gpu_used_blocks - resident_blocks
        capacity = pool.gpu_capacity_blocks - external_blocks
        planned_blocks = 0
        batch: list[Request] = []
        keep_resident: list[Request] = []
        swap_in: list[Request] = []
        admit: list[Request] = []
        evict: list[Request] = []
        stop_admission = False

        for req in order:
            in_batch = len(batch) < cfg.max_batch_size
            resident = pool.holds(req) and pool.on_gpu(req)
            if not resident and not in_batch:
                # No execution slot anyway; don't move memory for it.
                continue
            footprint = req.kv_tokens if pool.holds(req) else req.full_kv_tokens
            need = pool.blocks_for(footprint + (1 if in_batch else 0))
            fits = planned_blocks + need <= capacity
            if resident:
                if fits:
                    planned_blocks += need
                    keep_resident.append(req)
                    if in_batch:
                        batch.append(req)
                else:
                    evict.append(req)
            else:
                if stop_admission:
                    continue
                if not fits:
                    # Head-of-line: no lower-priority request may leapfrog.
                    stop_admission = True
                    continue
                planned_blocks += need
                if pool.holds(req):
                    swap_in.append(req)
                else:
                    admit.append(req)
                batch.append(req)

        # Apply residency changes: evictions first so swap-ins have room.
        for req in evict:
            inst.do_swap_out(req, now)
        for req in swap_in:
            inst.do_swap_in(req, now)
        for req in admit:
            inst.do_allocate(req, now)

        # Park everything resident-but-unbatched.
        batch_set = set(id(r) for r in batch)
        for req in keep_resident:
            if id(req) not in batch_set and req.state == ReqState.RUNNING:
                req.set_state(ReqState.QUEUED, now)

        if not batch:
            return StepPlan(StepKind.IDLE)

        # vLLM runs pending prefills with priority over decode.
        prefills: list[Request] = []
        prefill_budget = cfg.max_prefill_tokens
        for req in batch:
            if not req.prefill_done and req.prompt_len <= prefill_budget:
                prefills.append(req)
                prefill_budget -= req.prompt_len
        if prefills:
            return StepPlan(
                StepKind.PREFILL,
                prefills,
                prefill_tokens=sum(r.prompt_len for r in prefills),
            )

        decodes = [r for r in batch if r.prefill_done]
        if not decodes:
            return StepPlan(StepKind.IDLE)
        plan = StepPlan(StepKind.DECODE, decodes)
        plan.prepare_decode(pool.block_size)
        return plan
