"""First-Come-First-Served — vLLM's default policy (Section II-C).

Requests are prioritized strictly by arrival time.  Because the batch
prefix is cut at the first request that does not fit, newly arrived
requests block behind long-running ones (head-of-line blocking), and under
memory pressure the *most recently arrived* running requests are the ones
preempted — both behaviours the paper attributes to vLLM's FCFS.
"""

from __future__ import annotations

from repro.schedulers.base import IntraScheduler
from repro.workload.request import Request


class FCFSScheduler(IntraScheduler):
    """Arrival-ordered scheduling; no time-sharing quantum."""

    name = "fcfs"
    quantum_tokens = None

    def priority_key(self, req: Request) -> tuple:
        return (req.arrival_t, req.rid)
