"""Oracle scheduler: FCFS order under unconstrained GPU memory.

Section III-A's "oracle configuration" gives the scheduler enough memory to
hold the KV caches of every in-flight request, so no blocking or preemption
ever occurs and each request runs uninterrupted from admission to
completion.  The policy itself is plain arrival order; the harness pairs it
with an instance whose KV capacity covers the experiment's peak demand
(see ``oracle_capacity_tokens``).
"""

from __future__ import annotations

from repro.schedulers.base import IntraScheduler
from repro.workload.request import Request


class OracleScheduler(IntraScheduler):
    """Arrival-ordered policy meant for an unconstrained memory pool."""

    name = "oracle"
    quantum_tokens = None

    def priority_key(self, req: Request) -> tuple:
        return (req.arrival_t, req.rid)


def oracle_capacity_tokens(requests) -> int:
    """KV capacity guaranteeing the oracle never blocks or preempts.

    The sum of every request's *final* KV footprint upper-bounds any
    instantaneous demand, whatever the arrival pattern.
    """
    total = sum(r.prompt_len + r.total_decode_tokens for r in requests)
    # One spare block per request absorbs block-rounding slack.
    return total + 16 * len(list(requests)) + 16
