"""Round-robin time-sharing with a fixed token quantum (Section II-C).

"The scheduler assigns each request a fixed token quantum.  Once a request
consumes all its assigned quantum, its scheduling priority is lowered."

Implemented as a two-tier ring: requests that have never consumed a quantum
("fresh", tier 0) run first in arrival order — this is what admits Request C
promptly in Figure 2(c) and keeps short reasoning requests near-oracle in
Figure 4 — while "veteran" requests (tier 1) cycle fairly in requeue order,
each quantum expiry sending them to the tail of the ring.  A newcomer thus
delays a veteran by at most its first quantum, so long requests degrade
gracefully (the moderate Figure 4 tail penalty) instead of starving behind
every later arrival.  ``level`` counts exhausted quanta; besides the tier
decision it is the statistic Algorithm 2's ``a_i`` census reads.
"""

from __future__ import annotations

from repro.schedulers.base import IntraScheduler
from repro.workload.request import Request


class RoundRobinScheduler(IntraScheduler):
    """Preemptive two-tier ring round-robin, phase-agnostic."""

    name = "rr"

    def __init__(self, quantum_tokens: int = 500):
        super().__init__()
        if quantum_tokens < 1:
            raise ValueError(f"quantum must be >= 1, got {quantum_tokens}")
        self.quantum_tokens = quantum_tokens

    def priority_key(self, req: Request) -> tuple:
        fresh = 0 if req.level == 0 else 1
        return (fresh, req.enqueue_seq, req.rid)
