"""Fixed-length characterization workloads (Section III-A).

Two synthetic experiments isolate the two decoding phases:

* **Reasoning-phase workload (Figure 4)** — 300 requests, each with a fixed
  128-token prompt and a reasoning length drawn from {128, 256, 512, 1024,
  2048}; answering is a single token so the measurement window ends exactly
  when reasoning does.
* **Answering-phase workload (Figure 5)** — 300 requests whose prefill and
  reasoning are already complete (a 128-token KV cache exists); each then
  generates an answering length drawn from {128, 256, 512, 1024, 2048}.
"""

from __future__ import annotations

import random

from repro.workload.request import Request

#: The x-axis buckets of Figures 4 and 5.
CHARACTERIZATION_LENGTHS = (128, 256, 512, 1024, 2048)


def reasoning_phase_workload(
    n_requests: int,
    arrival_times: list[float],
    rng: random.Random,
    prompt_len: int = 128,
    lengths: tuple[int, ...] = CHARACTERIZATION_LENGTHS,
) -> list[Request]:
    """Figure 4's workload: vary reasoning length, trivial answering."""
    if len(arrival_times) < n_requests:
        raise ValueError("not enough arrival times")
    requests = []
    for rid in range(n_requests):
        reasoning_len = rng.choice(lengths)
        requests.append(
            Request(
                rid=rid,
                prompt_len=prompt_len,
                reasoning_len=reasoning_len,
                answer_len=1,
                arrival_t=arrival_times[rid],
                dataset="fig4-reasoning",
            )
        )
    return requests


def answering_phase_workload(
    n_requests: int,
    arrival_times: list[float],
    rng: random.Random,
    context_len: int = 128,
    lengths: tuple[int, ...] = CHARACTERIZATION_LENGTHS,
) -> list[Request]:
    """Figure 5's workload: prefill+reasoning precomputed, vary answering.

    The combined prompt+reasoning context is fixed at 128 tokens and its KV
    cache is considered already generated (``skip_prefill``): admission only
    allocates cache space, it does not re-run the prefill computation.
    """
    if len(arrival_times) < n_requests:
        raise ValueError("not enough arrival times")
    requests = []
    for rid in range(n_requests):
        answer_len = rng.choice(lengths)
        request = Request(
            rid=rid,
            prompt_len=context_len,
            reasoning_len=0,
            answer_len=answer_len,
            arrival_t=arrival_times[rid],
            skip_prefill=True,
            dataset="fig5-answering",
        )
        request.mark_reasoning_precomputed(arrival_times[rid])
        requests.append(request)
    return requests


def fixed_length_requests(
    n_requests: int,
    prompt_len: int,
    reasoning_len: int,
    answer_len: int,
    arrival_times: list[float],
    dataset: str = "fixed",
) -> list[Request]:
    """Homogeneous requests (unit tests, Figure 2 timeline demo)."""
    if len(arrival_times) < n_requests:
        raise ValueError("not enough arrival times")
    return [
        Request(
            rid=rid,
            prompt_len=prompt_len,
            reasoning_len=reasoning_len,
            answer_len=answer_len,
            arrival_t=arrival_times[rid],
            dataset=dataset,
        )
        for rid in range(n_requests)
    ]
