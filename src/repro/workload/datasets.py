"""Synthetic dataset trace generators.

The paper builds serving traces by replaying AlpacaEval2.0 / Arena-Hard
(chat) and MATH-500 / GPQA / LiveCodeBench (problem-solving) prompts through
OpenAI's o4-mini and recording reasoning/answering token counts (Figures 8
and 14).  We do not have API access, so each dataset is modelled as a pair
of clipped lognormal distributions whose *arithmetic means* equal the values
printed in those figures and whose supports match the figure axes:

========================  ================  ================
dataset                   reasoning mean    answering mean
========================  ================  ================
AlpacaEval2.0                      557.75            566.85
Arena-Hard                         968.35            824.02
MATH-500                           747.20            164.67
GPQA                              2679.27            316.09
LiveCodeBench                     1896.64            697.09
========================  ================  ================

The lognormal family reproduces the figures' density shape: a sharp peak at
short lengths with a heavy right tail ("more than 70 % of requests generate
fewer than 1,000 reasoning tokens" for the chat datasets, Figure 10 caption).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sim.rng import RandomStreams, sample_lognormal_int
from repro.workload.request import Request


@dataclass(frozen=True)
class LengthSpec:
    """Clipped lognormal over token counts with a fixed arithmetic mean."""

    mean: float
    sigma: float
    lo: int
    hi: int

    def sample(self, rng: random.Random) -> int:
        return sample_lognormal_int(rng, self.mean, self.sigma, self.lo, self.hi)


@dataclass(frozen=True)
class DatasetSpec:
    """Token-length model for one benchmark dataset."""

    name: str
    prompt: LengthSpec
    reasoning: LengthSpec
    answering: LengthSpec

    def sample_request(self, rid: int, arrival_t: float, rng: random.Random) -> Request:
        """Draw one request with this dataset's length statistics."""
        return Request(
            rid=rid,
            prompt_len=self.prompt.sample(rng),
            reasoning_len=self.reasoning.sample(rng),
            answer_len=self.answering.sample(rng),
            arrival_t=arrival_t,
            dataset=self.name,
        )


# ---------------------------------------------------------------------------
# Chat datasets (Figure 8): long detailed answers.
# ---------------------------------------------------------------------------
ALPACA_EVAL = DatasetSpec(
    name="alpaca-eval-2.0",
    prompt=LengthSpec(mean=60.0, sigma=0.6, lo=8, hi=512),
    reasoning=LengthSpec(mean=557.75, sigma=0.9, lo=16, hi=6000),
    answering=LengthSpec(mean=566.85, sigma=0.8, lo=16, hi=6000),
)

ARENA_HARD = DatasetSpec(
    name="arena-hard",
    prompt=LengthSpec(mean=120.0, sigma=0.8, lo=8, hi=1024),
    reasoning=LengthSpec(mean=968.35, sigma=1.1, lo=16, hi=8000),
    answering=LengthSpec(mean=824.02, sigma=0.9, lo=16, hi=6000),
)

# ---------------------------------------------------------------------------
# Problem-solving datasets (Figure 14): long reasoning, short answers.
# The GPQA reasoning:answering ratio is the paper's quoted 8.48x extreme.
# ---------------------------------------------------------------------------
MATH_500 = DatasetSpec(
    name="math-500",
    prompt=LengthSpec(mean=110.0, sigma=0.6, lo=8, hi=1024),
    reasoning=LengthSpec(mean=747.20, sigma=0.9, lo=16, hi=8000),
    answering=LengthSpec(mean=164.67, sigma=0.8, lo=8, hi=2048),
)

GPQA = DatasetSpec(
    name="gpqa",
    prompt=LengthSpec(mean=220.0, sigma=0.5, lo=16, hi=2048),
    reasoning=LengthSpec(mean=2679.27, sigma=0.9, lo=32, hi=10000),
    answering=LengthSpec(mean=316.09, sigma=0.8, lo=8, hi=2048),
)

LIVECODEBENCH = DatasetSpec(
    name="livecodebench",
    prompt=LengthSpec(mean=280.0, sigma=0.6, lo=16, hi=2048),
    reasoning=LengthSpec(mean=1896.64, sigma=1.0, lo=32, hi=10000),
    answering=LengthSpec(mean=697.09, sigma=0.9, lo=16, hi=4000),
)

CHAT_DATASETS = {spec.name: spec for spec in (ALPACA_EVAL, ARENA_HARD)}
REASONING_HEAVY_DATASETS = {
    spec.name: spec for spec in (MATH_500, GPQA, LIVECODEBENCH)
}
ALL_DATASETS = {**CHAT_DATASETS, **REASONING_HEAVY_DATASETS}


def get_dataset(name: str) -> DatasetSpec:
    """Look up a dataset spec by its canonical name."""
    try:
        return ALL_DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(ALL_DATASETS)}"
        ) from None


@dataclass(frozen=True)
class MixedDataset:
    """Probability mixture of datasets (Figure 16's 50/50 workload).

    Figure 16 replaces 50 % of the Arena-Hard trace with reasoning-heavy
    requests "sampled uniformly from MATH-500, GPQA, and LiveCodeBench".
    """

    name: str
    components: tuple[tuple[DatasetSpec, float], ...]

    def __post_init__(self) -> None:
        total = sum(weight for _, weight in self.components)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"mixture weights must sum to 1, got {total}")

    def sample_request(self, rid: int, arrival_t: float, rng: random.Random) -> Request:
        pick = rng.random()
        acc = 0.0
        spec = self.components[-1][0]
        for component, weight in self.components:
            acc += weight
            if pick < acc:
                spec = component
                break
        request = spec.sample_request(rid, arrival_t, rng)
        return request


def reasoning_heavy_mix() -> MixedDataset:
    """The Figure 16 workload: 50 % Arena-Hard, 50 % problem-solving."""
    third = 0.5 / 3.0
    return MixedDataset(
        name="arena-hard+reasoning-heavy",
        components=(
            (ARENA_HARD, 0.5),
            (MATH_500, third),
            (GPQA, third),
            (LIVECODEBENCH, third),
        ),
    )


def deferral_stress_mix() -> MixedDataset:
    """The deferral-stress workload: a bimodal chat/problem-solving mix.

    65 % short chat (AlpacaEval, mean reasoning ~560 tokens) against 35 %
    GPQA (mean ~2680, the heaviest tail in the paper's table) — the
    heavy-tail bimodality that makes arrival-time *ranking* decisive: a
    mis-ranked GPQA request parks a multi-thousand-token chain of thought
    in front of dozens of short chats.  Run under a bursty arrival
    process (``EvalSettings.arrival_burst_duty``) by the
    ``deferral-stress`` experiment.
    """
    return MixedDataset(
        name="deferral-stress-mix",
        components=(
            (ALPACA_EVAL, 0.65),
            (GPQA, 0.35),
        ),
    )


def mean_request_tokens(spec: DatasetSpec) -> float:
    """Expected total token work of one request (prompt + both phases)."""
    return spec.prompt.mean + spec.reasoning.mean + spec.answering.mean


def sample_trace(
    spec,
    n_requests: int,
    arrival_times: list[float],
    streams: RandomStreams,
) -> list[Request]:
    """Materialize ``n_requests`` requests with the given arrival times."""
    if len(arrival_times) < n_requests:
        raise ValueError(
            f"need {n_requests} arrival times, got {len(arrival_times)}"
        )
    rng = streams.stream(f"dataset:{spec.name}")
    return [
        spec.sample_request(rid, arrival_times[rid], rng)
        for rid in range(n_requests)
    ]
