"""Trace assembly: datasets + arrival processes -> request lists."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.rng import RandomStreams
from repro.workload import arrival
from repro.workload.datasets import DatasetSpec, MixedDataset, sample_trace
from repro.workload.request import Request


@dataclass(frozen=True)
class TraceConfig:
    """How to build one serving trace."""

    dataset: DatasetSpec | MixedDataset
    n_requests: int
    arrival_rate_per_s: float
    seed: int = 0

    @property
    def name(self) -> str:
        return self.dataset.name


def build_trace(config: TraceConfig) -> list[Request]:
    """Materialize a Poisson-arrival trace for one dataset/mixture."""
    streams = RandomStreams(config.seed)
    arrivals = arrival.poisson_arrivals(
        config.arrival_rate_per_s,
        config.n_requests,
        streams.stream(f"arrivals:{config.name}"),
    )
    return sample_trace(config.dataset, config.n_requests, arrivals, streams)


def trace_token_stats(requests: list[Request]) -> dict[str, float]:
    """Summary statistics of a trace (used by distribution benchmarks)."""
    if not requests:
        raise ValueError("empty trace")
    n = len(requests)
    reasoning = [r.reasoning_len for r in requests]
    answering = [r.answer_len for r in requests]
    prompts = [r.prompt_len for r in requests]
    return {
        "n_requests": float(n),
        "prompt_mean": sum(prompts) / n,
        "reasoning_mean": sum(reasoning) / n,
        "reasoning_max": float(max(reasoning)),
        "answering_mean": sum(answering) / n,
        "answering_max": float(max(answering)),
        "total_tokens": float(
            sum(prompts) + sum(reasoning) + sum(answering)
        ),
        "frac_reasoning_under_1000": sum(1 for x in reasoning if x < 1000) / n,
    }
