"""Trace assembly and replay: synthesis, JSONL record mode, JSONL loading.

Two ways to obtain a serving trace:

* **Synthesis** — :class:`TraceConfig` + :func:`build_trace` draw request
  lengths from a dataset model and arrivals from a Poisson process (the
  paper's Section V setup).
* **Replay** — :class:`ReplayTraceConfig` + :func:`build_replay_trace` load
  a recorded JSONL trace, so production logs (or previously synthesized
  traces) can be replayed byte-identically through every policy.

The JSONL trace format is one header object followed by one object per
request, arrival-ordered::

    {"format": "pascal-trace", "version": 1}
    {"answer_len": 50, "arrival_t": 0.0, "dataset": "alpaca-eval-2.0",
     "id": 0, "prompt_len": 12, "reasoning_len": 100}

``arrival_t`` (seconds, non-decreasing), ``prompt_len`` (>= 1),
``reasoning_len`` (>= 0) and ``answer_len`` (>= 1) are required;
``dataset`` (string tag), ``id`` (unique request id, defaults to the
record's position) and ``skip_prefill`` (the prompt+reasoning KV cache
already exists, Figure 5's workload) are optional.

**Version 2** additionally allows an optional ``cancel_t`` per record (a
finite time strictly after ``arrival_t``): the client abandons the
request at that simulated time, so recorded live traffic — including
disconnects at the serving gateway — replays deterministically offline.
The reader accepts both versions; :func:`dump_trace` emits the *lowest*
version that can represent its records (version 1 unless some request
carries a scripted cancellation), so a version-1 file round-trips
byte-identically through load -> export.  :func:`export_trace` writes
sorted keys for the same reason.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass

from repro.sim.rng import RandomStreams
from repro.workload import arrival
from repro.workload.datasets import DatasetSpec, MixedDataset, sample_trace
from repro.workload.request import Request

TRACE_FORMAT = "pascal-trace"
#: Newest trace version this module reads and writes.
TRACE_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)

_REQUIRED_FIELDS = ("arrival_t", "prompt_len", "reasoning_len", "answer_len")
_OPTIONAL_FIELDS = ("dataset", "id", "skip_prefill")
#: Per-version allowed field sets: version 2 adds ``cancel_t``.
_ALLOWED_FIELDS_BY_VERSION = {
    1: frozenset(_REQUIRED_FIELDS + _OPTIONAL_FIELDS),
    2: frozenset(_REQUIRED_FIELDS + _OPTIONAL_FIELDS + ("cancel_t",)),
}


@dataclass(frozen=True)
class TraceConfig:
    """How to synthesize one serving trace."""

    dataset: DatasetSpec | MixedDataset
    n_requests: int
    arrival_rate_per_s: float
    seed: int = 0
    #: On-off burst duty cycle (fraction of each cycle arrivals flow);
    #: 1.0 is the plain Poisson process, draw-for-draw.
    burst_duty: float = 1.0
    #: On-off burst cycle length in seconds (ignored at duty 1.0).
    burst_cycle_s: float = 60.0

    @property
    def name(self) -> str:
        return self.dataset.name


def build_trace(config: TraceConfig) -> list[Request]:
    """Materialize a Poisson-arrival trace for one dataset/mixture."""
    streams = RandomStreams(config.seed)
    arrivals = list(
        arrival.iter_onoff_arrivals(
            config.arrival_rate_per_s,
            config.n_requests,
            streams.stream(f"arrivals:{config.name}"),
            duty=config.burst_duty,
            cycle_s=config.burst_cycle_s,
        )
    )
    return sample_trace(config.dataset, config.n_requests, arrivals, streams)


# ---------------------------------------------------------------------------
# JSONL record mode (export)
# ---------------------------------------------------------------------------
def trace_record(req: Request) -> dict:
    """The static (pre-simulation) fields of a request as a trace record."""
    record: dict = {
        "id": req.rid,
        "arrival_t": float(req.arrival_t),
        "prompt_len": req.prompt_len,
        "reasoning_len": req.reasoning_len,
        "answer_len": req.answer_len,
    }
    if req.dataset:
        record["dataset"] = req.dataset
    if req.skip_prefill:
        record["skip_prefill"] = True
    if req.cancel_at is not None:
        record["cancel_t"] = float(req.cancel_at)
    return record


def dump_trace(requests: list[Request]) -> str:
    """Serialize requests to the JSONL trace format (arrival-ordered).

    Keys are sorted and the header carries the *lowest* version able to
    represent the records (2 only when a scripted cancellation is
    present), so the output is canonical: loading an exported trace and
    exporting it again reproduces the file byte for byte — including for
    pre-cancellation version-1 files.
    """
    ordered = sorted(requests, key=lambda r: (r.arrival_t, r.rid))
    version = 2 if any(r.cancel_at is not None for r in ordered) else 1
    lines = [
        json.dumps({"format": TRACE_FORMAT, "version": version}, sort_keys=True)
    ]
    lines.extend(json.dumps(trace_record(req), sort_keys=True) for req in ordered)
    return "\n".join(lines) + "\n"


def export_trace(requests: list[Request], path: str | os.PathLike) -> None:
    """Record a trace (synthesized or simulated) to a JSONL file."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dump_trace(requests))


# ---------------------------------------------------------------------------
# JSONL loading (replay)
# ---------------------------------------------------------------------------
class TraceFormatError(ValueError):
    """A trace file failed validation, with the offending line pinpointed."""

    def __init__(self, path: str | os.PathLike, line_no: int, message: str):
        self.path = str(path)
        self.line_no = line_no
        self.message = message
        super().__init__(f"{path}:{line_no}: {message}")

    def __reduce__(self):
        # Default pickling would replay __init__ with the single formatted
        # string and crash the unpickler — which deadlocks multiprocessing
        # pools when a worker raises from load_trace.
        return (TraceFormatError, (self.path, self.line_no, self.message))


def _make_request(
    rid: int,
    prompt_len: int,
    reasoning_len: int,
    answer_len: int,
    arrival_t: float,
    skip_prefill: bool,
    dataset: str,
    cancel_t: float | None = None,
) -> Request:
    """Build a request from its static trace fields.

    Owns the skip_prefill coupling: a precomputed-context request must have
    its reasoning marked done at arrival, exactly as the Figure 5 workload
    synthesizer does.
    """
    req = Request(
        rid=rid,
        prompt_len=prompt_len,
        reasoning_len=reasoning_len,
        answer_len=answer_len,
        arrival_t=arrival_t,
        skip_prefill=skip_prefill,
        dataset=dataset,
    )
    if skip_prefill:
        req.mark_reasoning_precomputed(arrival_t)
    req.cancel_at = cancel_t
    return req


def _require_int(obj: dict, field: str, minimum: int, path, line_no) -> int:
    value = obj[field]
    if isinstance(value, bool) or not isinstance(value, int):
        raise TraceFormatError(
            path, line_no, f"{field} must be an integer, got {value!r}"
        )
    if value < minimum:
        raise TraceFormatError(
            path, line_no, f"{field} must be >= {minimum}, got {value}"
        )
    return value


def _parse_record(obj, rid_default: int, path, line_no, version: int = 1) -> Request:
    allowed = _ALLOWED_FIELDS_BY_VERSION[version]
    if not isinstance(obj, dict):
        raise TraceFormatError(
            path, line_no, f"expected a JSON object, got {type(obj).__name__}"
        )
    unknown = sorted(set(obj) - allowed)
    if unknown:
        detail = f"allowed in version {version}: {', '.join(sorted(allowed))}"
        if unknown == ["cancel_t"] and version == 1:
            detail = "cancel_t requires a version-2 header"
        raise TraceFormatError(
            path,
            line_no,
            f"unknown field(s) {', '.join(map(repr, unknown))} ({detail})",
        )
    missing = [f for f in _REQUIRED_FIELDS if f not in obj]
    if missing:
        raise TraceFormatError(
            path, line_no, f"missing required field(s) {', '.join(missing)}"
        )
    arrival_t = obj["arrival_t"]
    if isinstance(arrival_t, bool) or not isinstance(arrival_t, (int, float)):
        raise TraceFormatError(
            path, line_no, f"arrival_t must be a number, got {arrival_t!r}"
        )
    # json.loads accepts NaN/Infinity literals, and NaN slips through every
    # `<` comparison — catch it here or it poisons the simulation clock.
    if not math.isfinite(arrival_t) or arrival_t < 0:
        raise TraceFormatError(
            path, line_no, f"arrival_t must be finite and >= 0, got {arrival_t}"
        )
    prompt_len = _require_int(obj, "prompt_len", 1, path, line_no)
    reasoning_len = _require_int(obj, "reasoning_len", 0, path, line_no)
    answer_len = _require_int(obj, "answer_len", 1, path, line_no)
    rid = rid_default
    if "id" in obj:
        rid = _require_int(obj, "id", 0, path, line_no)
    dataset = obj.get("dataset", "")
    if not isinstance(dataset, str):
        raise TraceFormatError(
            path, line_no, f"dataset must be a string, got {dataset!r}"
        )
    skip_prefill = obj.get("skip_prefill", False)
    if not isinstance(skip_prefill, bool):
        raise TraceFormatError(
            path, line_no, f"skip_prefill must be a boolean, got {skip_prefill!r}"
        )
    if skip_prefill and reasoning_len != 0:
        raise TraceFormatError(
            path,
            line_no,
            "skip_prefill requires reasoning_len == 0 "
            "(the reasoning KV cache is declared precomputed)",
        )
    cancel_t = obj.get("cancel_t")
    if cancel_t is not None:
        if isinstance(cancel_t, bool) or not isinstance(cancel_t, (int, float)):
            raise TraceFormatError(
                path, line_no, f"cancel_t must be a number, got {cancel_t!r}"
            )
        if not math.isfinite(cancel_t) or cancel_t <= arrival_t:
            raise TraceFormatError(
                path,
                line_no,
                f"cancel_t must be finite and > arrival_t "
                f"({arrival_t}), got {cancel_t}",
            )
        cancel_t = float(cancel_t)
    return _make_request(
        rid=rid,
        prompt_len=prompt_len,
        reasoning_len=reasoning_len,
        answer_len=answer_len,
        arrival_t=float(arrival_t),
        skip_prefill=skip_prefill,
        dataset=dataset,
        cancel_t=cancel_t,
    )


def _parse_header(obj, path, line_no) -> int:
    if not isinstance(obj, dict) or obj.get("format") != TRACE_FORMAT:
        raise TraceFormatError(
            path,
            line_no,
            'first line must be the header {"format": "pascal-trace", '
            '"version": <1 or 2>}',
        )
    version = obj.get("version")
    if version not in _SUPPORTED_VERSIONS:
        raise TraceFormatError(
            path,
            line_no,
            f"unsupported trace version {version!r} (this reader "
            f"understands versions {' and '.join(map(str, _SUPPORTED_VERSIONS))})",
        )
    return version


def iter_trace(path: str | os.PathLike):
    """Stream a JSONL trace as freshly constructed :class:`Request` objects.

    The incremental counterpart of :func:`load_trace`: one validated
    record at a time, so a trace of any length can feed an online
    :class:`~repro.api.session.ServingSession` without materializing.
    Validation is identical — malformed lines, out-of-order arrivals and
    duplicate ids raise :class:`TraceFormatError` naming the file and
    line, an empty file raises at the first pull.  (Duplicate-id tracking
    keeps one integer per record; everything else is O(1) memory.)
    """
    count = 0
    seen_ids: set[int] = set()
    version: int | None = None
    prev_arrival = 0.0
    with open(path, encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(
                    path, line_no, f"invalid JSON: {exc.msg}"
                ) from None
            if version is None:
                version = _parse_header(obj, path, line_no)
                continue
            req = _parse_record(obj, rid_default=count, path=path,
                                line_no=line_no, version=version)
            if req.arrival_t < prev_arrival:
                raise TraceFormatError(
                    path,
                    line_no,
                    f"arrival_t {req.arrival_t} out of order "
                    f"(previous request arrived at {prev_arrival})",
                )
            if req.rid in seen_ids:
                raise TraceFormatError(
                    path, line_no, f"duplicate request id {req.rid}"
                )
            seen_ids.add(req.rid)
            prev_arrival = req.arrival_t
            count += 1
            yield req
    if version is None:
        raise TraceFormatError(path, 1, "empty trace file (missing header)")


def load_trace(path: str | os.PathLike) -> list[Request]:
    """Load a JSONL trace into fresh :class:`Request` objects.

    Every call returns newly constructed requests (simulation mutates them,
    so replaying one trace through several policies needs a fresh list each
    run).  Malformed lines raise :class:`TraceFormatError` naming the file
    and line.
    """
    return list(iter_trace(path))


# ---------------------------------------------------------------------------
# replay configuration
# ---------------------------------------------------------------------------
def scale_arrival_rate(
    requests: list[Request], rate_scale: float
) -> list[Request]:
    """Rebuild a trace with arrivals compressed by ``rate_scale``.

    ``rate_scale=2.0`` halves every inter-arrival gap (twice the offered
    load); ``0.5`` doubles it.  Scripted cancellations rescale with the
    arrivals (the whole timeline compresses).  Returns fresh
    :class:`Request` objects — arrival time seeds the request's internal
    accounting clock, so it cannot be patched in place.
    """
    if not math.isfinite(rate_scale) or rate_scale <= 0:
        raise ValueError(
            f"rate_scale must be finite and positive, got {rate_scale}"
        )
    return [
        _make_request(
            rid=req.rid,
            prompt_len=req.prompt_len,
            reasoning_len=req.reasoning_len,
            answer_len=req.answer_len,
            arrival_t=req.arrival_t / rate_scale,
            skip_prefill=req.skip_prefill,
            dataset=req.dataset,
            cancel_t=(
                None if req.cancel_at is None else req.cancel_at / rate_scale
            ),
        )
        for req in requests
    ]


@dataclass(frozen=True)
class ReplayTraceConfig:
    """How to replay one recorded trace (the counterpart of TraceConfig).

    ``rate_scale`` rescales arrivals at load time, so one recorded trace
    yields low/medium/high load tiers without re-recording.
    """

    path: str
    rate_scale: float = 1.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.rate_scale) or self.rate_scale <= 0:
            raise ValueError(
                f"rate_scale must be finite and positive, got {self.rate_scale}"
            )

    @property
    def name(self) -> str:
        stem = os.path.splitext(os.path.basename(self.path))[0]
        if self.rate_scale == 1.0:
            return stem
        return f"{stem}@x{self.rate_scale:g}"


def build_replay_trace(config: ReplayTraceConfig) -> list[Request]:
    """Load (and optionally rate-rescale) a recorded trace for one run."""
    requests = load_trace(config.path)
    if config.rate_scale != 1.0:
        requests = scale_arrival_rate(requests, config.rate_scale)
    return requests


# ---------------------------------------------------------------------------
# statistics
# ---------------------------------------------------------------------------
def trace_token_stats(requests: list[Request]) -> dict[str, float]:
    """Summary statistics of a trace (used by distribution benchmarks)."""
    if not requests:
        raise ValueError("empty trace")
    n = len(requests)
    reasoning = [r.reasoning_len for r in requests]
    answering = [r.answer_len for r in requests]
    prompts = [r.prompt_len for r in requests]
    return {
        "n_requests": float(n),
        "prompt_mean": sum(prompts) / n,
        "reasoning_mean": sum(reasoning) / n,
        "reasoning_max": float(max(reasoning)),
        "answering_mean": sum(answering) / n,
        "answering_max": float(max(answering)),
        "total_tokens": float(
            sum(prompts) + sum(reasoning) + sum(answering)
        ),
        "frac_reasoning_under_1000": sum(1 for x in reasoning if x < 1000) / n,
    }
