"""Request lifecycle: phases, scheduling states, and time accounting.

A reasoning-LLM request moves through (Figure 1(b) of the paper):

1. **prefill** — the prompt is processed in one compute-bound pass;
2. **reasoning phase** — hidden chain-of-thought tokens are decoded
   auto-regressively, terminated by the ``</think>`` token;
3. **answering phase** — user-visible tokens are decoded and streamed.

Following Section II-D, the *reasoning phase* is defined to include the
prefill stage, and TTFT is the latency from arrival to the first answering
token.  TTFAT is the latency from the end of reasoning to that same token.

The class also keeps the per-phase breakdown of where wall-clock time went
(executed vs blocked vs preempted) that Figures 4, 5 and 13 report.
"""

from __future__ import annotations

from enum import Enum, auto


class Phase(Enum):
    """Which functional phase of decoding a request is in."""

    REASONING = auto()
    ANSWERING = auto()
    DONE = auto()


class ReqState(Enum):
    """Scheduling state of a request within (or between) instances."""

    #: Waiting in an instance queue; KV may or may not be allocated yet.
    QUEUED = auto()
    #: Member of the current execution batch.
    RUNNING = auto()
    #: Evicted; KV cache offloaded to CPU memory.
    PREEMPTED = auto()
    #: KV cache in flight to another instance at a phase boundary.
    MIGRATING = auto()
    #: All answering tokens generated.
    FINISHED = auto()
    #: Abandoned by its client before completing (terminal, not an error).
    CANCELLED = auto()


#: Time-accounting buckets used by the latency-breakdown figures.
BUCKET_EXECUTED = "executed"
BUCKET_BLOCKED = "blocked"
BUCKET_PREEMPTED = "preempted"

_STATE_BUCKET = {
    ReqState.QUEUED: BUCKET_BLOCKED,
    ReqState.RUNNING: BUCKET_EXECUTED,
    ReqState.PREEMPTED: BUCKET_PREEMPTED,
    ReqState.MIGRATING: BUCKET_PREEMPTED,
}


class Request:
    """One inference request and its full measurement record."""

    __slots__ = (
        "rid",
        "prompt_len",
        "reasoning_len",
        "answer_len",
        "arrival_t",
        "skip_prefill",
        "dataset",
        "cancel_at",
        # live scheduling state
        "phase",
        "state",
        "instance_id",
        "prefill_done",
        "generated_tokens",
        "kv_tokens",
        "on_gpu",
        "quantum_used",
        "level",
        "demoted",
        "enqueue_seq",
        # accounting
        "_state_since",
        "breakdown",
        "first_sched_t",
        "prefill_end_t",
        "reasoning_end_t",
        "first_answer_t",
        "answer_sched_t",
        "done_t",
        "cancelled_t",
        "answer_token_times",
        "n_preemptions",
        "n_migrations",
        "transfer_wait_s",
    )

    def __init__(
        self,
        rid: int,
        prompt_len: int,
        reasoning_len: int,
        answer_len: int,
        arrival_t: float = 0.0,
        skip_prefill: bool = False,
        dataset: str = "",
    ):
        if prompt_len < 1:
            raise ValueError("prompt_len must be >= 1")
        if reasoning_len < 0 or answer_len < 1:
            raise ValueError("reasoning_len must be >= 0 and answer_len >= 1")
        self.rid = rid
        self.prompt_len = prompt_len
        self.reasoning_len = reasoning_len
        self.answer_len = answer_len
        self.arrival_t = arrival_t
        self.skip_prefill = skip_prefill
        self.dataset = dataset
        #: Scripted cancellation time (trace replay); ``None`` = never.
        self.cancel_at: float | None = None

        self.phase = Phase.REASONING if reasoning_len > 0 else Phase.ANSWERING
        self.state = ReqState.QUEUED
        self.instance_id: int | None = None
        self.prefill_done = False
        self.generated_tokens = 0
        self.kv_tokens = 0
        self.on_gpu = False
        self.quantum_used = 0
        self.level = 0
        self.demoted = False
        self.enqueue_seq = 0

        self._state_since = arrival_t
        self.breakdown: dict[tuple[Phase, str], float] = {}
        self.first_sched_t: float | None = None
        self.prefill_end_t: float | None = None
        self.reasoning_end_t: float | None = None
        self.first_answer_t: float | None = None
        self.answer_sched_t: float | None = None
        self.done_t: float | None = None
        self.cancelled_t: float | None = None
        self.answer_token_times: list[float] = []
        self.n_preemptions = 0
        self.n_migrations = 0
        self.transfer_wait_s = 0.0

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def total_decode_tokens(self) -> int:
        """Tokens this request will generate across both phases."""
        return self.reasoning_len + self.answer_len

    @property
    def remaining_tokens(self) -> int:
        """Decode tokens still to be generated."""
        return self.total_decode_tokens - self.generated_tokens

    @property
    def finished(self) -> bool:
        return self.state == ReqState.FINISHED

    @property
    def in_reasoning(self) -> bool:
        return self.phase == Phase.REASONING

    @property
    def in_answering(self) -> bool:
        return self.phase == Phase.ANSWERING

    @property
    def full_kv_tokens(self) -> int:
        """KV footprint if the request were fully cached right now."""
        return self.prompt_len + self.generated_tokens

    def ttft(self) -> float | None:
        """Time-To-First-(answering)-Token, per the paper's definition."""
        if self.first_answer_t is None:
            return None
        return self.first_answer_t - self.arrival_t

    def ttfat(self) -> float | None:
        """Time from end of reasoning to the first answering token."""
        if self.first_answer_t is None or self.reasoning_end_t is None:
            return None
        return self.first_answer_t - self.reasoning_end_t

    def blocking_latency(self) -> float | None:
        """Transition-to-first-answering-schedule delay (Figure 13(c))."""
        if self.answer_sched_t is None or self.reasoning_end_t is None:
            return None
        return self.answer_sched_t - self.reasoning_end_t

    def e2e_latency(self) -> float | None:
        """Arrival to final answering token."""
        if self.done_t is None:
            return None
        return self.done_t - self.arrival_t

    def phase_time(self, phase: Phase, bucket: str) -> float:
        """Accumulated seconds for one (phase, bucket) cell."""
        return self.breakdown.get((phase, bucket), 0.0)

    def reasoning_latency(self) -> float | None:
        """Arrival to end of reasoning (prefill included, Section II-D)."""
        if self.reasoning_end_t is None:
            return None
        return self.reasoning_end_t - self.arrival_t

    # ------------------------------------------------------------------
    # state transitions (called by the serving instance)
    # ------------------------------------------------------------------
    def _accumulate(self, now: float) -> None:
        if self.state in (ReqState.FINISHED, ReqState.CANCELLED):
            return
        elapsed = now - self._state_since
        if elapsed < 0:
            raise ValueError(
                f"clock moved backwards for request {self.rid}: "
                f"{now} < {self._state_since}"
            )
        if elapsed > 0:
            key = (self.phase, _STATE_BUCKET[self.state])
            self.breakdown[key] = self.breakdown.get(key, 0.0) + elapsed
        self._state_since = now

    def set_state(self, state: ReqState, now: float) -> None:
        """Move to a new scheduling state, closing the current interval."""
        self._accumulate(now)
        if state == ReqState.RUNNING and self.first_sched_t is None:
            self.first_sched_t = now
        if (
            state == ReqState.RUNNING
            and self.in_answering
            and self.answer_sched_t is None
        ):
            self.answer_sched_t = now
        if state == ReqState.PREEMPTED and self.state == ReqState.RUNNING:
            self.n_preemptions += 1
        self.state = state

    def note_phase_boundary(self, now: float) -> None:
        """Close the accounting interval exactly at the phase flip."""
        self._accumulate(now)

    def record_token(self, now: float) -> None:
        """Account for one decode token generated at time ``now``.

        Handles the reasoning->answering flip: the token whose index exceeds
        ``reasoning_len`` is the first user-visible answering token.
        """
        if self.state != ReqState.RUNNING:
            raise RuntimeError(
                f"request {self.rid} generated a token while {self.state.name}"
            )
        self.generated_tokens += 1
        self.quantum_used += 1
        if self.phase == Phase.REASONING:
            if self.generated_tokens == self.reasoning_len:
                # This token is the end-of-think marker: reasoning complete.
                # The request is re-enqueued as an answering request; its
                # blocking latency (Figure 13(c)) counts from here until the
                # scheduler next gives it a decode slot.
                self.note_phase_boundary(now)
                self.reasoning_end_t = now
                self.phase = Phase.ANSWERING
        else:
            if self.first_answer_t is None:
                self.first_answer_t = now
            self.answer_token_times.append(now)
            if self.generated_tokens >= self.total_decode_tokens:
                self._accumulate(now)
                self.phase = Phase.DONE
                self.state = ReqState.FINISHED
                self.done_t = now

    def mark_cancelled(self, now: float) -> None:
        """Terminate the request as client-cancelled.

        The phase is left where the cancel caught it (it records how far
        the request got); only the scheduling state becomes terminal.
        """
        if self.state in (ReqState.FINISHED, ReqState.CANCELLED):
            raise RuntimeError(
                f"request {self.rid} cancelled while already {self.state.name}"
            )
        if now >= self._state_since:
            self._accumulate(now)
        # else: cancelled before its nominal arrival — no interval to close.
        self.state = ReqState.CANCELLED
        self.cancelled_t = now

    @property
    def cancelled(self) -> bool:
        return self.state == ReqState.CANCELLED

    def mark_reasoning_precomputed(self, now: float) -> None:
        """Treat prefill+reasoning as already executed (Figure 5 workload)."""
        if self.reasoning_len != 0:
            raise ValueError("precomputed requests must have reasoning_len == 0")
        self.reasoning_end_t = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Request(rid={self.rid}, {self.phase.name}/{self.state.name}, "
            f"gen={self.generated_tokens}/{self.total_decode_tokens}, "
            f"kv={self.kv_tokens})"
        )
