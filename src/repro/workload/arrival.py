"""Arrival processes.

All experiments in the paper use Poisson request arrivals (Sections III-A
and V-A), evaluated at "low", "medium" and "high" rates.  The absolute rates
are not printed in the paper, so the harness derives them from an estimated
cluster token throughput via load factors (see ``harness/calibrate.py``).
"""

from __future__ import annotations

import random
from typing import Iterator


def iter_poisson_arrivals(
    rate_per_s: float,
    n_requests: int,
    rng: random.Random,
    start_t: float = 0.0,
) -> Iterator[float]:
    """Arrival timestamps of a homogeneous Poisson process, lazily.

    Interarrival gaps are iid Exponential(rate); timestamps are
    cumulative.  The single source of truth for the arrival recurrence:
    the batch :func:`poisson_arrivals` and the streaming
    :class:`repro.api.sources.SyntheticSource` both consume it, which is
    what keeps the two paths draw-for-draw identical.
    """
    if rate_per_s <= 0:
        raise ValueError(f"rate must be positive, got {rate_per_s}")
    if n_requests < 0:
        raise ValueError(f"n_requests must be non-negative, got {n_requests}")
    t = start_t
    for _ in range(n_requests):
        t += rng.expovariate(rate_per_s)
        yield t


def poisson_arrivals(
    rate_per_s: float,
    n_requests: int,
    rng: random.Random,
    start_t: float = 0.0,
) -> list[float]:
    """Materialized form of :func:`iter_poisson_arrivals`."""
    return list(iter_poisson_arrivals(rate_per_s, n_requests, rng, start_t))


def iter_onoff_arrivals(
    rate_per_s: float,
    n_requests: int,
    rng: random.Random,
    duty: float = 1.0,
    cycle_s: float = 60.0,
) -> Iterator[float]:
    """On-off modulated (bursty) Poisson arrivals, lazily.

    A square-wave modulated Poisson process: each ``cycle_s``-second cycle
    opens with an "on" window of ``duty * cycle_s`` seconds during which
    arrivals stream at ``rate_per_s / duty``, followed by silence.  The
    long-run mean rate is exactly ``rate_per_s``, so load tiers stay
    comparable with the homogeneous process; what changes is the
    *peak-to-mean ratio* (``1/duty``), the heavy-tail stressor bursty
    production traffic exhibits.

    Implemented by time-warping: a homogeneous Poisson process at the
    burst rate is drawn in warped time (the concatenation of the on
    windows) and mapped back to real time.  ``duty >= 1.0`` delegates to
    :func:`iter_poisson_arrivals` draw-for-draw — a trace built with the
    default duty is byte-identical to the unmodulated one.
    """
    if duty <= 0.0:
        raise ValueError(f"duty must be positive, got {duty}")
    if cycle_s <= 0.0:
        raise ValueError(f"cycle must be positive, got {cycle_s}")
    if duty >= 1.0:
        yield from iter_poisson_arrivals(rate_per_s, n_requests, rng)
        return
    if rate_per_s <= 0:
        raise ValueError(f"rate must be positive, got {rate_per_s}")
    if n_requests < 0:
        raise ValueError(f"n_requests must be non-negative, got {n_requests}")
    on_s = duty * cycle_s
    burst_rate = rate_per_s / duty
    tau = 0.0  # clock over the concatenated on-windows only
    for _ in range(n_requests):
        tau += rng.expovariate(burst_rate)
        n_cycles, within = divmod(tau, on_s)
        yield n_cycles * cycle_s + within


def uniform_arrivals(
    interval_s: float,
    n_requests: int,
    start_t: float = 0.0,
) -> list[float]:
    """Deterministic, evenly spaced arrivals (used by unit tests/examples)."""
    if interval_s < 0:
        raise ValueError(f"interval must be non-negative, got {interval_s}")
    return [start_t + i * interval_s for i in range(n_requests)]


def burst_arrivals(n_requests: int, at_t: float = 0.0) -> list[float]:
    """All requests arrive simultaneously (closed-loop stress tests)."""
    return [at_t] * n_requests
