"""Arrival processes.

All experiments in the paper use Poisson request arrivals (Sections III-A
and V-A), evaluated at "low", "medium" and "high" rates.  The absolute rates
are not printed in the paper, so the harness derives them from an estimated
cluster token throughput via load factors (see ``harness/calibrate.py``).
"""

from __future__ import annotations

import random
from typing import Iterator


def iter_poisson_arrivals(
    rate_per_s: float,
    n_requests: int,
    rng: random.Random,
    start_t: float = 0.0,
) -> Iterator[float]:
    """Arrival timestamps of a homogeneous Poisson process, lazily.

    Interarrival gaps are iid Exponential(rate); timestamps are
    cumulative.  The single source of truth for the arrival recurrence:
    the batch :func:`poisson_arrivals` and the streaming
    :class:`repro.api.sources.SyntheticSource` both consume it, which is
    what keeps the two paths draw-for-draw identical.
    """
    if rate_per_s <= 0:
        raise ValueError(f"rate must be positive, got {rate_per_s}")
    if n_requests < 0:
        raise ValueError(f"n_requests must be non-negative, got {n_requests}")
    t = start_t
    for _ in range(n_requests):
        t += rng.expovariate(rate_per_s)
        yield t


def poisson_arrivals(
    rate_per_s: float,
    n_requests: int,
    rng: random.Random,
    start_t: float = 0.0,
) -> list[float]:
    """Materialized form of :func:`iter_poisson_arrivals`."""
    return list(iter_poisson_arrivals(rate_per_s, n_requests, rng, start_t))


def uniform_arrivals(
    interval_s: float,
    n_requests: int,
    start_t: float = 0.0,
) -> list[float]:
    """Deterministic, evenly spaced arrivals (used by unit tests/examples)."""
    if interval_s < 0:
        raise ValueError(f"interval must be non-negative, got {interval_s}")
    return [start_t + i * interval_s for i in range(n_requests)]


def burst_arrivals(n_requests: int, at_t: float = 0.0) -> list[float]:
    """All requests arrive simultaneously (closed-loop stress tests)."""
    return [at_t] * n_requests
