"""Importers: convert real serving logs into the versioned trace schema.

The replay subsystem (:mod:`repro.workload.trace`) consumes one canonical
JSONL format.  Production systems log requests in their own shapes; this
module converts the two most common ones so "replay my real traffic
through every policy" is a single command::

    python -m repro.harness import-trace --format vllm \\
        --input server_requests.jsonl --output trace.jsonl
    python -m repro.harness trace-compare --trace trace.jsonl

Supported input formats (one JSON object per line; blank lines ignored):

``vllm``
    Request-level records as exported from vLLM's ``RequestOutput`` /
    ``RequestMetrics`` objects (the names below are vLLM's own):

    * ``arrival_time`` — epoch or monotonic seconds (required);
    * ``num_prompt_tokens`` or ``prompt_token_ids`` (list) — prompt
      length (required, >= 1);
    * ``num_generated_tokens`` or ``token_ids`` (list) — total decode
      length (required, >= 1);
    * ``num_reasoning_tokens`` — optional reasoning split; defaults to 0
      (a non-reasoning model's log replays as pure answering);
    * ``request_id`` — optional tag kept in import order; ``model`` —
      optional, becomes the record's ``dataset`` label.

``openai``
    OpenAI-style API *response* logs — one chat/completions response
    object per line, as produced by client-side request logging:

    * ``created`` — epoch seconds (required);
    * ``usage.prompt_tokens`` and ``usage.completion_tokens`` (required);
    * ``usage.completion_tokens_details.reasoning_tokens`` — optional
      reasoning split (the o-series accounting field); defaults to 0;
    * ``model`` — optional, becomes the ``dataset`` label.

Conversion rules shared by both formats:

* timestamps are shifted so the earliest request arrives at ``t = 0`` and
  records are re-sorted by arrival (log order is completion order in most
  servers, not arrival order);
* ``completion`` tokens split into ``reasoning_len`` (the reported
  reasoning count, clamped to ``completion - 1``) and ``answer_len`` (the
  remainder — at least 1, since the trace schema requires a visible
  answer token);
* request ids are assigned ``0..n-1`` in arrival order (original ids are
  free-form strings and the trace schema wants unique ints).

Malformed lines are collected — not silently skipped — into
:class:`ImportReport.errors` as ``(line_no, message)`` pairs.  ``strict``
mode (the default) raises :class:`TraceImportError` on the first bad
line; lenient mode imports every valid line and reports the rest, so one
corrupt line does not discard a million-line log.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field

from repro.workload.request import Request
from repro.workload.trace import dump_trace


class TraceImportError(ValueError):
    """An input log line failed conversion, with the line pinpointed."""

    def __init__(self, path: str | os.PathLike, line_no: int, message: str):
        self.path = str(path)
        self.line_no = line_no
        self.message = message
        super().__init__(f"{path}:{line_no}: {message}")

    def __reduce__(self):
        # Mirror TraceFormatError: default pickling would replay __init__
        # with the formatted string and crash a multiprocessing unpickler.
        return (TraceImportError, (self.path, self.line_no, self.message))


@dataclass
class ImportReport:
    """Outcome of one import: converted requests plus per-line errors."""

    requests: list[Request] = field(default_factory=list)
    #: ``(line_no, message)`` for every line that failed conversion.
    errors: list[tuple[int, str]] = field(default_factory=list)
    n_lines: int = 0

    @property
    def n_imported(self) -> int:
        return len(self.requests)

    def error_summary(self, limit: int = 10) -> str:
        """Human-readable digest of the first ``limit`` errors."""
        lines = [
            f"line {line_no}: {message}"
            for line_no, message in self.errors[:limit]
        ]
        if len(self.errors) > limit:
            lines.append(f"... and {len(self.errors) - limit} more")
        return "\n".join(lines)


def _positive_int(value, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


def _token_count(obj: dict, count_field: str, ids_field: str, name: str) -> int:
    """A token count given directly or as a token-id list (vLLM logs both)."""
    if count_field in obj:
        return _positive_int(obj[count_field], count_field)
    ids = obj.get(ids_field)
    if isinstance(ids, list) and ids:
        return len(ids)
    raise ValueError(f"missing {name}: need {count_field} or {ids_field}")


def _finite_time(value, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"{name} must be a number, got {value!r}")
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    return float(value)


def _split_completion(completion: int, reasoning, source: str) -> tuple[int, int]:
    """``(reasoning_len, answer_len)`` from a total completion count.

    The trace schema requires ``answer_len >= 1`` (a request must emit a
    visible token), so a log claiming the entire completion was reasoning
    is clamped to leave one answering token.
    """
    if reasoning is None:
        return 0, completion
    if isinstance(reasoning, bool) or not isinstance(reasoning, int):
        raise ValueError(f"{source} must be an integer, got {reasoning!r}")
    if reasoning < 0:
        raise ValueError(f"{source} must be >= 0, got {reasoning}")
    if reasoning > completion:
        raise ValueError(
            f"{source} ({reasoning}) exceeds completion tokens ({completion})"
        )
    reasoning = min(reasoning, completion - 1)
    return reasoning, completion - reasoning


#: Parsed-but-unshifted record: (arrival_time, prompt, reasoning, answer,
#: dataset).  Ids are assigned after the arrival sort.
_Parsed = tuple[float, int, int, int, str]


def _parse_vllm(obj: dict) -> _Parsed:
    arrival = _finite_time(obj.get("arrival_time"), "arrival_time")
    prompt = _token_count(
        obj, "num_prompt_tokens", "prompt_token_ids", "prompt length"
    )
    completion = _token_count(
        obj, "num_generated_tokens", "token_ids", "generated length"
    )
    reasoning, answer = _split_completion(
        completion, obj.get("num_reasoning_tokens"), "num_reasoning_tokens"
    )
    dataset = obj.get("model", "")
    if not isinstance(dataset, str):
        raise ValueError(f"model must be a string, got {dataset!r}")
    return arrival, prompt, reasoning, answer, dataset


def _parse_openai(obj: dict) -> _Parsed:
    arrival = _finite_time(obj.get("created"), "created")
    usage = obj.get("usage")
    if not isinstance(usage, dict):
        raise ValueError(f"usage must be an object, got {usage!r}")
    prompt = _positive_int(usage.get("prompt_tokens"), "usage.prompt_tokens")
    completion = _positive_int(
        usage.get("completion_tokens"), "usage.completion_tokens"
    )
    details = usage.get("completion_tokens_details") or {}
    if not isinstance(details, dict):
        raise ValueError(
            f"usage.completion_tokens_details must be an object, "
            f"got {details!r}"
        )
    reasoning, answer = _split_completion(
        completion,
        details.get("reasoning_tokens"),
        "usage.completion_tokens_details.reasoning_tokens",
    )
    dataset = obj.get("model", "")
    if not isinstance(dataset, str):
        raise ValueError(f"model must be a string, got {dataset!r}")
    return arrival, prompt, reasoning, answer, dataset


_PARSERS = {"vllm": _parse_vllm, "openai": _parse_openai}

#: Formats :func:`import_log` understands.
IMPORT_FORMATS = tuple(sorted(_PARSERS))


def import_log(
    path: str | os.PathLike, fmt: str, strict: bool = True
) -> ImportReport:
    """Convert one real-format log file into trace-ready requests.

    ``fmt`` is one of :data:`IMPORT_FORMATS`.  In ``strict`` mode the
    first malformed line raises :class:`TraceImportError`; otherwise bad
    lines are recorded in the returned report and the rest import.  The
    result's requests are arrival-sorted, time-shifted to start at zero
    and re-numbered ``0..n-1`` (see the module docstring for the full
    conversion rules).
    """
    try:
        parser = _PARSERS[fmt]
    except KeyError:
        raise ValueError(
            f"unknown import format {fmt!r}; expected one of "
            f"{', '.join(IMPORT_FORMATS)}"
        ) from None
    report = ImportReport()
    parsed: list[tuple[float, int, _Parsed]] = []
    with open(path, encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            report.n_lines += 1
            try:
                obj = json.loads(line)
                if not isinstance(obj, dict):
                    raise ValueError(
                        f"expected a JSON object, got {type(obj).__name__}"
                    )
                record = parser(obj)
            except (ValueError, TypeError) as exc:
                message = getattr(exc, "msg", None) or str(exc)
                if strict:
                    raise TraceImportError(path, line_no, message) from None
                report.errors.append((line_no, message))
                continue
            # Log order is completion order in most servers; remember the
            # line number so equal-arrival ties stay deterministic.
            parsed.append((record[0], line_no, record))
    parsed.sort(key=lambda item: (item[0], item[1]))
    t0 = parsed[0][0] if parsed else 0.0
    for rid, (arrival, _, (_, prompt, reasoning, answer, dataset)) in enumerate(
        parsed
    ):
        report.requests.append(
            Request(
                rid=rid,
                prompt_len=prompt,
                reasoning_len=reasoning,
                answer_len=answer,
                arrival_t=arrival - t0,
                dataset=dataset,
            )
        )
    return report


def import_to_trace(
    input_path: str | os.PathLike,
    output_path: str | os.PathLike,
    fmt: str,
    strict: bool = True,
) -> ImportReport:
    """Import a log and write the canonical JSONL trace in one call.

    Nothing is written when the import yields zero requests (an empty
    trace file would fail every downstream loader anyway); callers decide
    whether that is an error from the returned report.
    """
    report = import_log(input_path, fmt, strict=strict)
    if report.requests:
        with open(output_path, "w", encoding="utf-8") as fh:
            fh.write(dump_trace(report.requests))
    return report
