"""Pull-based arrival sources: the workload layer, inverted.

The original entry points materialized the full request list up front and
handed it to the engine.  An :class:`ArrivalSource` inverts that contract:
it is a *lazy, arrival-ordered iterator* of :class:`~repro.workload.request.Request`
objects, consumed incrementally by a :class:`~repro.api.session.ServingSession`
(via the engine's pull-based feed mechanism), so an unbounded stream —
live traffic, a huge trace file — enters the event queue one request at a
time instead of as a horizon-complete preload.  (Laziness bounds the
*event-queue* footprint, not the run's: requests the cluster has seen
still accumulate in its ``submitted``/``completed`` measurement records,
which every metrics view reads.)

Every batch workload constructor has a source counterpart:

=====================================  =====================================
batch (materialized list)              source (lazy iterator)
=====================================  =====================================
``build_trace(TraceConfig)``           :class:`SyntheticSource`
``build_replay_trace(ReplayConfig)``   :class:`TraceFileSource`
a plain ``list[Request]``              :class:`ListSource`
(not expressible)                      :class:`MergedSource` (composition)
=====================================  =====================================

**Determinism contract.**  A source must yield requests in non-decreasing
``arrival_t`` order (sessions validate this).  :class:`SyntheticSource`
draws arrivals and token lengths from the same named RNG streams, in the
same per-request order, as the batch :func:`~repro.workload.trace.build_trace`
— so streaming a synthetic workload through a session is *byte-identical*
to preloading it (``tests/test_api_session.py`` pins this property for
every registered policy).

Sources are single-use iterables: iterate each instance once.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator

from repro.workload import arrival as arrival_mod
from repro.workload.request import Request
from repro.workload.trace import (
    ReplayTraceConfig,
    TraceConfig,
    _make_request,
    iter_trace,
)
from repro.sim.rng import RandomStreams


class ArrivalSource:
    """Abstract lazy request stream (iterate once, arrival-ordered).

    Subclasses implement :meth:`__iter__` yielding freshly constructed
    :class:`~repro.workload.request.Request` objects with non-decreasing
    ``arrival_t``.  Freshness matters: simulation mutates request state,
    so a source must never hand out objects it will yield again.
    """

    def __iter__(self) -> Iterator[Request]:
        raise NotImplementedError

    def merged_with(self, *others: "ArrivalSource") -> "MergedSource":
        """Compose this source with others into one time-ordered stream."""
        return MergedSource((self, *others))


class ListSource(ArrivalSource):
    """Adapt an already materialized request list to the source contract.

    The list must be arrival-ordered (checked lazily during iteration, so
    a huge list costs nothing extra up front); ties keep list order, which
    is exactly what the batch path's FIFO event tie-break did.
    """

    def __init__(self, requests: Iterable[Request]):
        self._requests = list(requests)

    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self) -> Iterator[Request]:
        prev = float("-inf")
        for req in self._requests:
            if req.arrival_t < prev:
                raise ValueError(
                    f"ListSource requests must be arrival-ordered: request "
                    f"{req.rid} at t={req.arrival_t} after t={prev}"
                )
            prev = req.arrival_t
            yield req


class SyntheticSource(ArrivalSource):
    """Stream a Poisson-arrival dataset workload without materializing it.

    Draw-for-draw equivalent to ``build_trace(config)``: arrivals come
    from the ``arrivals:<name>`` stream, token lengths from the
    ``dataset:<name>`` stream, one request at a time.  The two streams are
    independent :class:`random.Random` instances, so interleaving their
    draws per request yields exactly the values the batch builder drew in
    its two separate passes.
    """

    def __init__(self, config: TraceConfig):
        self.config = config

    def __iter__(self) -> Iterator[Request]:
        config = self.config
        streams = RandomStreams(config.seed)
        arrivals = arrival_mod.iter_onoff_arrivals(
            config.arrival_rate_per_s,
            config.n_requests,
            streams.stream(f"arrivals:{config.name}"),
            duty=config.burst_duty,
            cycle_s=config.burst_cycle_s,
        )
        lengths_rng = streams.stream(f"dataset:{config.dataset.name}")
        for rid, t in enumerate(arrivals):
            yield config.dataset.sample_request(rid, t, lengths_rng)


class TraceFileSource(ArrivalSource):
    """Stream a recorded JSONL trace from disk, one validated line at a
    time (the lazy counterpart of ``build_replay_trace``).

    ``rate_scale`` rescales arrivals record-by-record as they are read;
    malformed lines raise :class:`~repro.workload.trace.TraceFormatError`
    naming the file and line, exactly like the batch loader.
    """

    def __init__(self, config: ReplayTraceConfig):
        self.config = config

    def __iter__(self) -> Iterator[Request]:
        scale = self.config.rate_scale
        for req in iter_trace(self.config.path):
            if scale == 1.0:
                yield req
            else:
                yield _make_request(
                    rid=req.rid,
                    prompt_len=req.prompt_len,
                    reasoning_len=req.reasoning_len,
                    answer_len=req.answer_len,
                    arrival_t=req.arrival_t / scale,
                    skip_prefill=req.skip_prefill,
                    dataset=req.dataset,
                    cancel_t=(
                        None if req.cancel_at is None
                        else req.cancel_at / scale
                    ),
                )


class MergedSource(ArrivalSource):
    """Time-ordered k-way merge of several sources (workload composition).

    Ties break by source position (earlier-listed sources first), then by
    each source's own order — deterministic regardless of generator
    timing.  Lazy end to end: each component is advanced only when its
    head is consumed, so merging unbounded sources stays O(k) memory.
    """

    def __init__(self, sources: Iterable[ArrivalSource]):
        self.sources = tuple(sources)
        if not self.sources:
            raise ValueError("MergedSource needs at least one source")

    def __iter__(self) -> Iterator[Request]:
        # Each source contributes at most one head, so (arrival_t, index)
        # is a total order and heapq never compares Request objects.
        heads: list[tuple[float, int, Request, Iterator[Request]]] = []
        for index, source in enumerate(self.sources):
            iterator = iter(source)
            first = next(iterator, None)
            if first is not None:
                heads.append((first.arrival_t, index, first, iterator))
        heapq.heapify(heads)
        while heads:
            t, index, req, iterator = heapq.heappop(heads)
            yield req
            nxt = next(iterator, None)
            if nxt is not None:
                if nxt.arrival_t < t:
                    raise ValueError(
                        f"source {index} regressed: request {nxt.rid} at "
                        f"t={nxt.arrival_t} after t={t}"
                    )
                heapq.heappush(heads, (nxt.arrival_t, index, nxt, iterator))


_MASK64 = (1 << 64) - 1


def stable_shard64(rid: int) -> int:
    """A 64-bit mix of a request id, stable across processes and runs.

    SplitMix64 finalizer: cheap, well-distributed, and a pure function of
    its input — unlike Python's ``hash()``, whose value for str/bytes
    changes per process (``PYTHONHASHSEED``) and would silently partition
    the same trace differently in every worker.
    """
    z = (rid + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def shard_of(rid: int, n_shards: int) -> int:
    """The partition owning request ``rid`` in an ``n_shards``-way split."""
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    return stable_shard64(rid) % n_shards


class PartitionedSource(ArrivalSource):
    """One deterministic hash-partition of a base source (a lazy filter).

    Yields exactly the requests with ``shard_of(rid, n_shards) == shard``,
    in the base source's order — so each partition inherits the base's
    arrival ordering, and the K partitions of one stream are disjoint and
    jointly exhaustive.  Recombining them with :class:`MergedSource`
    reproduces the original stream (byte-for-byte when arrival times are
    distinct; equal-time requests from *different* partitions recombine in
    partition order, which no per-partition consumer can observe).

    The base is iterated once per partition instance, so K partitions of
    one stream need K independently constructed bases (every config-backed
    source — :class:`SyntheticSource`, :class:`TraceFileSource` — builds a
    fresh iterator per ``__iter__``, so sharing one such base is fine).
    """

    def __init__(self, base: ArrivalSource, shard: int, n_shards: int):
        if not 0 <= shard < n_shards:
            raise ValueError(
                f"shard must be in [0, {n_shards}), got {shard}"
            )
        self.base = base
        self.shard = shard
        self.n_shards = n_shards

    def __iter__(self) -> Iterator[Request]:
        shard, n_shards = self.shard, self.n_shards
        for req in self.base:
            if shard_of(req.rid, n_shards) == shard:
                yield req


#: Anything :func:`as_source` can coerce into an :class:`ArrivalSource`.
SourceLike = (
    ArrivalSource | TraceConfig | ReplayTraceConfig | Iterable[Request]
)


def as_source(workload: SourceLike) -> ArrivalSource:
    """Coerce any supported workload shape into an :class:`ArrivalSource`.

    Accepts an existing source (returned unchanged), a
    :class:`~repro.workload.trace.TraceConfig` (synthesis), a
    :class:`~repro.workload.trace.ReplayTraceConfig` (JSONL replay), or an
    iterable of requests.
    """
    if isinstance(workload, ArrivalSource):
        return workload
    if isinstance(workload, TraceConfig):
        return SyntheticSource(workload)
    if isinstance(workload, ReplayTraceConfig):
        return TraceFileSource(workload)
    if isinstance(workload, Iterable):
        return ListSource(workload)
    raise TypeError(
        f"cannot build an ArrivalSource from {type(workload).__name__!r}"
    )
