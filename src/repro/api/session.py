"""`ServingSession`: the online request-lifecycle façade.

Everything the harness, the CLI and third-party code need for *online*
serving — submit requests as they arrive, observe their lifecycle, apply
admission control, advance simulated time — in one object, instead of the
batch contract ("materialize the full workload, run to completion, read
the metrics") the original entry points imposed.

A minimal online loop::

    from repro.api import ServingSession, TraceFileSource
    from repro.workload.trace import ReplayTraceConfig

    session = ServingSession(policy="pascal")
    session.attach(TraceFileSource(ReplayTraceConfig("trace.jsonl")))
    session.subscribe(MySubscriber())      # lifecycle event callbacks
    session.step(until=60.0)              # first simulated minute
    handle = session.submit(my_request)   # mid-run submission
    metrics = session.drain()             # run to completion + collect

The session is a thin, observable shell over the existing simulator: it
owns a :class:`~repro.cluster.cluster.Cluster`, feeds it from pull-based
:class:`~repro.api.sources.ArrivalSource` iterators through the engine's
feed mechanism, and fans the cluster's lifecycle hooks out to subscribers.
Running the same workload through a session or through the legacy batch
path produces **byte-identical** results — the property test in
``tests/test_api_session.py`` pins it for every registered policy, and the
golden tables are now produced through this layer.

Lifecycle of one request (events in order)::

    submit ──► on_admit(handle, now, instance_id) ──► ... decoding ...
       │            ──► on_phase_change(handle, now)     # reasoning→answer
       │            ──► on_first_token(handle, now)      # TTFT milestone
       │            ──► on_complete(handle, now)
       ├──► on_defer(handle, now, delay_s) ──► (re-enters admission)
       ├──► on_reject(handle, now, reason)               # terminal
       └──► on_cancel(handle, now)                       # terminal

Requests with ``reasoning_len == 0`` skip ``on_phase_change`` (they are
born answering); every admitted request eventually fires ``on_complete``
when the session drains.  ``on_cancel`` can interrupt the lifecycle at
any point before completion — :meth:`RequestHandle.cancel` (or a
client disconnect at the serving gateway) schedules it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig
from repro.core.policy import ClusterPolicy
from repro.api.admission import AdmissionPolicy
from repro.api.sources import ArrivalSource, SourceLike, as_source
from repro.metrics.collector import RunMetrics, collect
from repro.workload.request import Request

if TYPE_CHECKING:  # annotation-only imports
    from repro.perfmodel.analytical import PerfModel
    from repro.serving.instance import ServingInstance


class RequestHandle:
    """The session's view of one submitted request.

    Handed back by :meth:`ServingSession.submit` and passed to every
    subscriber callback.  A handle never detaches from its request: all
    measurement accessors read the live (or final) request state.
    """

    __slots__ = ("request", "status", "reject_reason", "_session")

    #: ``status`` values, in lifecycle order.
    PENDING = "pending"      #: submitted, not yet through admission
    ADMITTED = "admitted"    #: placed on an instance, decoding or queued
    REJECTED = "rejected"    #: turned away by admission (terminal)
    COMPLETED = "completed"  #: all answering tokens generated (terminal)
    CANCELLED = "cancelled"  #: abandoned by its client (terminal)

    def __init__(
        self, request: Request, session: "ServingSession | None" = None
    ):
        self.request = request
        self.status = RequestHandle.PENDING
        self.reject_reason: str | None = None
        self._session = session

    @property
    def rid(self) -> int:
        """The underlying request id."""
        return self.request.rid

    @property
    def instance_id(self) -> int | None:
        """Instance currently (or last) hosting the request, if placed."""
        return self.request.instance_id

    @property
    def done(self) -> bool:
        """Terminal any way: completed, rejected or cancelled."""
        return self.status in (
            RequestHandle.COMPLETED,
            RequestHandle.REJECTED,
            RequestHandle.CANCELLED,
        )

    def cancel(self) -> bool:
        """Ask the session to cancel this request.

        The cancellation is *scheduled* (a ``CANCEL`` event at the current
        simulated clock) rather than applied in place, so it is safe to
        call from subscriber callbacks and takes effect in deterministic
        event order.  Returns ``False`` when the request is already
        terminal.  Raises :class:`RuntimeError` on a handle that was
        constructed detached from a session.
        """
        if self._session is None:
            raise RuntimeError(
                f"handle for request {self.rid} is not attached to a "
                "session; use Cluster.cancel(rid) directly"
            )
        return self._session.cancel(self)

    def ttft(self) -> float | None:
        """Time to first answering token so far (None before it exists)."""
        return self.request.ttft()

    def e2e_latency(self) -> float | None:
        """Arrival to final token (None until completed)."""
        return self.request.e2e_latency()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RequestHandle(rid={self.rid}, {self.status}, "
            f"phase={self.request.phase.name})"
        )


class SessionSubscriber:
    """Base class for lifecycle observers: override what you care about.

    Callbacks run synchronously inside the simulation loop, in submission/
    event order, with the simulated clock as ``now``.  They must not call
    back into :meth:`ServingSession.step`/:meth:`~ServingSession.drain`
    (the engine is not re-entrant); submitting new requests from a
    callback is allowed — that is how closed-loop clients are written.
    """

    def on_admit(
        self, handle: RequestHandle, now: float, instance_id: int
    ) -> None:
        """``handle`` passed admission and was placed on ``instance_id``."""

    def on_reject(
        self, handle: RequestHandle, now: float, reason: str
    ) -> None:
        """Admission turned ``handle`` away permanently."""

    def on_defer(
        self, handle: RequestHandle, now: float, delay_s: float
    ) -> None:
        """Admission postponed ``handle``; it re-arrives ``delay_s`` later."""

    def on_phase_change(self, handle: RequestHandle, now: float) -> None:
        """``handle`` emitted its end-of-think token (reasoning→answering)."""

    def on_first_token(self, handle: RequestHandle, now: float) -> None:
        """``handle`` delivered its first user-visible answering token."""

    def on_complete(self, handle: RequestHandle, now: float) -> None:
        """``handle`` generated its final answering token (terminal)."""

    def on_cancel(self, handle: RequestHandle, now: float) -> None:
        """``handle``'s client abandoned it before completion (terminal)."""


class EventPrinter(SessionSubscriber):
    """Subscriber that renders the lifecycle stream as text lines.

    One line per event, ``[<sim time>] <event> req <rid> <detail>``, in
    dispatch order — what ``python -m repro.harness serve`` prints, and a
    convenient debugging tap for any session (``session.subscribe(
    EventPrinter())``).
    """

    def __init__(self, write: Callable[[str], None] | None = None):
        import sys

        self._write: Callable[[str], None] = (
            write if write is not None else sys.stdout.write
        )

    def _line(
        self, now: float, kind: str, handle: RequestHandle, detail: str = ""
    ) -> None:
        tag = f" ({handle.request.dataset})" if handle.request.dataset else ""
        suffix = f"  {detail}" if detail else ""
        self._write(
            f"[{now:12.3f}s] {kind:<12} req {handle.rid}{tag}{suffix}\n"
        )

    def on_admit(
        self, handle: RequestHandle, now: float, instance_id: int
    ) -> None:
        self._line(now, "admit", handle, f"-> instance {instance_id}")

    def on_reject(
        self, handle: RequestHandle, now: float, reason: str
    ) -> None:
        self._line(now, "reject", handle, reason)

    def on_defer(
        self, handle: RequestHandle, now: float, delay_s: float
    ) -> None:
        self._line(now, "defer", handle, f"retry in {delay_s:g}s")

    def on_phase_change(self, handle: RequestHandle, now: float) -> None:
        self._line(
            now,
            "phase",
            handle,
            f"reasoning -> answering "
            f"({handle.request.generated_tokens} think tokens)",
        )

    def on_first_token(self, handle: RequestHandle, now: float) -> None:
        ttft = handle.ttft()
        detail = f"ttft {ttft:.3f}s" if ttft is not None else ""
        self._line(now, "first-token", handle, detail)

    def on_complete(self, handle: RequestHandle, now: float) -> None:
        latency = handle.e2e_latency()
        detail = f"e2e {latency:.3f}s" if latency is not None else ""
        self._line(now, "complete", handle, detail)

    def on_cancel(self, handle: RequestHandle, now: float) -> None:
        req = handle.request
        self._line(
            now,
            "cancel",
            handle,
            f"in {req.phase.name.lower()} "
            f"({req.generated_tokens}/{req.total_decode_tokens} tokens)",
        )


class ServingSession:
    """An online serving deployment: submit, observe, advance, collect.

    Parameters
    ----------
    policy:
        Registered cluster-policy name (``repro.core.registry``) or an
        unbound :class:`~repro.core.policy.ClusterPolicy` instance.
    config:
        Cluster shape; defaults to the paper's eight-instance deployment
        (:class:`~repro.config.ClusterConfig`).
    admission:
        Optional :class:`~repro.api.admission.AdmissionPolicy` consulted
        before placement; omitted = admit everything.
    horizon_s:
        Simulated-time ceiling; events beyond it are never dispatched.
    perf:
        Optional :class:`~repro.perfmodel.analytical.PerfModel` override
        (tests and what-if studies; None = the analytical H100 model).

    The session wraps one single-use :class:`~repro.cluster.cluster.Cluster`
    (exposed as :attr:`cluster` for advanced reads — instance census, the
    monitor, migration stats).  Time advances only inside :meth:`step` or
    :meth:`drain`; between calls the simulation is frozen and every
    accessor is a consistent snapshot.
    """

    def __init__(
        self,
        policy: str | ClusterPolicy = "pascal",
        config: ClusterConfig | None = None,
        admission: AdmissionPolicy | None = None,
        horizon_s: float = float("inf"),
        perf: PerfModel | None = None,
    ):
        self.config = config or ClusterConfig()
        self.cluster = Cluster(
            self.config, policy=policy, perf=perf, horizon_s=horizon_s
        )
        if admission is not None:
            # An explicit session gate wins; otherwise keep whatever the
            # policy installed at bind time (``speculative-replace``
            # defers rank-uncertain arrivals through its own gate).
            self.cluster.admission = admission
        self._handles: dict[Request, RequestHandle] = {}
        self._subscribers: list[SessionSubscriber] = []
        cluster = self.cluster
        cluster.on_admit_hook = self._fire_admit
        cluster.on_reject_hook = self._fire_reject
        cluster.on_defer_hook = self._fire_defer
        cluster.on_phase_hook = self._fire_phase
        cluster.on_first_token_hook = self._fire_first_token
        cluster.on_complete_hook = self._fire_complete
        cluster.on_cancel_hook = self._fire_cancel

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> RequestHandle:
        """Submit one request now; returns its lifecycle handle.

        Safe at any point of the session's life: a request whose
        ``arrival_t`` is already in the past (relative to :attr:`now`) is
        admitted at the current clock, with the gap accounted as queued
        time.  Admission control, if installed, runs when the arrival
        event fires — not here — so the handle starts ``pending``.
        """
        handle = self._handle_for(request)
        self.cluster.submit_one(request)
        return handle

    def attach(self, source: SourceLike) -> None:
        """Feed an arrival source (or anything :func:`as_source` accepts).

        The source is consumed *incrementally* as simulated time reaches
        each arrival — O(1) queue space regardless of source length — and
        may be attached mid-run; multiple attached sources interleave by
        arrival time.  Handles for its requests are created lazily at
        pull time (retrieve them via :meth:`handle_for` or subscriber
        callbacks).
        """
        self.cluster.attach_arrivals(self._track(as_source(source)))

    def _track(self, source: ArrivalSource) -> Iterator[Request]:
        for request in source:
            self._handle_for(request)
            yield request

    def _handle_for(self, request: Request) -> RequestHandle:
        handle = self._handles.get(request)
        if handle is None:
            handle = RequestHandle(request, self)
            self._handles[request] = handle
        return handle

    def stop_intake(self) -> int:
        """Detach every attached arrival source (graceful-shutdown cut).

        Requests already pulled from the sources keep running; nothing
        further is drawn, so a bounded :meth:`step` loop can finish the
        in-flight work without ingesting the rest of an unbounded
        stream.  Returns the number of sources detached.  Directly
        submitted requests are unaffected.
        """
        return self.cluster.engine.detach_feeds()

    def cancel(
        self, target: RequestHandle | Request, at: float | None = None
    ) -> bool:
        """Schedule cancellation of a submitted request.

        ``at`` is a simulated time (clamped to the current clock; default
        = now); the cancel takes effect when the engine dispatches it, in
        deterministic event order — which makes this safe to call from
        subscriber callbacks, unlike ``cluster.cancel``.  Returns ``False``
        when the request is already terminal.
        """
        request = target.request if isinstance(target, RequestHandle) else target
        return self.cluster.request_cancel(request, at)

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def subscribe(self, subscriber: SessionSubscriber) -> SessionSubscriber:
        """Register a lifecycle observer (returned, for chaining)."""
        self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: SessionSubscriber) -> None:
        """Remove a previously registered observer (KeyError if absent)."""
        try:
            self._subscribers.remove(subscriber)
        except ValueError:
            raise KeyError(f"not a subscriber: {subscriber!r}") from None

    def handle_for(self, request: Request) -> RequestHandle:
        """The handle of any request this session has seen (or will track)."""
        return self._handle_for(request)

    @property
    def now(self) -> float:
        """The simulated clock (seconds since session start)."""
        return self.cluster.engine.now

    @property
    def n_submitted(self) -> int:
        """Requests the session has seen (sources count as they are pulled)."""
        return len(self.cluster.submitted)

    @property
    def n_completed(self) -> int:
        return len(self.cluster.completed)

    @property
    def n_rejected(self) -> int:
        return len(self.cluster.rejected)

    @property
    def n_cancelled(self) -> int:
        return len(self.cluster.cancelled)

    @property
    def n_in_flight(self) -> int:
        """Seen but unresolved: queued, running, migrating, or deferred."""
        return self.cluster.in_flight()

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    def step(
        self, until: float | None = None, max_events: int | None = None
    ) -> int:
        """Advance the simulation; returns the number of events processed.

        ``until`` bounds simulated time (events at ``t <= until`` run; the
        clock never jumps past the last processed event), ``max_events``
        bounds work; with neither, this is :meth:`drain` without the
        completeness check.  Returns 0 when nothing is due — attached
        sources exhausted and no pending events.
        """
        engine = self.cluster.engine
        if until is None and max_events is None:
            # Unbounded: take the engine's tight dispatch loop (one peek
            # per event) — this is the figure harness's hot path.
            before = engine.events_processed
            engine.run()
            self.cluster.sync_instances()
            return engine.events_processed - before
        processed = 0
        cutoff: float | None = None
        inclusive = False
        while max_events is None or processed < max_events:
            next_t = engine.peek_next_time()
            if next_t is None:
                break
            if until is not None and next_t > until:
                # Single-stepping dispatches everything at t <= until,
                # including the per-token events an epoch coalesced away.
                cutoff, inclusive = min(until, engine.horizon_s), True
                break
            if not engine.step():
                cutoff, inclusive = engine.horizon_s, True
                break  # beyond the engine horizon
            processed += 1
        else:
            cutoff, inclusive = engine.now, False  # max_events exhausted
        # Emit lazily-deferred decode-epoch tokens so every accessor sees
        # a consistent frozen snapshot between step() calls.
        if cutoff is None:
            self.cluster.sync_instances()
        else:
            for inst in self.cluster.instances:
                inst.sync(cutoff, inclusive)
        return processed

    def drain(self) -> RunMetrics:
        """Run to completion and return the final metrics.

        Raises :class:`RuntimeError` if the simulation stops with
        unresolved requests (horizon hit, or an admission policy deferring
        forever) — a drained session always satisfies the conservation
        law ``submitted == completed + rejected + cancelled``.
        """
        self.cluster.engine.run()
        self.cluster.sync_instances()
        if not self.cluster.all_finished():
            raise RuntimeError(
                f"session did not drain: {self.n_completed} completed + "
                f"{self.n_rejected} rejected + {self.n_cancelled} "
                f"cancelled of {self.n_submitted} submitted "
                f"({self.n_in_flight} in flight)"
            )
        return self.metrics()

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def metrics(self) -> RunMetrics:
        """Snapshot the run's metrics *right now* (mid-run safe).

        Incremental collection: completed requests so far, throughput over
        the completed span, transfer latencies and predictor errors to
        date.  After :meth:`drain` this is the final record, byte-identical
        to what the legacy batch path produced.
        """
        return collect(self.cluster)

    # ------------------------------------------------------------------
    # hook fan-out
    # ------------------------------------------------------------------
    def _fire_admit(
        self, req: Request, inst: ServingInstance, now: float
    ) -> None:
        handle = self._handle_for(req)
        handle.status = RequestHandle.ADMITTED
        for sub in self._subscribers:
            sub.on_admit(handle, now, inst.iid)

    def _fire_reject(self, req: Request, now: float, reason: str) -> None:
        handle = self._handle_for(req)
        handle.status = RequestHandle.REJECTED
        handle.reject_reason = reason
        for sub in self._subscribers:
            sub.on_reject(handle, now, reason)

    def _fire_defer(self, req: Request, now: float, delay_s: float) -> None:
        handle = self._handle_for(req)
        for sub in self._subscribers:
            sub.on_defer(handle, now, delay_s)

    def _fire_phase(
        self, req: Request, src: ServingInstance, now: float
    ) -> None:
        handle = self._handle_for(req)
        for sub in self._subscribers:
            sub.on_phase_change(handle, now)

    def _fire_first_token(self, req: Request, now: float) -> None:
        handle = self._handle_for(req)
        for sub in self._subscribers:
            sub.on_first_token(handle, now)

    def _fire_complete(self, req: Request, now: float) -> None:
        handle = self._handle_for(req)
        handle.status = RequestHandle.COMPLETED
        for sub in self._subscribers:
            sub.on_complete(handle, now)

    def _fire_cancel(self, req: Request, now: float) -> None:
        handle = self._handle_for(req)
        handle.status = RequestHandle.CANCELLED
        for sub in self._subscribers:
            sub.on_cancel(handle, now)
