"""Admission control: the gate between arrival and placement.

An :class:`AdmissionPolicy` decides, *before* the cluster policy places a
request, whether the request is admitted, rejected, or deferred.  This is
the hook that makes backpressure and SLO-budget admission (in the spirit
of *SLO-Aware Scheduling for LLM Inferences*) expressible: a batch
workload cannot be turned away, an online one can.

Decisions are plain data (:class:`AdmissionDecision`), so the cluster core
stays decoupled from this module — it reads ``decision.action`` /
``decision.reason`` / ``decision.delay_s`` duck-typed.

Accounting contract (pinned by ``tests/test_api_session.py``):

* a **rejected** request lands in ``cluster.rejected`` / the session's
  rejected view, is never placed, never completes, and is *excluded* from
  SLO evaluation — rejection is an explicit, accounted outcome, not an
  SLO violation and not a completion;
* a **deferred** request re-arrives ``delay_s`` seconds later and goes
  through admission again; until then it counts as in flight.  The wait
  accrues as blocked time in the request's own interval bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.workload.request import Request

if TYPE_CHECKING:  # annotation-only: keep the core decoupled at runtime
    from repro.cluster.cluster import Cluster


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check.

    Use the :func:`admit`, :func:`reject` and :func:`defer` constructors
    rather than instantiating directly.
    """

    #: ``"admit"``, ``"reject"`` or ``"defer"``.
    action: str
    #: Human-readable cause, surfaced through ``on_reject`` events.
    reason: str = ""
    #: Re-arrival delay in seconds (``defer`` only; must be positive).
    delay_s: float = 0.0


#: The decision every request gets when no admission policy is installed.
ADMIT = AdmissionDecision("admit")


def admit() -> AdmissionDecision:
    """Let the arrival through to placement."""
    return ADMIT


def reject(reason: str = "") -> AdmissionDecision:
    """Turn the arrival away permanently (it never reaches a policy)."""
    return AdmissionDecision("reject", reason=reason)


def defer(delay_s: float, reason: str = "") -> AdmissionDecision:
    """Re-present the arrival to admission after ``delay_s`` seconds."""
    if delay_s <= 0:
        raise ValueError(f"deferral must be positive, got {delay_s}")
    return AdmissionDecision("defer", reason=reason, delay_s=delay_s)


class AdmissionPolicy:
    """Strategy interface for pre-placement admission control.

    :meth:`decide` receives the live :class:`~repro.cluster.cluster.Cluster`
    (read it, don't mutate it), the arriving request and the simulated
    clock, and returns an :class:`AdmissionDecision`.  Useful cluster
    reads: ``cluster.active_requests()`` (load actually on the cluster;
    counts the request under decision, which has arrived),
    ``cluster.instances`` (each exposing ``live_requests()``,
    ``total_kv_tokens()``, ``gpu_free_tokens()``), ``cluster.monitor``
    and ``cluster.config``.
    """

    def decide(
        self, cluster: Cluster, req: Request, now: float
    ) -> AdmissionDecision:
        raise NotImplementedError


class AdmitAll(AdmissionPolicy):
    """The explicit no-op gate (equivalent to installing no policy)."""

    def decide(
        self, cluster: Cluster, req: Request, now: float
    ) -> AdmissionDecision:
        return ADMIT


class MaxInFlightAdmission(AdmissionPolicy):
    """Bound concurrent load by request count.

    Arrivals beyond ``limit`` in-flight requests are rejected, or — with
    ``defer_s`` set — deferred and retried, which turns the bound into
    backpressure instead of load shedding.
    """

    def __init__(self, limit: int, defer_s: float | None = None):
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        if defer_s is not None and defer_s <= 0:
            raise ValueError(f"defer_s must be positive, got {defer_s}")
        self.limit = limit
        self.defer_s = defer_s

    def decide(
        self, cluster: Cluster, req: Request, now: float
    ) -> AdmissionDecision:
        # ``active_requests()`` counts the request under decision (it has
        # arrived), so the bound compares the *others* against the limit.
        if cluster.active_requests() - 1 < self.limit:
            return ADMIT
        if self.defer_s is not None:
            return defer(self.defer_s, reason=f"in-flight >= {self.limit}")
        return reject(reason=f"in-flight >= {self.limit}")


class KVBudgetAdmission(AdmissionPolicy):
    """Bound concurrent load by total KV footprint (tokens).

    Rejects (or defers) an arrival when the cluster-wide KV footprint —
    allocated plus queued demand, the same ``m_i`` proxy Algorithm 1
    reads — already exceeds ``budget_tokens``.  A token-denominated bound
    sees request-size heterogeneity that a request-count bound misses.
    """

    def __init__(self, budget_tokens: int, defer_s: float | None = None):
        if budget_tokens < 1:
            raise ValueError(
                f"budget_tokens must be >= 1, got {budget_tokens}"
            )
        if defer_s is not None and defer_s <= 0:
            raise ValueError(f"defer_s must be positive, got {defer_s}")
        self.budget_tokens = budget_tokens
        self.defer_s = defer_s

    def decide(
        self, cluster: Cluster, req: Request, now: float
    ) -> AdmissionDecision:
        footprint = sum(inst.total_kv_tokens() for inst in cluster.instances)
        if footprint < self.budget_tokens:
            return ADMIT
        reason = f"kv footprint {footprint} >= budget {self.budget_tokens}"
        if self.defer_s is not None:
            return defer(self.defer_s, reason=reason)
        return reject(reason=reason)
