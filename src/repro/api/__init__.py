"""``repro.api`` — the stable public façade for online serving.

The batch entry points (``build_trace`` → ``Cluster.run_trace`` →
``collect``) reproduce the paper's figures but cannot express live
traffic: no mid-run submission, no backpressure, no per-request
observability.  This package is the online counterpart, and the layer the
harness itself now runs on:

* :class:`~repro.api.session.ServingSession` — submit/observe/advance:
  ``submit(request) -> RequestHandle``, ``attach(source)``,
  ``step(until=...)`` / ``drain()``, subscriber hooks for the request
  lifecycle (admit, phase change, first token, complete, reject, defer);
* :mod:`~repro.api.sources` — pull-based :class:`ArrivalSource` iterators
  (synthetic, dataset-mix, JSONL trace, merged composition) consumed
  incrementally by the engine instead of a horizon-complete preload;
* :mod:`~repro.api.admission` — :class:`AdmissionPolicy` hooks that can
  reject or defer arrivals before placement, with explicit accounting
  (rejected ≠ SLO-violated ≠ completed).

Batch and online paths are interchangeable: running any workload through
a session yields byte-identical :class:`~repro.metrics.collector.RunMetrics`
to the legacy list-based path (property-tested for every registered
policy), which is what licenses the harness rewiring.

Stability: names exported here (``repro.api.*``) are the supported public
surface; internals reached through them may move between releases.
"""

from repro.api.admission import (
    ADMIT,
    AdmissionDecision,
    AdmissionPolicy,
    AdmitAll,
    KVBudgetAdmission,
    MaxInFlightAdmission,
    admit,
    defer,
    reject,
)
from repro.api.session import (
    EventPrinter,
    RequestHandle,
    ServingSession,
    SessionSubscriber,
)
from repro.api.sources import (
    ArrivalSource,
    ListSource,
    MergedSource,
    PartitionedSource,
    SyntheticSource,
    TraceFileSource,
    as_source,
    shard_of,
    stable_shard64,
)

__all__ = [
    "ADMIT",
    "AdmissionDecision",
    "AdmissionPolicy",
    "AdmitAll",
    "ArrivalSource",
    "EventPrinter",
    "KVBudgetAdmission",
    "ListSource",
    "MaxInFlightAdmission",
    "MergedSource",
    "PartitionedSource",
    "RequestHandle",
    "ServingSession",
    "SessionSubscriber",
    "SyntheticSource",
    "TraceFileSource",
    "admit",
    "as_source",
    "defer",
    "reject",
    "shard_of",
    "stable_shard64",
]
