"""PASCAL's hierarchical intra-instance scheduler (Section IV-C).

Each instance keeps a two-band priority hierarchy:

* **high-priority band (reasoning)** — reasoning-phase requests.  They are
  served first and take KV memory first, because any interruption during
  reasoning adds directly to TTFT.  Within the band, round-robin with the
  standard token quantum keeps short reasoning requests responsive under
  memory pressure.
* **low-priority band (answering)** — answering-phase requests, time-shared
  round-robin over whatever GPU memory the reasoning band left over.  The
  token pacer downstream hides moderate preemption from the user.

Two extra rules from the paper:

* **conditional demotion** — a reasoning request whose generated sequence
  exceeds a threshold (5000 tokens in the evaluation) is demoted to the
  answering band, so one enormous chain-of-thought cannot starve the
  answering requests of memory forever;
* **fresh quantum at phase entry** — a request entering the answering band
  (transition, migration or demotion) starts at ladder level 0 with a fresh
  quantum; Algorithm 2's ``a_i`` counts exactly the level-0 answering
  requests ("have not exhausted the first time quantum").
"""

from __future__ import annotations

from repro.schedulers.base import IntraScheduler
from repro.workload.request import Request

#: Band indices: lower band value = strictly higher scheduling priority.
REASONING_BAND = 0
ANSWERING_BAND = 1


def band_of(req: Request) -> int:
    """Which PASCAL band a request belongs to right now."""
    if req.in_reasoning and not req.demoted:
        return REASONING_BAND
    return ANSWERING_BAND


class PascalScheduler(IntraScheduler):
    """Two-band hierarchical queue with RR inside each band."""

    name = "pascal"

    def __init__(
        self,
        quantum_tokens: int = 500,
        demotion_threshold_tokens: int = 5000,
    ):
        super().__init__()
        if quantum_tokens < 1:
            raise ValueError(f"quantum must be >= 1, got {quantum_tokens}")
        if demotion_threshold_tokens < 1:
            raise ValueError(
                f"demotion threshold must be >= 1, got {demotion_threshold_tokens}"
            )
        self.quantum_tokens = quantum_tokens
        self.demotion_threshold_tokens = demotion_threshold_tokens

    def priority_key(self, req: Request) -> tuple:
        # Two-tier ring round-robin within each band (same discipline as the
        # RR baseline); the band dominates, so any reasoning request
        # outranks every answering request.
        fresh = 0 if req.level == 0 else 1
        return (band_of(req), fresh, req.enqueue_seq, req.rid)

    def on_phase_transition_local(self, req: Request, now: float) -> None:
        """Reasoning finished here: re-enqueue as a fresh answering request."""
        req.level = 0
        req.quantum_used = 0
        req.enqueue_seq = self.next_seq()

    def refresh(self, requests: list[Request], now: float) -> None:
        """Apply conditional demotion before priorities are computed."""
        for req in requests:
            if (
                req.in_reasoning
                and not req.demoted
                and req.generated_tokens > self.demotion_threshold_tokens
            ):
                req.demoted = True
                req.level = 0
                req.quantum_used = 0
                req.enqueue_seq = self.next_seq()

    # ------------------------------------------------------------------
    # band census used by the instance-level scheduler (Algorithm 2)
    # ------------------------------------------------------------------
    @staticmethod
    def reasoning_count(requests) -> int:
        """``r_i``: requests in the high-priority (reasoning) queue."""
        return sum(
            1
            for r in requests
            if not r.finished and band_of(r) == REASONING_BAND
        )

    @staticmethod
    def fresh_answering_count(requests) -> int:
        """``a_i``: answering requests still inside their first quantum."""
        return sum(
            1
            for r in requests
            if not r.finished and band_of(r) == ANSWERING_BAND and r.level == 0
        )
