"""Cluster-level scheduling policies as a strategy interface.

A :class:`ClusterPolicy` owns every decision that distinguishes one
scheduling scenario from another:

* which **intra-instance scheduler** each serving instance runs;
* **placement on arrival** — which instance a new request lands on;
* **phase-transition routing** — where a request goes when it emits its
  end-of-think token, including whether its KV cache migrates.

:class:`~repro.cluster.cluster.Cluster` is pure mechanism (engine wiring
and event dispatch); it delegates all three decisions to its policy.  New
scenarios therefore never touch the cluster core: subclass
:class:`ClusterPolicy`, decorate with
:func:`repro.core.registry.register_policy`, and the name becomes available
to ``Cluster(config, policy="your-name")``, the harness, and the CLI.

Policies are constructed per cluster (``create_policy(name, config)``) and
bound once via :meth:`ClusterPolicy.bind`, after the instance pool, monitor
and migration manager exist.

Request *lifecycle* plumbing: the cluster notifies its policy of every
placement decision it delegates (:meth:`ClusterPolicy.place_arrival`,
:meth:`ClusterPolicy.on_phase_transition`) and of arrivals an admission
gate turned away before placement
(:meth:`ClusterPolicy.on_arrival_rejected`); the observable per-request
event stream (admit / phase change / first token / complete / reject) is
surfaced to callers through :class:`repro.api.ServingSession` subscribers,
not through the policy.

:meth:`ClusterPolicy.make_intra_scheduler` receives the instance id, so a
policy can compose a *heterogeneous* pool — e.g. FCFS "express" instances
for short requests next to PASCAL instances (see
:class:`repro.config.PoolSpec` and ``tiered-express``).  Policies written
against the pre-pool zero-argument signature keep working through
:func:`build_intra_scheduler`'s adapter, with a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import inspect
import warnings
from typing import TYPE_CHECKING, Callable

from repro.config import ClusterConfig
from repro.schedulers.base import IntraScheduler
from repro.workload.request import Request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster
    from repro.cluster.migration import MigrationManager
    from repro.serving.instance import ServingInstance
    from repro.serving.monitor import InstanceMonitor


def intra_scheduler_takes_iid(factory: Callable) -> bool:
    """Can a ``make_intra_scheduler`` implementation take ``iid``
    positionally?

    Works on both bound methods and plain class functions (a leading
    ``self`` parameter is ignored).  Only *positional* capacity counts:
    ``(self, **opts)`` cannot receive the id and is treated as the legacy
    zero-argument form.  Unintrospectable callables are assumed to follow
    the current per-instance signature.
    """
    try:
        params = list(inspect.signature(factory).parameters.values())
    except (TypeError, ValueError):  # pragma: no cover - C callables etc.
        return True
    if params and params[0].name == "self":
        params = params[1:]
    for param in params:
        if param.kind in (
            param.VAR_POSITIONAL,
            param.POSITIONAL_ONLY,
            param.POSITIONAL_OR_KEYWORD,
        ):
            return True
    return False


def build_intra_scheduler(policy: "ClusterPolicy", iid: int) -> IntraScheduler:
    """Intra scheduler for instance ``iid``, adapting legacy overrides.

    Policies predating heterogeneous pools define ``make_intra_scheduler``
    with no arguments; they still work (every instance gets the same
    scheduler) but each call emits a :class:`DeprecationWarning`.
    """
    factory = policy.make_intra_scheduler
    if intra_scheduler_takes_iid(factory):
        return factory(iid)
    warnings.warn(
        f"{type(policy).__name__}.make_intra_scheduler() takes no instance "
        "id; the zero-argument signature is deprecated, define "
        "make_intra_scheduler(self, iid) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return factory()


class ClusterPolicy:
    """Strategy interface for one cluster scheduling scenario.

    Subclasses must set :attr:`name` and implement
    :meth:`make_intra_scheduler` and :meth:`place_arrival`; the default
    :meth:`on_phase_transition` keeps every request on its current instance
    (the no-migration baselines).
    """

    #: Registry key; also what ``RunMetrics.policy`` reports.
    name: str = "base"

    def __init__(self, config: ClusterConfig):
        self.config = config
        self._cluster: "Cluster | None" = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def bind(self, cluster: "Cluster") -> None:
        """Attach to a cluster after its instances/monitor/fabric exist."""
        if self._cluster is not None:
            raise RuntimeError(
                f"policy {self.name!r} is already bound to a cluster"
            )
        self._cluster = cluster
        self.on_bind(cluster)

    def on_bind(self, cluster: "Cluster") -> None:
        """Subclass hook: build placement helpers, split pools, etc."""

    @property
    def cluster(self) -> "Cluster":
        if self._cluster is None:
            raise RuntimeError(f"policy {self.name!r} is not bound yet")
        return self._cluster

    @property
    def instances(self) -> "list[ServingInstance]":
        return self.cluster.instances

    @property
    def monitor(self) -> "InstanceMonitor":
        return self.cluster.monitor

    @property
    def migrations(self) -> "MigrationManager":
        return self.cluster.migrations

    # ------------------------------------------------------------------
    # decision surface
    # ------------------------------------------------------------------
    def make_intra_scheduler(self, iid: int) -> IntraScheduler:
        """Fresh intra-instance scheduler for instance ``iid``.

        Called once per instance, *before* :meth:`bind` (the schedulers are
        part of instance construction), so implementations must derive any
        per-instance decision from ``self.config`` and ``iid`` alone —
        typically via :class:`repro.config.PoolSpec`.  Homogeneous policies
        simply ignore ``iid``.
        """
        raise NotImplementedError

    def place_arrival(
        self, req: Request, now: float
    ) -> "ServingInstance":
        """Pick the instance a newly arrived request is admitted to."""
        raise NotImplementedError

    def on_phase_transition(
        self, req: Request, src: "ServingInstance", now: float
    ) -> None:
        """``req`` just emitted its end-of-think token on ``src``.

        The default keeps the request where it is; policies that migrate
        override this and typically finish with :meth:`route_transition`.
        """
        src.scheduler.on_phase_transition_local(req, now)

    def on_arrival_rejected(self, req: Request, now: float) -> None:
        """An admission policy rejected ``req`` before placement.

        The cluster never calls :meth:`place_arrival` for a rejected
        request; this notification is the only signal the policy gets.
        The default ignores it — stateful policies (online predictors,
        load estimators) can override to account for turned-away demand.
        """

    def on_request_cancelled(self, req: Request, now: float) -> None:
        """A submitted request was cancelled by its client.

        Fired after the request has been accounted out of the cluster
        (KV freed, plans reformed).  The default ignores it; predictors
        should *not* train on cancelled requests — their observed lengths
        are truncated, not representative.
        """

    def predictor_errors(self) -> "dict[str, tuple[float, ...]]":
        """Per-dataset absolute reasoning-length prediction errors (tokens).

        Policies that run an online length predictor override this so
        :func:`repro.metrics.collector.collect` can report predictor
        accuracy through :class:`~repro.metrics.collector.RunMetrics`.
        Predictor-free policies report nothing.
        """
        return {}

    def predictor_rank_pairs(
        self,
    ) -> "dict[str, tuple[tuple[float, float], ...]]":
        """Per-dataset ``(predicted score, observed length)`` pairs.

        The prequential ranking record next to :meth:`predictor_errors`:
        each observed reasoning length paired with the predictor's score
        immediately before the update.  Feeds the Kendall-tau
        rank-correlation views of
        :class:`~repro.metrics.collector.RunMetrics` — the metric that
        matters for placement, which consumes the *order* of predicted
        lengths, not their values.  Predictor-free policies report
        nothing.
        """
        return {}

    # ------------------------------------------------------------------
    # helpers for subclasses
    # ------------------------------------------------------------------
    def slo_clean_instances(self, now: float) -> "list[ServingInstance]":
        """Instances whose answering requests all meet their SLO; when
        every instance is violating, the whole pool (Algorithm 1/2's
        fallback shape)."""
        eligible = [
            inst
            for inst in self.instances
            if self.monitor.answering_slo_ok(inst, now)
        ]
        return eligible or self.instances

    def route_transition(
        self,
        req: Request,
        src: "ServingInstance",
        target: "ServingInstance",
        now: float,
    ) -> None:
        """Send ``req`` to ``target``: local re-enqueue or KV migration."""
        if target.iid == src.iid:
            src.scheduler.on_phase_transition_local(req, now)
        else:
            self.migrations.start(req, src, target, now)
