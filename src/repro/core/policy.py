"""Cluster-level scheduling policies as a strategy interface.

A :class:`ClusterPolicy` owns every decision that distinguishes one
scheduling scenario from another:

* which **intra-instance scheduler** each serving instance runs;
* **placement on arrival** — which instance a new request lands on;
* **phase-transition routing** — where a request goes when it emits its
  end-of-think token, including whether its KV cache migrates.

:class:`~repro.cluster.cluster.Cluster` is pure mechanism (engine wiring
and event dispatch); it delegates all three decisions to its policy.  New
scenarios therefore never touch the cluster core: subclass
:class:`ClusterPolicy`, decorate with
:func:`repro.core.registry.register_policy`, and the name becomes available
to ``Cluster(config, policy="your-name")``, the harness, and the CLI.

Policies are constructed per cluster (``create_policy(name, config)``) and
bound once via :meth:`ClusterPolicy.bind`, after the instance pool, monitor
and migration manager exist.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import ClusterConfig
from repro.schedulers.base import IntraScheduler
from repro.workload.request import Request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster
    from repro.cluster.migration import MigrationManager
    from repro.serving.instance import ServingInstance
    from repro.serving.monitor import InstanceMonitor


class ClusterPolicy:
    """Strategy interface for one cluster scheduling scenario.

    Subclasses must set :attr:`name` and implement
    :meth:`make_intra_scheduler` and :meth:`place_arrival`; the default
    :meth:`on_phase_transition` keeps every request on its current instance
    (the no-migration baselines).
    """

    #: Registry key; also what ``RunMetrics.policy`` reports.
    name: str = "base"

    def __init__(self, config: ClusterConfig):
        self.config = config
        self._cluster: "Cluster | None" = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def bind(self, cluster: "Cluster") -> None:
        """Attach to a cluster after its instances/monitor/fabric exist."""
        if self._cluster is not None:
            raise RuntimeError(
                f"policy {self.name!r} is already bound to a cluster"
            )
        self._cluster = cluster
        self.on_bind(cluster)

    def on_bind(self, cluster: "Cluster") -> None:
        """Subclass hook: build placement helpers, split pools, etc."""

    @property
    def cluster(self) -> "Cluster":
        if self._cluster is None:
            raise RuntimeError(f"policy {self.name!r} is not bound yet")
        return self._cluster

    @property
    def instances(self) -> "list[ServingInstance]":
        return self.cluster.instances

    @property
    def monitor(self) -> "InstanceMonitor":
        return self.cluster.monitor

    @property
    def migrations(self) -> "MigrationManager":
        return self.cluster.migrations

    # ------------------------------------------------------------------
    # decision surface
    # ------------------------------------------------------------------
    def make_intra_scheduler(self) -> IntraScheduler:
        """Fresh intra-instance scheduler (called once per instance)."""
        raise NotImplementedError

    def place_arrival(
        self, req: Request, now: float
    ) -> "ServingInstance":
        """Pick the instance a newly arrived request is admitted to."""
        raise NotImplementedError

    def on_phase_transition(
        self, req: Request, src: "ServingInstance", now: float
    ) -> None:
        """``req`` just emitted its end-of-think token on ``src``.

        The default keeps the request where it is; policies that migrate
        override this and typically finish with :meth:`route_transition`.
        """
        src.scheduler.on_phase_transition_local(req, now)

    # ------------------------------------------------------------------
    # helpers for subclasses
    # ------------------------------------------------------------------
    def slo_clean_instances(self, now: float) -> "list[ServingInstance]":
        """Instances whose answering requests all meet their SLO; when
        every instance is violating, the whole pool (Algorithm 1/2's
        fallback shape)."""
        eligible = [
            inst
            for inst in self.instances
            if self.monitor.answering_slo_ok(inst, now)
        ]
        return eligible or self.instances

    def route_transition(
        self,
        req: Request,
        src: "ServingInstance",
        target: "ServingInstance",
        now: float,
    ) -> None:
        """Send ``req`` to ``target``: local re-enqueue or KV migration."""
        if target.iid == src.iid:
            src.scheduler.on_phase_transition_local(req, now)
        else:
            self.migrations.start(req, src, target, now)
