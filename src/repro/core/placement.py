"""Instance-level placement — Algorithms 1 and 2 (Section IV-B).

*Algorithm 1* routes each newly arrived (reasoning) request: instances
whose answering requests are currently violating their SLO are excluded
(adding a high-priority reasoning request would only intensify their memory
pressure); among the rest, the instance with the smallest total KV
footprint ``m_i`` wins.  If every instance is violating, fall back to the
global minimum-``m_i`` instance to minimize added damage.

*Algorithm 2* picks the destination for a request transitioning into the
answering phase: same SLO filter; among survivors, the instance with the
fewest high-priority reasoning requests ``r_i`` (the answering request will
live off whatever memory the reasoning queue leaves).  When no instance is
SLO-clean, the tie-break becomes ``r_i + a_i``, penalizing instances with
many "fresh" answering requests that would compete for the first quantum.

The baselines (FCFS / RR) use plain least-``m_i`` placement with no SLO
filter and never migrate (Section V-A).
"""

from __future__ import annotations

from repro.serving.instance import ServingInstance
from repro.serving.monitor import InstanceMonitor
from repro.workload.request import Request


def least_kv_placement(
    instances: list[ServingInstance], req: Request, now: float
) -> ServingInstance:
    """Baseline router: smallest total KV footprint, no SLO awareness."""
    if not instances:
        raise ValueError("no instances to place onto")
    return min(instances, key=lambda inst: (inst.total_kv_tokens(), inst.iid))


class ReasoningPlacement:
    """Algorithm 1: instance selection for reasoning requests."""

    def __init__(self, monitor: InstanceMonitor):
        self.monitor = monitor

    def select(
        self, instances: list[ServingInstance], req: Request, now: float
    ) -> ServingInstance:
        if not instances:
            raise ValueError("no instances to place onto")
        eligible = [
            inst
            for inst in instances
            if self.monitor.answering_slo_ok(inst, now)
        ]
        if not eligible:
            eligible = list(instances)
        return min(
            eligible,
            key=lambda inst: (self.monitor.kv_footprint(inst), inst.iid),
        )


class AnsweringPlacement:
    """Algorithm 2: instance selection for answering requests.

    ``use_fresh_fallback=False`` disables the ``r_i + a_i`` tie-break the
    paper uses when every instance is violating its SLO, falling back to
    plain ``r_i`` — the ablation behind the paper's claim that "considering
    both r_i and a_i achieves better load balancing and SLO attainment
    than using r_i alone under these scenarios" (Section IV-B).
    """

    def __init__(self, monitor: InstanceMonitor, use_fresh_fallback: bool = True):
        self.monitor = monitor
        self.use_fresh_fallback = use_fresh_fallback

    def select(
        self, instances: list[ServingInstance], req: Request, now: float
    ) -> ServingInstance:
        if not instances:
            raise ValueError("no instances to place onto")
        eligible = [
            inst
            for inst in instances
            if self.monitor.answering_slo_ok(inst, now)
        ]
        if eligible:
            return min(
                eligible,
                key=lambda inst: (self.monitor.reasoning_count(inst), inst.iid),
            )
        if not self.use_fresh_fallback:
            return min(
                instances,
                key=lambda inst: (self.monitor.reasoning_count(inst), inst.iid),
            )
        # Lines 4-9: every instance is violating; fold in the fresh
        # answering population a_i, which competes for the first quantum.
        return min(
            instances,
            key=lambda inst: (
                self.monitor.reasoning_count(inst)
                + self.monitor.fresh_answering_count(inst),
                inst.iid,
            ),
        )
