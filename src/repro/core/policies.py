"""The paper's comparison set as :class:`ClusterPolicy` subclasses.

======================  =============  ==========================  =========
policy                  intra-instance placement                   migration
======================  =============  ==========================  =========
``fcfs``                FCFS           least-KV                     none
``rr``                  RR             least-KV                     none
``oracle``              FCFS           least-KV                     none
``pascal``              hierarchical   Alg. 1 / Alg. 2              adaptive
``pascal-nomigration``  hierarchical   Alg. 1 only                  none
``pascal-nonadaptive``  hierarchical   Alg. 1 / Alg. 2              always
``pascal-ri-only``      hierarchical   Alg. 2 w/o the a_i fallback  adaptive
``phase-partitioned``   RR             split reasoning/answer pools always
======================  =============  ==========================  =========

``pascal-nomigration`` / ``pascal-nonadaptive`` reproduce the Figure 13 and
Figure 15 ablations; ``pascal-ri-only`` isolates Algorithm 2's ``r_i + a_i``
fallback claim (Section IV-B); ``phase-partitioned`` implements the
DistServe-style explicit phase split the paper argues against (Section VII).
"""

from __future__ import annotations

from repro.core.adaptive import AdaptiveMigrationPolicy
from repro.core.pascal import PascalScheduler
from repro.core.placement import (
    AnsweringPlacement,
    ReasoningPlacement,
    least_kv_placement,
)
from repro.core.policy import ClusterPolicy
from repro.core.registry import register_policy
from repro.schedulers.base import IntraScheduler
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.oracle import OracleScheduler
from repro.schedulers.round_robin import RoundRobinScheduler
from repro.serving.instance import ServingInstance
from repro.workload.request import Request


@register_policy
class FCFSPolicy(ClusterPolicy):
    """vLLM-default baseline: FCFS batches, least-KV routing, no migration."""

    name = "fcfs"

    def make_intra_scheduler(self, iid: int) -> IntraScheduler:
        return FCFSScheduler()

    def place_arrival(self, req: Request, now: float) -> ServingInstance:
        return least_kv_placement(self.instances, req, now)


@register_policy
class RoundRobinPolicy(FCFSPolicy):
    """Round-robin baseline: token-quantum time sharing, least-KV routing."""

    name = "rr"

    def make_intra_scheduler(self, iid: int) -> IntraScheduler:
        return RoundRobinScheduler(
            quantum_tokens=self.config.instance.scheduler.token_quantum
        )


@register_policy
class OraclePolicy(FCFSPolicy):
    """Infinite-memory oracle: FCFS with capacity that never blocks."""

    name = "oracle"

    def make_intra_scheduler(self, iid: int) -> IntraScheduler:
        return OracleScheduler()


@register_policy
class PascalPolicy(ClusterPolicy):
    """PASCAL: hierarchical two-band scheduling + Algorithms 1/2 + adaptive
    migration (Sections IV-B and IV-C)."""

    name = "pascal"
    #: Migrate at phase boundaries at all (Figure 13 ablation turns it off).
    migration_enabled = True
    #: Honour the adaptive memory veto (Figure 15 ablation turns it off).
    adaptive_enabled = True
    #: Use Algorithm 2's ``r_i + a_i`` fallback (Section IV-B ablation).
    use_fresh_fallback = True

    def make_intra_scheduler(self, iid: int) -> IntraScheduler:
        sched_cfg = self.config.instance.scheduler
        return PascalScheduler(
            quantum_tokens=sched_cfg.token_quantum,
            demotion_threshold_tokens=sched_cfg.demotion_threshold_tokens,
        )

    def on_bind(self, cluster) -> None:
        self.reasoning_placement = ReasoningPlacement(cluster.monitor)
        self.answering_placement = AnsweringPlacement(
            cluster.monitor, use_fresh_fallback=self.use_fresh_fallback
        )
        self.adaptive = AdaptiveMigrationPolicy(
            growth_headroom_tokens=self.config.instance.scheduler.token_quantum,
            enabled=self.adaptive_enabled,
        )

    def place_arrival(self, req: Request, now: float) -> ServingInstance:
        return self.reasoning_placement.select(self.instances, req, now)

    def on_phase_transition(
        self, req: Request, src: ServingInstance, now: float
    ) -> None:
        if not self.migration_enabled:
            src.scheduler.on_phase_transition_local(req, now)
            return
        target = self.answering_placement.select(self.instances, req, now)
        if self.adaptive.should_migrate(req, src, target):
            self.route_transition(req, src, target, now)
        else:
            src.scheduler.on_phase_transition_local(req, now)


@register_policy
class PascalNoMigrationPolicy(PascalPolicy):
    """PASCAL(NoMigration): Algorithm 1 only, requests never move (Fig. 13)."""

    name = "pascal-nomigration"
    migration_enabled = False


@register_policy
class PascalNonAdaptivePolicy(PascalPolicy):
    """PASCAL(NonAdaptive): always follow Algorithm 2's pick (Fig. 15)."""

    name = "pascal-nonadaptive"
    adaptive_enabled = False


@register_policy
class PascalRiOnlyPolicy(PascalPolicy):
    """PASCAL ablation: Algorithm 2 ranks by ``r_i`` alone (Section IV-B)."""

    name = "pascal-ri-only"
    use_fresh_fallback = False


@register_policy
class PhasePartitionedPolicy(ClusterPolicy):
    """DistServe-style explicit phase partitioning (the Section VII
    counterfactual): the first half of the pool serves reasoning, the second
    half answering; every transition crosses the fabric."""

    name = "phase-partitioned"

    def make_intra_scheduler(self, iid: int) -> IntraScheduler:
        return RoundRobinScheduler(
            quantum_tokens=self.config.instance.scheduler.token_quantum
        )

    def on_bind(self, cluster) -> None:
        n = len(cluster.instances)
        half = max(1, n // 2)
        self.reasoning_pool = cluster.instances[:half]
        self.answering_pool = (
            cluster.instances[half:] if n > 1 else cluster.instances
        )

    def place_arrival(self, req: Request, now: float) -> ServingInstance:
        return least_kv_placement(self.reasoning_pool, req, now)

    def on_phase_transition(
        self, req: Request, src: ServingInstance, now: float
    ) -> None:
        target = least_kv_placement(self.answering_pool, req, now)
        self.route_transition(req, src, target, now)
