"""Adaptive migration override (Section IV-B, Figure 7).

Algorithm 2 alone can concentrate answering requests on one instance until
it has no free GPU memory, while the request's *current* instance still
does.  Strictly following the algorithm would then ship the KV cache to a
full instance, stalling answering there (and paying the transfer) even
though staying home was free.

The override rule: **keep the request on its current instance iff the
selected target lacks free GPU memory for the request while the current
instance still has enough headroom to keep serving it.**  "Enough" covers
the request's existing KV footprint (for the target, which must receive it)
plus near-term growth — one scheduler quantum or the remaining generation,
whichever is smaller.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serving.instance import ServingInstance
from repro.workload.request import Request


@dataclass(frozen=True)
class AdaptiveMigrationPolicy:
    """Memory-aware veto on Algorithm 2's migration decisions."""

    #: Tokens of near-term growth to provision for (one RR quantum).
    growth_headroom_tokens: int = 500
    #: Disable the veto entirely (the PASCAL(NonAdaptive) ablation).
    enabled: bool = True

    def _growth_need(self, req: Request) -> int:
        return min(self.growth_headroom_tokens, max(req.remaining_tokens, 1))

    def target_has_room(self, target: ServingInstance, req: Request) -> bool:
        """Can the target hold the migrated KV plus near-term growth?"""
        need = req.kv_tokens + self._growth_need(req)
        return target.gpu_free_tokens() >= need

    def source_has_room(self, source: ServingInstance, req: Request) -> bool:
        """Can the current instance keep growing this request in place?

        The request's KV is already resident at the source, so only the
        growth headroom must be free.
        """
        return source.gpu_free_tokens() >= self._growth_need(req)

    def should_migrate(
        self,
        req: Request,
        source: ServingInstance,
        target: ServingInstance,
    ) -> bool:
        """Final migration verdict for a phase-transitioning request."""
        if target.iid == source.iid:
            return False
        if not self.enabled:
            return True
        if not self.target_has_room(target, req) and self.source_has_room(
            source, req
        ):
            return False
        return True
