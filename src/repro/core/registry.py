"""Policy registry: name -> :class:`ClusterPolicy` subclass.

Every policy the cluster can run — the paper's comparison set, its
ablations, and any extension — registers itself here; the cluster, the
harness, examples and the CLI all construct policies exclusively through
:func:`create_policy`, so adding a scenario is one subclass + one decorator
with no cluster-core surgery.

    from repro.core.policy import ClusterPolicy
    from repro.core.registry import register_policy

    @register_policy
    class MyPolicy(ClusterPolicy):
        name = "my-policy"
        ...

Importing this module loads the built-in policy modules so the registry is
always fully populated.
"""

from __future__ import annotations

import warnings
from typing import Callable, Iterator

from repro.config import ClusterConfig
from repro.core.policy import ClusterPolicy, intra_scheduler_takes_iid

_REGISTRY: dict[str, type[ClusterPolicy]] = {}


def register_policy(cls: type[ClusterPolicy]) -> type[ClusterPolicy]:
    """Class decorator: expose ``cls`` under its :attr:`name`."""
    name = cls.name
    if not name or name == ClusterPolicy.name:
        raise ValueError(
            f"{cls.__name__} must define a unique non-default `name`"
        )
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"policy name {name!r} already registered by {existing.__name__}"
        )
    if not intra_scheduler_takes_iid(cls.make_intra_scheduler):
        # Pre-pool third-party policy: it still runs (the cluster adapts
        # the call), but flag the stale signature at registration so the
        # author sees it once, at import time.
        warnings.warn(
            f"{cls.__name__}.make_intra_scheduler() takes no instance id; "
            "the zero-argument signature is deprecated, define "
            "make_intra_scheduler(self, iid) instead",
            DeprecationWarning,
            stacklevel=2,
        )
    _REGISTRY[name] = cls
    return cls


def unregister_policy(name: str) -> None:
    """Remove a policy (tests registering throwaway policies use this)."""
    _REGISTRY.pop(name, None)


def get_policy_class(name: str) -> type[ClusterPolicy]:
    """Look up a registered policy class by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; expected one of {policy_names()}"
        ) from None


def create_policy(name: str, config: ClusterConfig) -> ClusterPolicy:
    """Instantiate the policy registered under ``name``."""
    return get_policy_class(name)(config)


def policy_names() -> tuple[str, ...]:
    """All registered policy names, in registration order."""
    return tuple(_REGISTRY)


def iter_policies() -> Iterator[tuple[str, type[ClusterPolicy]]]:
    return iter(_REGISTRY.items())


def policy_table() -> list[tuple[str, str]]:
    """(name, one-line description) rows for docs and ``--list-policies``."""
    rows = []
    # Registration (insertion) order is deterministic: policies register
    # at import time, module by module.
    for name, cls in _REGISTRY.items():  # lint-ignore: PAS003
        doc = (cls.__doc__ or "").strip().splitlines()
        rows.append((name, doc[0] if doc else ""))
    return rows


# Populate the registry with the built-in policies.  These imports are at
# the bottom on purpose: the policy modules import `register_policy` from
# here, so they must come after it exists.
from repro.core import policies as _builtin_policies  # noqa: E402,F401
from repro.core import extensions as _extension_policies  # noqa: E402,F401
