"""Extension policies built on the :class:`ClusterPolicy` seam.

Two scenarios beyond the paper's comparison set, both motivated by related
work on LLM serving schedulers:

* ``slo-least-load`` — SLO-aware least-loaded placement in the spirit of
  *SLO-Aware Scheduling for Large Language Model Inferences*: route to the
  SLO-clean instance running the fewest live requests (queue depth, not KV
  bytes, as the load proxy) and re-balance answering requests the same way
  at phase boundaries, subject to PASCAL's adaptive memory veto.
* ``length-predictive`` — a length-aware PASCAL variant in the spirit of
  *CascadeInfer: Length-Aware Scheduling of LLM Serving*: an online
  per-dataset EWMA predicts each reasoning request's remaining tokens, and
  arrivals are routed by *predicted future* KV footprint instead of the
  current footprint ``m_i``.  The predictor learns only from observed phase
  transitions — it never peeks at a request's scripted lengths.

Tunables live in :class:`repro.config.ExtensionPolicyConfig`.
"""

from __future__ import annotations

from repro.config import ExtensionPolicyConfig
from repro.core.adaptive import AdaptiveMigrationPolicy
from repro.core.policies import PascalPolicy
from repro.core.policy import ClusterPolicy
from repro.core.registry import register_policy
from repro.schedulers.base import IntraScheduler
from repro.schedulers.round_robin import RoundRobinScheduler
from repro.serving.instance import ServingInstance
from repro.workload.request import Request


class ReasoningLengthPredictor:
    """Online EWMA of reasoning lengths, keyed by dataset label.

    ``observe`` feeds one completed reasoning phase; ``predict_total``
    returns the current estimate for a request's dataset, falling back to
    the global estimate (any dataset) and then to the configured prior.
    """

    def __init__(self, alpha: float = 0.25, prior_tokens: int = 600):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if prior_tokens < 1:
            raise ValueError(f"prior must be >= 1 token, got {prior_tokens}")
        self.alpha = alpha
        self.prior_tokens = float(prior_tokens)
        self._per_dataset: dict[str, float] = {}
        self._global: float | None = None
        self.n_observations = 0

    def observe(self, req: Request, reasoning_tokens: int) -> None:
        """Record one observed reasoning length (at its phase transition)."""
        value = float(reasoning_tokens)
        current = self._per_dataset.get(req.dataset)
        self._per_dataset[req.dataset] = (
            value
            if current is None
            else current + self.alpha * (value - current)
        )
        self._global = (
            value
            if self._global is None
            else self._global + self.alpha * (value - self._global)
        )
        self.n_observations += 1

    def predict_total(self, req: Request) -> float:
        """Estimated total reasoning tokens for a request like ``req``."""
        estimate = self._per_dataset.get(req.dataset)
        if estimate is None:
            estimate = self._global
        if estimate is None:
            estimate = self.prior_tokens
        return estimate

    def predict_remaining(self, req: Request) -> float:
        """Estimated reasoning tokens ``req`` has still to generate."""
        if not req.in_reasoning:
            return 0.0
        return max(self.predict_total(req) - req.generated_tokens, 0.0)


@register_policy
class SLOAwareLeastLoadPolicy(ClusterPolicy):
    """SLO-aware least-load: route to the SLO-clean instance with the
    fewest live requests; re-balance at phase boundaries under the
    adaptive memory veto."""

    name = "slo-least-load"

    def make_intra_scheduler(self) -> IntraScheduler:
        return RoundRobinScheduler(
            quantum_tokens=self.config.instance.scheduler.token_quantum
        )

    def on_bind(self, cluster) -> None:
        self.knobs: ExtensionPolicyConfig = self.config.extensions
        self.adaptive = AdaptiveMigrationPolicy(
            growth_headroom_tokens=self.config.instance.scheduler.token_quantum
        )

    def _load_key(self, inst: ServingInstance) -> tuple:
        return (len(inst.live_requests()), inst.total_kv_tokens(), inst.iid)

    def select(self, now: float) -> ServingInstance:
        """SLO-clean least-load instance (all instances when none is clean)."""
        return min(self.slo_clean_instances(now), key=self._load_key)

    def place_arrival(self, req: Request, now: float) -> ServingInstance:
        return self.select(now)

    def on_phase_transition(
        self, req: Request, src: ServingInstance, now: float
    ) -> None:
        if not self.knobs.least_load_migration:
            src.scheduler.on_phase_transition_local(req, now)
            return
        target = self.select(now)
        if self.adaptive.should_migrate(req, src, target):
            self.route_transition(req, src, target, now)
        else:
            src.scheduler.on_phase_transition_local(req, now)


@register_policy
class LengthPredictivePolicy(PascalPolicy):
    """Length-predictive PASCAL variant: Algorithm 1's ``m_i`` is replaced
    by the *predicted future* footprint ``m_i + sum(predicted remaining
    reasoning tokens)``, learned online from observed transitions."""

    name = "length-predictive"

    def on_bind(self, cluster) -> None:
        super().on_bind(cluster)
        knobs: ExtensionPolicyConfig = self.config.extensions
        self.predictor = ReasoningLengthPredictor(
            alpha=knobs.predictor_alpha,
            prior_tokens=knobs.predictor_prior_tokens,
        )

    def predicted_footprint(self, inst: ServingInstance) -> float:
        """Current KV footprint plus predicted reasoning growth."""
        return inst.total_kv_tokens() + sum(
            self.predictor.predict_remaining(r) for r in inst.live_requests()
        )

    def place_arrival(self, req: Request, now: float) -> ServingInstance:
        return min(
            self.slo_clean_instances(now),
            key=lambda inst: (self.predicted_footprint(inst), inst.iid),
        )

    def on_phase_transition(
        self, req: Request, src: ServingInstance, now: float
    ) -> None:
        # The end-of-think token just appeared: the one moment the
        # reasoning length becomes observable without an oracle.
        self.predictor.observe(req, req.generated_tokens)
        super().on_phase_transition(req, src, now)
