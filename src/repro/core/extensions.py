"""Extension policies built on the :class:`ClusterPolicy` seam.

Three scenarios beyond the paper's comparison set, all motivated by related
work on LLM serving schedulers:

* ``slo-least-load`` — SLO-aware least-loaded placement in the spirit of
  *SLO-Aware Scheduling for Large Language Model Inferences*: route to the
  SLO-clean instance carrying the least load and re-balance answering
  requests the same way at phase boundaries, subject to PASCAL's adaptive
  memory veto.  The load signal is live request count by default, or —
  with ``ExtensionPolicyConfig.least_load_weighted`` — the monitor's
  *pending decode tokens*, which sees request-size heterogeneity that raw
  queue depth ignores.
* ``length-predictive`` — a length-aware PASCAL variant in the spirit of
  *CascadeInfer: Length-Aware Scheduling of LLM Serving*: an online
  per-dataset EWMA predicts each reasoning request's remaining tokens, and
  arrivals are routed by *predicted future* KV footprint instead of the
  current footprint ``m_i``.  The predictor learns only from observed phase
  transitions — it never peeks at a request's scripted lengths.
* ``tiered-express`` — a heterogeneous pool (CascadeInfer-style length
  tiering): :class:`repro.config.PoolSpec` reserves the lowest-iid
  instances as an FCFS "express" tier, and arrivals whose predicted
  reasoning length falls under the tier threshold are routed there, away
  from the long chains of thought that inflate queueing tails.  The
  remaining instances run PASCAL's hierarchical scheduler.

Every predictor records its per-dataset absolute prediction error, surfaced
through :meth:`~repro.core.policy.ClusterPolicy.predictor_errors` into
:class:`~repro.metrics.collector.RunMetrics`, so predictor quality is a
first-class output of every sweep.

Two predictor variants are registered (``ExtensionPolicyConfig.predictor``):
the flat per-dataset EWMA (``"ewma"``, an online mean) and the per-bucket
EWMA (``"bucketed-ewma"``, an online weighted-median — see
:class:`BucketedEWMAPredictor` — which resists the lognormal tail that
inflates the flat EWMA's absolute error).

Tunables live in :class:`repro.config.ExtensionPolicyConfig`.
"""

from __future__ import annotations

from repro.config import ExtensionPolicyConfig
from repro.core.adaptive import AdaptiveMigrationPolicy
from repro.core.pascal import PascalScheduler
from repro.core.placement import least_kv_placement
from repro.core.policies import PascalPolicy
from repro.core.policy import ClusterPolicy
from repro.core.registry import register_policy
from repro.schedulers.base import IntraScheduler
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.round_robin import RoundRobinScheduler
from repro.serving.instance import ServingInstance
from repro.workload.request import Request


class ReasoningLengthPredictor:
    """Online EWMA of reasoning lengths, keyed by dataset label.

    ``observe`` feeds one completed reasoning phase; ``predict_total``
    returns the current estimate for a request's dataset, falling back to
    the global estimate (any dataset) and then to the configured prior.

    Each observation also scores the *one-step-ahead (prequential)* error:
    the current estimate immediately before the update, against the
    observed length.  (Policies consult the predictor continuously, so
    there is no single "routing-time" prediction per request to score;
    predict-then-update is the standard online accuracy metric.)  Absolute
    errors in tokens accumulate per dataset in :attr:`abs_errors`, feeding
    the predictor-accuracy columns of the experiment tables.
    """

    def __init__(self, alpha: float = 0.25, prior_tokens: int = 600):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if prior_tokens < 1:
            raise ValueError(f"prior must be >= 1 token, got {prior_tokens}")
        self.alpha = alpha
        self.prior_tokens = float(prior_tokens)
        self._per_dataset: dict[str, float] = {}
        self._global: float | None = None
        self.n_observations = 0
        #: Per-dataset |predicted - actual| reasoning lengths (tokens), in
        #: observation order.
        self.abs_errors: dict[str, list[float]] = {}

    def observe(self, req: Request, reasoning_tokens: int) -> None:
        """Record one observed reasoning length (at its phase transition)."""
        value = float(reasoning_tokens)
        self.abs_errors.setdefault(req.dataset, []).append(
            abs(self.predict_total(req) - value)
        )
        current = self._per_dataset.get(req.dataset)
        self._per_dataset[req.dataset] = (
            value
            if current is None
            else current + self.alpha * (value - current)
        )
        self._global = (
            value
            if self._global is None
            else self._global + self.alpha * (value - self._global)
        )
        self.n_observations += 1

    def error_report(self) -> dict[str, tuple[float, ...]]:
        """The accumulated per-dataset absolute errors, frozen for metrics."""
        return {
            dataset: tuple(errors)
            for dataset, errors in sorted(self.abs_errors.items())
        }

    def predict_total(self, req: Request) -> float:
        """Estimated total reasoning tokens for a request like ``req``."""
        estimate = self._per_dataset.get(req.dataset)
        if estimate is None:
            estimate = self._global
        if estimate is None:
            estimate = self.prior_tokens
        return estimate

    def predict_remaining(self, req: Request) -> float:
        """Estimated reasoning tokens ``req`` has still to generate."""
        if not req.in_reasoning:
            return 0.0
        return max(self.predict_total(req) - req.generated_tokens, 0.0)


class BucketedEWMAPredictor(ReasoningLengthPredictor):
    """Per-bucket EWMA: a weighted-median estimator for skewed lengths.

    The flat EWMA tracks the *mean* of each dataset's reasoning-length
    distribution — and the paper's datasets are lognormal, so the mean
    sits well above the typical request and every tail observation drags
    the estimate further up.  Mean absolute error (the metric the sweeps
    report) is minimized by the *median*, not the mean.

    This variant keeps, per dataset, a set of geometric length buckets
    (one per bit-length, so ~14 buckets cover 1..16k tokens) holding:

    * an EWMA-decayed **weight** — the recency-weighted fraction of
      observations landing in the bucket.  Weights decay at ``alpha / 10``
      (a median needs a longer memory than a mean: at the raw ``alpha``
      the histogram effectively remembers ~4 observations and the
      "median" is noise — the slow decay recovers nearly the full
      oracle-median gain while still tracking workload drift),
    * an EWMA **value** at the full ``alpha`` — the running estimate of
      lengths within the bucket.

    ``predict_total`` returns the value of the weighted-median bucket —
    the bucket where the cumulative weight first reaches half — which
    follows the distribution's body and ignores how heavy the tail is,
    while still adapting if the workload genuinely shifts.  Selected via
    ``ExtensionPolicyConfig.predictor = "bucketed-ewma"``.

    Error accounting is inherited unchanged: every observation scores the
    one-step-ahead (prequential) absolute error of *this* estimator, so
    flat and bucketed variants are directly comparable in the experiment
    tables.
    """

    #: Histogram weights decay this much slower than the value EWMA.
    HIST_ALPHA_FRACTION = 0.1

    def __init__(self, alpha: float = 0.25, prior_tokens: int = 600):
        super().__init__(alpha, prior_tokens)
        self.hist_alpha = alpha * self.HIST_ALPHA_FRACTION
        #: dataset -> bucket -> EWMA-decayed observation weight.
        self._bucket_weights: dict[str, dict[int, float]] = {}
        #: dataset -> bucket -> EWMA of observed lengths in the bucket.
        self._bucket_values: dict[str, dict[int, float]] = {}

    @staticmethod
    def _bucket(tokens: float) -> int:
        """Geometric bucket index (bit length of the token count)."""
        return max(1, int(tokens)).bit_length()

    def observe(self, req: Request, reasoning_tokens: int) -> None:
        # The base class scores the prequential error first — through the
        # *overridden* predict_total, so the error ledger reflects this
        # estimator — then refreshes the dataset/global fallback means.
        super().observe(req, reasoning_tokens)
        value = float(reasoning_tokens)
        bucket = self._bucket(value)
        weights = self._bucket_weights.setdefault(req.dataset, {})
        values = self._bucket_values.setdefault(req.dataset, {})
        for index in weights:
            weights[index] *= 1.0 - self.hist_alpha
        weights[bucket] = weights.get(bucket, 0.0) + self.hist_alpha
        current = values.get(bucket)
        values[bucket] = (
            value
            if current is None
            else current + self.alpha * (value - current)
        )

    def predict_total(self, req: Request) -> float:
        weights = self._bucket_weights.get(req.dataset)
        if not weights:
            # No observations for this dataset yet: flat-EWMA fallback
            # chain (dataset mean -> global mean -> prior).
            return super().predict_total(req)
        half = 0.5 * sum(weights.values())
        acc = 0.0
        for index in sorted(weights):
            acc += weights[index]
            if acc >= half:
                return self._bucket_values[req.dataset][index]
        raise AssertionError("unreachable: cumulative weight < half")


#: Predictor registry keyed by ``ExtensionPolicyConfig.predictor``.
PREDICTORS = {
    "ewma": ReasoningLengthPredictor,
    "bucketed-ewma": BucketedEWMAPredictor,
}


def make_predictor(knobs: ExtensionPolicyConfig) -> ReasoningLengthPredictor:
    """Build the reasoning-length predictor the config selects."""
    try:
        cls = PREDICTORS[knobs.predictor]
    except KeyError:
        raise ValueError(
            f"unknown predictor {knobs.predictor!r}; expected one of "
            f"{', '.join(sorted(PREDICTORS))}"
        ) from None
    return cls(
        alpha=knobs.predictor_alpha, prior_tokens=knobs.predictor_prior_tokens
    )


@register_policy
class SLOAwareLeastLoadPolicy(ClusterPolicy):
    """SLO-aware least-load: route to the SLO-clean instance carrying the
    least load (live requests, or pending decode tokens when weighted);
    re-balance at phase boundaries under the adaptive memory veto."""

    name = "slo-least-load"

    def make_intra_scheduler(self, iid: int) -> IntraScheduler:
        return RoundRobinScheduler(
            quantum_tokens=self.config.instance.scheduler.token_quantum
        )

    def on_bind(self, cluster) -> None:
        self.knobs: ExtensionPolicyConfig = self.config.extensions
        self.adaptive = AdaptiveMigrationPolicy(
            growth_headroom_tokens=self.config.instance.scheduler.token_quantum
        )

    def _load_key(self, inst: ServingInstance) -> tuple:
        if self.knobs.least_load_weighted:
            # Token-denominated load: one 8k-token chain of thought weighs
            # as much as dozens of short chats, which raw depth misses.
            return (
                self.monitor.pending_decode_tokens(inst),
                inst.total_kv_tokens(),
                inst.iid,
            )
        return (len(inst.live_requests()), inst.total_kv_tokens(), inst.iid)

    def select(self, now: float) -> ServingInstance:
        """SLO-clean least-load instance (all instances when none is clean)."""
        return min(self.slo_clean_instances(now), key=self._load_key)

    def place_arrival(self, req: Request, now: float) -> ServingInstance:
        return self.select(now)

    def on_phase_transition(
        self, req: Request, src: ServingInstance, now: float
    ) -> None:
        if not self.knobs.least_load_migration:
            src.scheduler.on_phase_transition_local(req, now)
            return
        target = self.select(now)
        if self.adaptive.should_migrate(req, src, target):
            self.route_transition(req, src, target, now)
        else:
            src.scheduler.on_phase_transition_local(req, now)


@register_policy
class LengthPredictivePolicy(PascalPolicy):
    """Length-predictive PASCAL variant: Algorithm 1's ``m_i`` is replaced
    by the *predicted future* footprint ``m_i + sum(predicted remaining
    reasoning tokens)``, learned online from observed transitions."""

    name = "length-predictive"

    def on_bind(self, cluster) -> None:
        super().on_bind(cluster)
        self.predictor = make_predictor(self.config.extensions)

    def predicted_footprint(self, inst: ServingInstance) -> float:
        """Current KV footprint plus predicted reasoning growth."""
        return inst.total_kv_tokens() + sum(
            self.predictor.predict_remaining(r) for r in inst.live_requests()
        )

    def place_arrival(self, req: Request, now: float) -> ServingInstance:
        return min(
            self.slo_clean_instances(now),
            key=lambda inst: (self.predicted_footprint(inst), inst.iid),
        )

    def on_phase_transition(
        self, req: Request, src: ServingInstance, now: float
    ) -> None:
        # The end-of-think token just appeared: the one moment the
        # reasoning length becomes observable without an oracle.
        self.predictor.observe(req, req.generated_tokens)
        super().on_phase_transition(req, src, now)

    def predictor_errors(self) -> dict[str, tuple[float, ...]]:
        return self.predictor.error_report()


@register_policy
class TieredExpressPolicy(ClusterPolicy):
    """Heterogeneous pool: FCFS "express" instances serve predicted-short
    requests, PASCAL instances serve the rest (length-aware tiering in the
    spirit of CascadeInfer)."""

    name = "tiered-express"

    def _express_count(self) -> int:
        return self.config.extensions.pool.express_count(
            self.config.n_instances
        )

    def make_intra_scheduler(self, iid: int) -> IntraScheduler:
        # Called before bind (schedulers are part of instance
        # construction), so tier membership derives from config + iid only.
        if iid < self._express_count():
            return FCFSScheduler()
        sched_cfg = self.config.instance.scheduler
        return PascalScheduler(
            quantum_tokens=sched_cfg.token_quantum,
            demotion_threshold_tokens=sched_cfg.demotion_threshold_tokens,
        )

    def on_bind(self, cluster) -> None:
        knobs: ExtensionPolicyConfig = self.config.extensions
        n_express = self._express_count()
        self.express_pool = cluster.instances[:n_express]
        self.standard_pool = cluster.instances[n_express:]
        self.threshold_tokens = knobs.pool.express_threshold_tokens
        self.predictor = make_predictor(knobs)

    def place_arrival(self, req: Request, now: float) -> ServingInstance:
        predicted = self.predictor.predict_total(req)
        if self.express_pool and predicted <= self.threshold_tokens:
            pool = self.express_pool
        else:
            pool = self.standard_pool
        clean = [
            inst for inst in pool if self.monitor.answering_slo_ok(inst, now)
        ]
        if not clean:
            # The chosen tier is saturated: spill across the whole pool
            # rather than dogpiling a violating tier.
            clean = self.slo_clean_instances(now)
        return least_kv_placement(clean, req, now)

    def on_phase_transition(
        self, req: Request, src: ServingInstance, now: float
    ) -> None:
        self.predictor.observe(req, req.generated_tokens)
        # The base default keeps the request where it reasoned: express
        # requests are short on both phases, and the standard tier's
        # hierarchical scheduler already prioritizes answering locally.
        super().on_phase_transition(req, src, now)

    def predictor_errors(self) -> dict[str, tuple[float, ...]]:
        return self.predictor.error_report()
